//! Device trace: run one fully simulated Android phone — radio scans, RAT
//! selection, data-call setups through the staged modem pipeline, injected
//! stalls, the three-stage recovery — and print the telephony event log the
//! way Android-MOD sees it, followed by the monitor's filtered dataset.
//!
//! ```sh
//! cargo run --release --example device_trace
//! ```

use cellrel::monitor::MonitoringService;
use cellrel::radio::{DeploymentConfig, RadioEnvironment};
use cellrel::sim::{EventQueue, SimRng};
use cellrel::telephony::{DeviceConfig, DeviceSim, RatPolicyKind, RecordingBoth, TelephonyEvent};
use cellrel::types::{DeviceId, Isp, Rat, RatSet, SimTime};

fn main() {
    let mut rng = SimRng::new(2021);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);

    // A 5G phone living near (but not at) a city centre, with an elevated
    // stall hazard so a day-long run shows interesting behaviour. Note how
    // many injected stalls never reach the 1-minute vanilla detector: the
    // user's ~30 s patience fires first (exactly the §3.2 finding).
    let mut cfg = DeviceConfig::new(DeviceId(0), Isp::A, env.city_centers()[0]);
    cfg.home = cfg.home.offset(3.0, 1.0);
    cfg.rats = RatSet::up_to(Rat::G5);
    cfg.policy = RatPolicyKind::Android10;
    cfg.stall_rate_per_hour = 4.0;

    let listener = RecordingBoth::new(MonitoringService::new(DeviceId(0), rng.fork(1)));
    let mut queue = EventQueue::new();
    let mut dev = DeviceSim::new(cfg, &env, listener, rng.fork(2), &mut queue);
    let horizon = SimTime::from_secs(24 * 3600);
    queue.run_until(&mut dev, horizon);

    let stats = *dev.stats();
    let listener = dev.into_listener();

    println!("== raw telephony event log (first 40 events) ==");
    for (at, ev) in listener.log.iter().take(40) {
        println!("[{at}] {}", describe(ev));
    }
    println!("... {} events total\n", listener.log.len());

    println!("== device counters ==\n{stats:#?}\n");

    let monitor = listener.inner;
    println!("== Android-MOD view ==");
    println!(
        "events seen: {}, true failures recorded: {}, false positives filtered: {}",
        monitor.events_seen(),
        monitor.records().len(),
        monitor.fp_counters().total()
    );
    for rec in monitor.records().iter().take(15) {
        println!(
            "  [{}] {} dur={} rat={} level={} cause={}",
            rec.start,
            rec.kind,
            rec.duration,
            rec.ctx.rat,
            rec.ctx.signal,
            rec.cause
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!(
        "\noverhead: cpu {:.2}% of failure windows, mem {} B, storage {} B, network {} B",
        monitor.overhead().cpu_utilization() * 100.0,
        monitor.overhead().peak_memory_bytes(),
        monitor.overhead().storage_bytes(),
        monitor.overhead().network_bytes()
    );
}

fn describe(ev: &TelephonyEvent) -> String {
    match ev {
        TelephonyEvent::DataSetupError { cause, ctx } => {
            format!(
                "Data_Setup_Error cause={cause} ({} {})",
                ctx.rat, ctx.signal
            )
        }
        TelephonyEvent::DataSetupSuccess { ctx } => {
            format!("data call up ({} {})", ctx.rat, ctx.signal)
        }
        TelephonyEvent::DataStallSuspected { condition, .. } => {
            format!("Data_Stall suspected (condition: {condition})")
        }
        TelephonyEvent::DataStallCleared { duration, .. } => {
            format!("Data_Stall cleared after {duration}")
        }
        TelephonyEvent::RecoveryActionExecuted { stage, fixed } => {
            format!("recovery stage {stage} executed (fixed: {fixed})")
        }
        TelephonyEvent::OutOfServiceBegan { .. } => "Out_of_Service began".into(),
        TelephonyEvent::OutOfServiceEnded { duration, .. } => {
            format!("Out_of_Service ended after {duration}")
        }
        TelephonyEvent::RatChanged { from, to } => match from {
            Some(f) => format!("RAT {f} -> {to}"),
            None => format!("camped on {to}"),
        },
        TelephonyEvent::ManualReset => "user reset data connection".into(),
        TelephonyEvent::VoiceCallInterruption => "voice call interrupted data".into(),
        TelephonyEvent::SmsSendFailed => "SMS send failed".into(),
        TelephonyEvent::VoiceSetupFailed => "voice call setup failed".into(),
    }
}
