//! Device trace: run one fully simulated Android phone — radio scans, RAT
//! selection, data-call setups through the staged modem pipeline, injected
//! stalls, the three-stage recovery — and print the telephony event log the
//! way Android-MOD sees it, followed by the monitor's filtered dataset.
//!
//! The report itself lives in `cellrel::report::device_trace_report` so the
//! golden-trace test (`tests/golden_trace.rs`) can pin it byte-for-byte.
//!
//! ```sh
//! cargo run --release --example device_trace
//! ```

fn main() {
    print!("{}", cellrel::report::device_trace_report(2021));
}
