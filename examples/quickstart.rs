//! Quickstart: run a small nationwide-style study and print the headline
//! reliability statistics next to the paper's published values.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cellrel::analysis::{duration_stats, headline, table2};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};

fn main() {
    // 10k synthetic devices over the paper's 8-month window — laptop-scale,
    // but every pipeline stage is the real one.
    let cfg = StudyConfig {
        population: PopulationConfig {
            devices: 10_000,
            ..Default::default()
        },
        bs_count: 8_000,
        seed: 42,
        ..Default::default()
    };

    println!(
        "cellrel quickstart — {} devices, {} days, seed {}\n",
        cfg.population.devices, cfg.days, cfg.seed
    );
    let dataset = run_macro_study(&cfg);
    println!(
        "generated {} failure events across {} base stations\n",
        dataset.events.len(),
        dataset.bs.len()
    );

    println!("{}", headline::compute(&dataset).render());
    println!("{}", duration_stats::compute(&dataset).render());
    println!("{}", table2::compute(&dataset, 10).render());
}
