//! Guidelines (§4.1): the quantitative sweeps behind the paper's advice to
//! ISPs and vendors — BS deployment density at hubs, cross-ISP carrier
//! coordination, and idle-3G offload.
//!
//! ```sh
//! cargo run --release --example guidelines
//! ```

use cellrel::analysis::Table;
use cellrel::workload::guidelines::{cross_isp_gap_sweep, density_sweep, idle_3g_offload_sweep};

fn main() {
    // 1. "Carefully control BS deployment density in such areas."
    let mut t = Table::new(
        "§4.1 — hub deployment density vs failure probability",
        &["neighbors", "P(fail | level-5)", "P(fail | level-3)"],
    );
    for p in density_sweep(60, 10) {
        t.row(vec![
            p.neighbors.to_string(),
            format!("{:.3}", p.l5_failure_prob),
            format!("{:.3}", p.l3_failure_prob),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: past ~30 neighbouring sites, an EXCELLENT-signal cell is\n\
         riskier than a mid-signal cell at a sparse site — the Fig. 15 anomaly\n\
         as a dose-response curve.\n"
    );

    // 2. "We advocate the recent campaign of cross-ISP infrastructure sharing."
    let mut t = Table::new(
        "§4.1 — cross-ISP carrier separation at a dense hub",
        &["min gap (MHz)", "interference", "P(fail | level-5)"],
    );
    for p in cross_isp_gap_sweep(&[0.0, 5.0, 15.0, 40.0, 100.0, 300.0]) {
        t.row(vec![
            format!("{:.0}", p.gap_mhz),
            format!("{:.3}", p.interference),
            format!("{:.3}", p.l5_failure_prob),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: coordinated spectrum planning (wider cross-ISP gaps)\n\
         removes most of the adjacent-channel component of hub failures.\n"
    );

    // 3. "Consider making better use of these relatively 'idle'
    //    infrastructure components."
    let mut t = Table::new(
        "§4.1 — idle-3G offload on a busy site (load 0.95)",
        &["offload", "4G rejection", "3G rejection", "total"],
    );
    for p in idle_3g_offload_sweep(0.95, 10) {
        t.row(vec![
            format!("{:.0}%", p.offload_fraction * 100.0),
            format!("{:.3}", p.g4_rejection),
            format!("{:.3}", p.g3_rejection),
            format!("{:.3}", p.total_rejection),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: shifting some demand to the idle 3G carrier cuts overload\n\
         rejections, but the optimum is interior — dumping everything onto 3G\n\
         just moves the congestion."
    );
}
