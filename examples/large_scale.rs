//! Large-scale parallel study: run a fleet one order of magnitude beyond
//! what the materialised API comfortably holds, in bounded memory, by
//! streaming events into mergeable online aggregators — one per shard,
//! folded at the end. Output is bit-identical at any thread count.
//!
//! ```sh
//! cargo run --release --example large_scale [devices] [--threads N]
//! # default 200,000 devices; threads default to CELLREL_THREADS or
//! # the machine's available parallelism
//!
//! cargo run --release --example large_scale -- 1000000 --fleet --days 30
//! # --fleet switches to the event-driven fleet simulation: live
//! # per-device state (RAT occupancy + thinned failure arrivals) on a
//! # timer wheel, reporting events/s and hot bytes/device
//! ```

// Wall-clock is the *measurement* here (events/s), not simulation state —
// the one place outside bench harnesses the workspace-wide gate is lifted.
#![allow(clippy::disallowed_types)]

use cellrel::analysis::streaming::FleetAccumulator;
use cellrel::sim::resolve_threads;
use cellrel::types::FailureKind;
use cellrel::workload::{
    run_fleet_event_driven, run_macro_study_parallel, FleetConfig, PopulationConfig, StudyConfig,
};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut devices = 200_000usize;
    let mut threads = 0usize;
    let mut fleet = false;
    let mut days: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            threads = it
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--threads needs a number");
        } else if a == "--days" {
            days = Some(
                it.next()
                    .and_then(|s| s.parse().ok())
                    .expect("--days needs a number"),
            );
        } else if a == "--fleet" {
            fleet = true;
        } else if let Ok(n) = a.parse() {
            devices = n;
        }
    }
    let threads = resolve_threads(threads);
    if fleet {
        run_fleet(devices, days.unwrap_or(30), threads);
        return;
    }
    let cfg = StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        bs_count: 100_000,
        seed: 2020,
        ..Default::default()
    };

    eprintln!(
        "streaming {} devices over {} days on {} thread(s) ...",
        devices, cfg.days, threads
    );
    let t0 = Instant::now();
    let (population, per_device, _bs, acc) =
        run_macro_study_parallel(&cfg, threads, FleetAccumulator::new);
    let elapsed = t0.elapsed();

    let total = acc.total;
    let failing = per_device.iter().filter(|&&c| c > 0).count();

    println!(
        "generated {} failures for {} devices in {:.1} s ({:.0} events/s, {} threads)",
        total,
        population.len(),
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9),
        threads
    );
    println!(
        "prevalence {:.1}% (paper 23%) | frequency {:.1} (paper 33)",
        failing as f64 / population.len() as f64 * 100.0,
        total as f64 / population.len() as f64
    );
    println!(
        "mean duration {:.0} s (paper 188 s) | <30 s {:.1}% (paper 70.8%) | max {:.0} s",
        acc.mean_duration_secs(),
        acc.under_30s_share() * 100.0,
        acc.max_duration_ms as f64 / 1000.0
    );
    println!(
        "Data_Stall: {:.1}% of failures, {:.1}% of duration (paper ~40% / 94%)",
        acc.kind_share(FailureKind::DataStall) * 100.0,
        acc.kind_duration_share(FailureKind::DataStall) * 100.0
    );
    if let (Some(p50), Some(p90), Some(p99)) = (
        acc.duration_quantile_secs(0.50),
        acc.duration_quantile_secs(0.90),
        acc.duration_quantile_secs(0.99),
    ) {
        println!(
            "sketched duration p50 {p50:.1} s | p90 {p90:.1} s | p99 {p99:.1} s \
             (streaming sketch, ≤1% rank error)"
        );
    }
}

/// The event-driven fleet path: live per-device state on a timer wheel —
/// the 10⁶-devices × 30-days configuration the scheduler refactor targets.
fn run_fleet(devices: usize, days: u64, threads: usize) {
    let cfg = FleetConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        days,
        bs_count: 100_000,
        ..FleetConfig::default()
    };
    eprintln!("event-driven fleet: {devices} devices over {days} days on {threads} thread(s) ...");
    let t0 = Instant::now();
    let r = run_fleet_event_driven(&cfg, threads);
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "processed {} events in {:.1} s ({:.0} events/s, {} threads)",
        r.events(),
        elapsed,
        r.events() as f64 / elapsed.max(1e-9),
        threads
    );
    println!(
        "failures {} ({:.2}/device) | candidates {} | RAT jumps {} ({} changes)",
        r.failures,
        r.failures as f64 / r.devices.max(1) as f64,
        r.candidates,
        r.radio_events,
        r.rat_changes
    );
    println!(
        "hot state: {:.1} bytes/device ({} MiB total for the fleet)",
        r.bytes_per_device(),
        r.hot_bytes / (1024 * 1024)
    );
    println!("digest: {:016x}", r.digest);
}
