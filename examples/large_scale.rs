//! Large-scale streaming study: run a fleet one order of magnitude beyond
//! what the materialised API comfortably holds, in bounded memory, by
//! streaming events into online aggregators.
//!
//! ```sh
//! cargo run --release --example large_scale [devices]   # default 200,000
//! ```

use cellrel::sim::Summary;
use cellrel::types::FailureKind;
use cellrel::workload::{run_macro_study_streaming, PopulationConfig, StudyConfig};
use std::time::Instant;

fn main() {
    let devices: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let cfg = StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        bs_count: 100_000,
        seed: 2020,
        ..Default::default()
    };

    eprintln!("streaming {} devices over {} days ...", devices, cfg.days);
    let t0 = Instant::now();

    let mut durations = Summary::new();
    let mut kind_counts = [0u64; 5];
    let mut kind_duration = [0f64; 5];
    let mut under_30 = 0u64;
    let (population, per_device, _bs) = run_macro_study_streaming(&cfg, |e| {
        let secs = e.duration.as_secs_f64();
        durations.push(secs);
        kind_counts[e.kind.index()] += 1;
        kind_duration[e.kind.index()] += secs;
        if secs < 30.0 {
            under_30 += 1;
        }
    });
    let elapsed = t0.elapsed();

    let total = durations.count();
    let failing = per_device.iter().filter(|&&c| c > 0).count();
    let total_duration: f64 = kind_duration.iter().sum();

    println!(
        "generated {} failures for {} devices in {:.1} s ({:.0} events/s)",
        total,
        population.len(),
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "prevalence {:.1}% (paper 23%) | frequency {:.1} (paper 33)",
        failing as f64 / population.len() as f64 * 100.0,
        total as f64 / population.len() as f64
    );
    println!(
        "mean duration {:.0} s (paper 188 s) | <30 s {:.1}% (paper 70.8%) | max {:.0} s",
        durations.mean(),
        under_30 as f64 / total as f64 * 100.0,
        durations.max()
    );
    println!(
        "Data_Stall: {:.1}% of failures, {:.1}% of duration (paper ~40% / 94%)",
        kind_counts[FailureKind::DataStall.index()] as f64 / total as f64 * 100.0,
        kind_duration[FailureKind::DataStall.index()] / total_duration * 100.0
    );
}
