//! TIMP optimizer: fit the time-inhomogeneous Markov model of Data_Stall
//! recovery from (simulated) stall-duration measurements, then run the
//! simulated-annealing search for the probation triple that minimises the
//! expected recovery time — the paper's §4.2 pipeline, which produced
//! Pro = (21 s, 6 s, 16 s) and T ≈ 27.8 s vs 38 s for vanilla Android.
//!
//! ```sh
//! cargo run --release --example timp_optimizer
//! ```

use cellrel::sim::SimRng;
use cellrel::telephony::RecoveryConfig;
use cellrel::timp::{anneal_probations, AnnealConfig, TimpModel};
use cellrel::workload::durations::sample_auto_heal_secs;

fn main() {
    // 1. "Measure" stall auto-recovery durations (the Fig. 10 distribution).
    let mut rng = SimRng::new(7);
    let samples: Vec<f64> = (0..50_000)
        .map(|_| sample_auto_heal_secs(&mut rng))
        .collect();
    let within_10 = samples.iter().filter(|&&d| d <= 10.0).count() as f64 / samples.len() as f64;
    println!(
        "fitted from {} stall durations; P(auto-heal ≤ 10 s) = {:.0}% (paper: 60%)",
        samples.len(),
        within_10 * 100.0
    );

    // 2. Fit the TIMP model with Android's recovery-operation parameters.
    let recovery = RecoveryConfig::vanilla();
    let model = TimpModel::from_durations(
        &samples,
        recovery.op_success,
        recovery.op_cost.map(|c| c.as_secs_f64()),
    );

    // 3. Evaluate the two triggers the paper compares.
    let t_vanilla = model.expected_recovery_time([60.0, 60.0, 60.0]);
    let t_paper = model.expected_recovery_time([21.0, 6.0, 16.0]);
    println!("\nexpected recovery time:");
    println!("  vanilla (60,60,60): {t_vanilla:.1} s   (paper: 38 s)");
    println!("  paper   (21, 6,16): {t_paper:.1} s   (paper: 27.8 s)");

    // 4. Anneal for the optimum under *our* duration distribution.
    let result = anneal_probations(&model, &AnnealConfig::default());
    println!(
        "  annealed {:?}: {:.1} s   ({:.0}% better than vanilla, {} accepted moves)",
        result.probations,
        result.expected_time,
        result.improvement() * 100.0,
        result.accepted_moves
    );
    println!(
        "\nThe optimum depends on the duration distribution; the invariant the\n\
         paper establishes — much shorter probations than one minute win —\n\
         holds here too."
    );
}
