//! Nationwide study: the full macro reproduction — Tables 1–2 and the
//! fleet-level figures — on a configurable population size.
//!
//! ```sh
//! cargo run --release --example nationwide_study [devices]
//! ```

use cellrel::analysis::{
    counts, duration_stats, groups, hardware, headline, isp, per_rat, signal, stall_recovery,
    table1, table2, transitions, zipf,
};
use cellrel::sim::SimRng;
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};

fn main() {
    let devices: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);

    let cfg = StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        bs_count: (devices * 2).clamp(5_000, 200_000),
        seed: 2020,
        ..Default::default()
    };
    eprintln!(
        "running macro study: {} devices, {} BSes, {} days ...",
        cfg.population.devices, cfg.bs_count, cfg.days
    );
    let data = run_macro_study(&cfg);
    eprintln!("generated {} failure events\n", data.events.len());

    println!("{}", headline::compute(&data).render());
    println!("{}", table1::compute(&data).render());
    println!("{}", table2::compute(&data, 10).render());
    println!("{}", counts::compute(&data).render());
    println!("{}", duration_stats::compute(&data).render());
    println!("{}", groups::compute(&data).render());
    println!("{}", stall_recovery::compute(&data).render());
    println!("{}", zipf::compute(&data).render());
    println!("{}", isp::render(&isp::compute(&data)));
    println!("{}", per_rat::render(&per_rat::compute(&data)));
    println!("{}", signal::compute(&data).render());
    println!("{}", hardware::compute(&data).render());

    let mut rng = SimRng::new(17);
    println!("{}", transitions::compute(3_000, &mut rng).render());
}
