//! RAT-policy A/B: vanilla Android 10's blind 5G preference vs the paper's
//! Stability-Compatible transition policy with 4G/5G dual connectivity —
//! the deployed enhancement behind Figures 19 and 20.
//!
//! ```sh
//! cargo run --release --example rat_policy_ab [devices] [days]
//! ```

use cellrel::analysis::ab::compare_rat_policy;
use cellrel::workload::{run_rat_policy_ab, AbConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let devices: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let days: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let cfg = AbConfig {
        devices,
        days,
        seed: 2021,
        stall_rate_per_hour: 1.5,
        suppress_user_reset: false,
        threads: 0,
    };
    println!(
        "RAT-policy A/B: {} 5G phones per arm, {} simulated days each\n",
        cfg.devices, cfg.days
    );

    let (vanilla, patched) = run_rat_policy_ab(&cfg);
    let cmp = compare_rat_policy(vanilla, patched);
    println!("{}", cmp.render());
    println!(
        "paper §4.3: prevalence -10%, frequency -40.3% on participating 5G phones\n\
         (absolute numbers differ — the substrate is a simulator — but the\n\
         direction and rough magnitude should hold)"
    );
}
