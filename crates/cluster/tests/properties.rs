//! Protocol totality proptests for the `CR` replication/federation wire
//! format, mirroring `crates/queryd/tests/properties.rs`: arbitrary frames
//! round-trip canonically, and truncated, bit-flipped, length-lying or
//! garbage input always produces a typed error — never a panic, never an
//! over-read — both in the raw decoder and through the total server halves
//! (shard handles and followers).

use cellrel_cluster::proto::{self, ERR_BAD_QUERY, ERR_UNEXPECTED};
use cellrel_cluster::{decode_frame, encode_frame, Follower, Message, ShardHandle};
use cellrel_queryd::QuerydCore;
use cellrel_store::{
    Cell, DeviceDirectory, Dim, Filter, Metric, PartialResultSet, Query, Region, Store, StoreConfig,
};
use cellrel_stream::StreamConfig;
use cellrel_types::{DataFailCause, FailureKind, FailureLayer, Isp, PhoneModelId, Rat};
use proptest::prelude::*;

/// One filter's raw material, as in the queryd suite: a variant selector
/// plus enough integers to populate any variant.
type FilterParts = (usize, u64, u64, i32);

fn build_filter((tag, a, b, code): &FilterParts) -> Filter {
    let (a, b) = (*a, *b);
    match tag % 9 {
        0 => Filter::Kind(FailureKind::from_index(a as usize % 5).expect("kind < 5")),
        1 => Filter::Isp(Isp::from_index(a as usize % 3).expect("isp < 3")),
        2 => Filter::Rat(Rat::from_index(a as usize % 4).expect("rat < 4")),
        3 => Filter::Model(PhoneModelId(a as u8)),
        4 => Filter::Region(Region::from_index(a as usize % 3).expect("region < 3")),
        5 => Filter::CauseClass(FailureLayer::from_index(a as usize % 5).expect("layer < 5")),
        6 => Filter::Cause(DataFailCause::from_code(*code)),
        7 => Filter::HasCause,
        _ => Filter::TimeRange {
            start_ms: a.min(b),
            end_ms: a.max(b),
        },
    }
}

fn build_metric((tag, q): &(usize, f64)) -> Metric {
    match tag % 8 {
        0 => Metric::Count,
        1 => Metric::DurationTotalMs,
        2 => Metric::MeanDurationMs,
        3 => Metric::MaxDurationMs,
        4 => Metric::Under30sShare,
        5 => Metric::QuantileMs(*q),
        6 => Metric::Devices,
        _ => Metric::FailingDevices,
    }
}

/// Query material: filters, group-by dims, window, metric, top_k. The
/// `CR` wire must carry *any* query, legal for the engine or not.
type QueryParts = (Vec<FilterParts>, Vec<usize>, u64, (usize, f64), usize);

fn query_parts() -> impl Strategy<Value = QueryParts> {
    (
        prop::collection::vec((0usize..9, any::<u64>(), any::<u64>(), any::<i32>()), 0..6),
        prop::collection::vec(0usize..8, 0..4),
        any::<u64>(),
        (0usize..8, 0.0f64..1.0),
        0usize..1 << 32,
    )
}

fn build_query(p: &QueryParts) -> Query {
    let (filters, dims, window_ms, metric, top_k) = p;
    Query {
        filters: filters.iter().map(build_filter).collect(),
        group_by: dims
            .iter()
            .map(|i| Dim::from_index(i % 8).expect("dim < 8"))
            .collect(),
        window_ms: *window_ms,
        metric: build_metric(metric),
        top_k: *top_k,
    }
}

/// Partial-aggregate material: fixed key arity (the wire form requires it),
/// strictly ascending keys (built by cumulative offsets), per-group tallies.
type PartialParts = (Vec<(u64, u64, u64, u64)>, u64, (u64, u64));

fn partial_parts() -> impl Strategy<Value = PartialParts> {
    (
        prop::collection::vec(
            (1u64..1_000, any::<u64>(), any::<u64>(), any::<u64>()),
            0..8,
        ),
        1u64..1_000_000,
        (any::<u64>(), any::<u64>()),
    )
}

fn build_partial(p: &PartialParts) -> PartialResultSet {
    let (groups, window_ms, (scanned, matched)) = p;
    let mut key = 0u64;
    PartialResultSet {
        window_ms: *window_ms,
        groups: groups
            .iter()
            .map(|(step, count, duration, under)| {
                key = key.saturating_add(*step);
                let count = *count >> 1; // leave headroom for under_30s ≤ count
                (
                    vec![key],
                    Cell {
                        count,
                        duration_ms_total: *duration,
                        under_30s: (*under).min(count),
                        ..Cell::default()
                    },
                )
            })
            .collect(),
        cells_scanned: *scanned,
        cells_matched: *matched,
    }
}

/// A frame of every replication kind from arbitrary field material.
fn build_frames(seq: u64, blob: &[u8], n_frames: usize) -> Vec<Message> {
    vec![
        Message::ShipSegment {
            seq,
            frame: blob.to_vec(),
        },
        Message::ShipCheckpoint {
            seq,
            checkpoint: blob.to_vec(),
        },
        Message::Catchup { from_seq: seq },
        Message::Ack {
            seq,
            digest: seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        },
        Message::Segments {
            from_seq: seq,
            frames: (0..n_frames % 4)
                .map(|i| blob[..blob.len() / (i + 1)].to_vec())
                .collect(),
        },
        Message::Rejection {
            code: (seq % 256) as u8,
            detail: String::from_utf8_lossy(blob).into_owned(),
        },
    ]
}

proptest! {
    /// Every replication-side message kind round-trips canonically:
    /// re-encoding the decoded message reproduces the exact frame bytes.
    #[test]
    fn replication_frames_roundtrip(
        seq in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..128),
        n in any::<usize>(),
    ) {
        for msg in build_frames(seq, &blob, n) {
            let frame = encode_frame(&msg);
            let decoded = decode_frame(&frame).expect("own encoding decodes");
            prop_assert_eq!(&decoded, &msg);
            prop_assert_eq!(encode_frame(&decoded), frame);
        }
    }

    /// Arbitrary queries ride the CR wire unchanged — the shared queryd
    /// grammar means a query is the same bytes on both protocols' payloads.
    #[test]
    fn query_frames_roundtrip_arbitrary_queries(p in query_parts()) {
        let msg = Message::Query(build_query(&p));
        let frame = encode_frame(&msg);
        let decoded = decode_frame(&frame).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(encode_frame(&decoded), frame);
    }

    /// Arbitrary well-formed partial aggregates round-trip canonically.
    #[test]
    fn partial_frames_roundtrip(epoch in any::<u64>(), p in partial_parts()) {
        let msg = Message::Partial { epoch, partial: build_partial(&p) };
        let frame = encode_frame(&msg);
        let decoded = decode_frame(&frame).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(encode_frame(&decoded), frame);
    }

    /// Every strict prefix of a valid frame is a typed error.
    #[test]
    fn truncated_frames_are_errors_never_panics(
        seq in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..96),
        n in any::<usize>(),
        cut_seed in any::<usize>(),
    ) {
        for msg in build_frames(seq, &blob, n) {
            let frame = encode_frame(&msg);
            let cut = cut_seed % frame.len();
            prop_assert!(decode_frame(&frame[..cut]).is_err());
        }
    }

    /// A single flipped bit anywhere in a frame is always caught: by the
    /// magic/version/kind checks, the field bounds, or the CRC trailer.
    #[test]
    fn corrupted_frames_are_errors_never_panics(
        p in query_parts(),
        at_seed in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut frame = encode_frame(&Message::Query(build_query(&p)));
        let at = at_seed % frame.len();
        frame[at] ^= mask;
        prop_assert!(decode_frame(&frame).is_err());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
    }

    /// The shard query endpoint is total end to end: any byte string in
    /// produces a decodable CR frame out; invalid input produces a
    /// rejection, legal queries produce partials, and replication kinds
    /// aimed at a query-only endpoint are refused, not applied.
    #[test]
    fn shard_handles_answer_every_frame_with_a_valid_frame(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let handle = ShardHandle::new(QuerydCore::new(Store::new(&StoreConfig::default())));
        let out = handle.handle(&bytes);
        let reply = decode_frame(&out).expect("handle output always decodes");
        match decode_frame(&bytes) {
            Err(_) => prop_assert!(matches!(reply, Message::Rejection { .. })),
            Ok(Message::Query(_)) => prop_assert!(matches!(
                reply,
                Message::Partial { .. } | Message::Rejection { code: ERR_BAD_QUERY, .. }
            )),
            Ok(_) => prop_assert!(
                matches!(reply, Message::Rejection { code: ERR_UNEXPECTED, .. })
            ),
        }
    }

    /// Followers are equally total: arbitrary bytes yield a decodable
    /// reply, and hostile segment ships at the right sequence number are
    /// rejected by the segment codec's own verification — the follower's
    /// durable state never advances on garbage.
    #[test]
    fn followers_reject_hostile_frames_without_advancing(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = DeviceDirectory::default();
        let mut follower = Follower::new(&StreamConfig::default(), &dir, 0);
        let reply = follower.apply(&bytes);
        decode_frame(&reply).expect("follower output always decodes");
        prop_assert_eq!(follower.applied(), 0);

        // A correctly framed ship carrying a garbage segment: the CR layer
        // accepts the envelope, the SG codec rejects the cargo.
        let ship = encode_frame(&Message::ShipSegment { seq: 1, frame: garbage });
        let reply = follower.apply(&ship);
        match decode_frame(&reply).expect("decodes") {
            Message::Rejection { code, .. } => prop_assert_eq!(code, proto::ERR_APPLY),
            other => prop_assert!(false, "hostile segment must be rejected, got {other:?}"),
        }
        prop_assert_eq!(follower.applied(), 0);
        prop_assert!(follower.manifest().is_empty());
    }
}
