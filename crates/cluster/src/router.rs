//! Scatter-gather query federation.
//!
//! The router fans one typed query to every shard, collects **partial**
//! aggregates — per-group merged [`Cell`]s, not finalized rows — and
//! merges them through the store's own `Merge` algebra before the shared
//! finalize step runs once, globally. Because counts, durations, and
//! sketches merge by exact addition, and ordering + top-k are re-applied
//! *after* the merge, the federated answer is byte-identical to a single
//! store that saw every record — at any shard count.
//!
//! [`Cell`]: cellrel_store::Cell

use std::sync::Arc;

use crate::error::ClusterError;
use crate::proto::{self, Message};
use cellrel_analysis::store_tables::{
    table1_from_results, table1_queries, table2_from_result, table2_query,
};
use cellrel_analysis::table1::Table1;
use cellrel_analysis::table2::Table2;
use cellrel_queryd::QuerydCore;
use cellrel_store::{merge_partials, Query, ResultSet};

/// Answer one query from a serving core's current snapshot, as a `CR`
/// reply frame. Shared by leaders, followers, and bare shard handles so a
/// query means exactly the same thing at every endpoint.
pub fn answer_query(core: &QuerydCore, q: &Query) -> Vec<u8> {
    let snap = core.snapshot();
    match snap.store.query_partial(q) {
        Ok(partial) => proto::encode_frame(&Message::Partial {
            epoch: snap.epoch,
            partial,
        }),
        Err(e) => proto::encode_frame(&Message::Rejection {
            code: proto::ERR_BAD_QUERY,
            detail: e.to_string(),
        }),
    }
}

/// An in-process connection to one shard's serving endpoint.
#[derive(Clone)]
pub struct ShardHandle {
    core: Arc<QuerydCore>,
}

impl ShardHandle {
    /// A handle over a shard's serving core (leader or follower).
    pub fn new(core: Arc<QuerydCore>) -> Self {
        ShardHandle { core }
    }

    /// Serve one request frame. Total: hostile bytes and non-query kinds
    /// come back as rejection frames.
    pub fn handle(&self, frame: &[u8]) -> Vec<u8> {
        match proto::decode_frame(frame) {
            Ok(Message::Query(q)) => answer_query(&self.core, &q),
            Ok(_) => proto::encode_frame(&Message::Rejection {
                code: proto::ERR_UNEXPECTED,
                detail: "this endpoint answers queries only".into(),
            }),
            Err(e) => proto::encode_frame(&proto::rejection_for(&e)),
        }
    }
}

/// A federated answer: the merged result plus per-shard snapshot epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedAnswer {
    /// The merged, finalized result — byte-identical to single-node.
    pub result: ResultSet,
    /// The snapshot epoch each shard answered from, in shard order.
    pub epochs: Vec<u64>,
}

/// The scatter-gather router: one handle per shard, merge on gather.
#[derive(Clone)]
pub struct ClusterRouter {
    shards: Vec<ShardHandle>,
}

impl ClusterRouter {
    /// A router over one serving handle per shard, in shard order.
    pub fn new(shards: Vec<ShardHandle>) -> Self {
        ClusterRouter { shards }
    }

    /// How many shards a query fans out to.
    pub fn fan_out(&self) -> usize {
        self.shards.len()
    }

    /// Evaluate `q` across every shard and merge. A shard-side validation
    /// rejection surfaces as [`ClusterError::Query`] carrying the store's
    /// own error string, so federated error behaviour matches local.
    pub fn query(&self, q: &Query) -> Result<RoutedAnswer, ClusterError> {
        if self.shards.is_empty() {
            return Err(ClusterError::Config("router has no shards"));
        }
        let frame = proto::encode_frame(&Message::Query(q.clone()));
        let mut partials = Vec::with_capacity(self.shards.len());
        let mut epochs = Vec::with_capacity(self.shards.len());
        for (shard, handle) in self.shards.iter().enumerate() {
            match proto::decode_frame(&handle.handle(&frame))? {
                Message::Partial { epoch, partial } => {
                    epochs.push(epoch);
                    partials.push(partial);
                }
                Message::Rejection { code, detail } if code == proto::ERR_BAD_QUERY => {
                    return Err(ClusterError::Query(detail))
                }
                Message::Rejection { code, detail } => {
                    return Err(ClusterError::Replication {
                        shard,
                        detail: format!("query rejected (code {code}): {detail}"),
                    })
                }
                other => {
                    return Err(ClusterError::Replication {
                        shard,
                        detail: format!("expected partial, got {other:?}"),
                    })
                }
            }
        }
        Ok(RoutedAnswer {
            result: merge_partials(q, &partials),
            epochs,
        })
    }

    /// The paper's Tables 1 and 2, assembled entirely from federated
    /// answers — the `repro --cluster` identity surface.
    pub fn tables(&self, k: usize) -> Result<(Table1, Table2), ClusterError> {
        let [q0, q1, q2] = table1_queries();
        let r0 = self.query(&q0)?.result;
        let r1 = self.query(&q1)?.result;
        let r2 = self.query(&q2)?.result;
        let t1 = table1_from_results(&[r0, r1, r2]);
        let t2 = table2_from_result(&self.query(&table2_query())?.result, k);
        Ok((t1, t2))
    }
}
