//! The `CR` replication + federation wire format.
//!
//! One frame family carries both halves of the cluster's traffic: the
//! leader→follower replication stream (sealed segments, pipeline
//! checkpoints, catch-up) and the router↔shard query fan-out (typed
//! queries out, partial aggregates back). The layout mirrors the queryd
//! `CQ` family byte for byte in spirit:
//!
//! ```text
//! magic "CR" | version u8 | kind u8 | payload... | CRC-32 (LE)
//! ```
//!
//! Varints, zigzag, and the CRC are the ingest codec's; the query grammar
//! inside [`Message::Query`] is queryd's own `write_query`/`read_query`,
//! shared verbatim so a query means the same thing on every wire in the
//! system. Partial aggregates ride as the store's [`PartialResultSet`]
//! wire form.
//!
//! Decoding is **total**: truncation, bit flips, length lies, and garbage
//! map onto a typed [`RepError`], never a panic, and never an over-read —
//! every length field is bounds-checked against the remaining payload
//! before use. `crates/cluster/tests/properties.rs` proves this under
//! proptest; `tests/golden_cluster.rs` pins the exact bytes.

use crate::error::ClusterError;
use cellrel_ingest::codec::{crc32, read_varint, write_varint};
use cellrel_ingest::DecodeError;
use cellrel_queryd::proto::{read_query, write_query};
use cellrel_store::{decode_partial, encode_partial, PartialResultSet, PersistError, Query};

/// Frame magic: `"CR"` (Cellrel Replication).
pub const MAGIC: [u8; 2] = *b"CR";
/// Wire schema version this build speaks.
pub const VERSION: u8 = 1;
/// Hard ceiling on a frame we will decode. Segment frames dominate: a
/// sealed window over the full fleet is a few MiB; 64 MiB leaves an order
/// of magnitude of headroom while bounding hostile allocation.
pub const MAX_FRAME_LEN: usize = 1 << 26;
/// Magic + version + kind + CRC trailer.
const MIN_FRAME_LEN: usize = 2 + 1 + 1 + 4;

/// Leader → follower: one sealed segment (`SG` frame) at a log position.
pub const KIND_SEGMENT: u8 = 0x01;
/// Leader → follower: a pipeline checkpoint (`SP` blob) at a log position.
pub const KIND_CHECKPOINT: u8 = 0x02;
/// Follower → leader: replay the manifest suffix from a log position.
pub const KIND_CATCHUP: u8 = 0x03;
/// Router → shard: evaluate a typed query, return a partial aggregate.
pub const KIND_QUERY: u8 = 0x04;
/// Follower → leader: a frame was applied; carries the verified digest.
pub const KIND_ACK: u8 = 0x81;
/// Leader → follower: catch-up reply, the requested segment frames.
pub const KIND_SEGMENTS: u8 = 0x82;
/// Shard → router: the partial aggregate for one query.
pub const KIND_PARTIAL: u8 = 0x84;
/// Either direction: the peer rejected the frame; code + detail.
pub const KIND_ERROR: u8 = 0xEE;

/// Rejection code: the frame failed to decode.
pub const ERR_MALFORMED: u8 = 1;
/// Rejection code: unknown kind or unsupported version.
pub const ERR_UNSUPPORTED: u8 = 2;
/// Rejection code: the query failed store-side validation; the detail is
/// the store's `QueryError` display string.
pub const ERR_BAD_QUERY: u8 = 4;
/// Rejection code: the frame exceeds [`MAX_FRAME_LEN`].
pub const ERR_TOO_LARGE: u8 = 5;
/// Rejection code: a replication frame decoded but could not be applied
/// (sequence gap, digest mismatch, corrupt segment or checkpoint).
pub const ERR_APPLY: u8 = 6;
/// Rejection code: a well-formed frame arrived at an endpoint that does
/// not serve it (e.g. a catch-up request sent to a follower).
pub const ERR_UNEXPECTED: u8 = 7;

/// One decoded `CR` frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A sealed segment at replication position `seq` (1-based, dense).
    ShipSegment {
        /// Log position; a follower only applies `applied + 1`.
        seq: u64,
        /// The complete `SG` segment frame, digest included.
        frame: Vec<u8>,
    },
    /// A pipeline checkpoint covering positions `1..=seq`.
    ShipCheckpoint {
        /// Replication position the checkpoint's manifest extends to.
        seq: u64,
        /// The complete `SP` checkpoint blob.
        checkpoint: Vec<u8>,
    },
    /// Request the manifest suffix after `from_seq` (0 = everything).
    Catchup {
        /// Positions `from_seq + 1..` are wanted.
        from_seq: u64,
    },
    /// A typed store query, in queryd's query grammar.
    Query(Query),
    /// A replication frame was applied and verified.
    Ack {
        /// The applied position.
        seq: u64,
        /// Segment digest (or checkpoint CRC) verified on apply.
        digest: u64,
    },
    /// Catch-up reply: segment frames for `from_seq + 1..`.
    Segments {
        /// Echo of the request position.
        from_seq: u64,
        /// `SG` frames, in log order.
        frames: Vec<Vec<u8>>,
    },
    /// A per-shard partial aggregate, pre-finalize.
    Partial {
        /// Snapshot epoch the shard answered from.
        epoch: u64,
        /// The partial (mergeable) aggregate.
        partial: PartialResultSet,
    },
    /// The peer rejected the frame.
    Rejection {
        /// One of the `ERR_*` codes.
        code: u8,
        /// Human-readable detail.
        detail: String,
    },
}

/// Why `CR` bytes failed to decode. Total over arbitrary input.
#[derive(Debug, Clone, PartialEq)]
pub enum RepError {
    /// Input ended before the frame said it would.
    Truncated,
    /// The first two bytes are not `"CR"`.
    BadMagic {
        /// What was found instead.
        found: [u8; 2],
    },
    /// The frame's version is newer than this build understands.
    UnsupportedVersion(u8),
    /// The kind byte names no known frame.
    UnknownKind(u8),
    /// The CRC-32 trailer does not match the payload.
    BadCrc {
        /// CRC computed over the received payload.
        expected: u32,
        /// CRC stored in the trailer.
        found: u32,
    },
    /// The frame exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u64),
    /// A field decoded but its value is impossible (length lies included).
    InvalidField(&'static str),
    /// Bytes remained after a complete, CRC-valid frame.
    TrailingBytes,
    /// The embedded query failed queryd's grammar.
    Query(cellrel_queryd::ProtoError),
    /// The embedded partial aggregate failed the store's wire form.
    Partial(PersistError),
}

impl std::fmt::Display for RepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepError::Truncated => write!(f, "truncated CR frame"),
            RepError::BadMagic { found } => {
                write!(f, "bad CR magic: {:02x}{:02x}", found[0], found[1])
            }
            RepError::UnsupportedVersion(v) => write!(f, "unsupported CR version {v}"),
            RepError::UnknownKind(k) => write!(f, "unknown CR frame kind {k:#04x}"),
            RepError::BadCrc { expected, found } => {
                write!(
                    f,
                    "CR crc mismatch: computed {expected:08x}, stored {found:08x}"
                )
            }
            RepError::FrameTooLarge(n) => write!(f, "CR frame of {n} bytes exceeds limit"),
            RepError::InvalidField(field) => write!(f, "invalid CR field: {field}"),
            RepError::TrailingBytes => write!(f, "trailing bytes after CR frame"),
            RepError::Query(e) => write!(f, "CR query payload: {e}"),
            RepError::Partial(e) => write!(f, "CR partial payload: {e}"),
        }
    }
}

impl std::error::Error for RepError {}

/// Read one varint, mapping codec errors onto `CR` errors.
fn rv(bytes: &[u8], pos: &mut usize) -> Result<u64, RepError> {
    read_varint(bytes, pos).map_err(|e| match e {
        DecodeError::Truncated => RepError::Truncated,
        _ => RepError::InvalidField("varint"),
    })
}

/// Read one length-prefixed blob. The length is bounds-checked against the
/// remaining payload *before* any allocation, so a length lie cannot
/// amplify into an over-read or an oversized reservation.
fn read_blob(bytes: &[u8], pos: &mut usize, field: &'static str) -> Result<Vec<u8>, RepError> {
    let len = rv(bytes, pos)?;
    let remaining = bytes.len().saturating_sub(*pos) as u64;
    if len > remaining {
        return Err(RepError::InvalidField(field));
    }
    let len = len as usize;
    let blob = bytes[*pos..*pos + len].to_vec();
    *pos += len;
    Ok(blob)
}

/// Encode one message as a complete `CR` frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    match msg {
        Message::ShipSegment { seq, frame } => {
            out.push(KIND_SEGMENT);
            write_varint(&mut out, *seq);
            write_varint(&mut out, frame.len() as u64);
            out.extend_from_slice(frame);
        }
        Message::ShipCheckpoint { seq, checkpoint } => {
            out.push(KIND_CHECKPOINT);
            write_varint(&mut out, *seq);
            write_varint(&mut out, checkpoint.len() as u64);
            out.extend_from_slice(checkpoint);
        }
        Message::Catchup { from_seq } => {
            out.push(KIND_CATCHUP);
            write_varint(&mut out, *from_seq);
        }
        Message::Query(q) => {
            out.push(KIND_QUERY);
            write_query(&mut out, q);
        }
        Message::Ack { seq, digest } => {
            out.push(KIND_ACK);
            write_varint(&mut out, *seq);
            write_varint(&mut out, *digest);
        }
        Message::Segments { from_seq, frames } => {
            out.push(KIND_SEGMENTS);
            write_varint(&mut out, *from_seq);
            write_varint(&mut out, frames.len() as u64);
            for f in frames {
                write_varint(&mut out, f.len() as u64);
                out.extend_from_slice(f);
            }
        }
        Message::Partial { epoch, partial } => {
            out.push(KIND_PARTIAL);
            write_varint(&mut out, *epoch);
            let body = encode_partial(partial);
            write_varint(&mut out, body.len() as u64);
            out.extend_from_slice(&body);
        }
        Message::Rejection { code, detail } => {
            out.push(KIND_ERROR);
            write_varint(&mut out, u64::from(*code));
            write_varint(&mut out, detail.len() as u64);
            out.extend_from_slice(detail.as_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode one complete `CR` frame. Total: any byte string yields `Ok` or a
/// typed [`RepError`]. The CRC is verified before any field parsing, so
/// field errors are only ever reported for intact frames.
pub fn decode_frame(bytes: &[u8]) -> Result<Message, RepError> {
    if bytes.len() > MAX_FRAME_LEN {
        return Err(RepError::FrameTooLarge(bytes.len() as u64));
    }
    if bytes.len() < MIN_FRAME_LEN {
        return Err(RepError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let found = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let expected = crc32(payload);
    if expected != found {
        return Err(RepError::BadCrc { expected, found });
    }
    if payload[0..2] != MAGIC {
        return Err(RepError::BadMagic {
            found: [payload[0], payload[1]],
        });
    }
    if payload[2] != VERSION {
        return Err(RepError::UnsupportedVersion(payload[2]));
    }
    let kind = payload[3];
    let body = &payload[4..];
    let mut pos = 0usize;
    let msg = match kind {
        KIND_SEGMENT => {
            let seq = rv(body, &mut pos)?;
            let frame = read_blob(body, &mut pos, "segment length")?;
            Message::ShipSegment { seq, frame }
        }
        KIND_CHECKPOINT => {
            let seq = rv(body, &mut pos)?;
            let checkpoint = read_blob(body, &mut pos, "checkpoint length")?;
            Message::ShipCheckpoint { seq, checkpoint }
        }
        KIND_CATCHUP => Message::Catchup {
            from_seq: rv(body, &mut pos)?,
        },
        KIND_QUERY => Message::Query(read_query(body, &mut pos).map_err(RepError::Query)?),
        KIND_ACK => {
            let seq = rv(body, &mut pos)?;
            let digest = rv(body, &mut pos)?;
            Message::Ack { seq, digest }
        }
        KIND_SEGMENTS => {
            let from_seq = rv(body, &mut pos)?;
            let n = rv(body, &mut pos)?;
            // Every frame needs at least a length byte; a count claiming
            // more is a lie regardless of what follows.
            if n > body.len().saturating_sub(pos) as u64 {
                return Err(RepError::InvalidField("segment count"));
            }
            let mut frames = Vec::with_capacity(n as usize);
            for _ in 0..n {
                frames.push(read_blob(body, &mut pos, "segment length")?);
            }
            Message::Segments { from_seq, frames }
        }
        KIND_PARTIAL => {
            let epoch = rv(body, &mut pos)?;
            let blob = read_blob(body, &mut pos, "partial length")?;
            Message::Partial {
                epoch,
                partial: decode_partial(&blob).map_err(RepError::Partial)?,
            }
        }
        KIND_ERROR => {
            let code = rv(body, &mut pos)?;
            if code > u64::from(u8::MAX) {
                return Err(RepError::InvalidField("error code"));
            }
            let blob = read_blob(body, &mut pos, "detail length")?;
            let detail =
                String::from_utf8(blob).map_err(|_| RepError::InvalidField("detail utf8"))?;
            Message::Rejection {
                code: code as u8,
                detail,
            }
        }
        k => return Err(RepError::UnknownKind(k)),
    };
    if pos != body.len() {
        return Err(RepError::TrailingBytes);
    }
    Ok(msg)
}

/// The rejection frame a total server half answers with when a request
/// fails to decode.
pub fn rejection_for(e: &RepError) -> Message {
    let code = match e {
        RepError::FrameTooLarge(_) => ERR_TOO_LARGE,
        RepError::UnsupportedVersion(_) | RepError::UnknownKind(_) => ERR_UNSUPPORTED,
        _ => ERR_MALFORMED,
    };
    Message::Rejection {
        code,
        detail: e.to_string(),
    }
}

/// Decode a reply that must be an [`Message::Ack`]; anything else is a
/// replication fault on `shard`.
pub fn expect_ack(shard: usize, reply: &[u8]) -> Result<(u64, u64), ClusterError> {
    match decode_frame(reply)? {
        Message::Ack { seq, digest } => Ok((seq, digest)),
        Message::Rejection { code, detail } => Err(ClusterError::Replication {
            shard,
            detail: format!("rejected (code {code}): {detail}"),
        }),
        other => Err(ClusterError::Replication {
            shard,
            detail: format!("expected ack, got {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = encode_frame(&msg);
        assert_eq!(decode_frame(&frame), Ok(msg));
    }

    #[test]
    fn every_message_kind_roundtrips() {
        roundtrip(Message::ShipSegment {
            seq: 3,
            frame: vec![1, 2, 3, 250],
        });
        roundtrip(Message::ShipCheckpoint {
            seq: 9,
            checkpoint: Vec::new(),
        });
        roundtrip(Message::Catchup { from_seq: 0 });
        roundtrip(Message::Ack {
            seq: u64::MAX,
            digest: 0xdead_beef,
        });
        roundtrip(Message::Segments {
            from_seq: 2,
            frames: vec![vec![7; 5], Vec::new(), vec![0]],
        });
        roundtrip(Message::Rejection {
            code: ERR_APPLY,
            detail: "segment seq 4 does not follow applied seq 2".into(),
        });
    }

    #[test]
    fn query_and_partial_kinds_roundtrip() {
        use cellrel_store::{Dim, Metric};
        roundtrip(Message::Query(Query {
            filters: Vec::new(),
            group_by: vec![Dim::Isp, Dim::Rat],
            window_ms: 86_400_000,
            metric: Metric::Count,
            top_k: 5,
        }));
        roundtrip(Message::Partial {
            epoch: 17,
            partial: PartialResultSet {
                window_ms: 1,
                groups: Vec::new(),
                cells_scanned: 40,
                cells_matched: 0,
            },
        });
    }

    #[test]
    fn hostile_bytes_yield_typed_errors() {
        assert_eq!(decode_frame(&[]), Err(RepError::Truncated));
        let mut good = encode_frame(&Message::Catchup { from_seq: 7 });
        // Bit flip anywhere → BadCrc (or Truncated for short prefixes).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode_frame(&bad).is_err(), "flip at {i} must not decode");
        }
        // Truncations never panic.
        for n in 0..good.len() {
            assert!(decode_frame(&good[..n]).is_err());
        }
        // A length lie inside a CRC-valid frame is an InvalidField.
        let mut lie = Vec::new();
        lie.extend_from_slice(&MAGIC);
        lie.push(VERSION);
        lie.push(KIND_SEGMENT);
        write_varint(&mut lie, 1);
        write_varint(&mut lie, 1_000_000); // claims 1 MB, carries none
        let crc = crc32(&lie);
        lie.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&lie),
            Err(RepError::InvalidField("segment length"))
        );
        // Trailing garbage after a complete message is rejected.
        good.truncate(good.len() - 4);
        good.push(0);
        let crc = crc32(&good);
        good.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_frame(&good), Err(RepError::TrailingBytes));
    }

    #[test]
    fn oversized_frames_are_rejected_before_any_parse() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert_eq!(
            decode_frame(&huge),
            Err(RepError::FrameTooLarge((MAX_FRAME_LEN + 1) as u64))
        );
    }
}
