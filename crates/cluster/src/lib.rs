//! # cellrel-cluster
//!
//! The sharded, replicated serving tier: one nationwide ingest feed split
//! across N independent shard pipelines, each shard's sealed history
//! shipped to follower replicas over a framed replication protocol, and a
//! scatter-gather router that answers any [`Query`] byte-identically to a
//! single-node store.
//!
//! Three layers:
//!
//! * **Partitioned ingest** ([`partition`]) — a device-hash partitioner
//!   routes encoded upload batches to per-shard [`StreamPipeline`]s. Shard
//!   membership is a pure function of the device id, so any shard count
//!   yields the same global record set; per-shard stores register only the
//!   devices they own, so the union of shard views *is* the fleet.
//! * **Segment-shipping replication** ([`proto`], [`node`], [`replica`]) —
//!   each shard leader ships its sealed `SG` segments and periodic `SP`
//!   checkpoints to followers as `CR`-magic frames. Followers replay the
//!   segments into their own store (digest-verified on apply), serve reads
//!   from epoch-tagged snapshots, and can be promoted into a leader from
//!   their durable checkpoint + segment log when the leader dies. A
//!   restarted or freshly spawned follower catches up by replaying the
//!   leader's manifest suffix.
//! * **Scatter-gather federation** ([`router`]) — a [`ClusterRouter`] fans
//!   a typed query to every shard, collects *partial* (pre-finalize)
//!   aggregates, and merges them through the store's own `Merge` algebra
//!   before the shared finalize step re-applies ordering and top-k. The
//!   federated answer is byte-identical to evaluating the query on one
//!   store holding every record — the invariant `tests/cluster_differential.rs`
//!   enforces at 1, 2, and 4 shards, and [`failover::run_failover`]
//!   re-proves across leader-kill campaigns.
//!
//! Everything is std-only and deterministic. All frame decoding is total:
//! hostile bytes map onto a typed [`RepError`], never a panic.
//!
//! [`Query`]: cellrel_store::Query
//! [`StreamPipeline`]: cellrel_stream::StreamPipeline

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod failover;
pub mod node;
pub mod partition;
pub mod proto;
pub mod replica;
pub mod router;

pub use cluster::{Cluster, ClusterConfig};
pub use error::ClusterError;
pub use failover::{run_failover, FailoverConfig, FailoverReport, KillOutcome};
pub use node::ShardLeader;
pub use partition::{shard_directories, shard_of, shard_of_batch};
pub use proto::{decode_frame, encode_frame, Message, RepError};
pub use replica::Follower;
pub use router::{ClusterRouter, RoutedAnswer, ShardHandle};
