//! The one error type every fallible cluster path returns.

use crate::proto::RepError;
use cellrel_ingest::DecodeError;
use cellrel_stream::StreamError;

/// Why a cluster operation failed.
///
/// Wire-facing paths (frame decode, segment apply) are **total** — hostile
/// bytes surface as [`ClusterError::Wire`] or a replication rejection,
/// never a panic. [`ClusterError::Query`] carries the shard-side rejection
/// detail, which is exactly the single-node `QueryError` display string so
/// federated and local error behaviour agree.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A structural constraint was violated (shard count, directory views).
    Config(&'static str),
    /// An ingest batch could not be routed (its header failed to decode).
    Batch(DecodeError),
    /// A shard pipeline operation failed.
    Stream(StreamError),
    /// A replication or federation frame failed to decode.
    Wire(RepError),
    /// A shard rejected the query; the detail is the store's own
    /// `QueryError` display string.
    Query(String),
    /// A replica rejected or mangled a replication frame.
    Replication {
        /// Which shard's replica set raised the fault.
        shard: usize,
        /// Human-readable rejection detail.
        detail: String,
    },
    /// A leader promotion could not complete.
    Failover(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(why) => write!(f, "bad cluster config: {why}"),
            ClusterError::Batch(e) => write!(f, "unroutable batch: {e}"),
            ClusterError::Stream(e) => write!(f, "shard pipeline: {e}"),
            ClusterError::Wire(e) => write!(f, "replication frame: {e}"),
            ClusterError::Query(detail) => write!(f, "query rejected: {detail}"),
            ClusterError::Replication { shard, detail } => {
                write!(f, "replication fault on shard {shard}: {detail}")
            }
            ClusterError::Failover(detail) => write!(f, "failover: {detail}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<DecodeError> for ClusterError {
    fn from(e: DecodeError) -> Self {
        ClusterError::Batch(e)
    }
}

impl From<StreamError> for ClusterError {
    fn from(e: StreamError) -> Self {
        ClusterError::Stream(e)
    }
}

impl From<RepError> for ClusterError {
    fn from(e: RepError) -> Self {
        ClusterError::Wire(e)
    }
}
