//! A shard leader: one stream pipeline plus the replication log it ships.
//!
//! The leader owns the shard's [`StreamPipeline`] and its segment backend.
//! Every sealed segment becomes one [`Message::ShipSegment`] at the next
//! dense log position; checkpoints ([`Message::ShipCheckpoint`]) ride the
//! same log whenever a seal happens or the cadence fires, and always
//! *after* the segments their manifest references — so a follower that
//! applied the log prefix can always restore from the latest checkpoint it
//! holds. Reads are served from an epoch-tagged queryd snapshot, the epoch
//! being the replication position the snapshot covers.

use std::sync::Arc;

use crate::error::ClusterError;
use crate::proto::{self, Message};
use crate::router;
use cellrel_queryd::QuerydCore;
use cellrel_store::{DeviceDirectory, Store};
use cellrel_stream::{MemSegments, SegmentEntry, StreamConfig, StreamPipeline};

/// One shard's write path: pipeline, durable segments, replication log.
pub struct ShardLeader<'d> {
    shard: usize,
    pipeline: StreamPipeline<'d>,
    segs: MemSegments,
    /// Manifest entries shipped so far == the head of the replication log.
    shipped: usize,
    batches: u64,
    checkpoint_every: u64,
    core: Arc<QuerydCore>,
}

impl<'d> ShardLeader<'d> {
    /// A fresh leader for `shard` over the shard's directory view.
    pub fn new(
        cfg: &StreamConfig,
        dir: &'d DeviceDirectory,
        shard: usize,
        checkpoint_every: u64,
    ) -> Result<Self, ClusterError> {
        let pipeline = StreamPipeline::new(cfg, dir)?;
        let leader = ShardLeader {
            shard,
            pipeline,
            segs: MemSegments::new(),
            shipped: 0,
            batches: 0,
            checkpoint_every,
            core: QuerydCore::new(Store::new(&cfg.store)),
        };
        leader.publish();
        Ok(leader)
    }

    /// Rebuild a leader from a promoted follower's durable state: a
    /// restored pipeline plus the segment backend it references. The
    /// replication log head resumes at the restored manifest length, so
    /// segments re-sealed during replay ship at fresh positions.
    pub fn from_parts(
        pipeline: StreamPipeline<'d>,
        segs: MemSegments,
        shard: usize,
        checkpoint_every: u64,
    ) -> Self {
        let shipped = pipeline.manifest().len();
        let core = QuerydCore::new(Store::new(&pipeline.config().store));
        let leader = ShardLeader {
            shard,
            pipeline,
            segs,
            shipped,
            batches: 0,
            checkpoint_every,
            core,
        };
        leader.publish();
        leader
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The serving core (for routers and read clients).
    pub fn core(&self) -> Arc<QuerydCore> {
        Arc::clone(&self.core)
    }

    /// The underlying pipeline (cursor, manifest, counters, tables).
    pub fn pipeline(&self) -> &StreamPipeline<'d> {
        &self.pipeline
    }

    /// Replication log head: frames shipped so far.
    pub fn shipped(&self) -> u64 {
        self.shipped as u64
    }

    /// The merged store this leader would serve right now.
    pub fn serving_store(&self) -> Store {
        let mut s = self.pipeline.store();
        s.seal_columnar();
        s
    }

    /// Digest of the shard's merged view (sealed + unsealed records).
    pub fn digest(&self) -> u64 {
        self.pipeline.digest()
    }

    /// Swap a fresh snapshot into the serving core, tagged with the
    /// replication position it covers.
    pub fn publish(&self) -> bool {
        self.core
            .publish_at(self.serving_store(), self.shipped as u64)
    }

    /// Ingest one encoded batch; returns the replication frames (segments,
    /// then at most one checkpoint) the caller must deliver to this
    /// shard's followers **in order**.
    pub fn offer(&mut self, batch: &[u8]) -> Result<Vec<Vec<u8>>, ClusterError> {
        let sealed = self.pipeline.offer(batch, &mut self.segs)?;
        self.batches += 1;
        let cadence = self.checkpoint_every > 0 && self.batches % self.checkpoint_every == 0;
        self.ship(!sealed.is_empty() || cadence)
    }

    /// End of stream: seal everything pending and ship it, closing with a
    /// final checkpoint.
    pub fn flush(&mut self) -> Result<Vec<Vec<u8>>, ClusterError> {
        self.pipeline.flush(&mut self.segs)?;
        self.ship(true)
    }

    /// Ship every manifest entry past the log head; optionally close the
    /// batch of frames with a checkpoint so followers can always restore.
    fn ship(&mut self, checkpoint: bool) -> Result<Vec<Vec<u8>>, ClusterError> {
        let mut frames = Vec::new();
        let pending: Vec<SegmentEntry> = self.pipeline.manifest_suffix(self.shipped).to_vec();
        for entry in pending {
            let bytes = self.pipeline.export_segment(&entry, &self.segs)?;
            self.shipped += 1;
            frames.push(proto::encode_frame(&Message::ShipSegment {
                seq: self.shipped as u64,
                frame: bytes,
            }));
        }
        if checkpoint {
            frames.push(proto::encode_frame(&Message::ShipCheckpoint {
                seq: self.shipped as u64,
                checkpoint: self.pipeline.checkpoint(),
            }));
        }
        Ok(frames)
    }

    /// Serve one request frame. Total: hostile bytes and unexpected kinds
    /// come back as rejection frames, never a panic. Leaders answer
    /// queries and catch-up requests.
    pub fn handle(&self, frame: &[u8]) -> Vec<u8> {
        let msg = match proto::decode_frame(frame) {
            Ok(m) => m,
            Err(e) => return proto::encode_frame(&proto::rejection_for(&e)),
        };
        match msg {
            Message::Query(q) => router::answer_query(&self.core, &q),
            Message::Catchup { from_seq } => match self.catchup(from_seq) {
                Ok(reply) => proto::encode_frame(&reply),
                Err(e) => proto::encode_frame(&Message::Rejection {
                    code: proto::ERR_APPLY,
                    detail: e.to_string(),
                }),
            },
            _ => proto::encode_frame(&Message::Rejection {
                code: proto::ERR_UNEXPECTED,
                detail: "shard leaders serve queries and catch-up requests only".into(),
            }),
        }
    }

    /// The manifest suffix after `from_seq`, as shippable segment frames.
    fn catchup(&self, from_seq: u64) -> Result<Message, ClusterError> {
        let from = usize::try_from(from_seq).unwrap_or(usize::MAX);
        let mut frames = Vec::new();
        for entry in self.pipeline.manifest_suffix(from) {
            frames.push(self.pipeline.export_segment(entry, &self.segs)?);
        }
        Ok(Message::Segments { from_seq, frames })
    }
}
