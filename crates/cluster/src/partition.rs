//! Device-hash partitioning: which shard owns which device.
//!
//! Shard membership is a pure function of the device id, independent of
//! arrival order, batch boundaries, and shard-local state. That purity is
//! what makes the federation identity hold: the per-shard record sets form
//! an exact partition of the global record set, and the per-shard
//! directory views ([`shard_directories`]) partition the fleet the same
//! way, so merged shard stores are indistinguishable from one store that
//! saw everything.

use crate::error::ClusterError;
use cellrel_ingest::peek_device;
use cellrel_store::DeviceDirectory;
use cellrel_types::DeviceId;

/// SplitMix64 finalizer over the device id. The simulator keeps its own
/// copy private; the constants are restated here because the shard map is
/// part of this crate's wire-level contract — it must never drift with
/// simulator internals, or replicated history would re-route on upgrade.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shard that owns `device` in a cluster of `shards` shards.
///
/// # Panics
///
/// Panics if `shards` is zero — a cluster with no shards is a
/// construction-time configuration error, not a runtime condition.
pub fn shard_of(device: DeviceId, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (mix64(u64::from(device.0)) % shards as u64) as usize
}

/// Route an encoded upload batch by peeking its device header. The batch
/// body is not validated here; the owning shard's collector performs full
/// decode (and rejects hostile payloads) downstream.
pub fn shard_of_batch(batch: &[u8], shards: usize) -> Result<usize, ClusterError> {
    Ok(shard_of(peek_device(batch)?, shards))
}

/// Per-shard views of the fleet directory: view `s` yields exactly the
/// devices [`shard_of`] assigns to shard `s`, while still answering
/// dimension lookups for the whole fleet. Registering view `s` into shard
/// `s`'s store and merging all shards reproduces a full-fleet
/// registration exactly.
pub fn shard_directories(dir: &DeviceDirectory, shards: usize) -> Vec<DeviceDirectory> {
    (0..shards)
        .map(|s| dir.filtered(|d| shard_of(d, shards) == s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shard map is a frozen contract: these values can only change
    /// with a protocol version bump, never silently.
    #[test]
    fn shard_map_is_pinned() {
        let got: Vec<usize> = (0..8).map(|i| shard_of(DeviceId(i), 4)).collect();
        assert_eq!(got, vec![3, 1, 2, 1, 2, 2, 0, 3]);
        for i in 0..64 {
            assert_eq!(shard_of(DeviceId(i), 1), 0);
        }
    }

    #[test]
    fn shard_views_partition_a_real_fleet() {
        use cellrel_workload::{run_macro_study, PopulationConfig, StudyConfig};

        let data = run_macro_study(&StudyConfig {
            seed: 7,
            population: PopulationConfig {
                devices: 60,
                ..Default::default()
            },
            days: 1,
            bs_count: 40,
        });
        let dir = DeviceDirectory::from_population(&data.population);
        for shards in [1usize, 2, 4, 5] {
            let views = shard_directories(&dir, shards);
            let mut seen = std::collections::BTreeSet::new();
            for (s, view) in views.iter().enumerate() {
                for (device, _) in view.iter() {
                    assert_eq!(shard_of(device, shards), s);
                    assert!(seen.insert(device), "device owned by two shards");
                }
            }
            assert_eq!(
                seen.len(),
                dir.iter().count(),
                "shard views must cover the fleet"
            );
        }
    }
}
