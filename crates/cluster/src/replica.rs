//! A follower replica: replays the leader's log, serves reads, stands by.
//!
//! Durable state is exactly what survives a follower restart: the segment
//! bytes, the manifest they decode to, and the latest checkpoint blob.
//! The merged store, applied position, and serving snapshot are volatile
//! and rebuilt by [`Follower::recover`]. Every applied segment is
//! digest-verified by the segment codec before it merges, so a corrupt or
//! torn ship is rejected at the wire, not discovered at failover. The
//! checkpoint is likewise restore-validated on arrival — a blob that
//! cannot actually rebuild a pipeline is refused while the leader is still
//! alive to resend it.

use std::sync::Arc;

use crate::error::ClusterError;
use crate::proto::{self, Message};
use crate::router;
use cellrel_ingest::codec::crc32;
use cellrel_queryd::QuerydCore;
use cellrel_sim::Merge;
use cellrel_store::{DeviceDirectory, Store};
use cellrel_stream::{
    decode_segment, MemSegments, SegmentEntry, SegmentStore, StreamConfig, StreamError,
    StreamPipeline,
};

/// One shard's read replica and failover target.
pub struct Follower {
    shard: usize,
    dir: DeviceDirectory,
    cfg: StreamConfig,
    // -- durable --
    segs: MemSegments,
    manifest: Vec<SegmentEntry>,
    checkpoint: Option<(u64, Vec<u8>)>,
    // -- volatile --
    applied: u64,
    base: Store,
    core: Arc<QuerydCore>,
}

impl Follower {
    /// An empty replica for `shard` over the shard's directory view.
    pub fn new(cfg: &StreamConfig, dir: &DeviceDirectory, shard: usize) -> Self {
        let f = Follower {
            shard,
            dir: dir.clone(),
            cfg: *cfg,
            segs: MemSegments::new(),
            manifest: Vec::new(),
            checkpoint: None,
            applied: 0,
            base: Store::new(&cfg.store),
            core: QuerydCore::new(Store::new(&cfg.store)),
        };
        f.publish();
        f
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The serving core (for read scale-out routers).
    pub fn core(&self) -> Arc<QuerydCore> {
        Arc::clone(&self.core)
    }

    /// Highest replication position applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Replication position of the newest restore-validated checkpoint.
    pub fn checkpoint_seq(&self) -> Option<u64> {
        self.checkpoint.as_ref().map(|(seq, _)| *seq)
    }

    /// The replayed manifest.
    pub fn manifest(&self) -> &[SegmentEntry] {
        &self.manifest
    }

    /// The shard store this follower can serve: every applied segment
    /// merged, the shard's devices registered, columnar-sealed — the same
    /// shape the leader's sealed history has after a flush.
    pub fn sealed_store(&self) -> Store {
        let mut s = self.base.clone();
        s.register_population(&self.dir);
        s.seal_columnar();
        s
    }

    /// Swap a fresh snapshot into the serving core, tagged with the
    /// applied replication position.
    pub fn publish(&self) -> bool {
        self.core.publish_at(self.sealed_store(), self.applied)
    }

    /// Apply one replication or query frame. Total: every outcome is a
    /// reply frame (ack, partial, or rejection), never a panic.
    pub fn apply(&mut self, frame: &[u8]) -> Vec<u8> {
        let msg = match proto::decode_frame(frame) {
            Ok(m) => m,
            Err(e) => return proto::encode_frame(&proto::rejection_for(&e)),
        };
        let reply = match msg {
            Message::ShipSegment { seq, frame } => self.apply_segment(seq, &frame),
            Message::ShipCheckpoint { seq, checkpoint } => self.apply_checkpoint(seq, checkpoint),
            Message::Query(q) => return router::answer_query(&self.core, &q),
            _ => Message::Rejection {
                code: proto::ERR_UNEXPECTED,
                detail: "followers accept segments, checkpoints, and queries only".into(),
            },
        };
        proto::encode_frame(&reply)
    }

    /// Verify and merge one shipped segment at the next dense position.
    fn apply_segment(&mut self, seq: u64, bytes: &[u8]) -> Message {
        if seq != self.applied + 1 {
            return Message::Rejection {
                code: proto::ERR_APPLY,
                detail: format!(
                    "segment seq {seq} does not follow applied seq {}",
                    self.applied
                ),
            };
        }
        // decode_segment cross-checks the embedded digest and record
        // count, so `entry` here is verified, not merely claimed.
        let (entry, delta) = match decode_segment(bytes) {
            Ok(x) => x,
            Err(e) => {
                return Message::Rejection {
                    code: proto::ERR_APPLY,
                    detail: format!("segment rejected: {e}"),
                }
            }
        };
        if let Err(e) = self.segs.put(&entry.name(), bytes) {
            return Message::Rejection {
                code: proto::ERR_APPLY,
                detail: format!("segment store: {e}"),
            };
        }
        self.base.merge(delta);
        self.manifest.push(entry);
        self.applied = seq;
        Message::Ack {
            seq,
            digest: entry.digest,
        }
    }

    /// Validate and retain a checkpoint covering the applied prefix.
    fn apply_checkpoint(&mut self, seq: u64, bytes: Vec<u8>) -> Message {
        if seq > self.applied {
            return Message::Rejection {
                code: proto::ERR_APPLY,
                detail: format!(
                    "checkpoint seq {seq} is ahead of applied seq {}",
                    self.applied
                ),
            };
        }
        // Restore-validate now, against the segments we actually hold:
        // a checkpoint that cannot rebuild a pipeline is useless at
        // promotion time and must be refused while it is still cheap to.
        if let Err(e) = StreamPipeline::restore(&bytes, &self.dir, &self.segs) {
            return Message::Rejection {
                code: proto::ERR_APPLY,
                detail: format!("checkpoint rejected: {e}"),
            };
        }
        let digest = u64::from(crc32(&bytes));
        self.checkpoint = Some((seq, bytes));
        Message::Ack { seq, digest }
    }

    /// The catch-up request this follower would send its leader.
    pub fn catchup_request(&self) -> Vec<u8> {
        proto::encode_frame(&Message::Catchup {
            from_seq: self.applied,
        })
    }

    /// Apply a leader's catch-up reply: the manifest suffix after our
    /// applied position, replayed through the normal verified-apply path.
    pub fn ingest_catchup(&mut self, reply: &[u8]) -> Result<u64, ClusterError> {
        match proto::decode_frame(reply)? {
            Message::Segments { from_seq, frames } => {
                if from_seq != self.applied {
                    return Err(ClusterError::Replication {
                        shard: self.shard,
                        detail: format!(
                            "catch-up reply starts at {from_seq}, expected {}",
                            self.applied
                        ),
                    });
                }
                for f in frames {
                    let seq = self.applied + 1;
                    match self.apply_segment(seq, &f) {
                        Message::Ack { .. } => {}
                        Message::Rejection { code, detail } => {
                            return Err(ClusterError::Replication {
                                shard: self.shard,
                                detail: format!("catch-up apply (code {code}): {detail}"),
                            })
                        }
                        other => {
                            return Err(ClusterError::Replication {
                                shard: self.shard,
                                detail: format!("catch-up apply: unexpected {other:?}"),
                            })
                        }
                    }
                }
                self.publish();
                Ok(self.applied)
            }
            Message::Rejection { code, detail } => Err(ClusterError::Replication {
                shard: self.shard,
                detail: format!("catch-up refused (code {code}): {detail}"),
            }),
            other => Err(ClusterError::Replication {
                shard: self.shard,
                detail: format!("expected segments, got {other:?}"),
            }),
        }
    }

    /// Simulate a restart: drop all volatile state and rebuild it from the
    /// durable segment log, re-verifying every segment against its
    /// manifest entry on the way back in.
    pub fn recover(&mut self) -> Result<(), ClusterError> {
        let mut base = Store::new(&self.cfg.store);
        for entry in &self.manifest {
            let bytes = self.segs.get(&entry.name())?;
            let (decoded, delta) = decode_segment(&bytes)?;
            if decoded != *entry {
                return Err(ClusterError::Stream(StreamError::SegmentMismatch(
                    entry.name(),
                )));
            }
            base.merge(delta);
        }
        self.base = base;
        self.applied = self.manifest.len() as u64;
        self.core = QuerydCore::new(Store::new(&self.cfg.store));
        self.publish();
        Ok(())
    }

    /// Promotion: rebuild a leader-grade pipeline from the durable
    /// checkpoint (or from scratch if none arrived yet) plus the segment
    /// log. Returns the pipeline and the segment backend the new leader
    /// takes over; the caller replays the shard's batches from
    /// `pipeline.cursor()`.
    pub fn promote<'d>(
        &self,
        dir: &'d DeviceDirectory,
    ) -> Result<(StreamPipeline<'d>, MemSegments), ClusterError> {
        let segs = self.segs.clone();
        let pipeline = match &self.checkpoint {
            Some((_, bytes)) => StreamPipeline::restore(bytes, dir, &segs)?,
            None => StreamPipeline::new(&self.cfg, dir)?,
        };
        Ok((pipeline, segs))
    }
}
