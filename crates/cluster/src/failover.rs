//! Leader-kill failover campaign: chaos for the replicated tier.
//!
//! The claim under test: killing any shard leader at any batch boundary
//! and promoting its follower is **answer-transparent** — after the
//! promoted leader replays the shard's batches from its restored cursor
//! and the run completes, the merged store digest and the federated
//! Tables 1/2 are byte-identical to an uninterrupted cluster's, and the
//! backfilled replica (which caught up over the wire from the promoted
//! leader) converges to the leader's sealed history. Kill points and
//! victim shards are sampled from a seeded RNG, so a reported failure
//! replays exactly.

use crate::cluster::{Cluster, ClusterConfig};
use crate::error::ClusterError;
use crate::partition::shard_of_batch;
use cellrel_sim::{Digest64, SimRng};
use cellrel_store::DeviceDirectory;
use cellrel_stream::StreamConfig;

/// Table 2's top-k, fixed across the campaign so renders are comparable.
const TABLE2_K: usize = 8;

/// Campaign shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Leader kills to perform (each on a fresh cluster run).
    pub kills: usize,
    /// Seed for kill-point and victim-shard sampling.
    pub seed: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            kills: 8,
            seed: 2021,
        }
    }
}

/// One kill, one verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillOutcome {
    /// Batch index the kill landed after.
    pub kill_at: u64,
    /// The shard whose leader was killed.
    pub shard: usize,
    /// Shard-local cursor the promoted pipeline restarted from.
    pub restored_cursor: u64,
    /// Whether the promoted pipeline came back holding unsealed windows.
    pub mid_window: bool,
    /// Did the interrupted run converge to the baseline byte-for-byte?
    pub ok: bool,
    /// First divergence found, empty when `ok`.
    pub detail: String,
}

/// The whole campaign, plus a content digest CI can pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverReport {
    /// Per-kill outcomes, in execution order.
    pub outcomes: Vec<KillOutcome>,
    /// The uninterrupted cluster's merged store digest.
    pub baseline_digest: u64,
    /// Kills that landed while the victim held unsealed windows.
    pub mid_window_kills: u64,
    /// Outcomes with `ok == false`.
    pub failures: u64,
    /// FNV-1a digest over the outcomes — one number for CI to compare.
    pub digest: u64,
}

/// What an uninterrupted run converges to.
struct Baseline {
    digest: u64,
    t1: String,
    t2: String,
}

fn run_to_end(
    scfg: &StreamConfig,
    ccfg: &ClusterConfig,
    dirs: &[DeviceDirectory],
    batches: &[Vec<u8>],
) -> Result<Baseline, ClusterError> {
    let mut cluster = Cluster::new(scfg, ccfg, dirs)?;
    for b in batches {
        cluster.offer(b)?;
    }
    cluster.flush()?;
    cluster.publish();
    let (t1, t2) = cluster.router().tables(TABLE2_K)?;
    Ok(Baseline {
        digest: cluster.digest(),
        t1: t1.render(),
        t2: t2.render(),
    })
}

/// Run the campaign. Requires at least two batches (a kill needs a
/// boundary strictly inside the stream) and a replicated cluster config.
pub fn run_failover(
    scfg: &StreamConfig,
    ccfg: &ClusterConfig,
    fcfg: &FailoverConfig,
    dirs: &[DeviceDirectory],
    batches: &[Vec<u8>],
) -> Result<FailoverReport, ClusterError> {
    if batches.len() < 2 {
        return Err(ClusterError::Config(
            "failover campaign needs at least two batches",
        ));
    }
    if ccfg.replicas == 0 {
        return Err(ClusterError::Config(
            "failover campaign needs at least one replica per shard",
        ));
    }
    let baseline = run_to_end(scfg, ccfg, dirs, batches)?;
    // Shard routing is a pure function of the batch bytes; precompute it
    // once so replay subsequences are cheap to carve out.
    let routes = batches
        .iter()
        .map(|b| shard_of_batch(b, ccfg.shards))
        .collect::<Result<Vec<_>, _>>()?;
    let mut rng = SimRng::new(fcfg.seed);
    let mut outcomes = Vec::with_capacity(fcfg.kills);
    for _ in 0..fcfg.kills {
        let kill_at = rng.range_u64(1, batches.len() as u64);
        let shard = rng.range_u64(0, ccfg.shards as u64) as usize;
        outcomes.push(one_kill(
            scfg, ccfg, dirs, batches, &routes, &baseline, kill_at, shard,
        )?);
    }
    let failures = outcomes.iter().filter(|o| !o.ok).count() as u64;
    let mid_window_kills = outcomes.iter().filter(|o| o.mid_window).count() as u64;
    let mut d = Digest64::new();
    d.write_u64(baseline.digest);
    for o in &outcomes {
        d.write_u64(o.kill_at);
        d.write_u64(o.shard as u64);
        d.write_u64(o.restored_cursor);
        d.write_u64(u64::from(o.mid_window));
        d.write_u64(u64::from(o.ok));
    }
    Ok(FailoverReport {
        outcomes,
        baseline_digest: baseline.digest,
        mid_window_kills,
        failures,
        digest: d.finish(),
    })
}

#[allow(clippy::too_many_arguments)]
fn one_kill(
    scfg: &StreamConfig,
    ccfg: &ClusterConfig,
    dirs: &[DeviceDirectory],
    batches: &[Vec<u8>],
    routes: &[usize],
    baseline: &Baseline,
    kill_at: u64,
    shard: usize,
) -> Result<KillOutcome, ClusterError> {
    let kill = kill_at as usize;
    let mut cluster = Cluster::new(scfg, ccfg, dirs)?;
    for b in &batches[..kill] {
        cluster.offer(b)?;
    }
    // Kill: the leader (and all its volatile state) is dropped on the
    // floor; the shard comes back from its follower's durable state.
    let restored_cursor = cluster.promote(shard)?;
    let mid_window = cluster.leader(shard).pipeline().pending_windows() > 0;
    // Replay the shard's batch subsequence lost with the leader, then
    // finish the stream as if nothing happened.
    let shard_batches: Vec<usize> = (0..kill).filter(|&i| routes[i] == shard).collect();
    for &i in shard_batches.iter().skip(restored_cursor as usize) {
        cluster.offer(&batches[i])?;
    }
    for b in &batches[kill..] {
        cluster.offer(b)?;
    }
    cluster.flush()?;
    cluster.publish();

    let mut ok = true;
    let mut detail = String::new();
    let digest = cluster.digest();
    if digest != baseline.digest {
        ok = false;
        detail = format!(
            "merged digest {digest:016x} != baseline {:016x}",
            baseline.digest
        );
    } else {
        let (t1, t2) = cluster.router().tables(TABLE2_K)?;
        let follower_digest = cluster.followers_of(shard)[0].sealed_store().digest();
        let leader_digest = cluster.leader(shard).digest();
        if t1.render() != baseline.t1 {
            ok = false;
            detail = "federated table 1 diverged from baseline".into();
        } else if t2.render() != baseline.t2 {
            ok = false;
            detail = "federated table 2 diverged from baseline".into();
        } else if follower_digest != leader_digest {
            // The backfilled replica caught up over the wire; after the
            // final flush it must hold the promoted leader's exact view.
            ok = false;
            detail = format!(
                "backfilled replica {follower_digest:016x} != promoted leader {leader_digest:016x}"
            );
        }
    }
    Ok(KillOutcome {
        kill_at,
        shard,
        restored_cursor,
        mid_window,
        ok,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::shard_directories;
    use cellrel_store::DeviceDirectory;
    use cellrel_stream::batches_from_events;
    use cellrel_workload::{run_macro_study, PopulationConfig, StudyConfig};

    #[test]
    fn a_small_campaign_converges_and_is_reproducible() {
        let data = run_macro_study(&StudyConfig {
            seed: 2021,
            population: PopulationConfig {
                devices: 150,
                ..Default::default()
            },
            days: 3,
            bs_count: 60,
        });
        let dir = DeviceDirectory::from_population(&data.population);
        let batches = batches_from_events(&data.events, 32);
        let scfg = StreamConfig {
            window_ms: 86_400_000,
            lateness_ms: 2 * 3_600_000,
            hot_windows: 2,
            late_flush: 256,
            ..Default::default()
        };
        let ccfg = ClusterConfig {
            shards: 2,
            replicas: 1,
            checkpoint_every: 3,
        };
        let fcfg = FailoverConfig {
            kills: 3,
            seed: 2021,
        };
        let dirs = shard_directories(&dir, ccfg.shards);
        let report = run_failover(&scfg, &ccfg, &fcfg, &dirs, &batches).expect("campaign");
        assert_eq!(report.failures, 0, "outcomes: {:#?}", report.outcomes);
        assert_eq!(report.outcomes.len(), 3);
        let again = run_failover(&scfg, &ccfg, &fcfg, &dirs, &batches).expect("campaign");
        assert_eq!(report, again, "campaign must be deterministic");
    }

    #[test]
    fn unreplicated_clusters_cannot_run_the_campaign() {
        let err = run_failover(
            &StreamConfig::default(),
            &ClusterConfig {
                replicas: 0,
                ..ClusterConfig::default()
            },
            &FailoverConfig::default(),
            &[],
            &[Vec::new(), Vec::new()],
        );
        assert!(matches!(err, Err(ClusterError::Config(_))));
    }
}
