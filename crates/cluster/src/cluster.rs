//! The assembled tier: shard leaders, replica sets, routers.
//!
//! [`Cluster`] wires the three layers together for in-process use (tests,
//! benches, `repro --cluster`): batches route by device hash to their
//! shard leader, every replication frame a leader emits is delivered to
//! the shard's followers **in order** with acks checked, and routers fan
//! queries across either the leaders or the follower tier. Leader failure
//! is a first-class operation: [`Cluster::promote`] rebuilds the shard
//! from its first follower's durable state and spins up a replacement
//! replica that catches up over the wire.

use crate::error::ClusterError;
use crate::node::ShardLeader;
use crate::partition::shard_of_batch;
use crate::proto;
use crate::replica::Follower;
use crate::router::{ClusterRouter, ShardHandle};
use cellrel_sim::Merge;
use cellrel_store::{DeviceDirectory, Store};
use cellrel_stream::StreamConfig;

/// Cluster shape: how many shards, how many replicas behind each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Independent shard pipelines the fleet is hash-partitioned over.
    pub shards: usize,
    /// Follower replicas per shard (0 = no replication, no failover).
    pub replicas: usize,
    /// Ship a checkpoint every this many batches even without a seal
    /// (0 = only on seals and flush). Bounds replay work at promotion.
    pub checkpoint_every: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            replicas: 1,
            checkpoint_every: 4,
        }
    }
}

/// An in-process sharded, replicated serving tier.
pub struct Cluster<'d> {
    stream_cfg: StreamConfig,
    cluster_cfg: ClusterConfig,
    dirs: &'d [DeviceDirectory],
    leaders: Vec<ShardLeader<'d>>,
    followers: Vec<Vec<Follower>>,
}

impl<'d> Cluster<'d> {
    /// Build a cluster over per-shard directory views (one per shard, from
    /// [`crate::partition::shard_directories`] on the fleet directory).
    pub fn new(
        stream_cfg: &StreamConfig,
        cluster_cfg: &ClusterConfig,
        dirs: &'d [DeviceDirectory],
    ) -> Result<Self, ClusterError> {
        if cluster_cfg.shards == 0 {
            return Err(ClusterError::Config("cluster needs at least one shard"));
        }
        if dirs.len() != cluster_cfg.shards {
            return Err(ClusterError::Config(
                "one shard directory view per shard required",
            ));
        }
        let leaders = dirs
            .iter()
            .enumerate()
            .map(|(s, d)| ShardLeader::new(stream_cfg, d, s, cluster_cfg.checkpoint_every))
            .collect::<Result<Vec<_>, _>>()?;
        let followers = dirs
            .iter()
            .enumerate()
            .map(|(s, d)| {
                (0..cluster_cfg.replicas)
                    .map(|_| Follower::new(stream_cfg, d, s))
                    .collect()
            })
            .collect();
        Ok(Cluster {
            stream_cfg: *stream_cfg,
            cluster_cfg: *cluster_cfg,
            dirs,
            leaders,
            followers,
        })
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.leaders.len()
    }

    /// The leader of `shard`.
    pub fn leader(&self, shard: usize) -> &ShardLeader<'d> {
        &self.leaders[shard]
    }

    /// The follower set of `shard`.
    pub fn followers_of(&self, shard: usize) -> &[Follower] {
        &self.followers[shard]
    }

    /// Mutable follower set of `shard` (restart/recovery tests).
    pub fn followers_of_mut(&mut self, shard: usize) -> &mut Vec<Follower> {
        &mut self.followers[shard]
    }

    /// Route one encoded batch to its shard, replicate the resulting
    /// frames, and return the shard it landed on.
    pub fn offer(&mut self, batch: &[u8]) -> Result<usize, ClusterError> {
        let shard = shard_of_batch(batch, self.leaders.len())?;
        let frames = self.leaders[shard].offer(batch)?;
        self.replicate(shard, &frames)?;
        Ok(shard)
    }

    /// Deliver replication frames to every follower of `shard`, in order,
    /// checking each ack.
    fn replicate(&mut self, shard: usize, frames: &[Vec<u8>]) -> Result<(), ClusterError> {
        for frame in frames {
            for follower in &mut self.followers[shard] {
                let reply = follower.apply(frame);
                proto::expect_ack(shard, &reply)?;
            }
        }
        Ok(())
    }

    /// End of stream: flush every shard and replicate the tail.
    pub fn flush(&mut self) -> Result<(), ClusterError> {
        for shard in 0..self.leaders.len() {
            let frames = self.leaders[shard].flush()?;
            self.replicate(shard, &frames)?;
        }
        Ok(())
    }

    /// Publish fresh serving snapshots on every leader and follower.
    pub fn publish(&self) {
        for l in &self.leaders {
            l.publish();
        }
        for fs in &self.followers {
            for f in fs {
                f.publish();
            }
        }
    }

    /// A scatter-gather router over the shard leaders.
    pub fn router(&self) -> ClusterRouter {
        ClusterRouter::new(
            self.leaders
                .iter()
                .map(|l| ShardHandle::new(l.core()))
                .collect(),
        )
    }

    /// A router over the first follower of every shard — read scale-out
    /// with the leaders untouched. Requires every shard to have a replica.
    pub fn follower_router(&self) -> Result<ClusterRouter, ClusterError> {
        let mut handles = Vec::with_capacity(self.followers.len());
        for fs in &self.followers {
            let f = fs
                .first()
                .ok_or(ClusterError::Config("a shard has no follower to read from"))?;
            handles.push(ShardHandle::new(f.core()));
        }
        Ok(ClusterRouter::new(handles))
    }

    /// The merged global store: every shard's full view folded together.
    /// Byte-identical (digest included) to a single-node store that
    /// ingested the whole fleet, because shard record sets and registered
    /// populations partition the global ones exactly.
    pub fn store(&self) -> Store {
        let mut iter = self.leaders.iter().map(|l| l.pipeline().store());
        let mut merged = iter.next().expect("cluster has at least one shard");
        for s in iter {
            merged.merge(s);
        }
        merged
    }

    /// Digest of the merged global store.
    pub fn digest(&self) -> u64 {
        self.store().digest()
    }

    /// Kill the leader of `shard` and promote its first follower: the old
    /// leader (volatile state included) is dropped, a pipeline is restored
    /// from the follower's durable checkpoint + segment log, and a fresh
    /// replacement follower catches up from the promoted leader over the
    /// wire. Returns the restored pipeline cursor — the caller must replay
    /// the shard's batches from that position.
    pub fn promote(&mut self, shard: usize) -> Result<u64, ClusterError> {
        if shard >= self.leaders.len() {
            return Err(ClusterError::Config("no such shard"));
        }
        if self.followers[shard].is_empty() {
            return Err(ClusterError::Failover(format!(
                "shard {shard} has no follower to promote"
            )));
        }
        let promoted = self.followers[shard].remove(0);
        let (pipeline, segs) = promoted.promote(&self.dirs[shard])?;
        let cursor = pipeline.cursor();
        self.leaders[shard] =
            ShardLeader::from_parts(pipeline, segs, shard, self.cluster_cfg.checkpoint_every);
        // Backfill the replica slot: a fresh follower, caught up from the
        // promoted leader's durable log through the catch-up protocol.
        let mut fresh = Follower::new(&self.stream_cfg, &self.dirs[shard], shard);
        let reply = self.leaders[shard].handle(&fresh.catchup_request());
        fresh.ingest_catchup(&reply)?;
        self.followers[shard].push(fresh);
        Ok(cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::shard_directories;
    use cellrel_store::{workload, DeviceDirectory};
    use cellrel_stream::{batches_from_events, MemSegments, StreamPipeline};
    use cellrel_workload::{run_macro_study, PopulationConfig, StudyConfig};

    fn fixture() -> (DeviceDirectory, Vec<Vec<u8>>, StreamConfig) {
        let data = run_macro_study(&StudyConfig {
            seed: 2021,
            population: PopulationConfig {
                devices: 200,
                ..Default::default()
            },
            days: 3,
            bs_count: 80,
        });
        let dir = DeviceDirectory::from_population(&data.population);
        let batches = batches_from_events(&data.events, 32);
        let cfg = StreamConfig {
            window_ms: 86_400_000,
            lateness_ms: 2 * 3_600_000,
            hot_windows: 2,
            late_flush: 256,
            ..Default::default()
        };
        (dir, batches, cfg)
    }

    /// Core federation identity, small scale: a 3-shard cluster's merged
    /// store and routed answers equal a single pipeline's, byte for byte.
    #[test]
    fn cluster_is_transparent_to_a_single_pipeline() {
        let (dir, batches, cfg) = fixture();
        let mut single = StreamPipeline::new(&cfg, &dir).expect("single");
        let mut segs = MemSegments::new();
        for b in &batches {
            single.offer(b, &mut segs).expect("offer");
        }
        single.flush(&mut segs).expect("flush");
        let mut reference = single.store();
        reference.seal_columnar();

        let dirs = shard_directories(&dir, 3);
        let ccfg = ClusterConfig {
            shards: 3,
            replicas: 1,
            checkpoint_every: 4,
        };
        let mut cluster = Cluster::new(&cfg, &ccfg, &dirs).expect("cluster");
        for b in &batches {
            cluster.offer(b).expect("offer");
        }
        cluster.flush().expect("flush");
        cluster.publish();

        assert_eq!(cluster.digest(), single.digest(), "merged digest");

        let router = cluster.router();
        assert_eq!(router.fan_out(), 3);
        let follower_router = cluster.follower_router().expect("replicas exist");
        for (name, q) in workload::canonical(7 * 86_400_000) {
            let want = reference.query(&q).expect("reference");
            let got = router.query(&q).expect("routed");
            assert_eq!(got.result, want, "leader-routed {name}");
            let via_followers = follower_router.query(&q).expect("follower-routed");
            assert_eq!(via_followers.result, want, "follower-routed {name}");
        }
    }

    /// A follower that loses its volatile state rebuilds an identical
    /// sealed view from its durable segment log.
    #[test]
    fn follower_recovery_rebuilds_the_same_sealed_view() {
        let (dir, batches, cfg) = fixture();
        let dirs = shard_directories(&dir, 2);
        let ccfg = ClusterConfig::default();
        let mut cluster = Cluster::new(&cfg, &ccfg, &dirs).expect("cluster");
        for b in &batches {
            cluster.offer(b).expect("offer");
        }
        cluster.flush().expect("flush");
        for shard in 0..cluster.shards() {
            let before = cluster.followers_of(shard)[0].sealed_store().digest();
            let leader = cluster.leader(shard).digest();
            assert_eq!(before, leader, "flushed follower tracks its leader");
            let f = &mut cluster.followers_of_mut(shard)[0];
            f.recover().expect("recover");
            assert_eq!(f.sealed_store().digest(), before, "recovery is lossless");
        }
    }

    /// Structural misuse is a typed error, not a panic.
    #[test]
    fn bad_shapes_are_rejected() {
        let (dir, _, cfg) = fixture();
        let dirs = shard_directories(&dir, 2);
        assert!(matches!(
            Cluster::new(
                &cfg,
                &ClusterConfig {
                    shards: 3,
                    ..ClusterConfig::default()
                },
                &dirs
            ),
            Err(ClusterError::Config(_))
        ));
        let mut cluster = Cluster::new(&cfg, &ClusterConfig::default(), &dirs).expect("cluster");
        assert!(matches!(cluster.promote(9), Err(ClusterError::Config(_))));
        assert!(matches!(cluster.offer(&[]), Err(ClusterError::Batch(_))));
    }
}
