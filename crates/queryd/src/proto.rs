//! The queryd wire protocol: framed, CRC-checked, varint-encoded
//! request/response messages carrying the store's typed [`Query`] and
//! [`ResultSet`].
//!
//! A message is one **frame**:
//!
//! ```text
//! magic "CQ" (2) | version (1) | kind (1) | payload (varint fields) | CRC-32 LE (4)
//! ```
//!
//! The CRC covers everything before it. The transport layer additionally
//! prefixes each frame with its `u32` little-endian length (see
//! [`crate::net`]); the frame itself is self-delimiting only through the
//! payload grammar, so decoding always ends with a trailing-bytes check.
//!
//! **Totality.** Decoding is total: truncated, bit-flipped, length-lying or
//! garbage input returns a typed [`ProtoError`] — never a panic, never a
//! read past the buffer, never an allocation larger than the input could
//! justify (counts are sanity-bounded against the remaining payload before
//! any `Vec` is sized, mirroring `cellrel-ingest`'s codec discipline).
//!
//! **Stability.** The numeric encodings of dimensions ([`Dim::index`]),
//! filters, metrics and error codes are frozen wire contract — the golden
//! frame snapshot (`tests/golden/queryd_frames_seed2021.txt`) fails loudly
//! on any accidental change. Version negotiation is a single byte: a server
//! answers a frame with an unexpected version byte with error code
//! [`ERR_VERSION`] and never attempts to parse its payload.

use cellrel_ingest::codec::{crc32, read_varint, unzigzag, write_varint, zigzag};
use cellrel_store::{Dim, Filter, Metric, Query, QueryError, Region, ResultRow, ResultSet};
use cellrel_types::{DataFailCause, FailureKind, FailureLayer, Isp, PhoneModelId, Rat};
use std::fmt;

/// Frame magic, `"CQ"`.
pub const MAGIC: [u8; 2] = *b"CQ";

/// Protocol version byte. Bump on any wire-incompatible change.
pub const VERSION: u8 = 1;

/// Hard ceiling on a single frame (16 MiB). The transport refuses to
/// allocate a body larger than this no matter what the length prefix
/// claims, and the server answers such prefixes with [`ERR_TOO_LARGE`].
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Smallest possible frame: magic + version + kind + CRC.
const MIN_FRAME_LEN: usize = 8;

/// Request kind: liveness probe, empty payload.
pub const KIND_PING: u8 = 0x01;
/// Request kind: evaluate a [`Query`] against the current snapshot.
pub const KIND_QUERY: u8 = 0x02;
/// Request kind: server/snapshot statistics, empty payload.
pub const KIND_STATS: u8 = 0x03;
/// Response kind: answer to [`KIND_PING`].
pub const KIND_PONG: u8 = 0x81;
/// Response kind: a [`ResultSet`] plus the snapshot epoch it was read from.
pub const KIND_ROWS: u8 = 0x82;
/// Response kind: answer to [`KIND_STATS`].
pub const KIND_STATS_REPLY: u8 = 0x83;
/// Response kind: a [`WireError`].
pub const KIND_ERROR: u8 = 0xEE;

/// Error code: the request frame failed to decode (truncation, bad magic,
/// bad CRC, garbage payload).
pub const ERR_MALFORMED: u8 = 1;
/// Error code: the request carried an unsupported protocol version.
pub const ERR_VERSION: u8 = 2;
/// Error code: the request kind byte is not a known request.
pub const ERR_UNKNOWN_KIND: u8 = 3;
/// Error code: the query decoded but the engine rejected it
/// ([`QueryError`]).
pub const ERR_BAD_QUERY: u8 = 4;
/// Error code: the claimed frame length exceeds [`MAX_FRAME_LEN`].
pub const ERR_TOO_LARGE: u8 = 5;

/// Why a frame failed to decode. Mirrors the ingest codec's `DecodeError`
/// taxonomy so the two wire formats fail the same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Fewer bytes than the grammar requires.
    Truncated,
    /// The first two bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 2],
    },
    /// The version byte is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte names no known message.
    UnknownKind(u8),
    /// The CRC-32 trailer does not match the frame contents.
    BadCrc {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC carried in the trailer.
        found: u32,
    },
    /// A varint ran past 10 bytes.
    VarintOverflow,
    /// A field decoded to an impossible value (named for diagnostics).
    InvalidField(&'static str),
    /// The payload decoded cleanly but bytes remain.
    TrailingBytes,
    /// A length prefix claimed more than [`MAX_FRAME_LEN`] bytes.
    FrameTooLarge(u64),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::BadMagic { found } => {
                write!(f, "bad magic {:02x}{:02x}", found[0], found[1])
            }
            ProtoError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (expected {VERSION})")
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown message kind 0x{k:02x}"),
            ProtoError::BadCrc { expected, found } => {
                write!(
                    f,
                    "crc mismatch: computed {expected:08x}, trailer {found:08x}"
                )
            }
            ProtoError::VarintOverflow => write!(f, "varint overflow"),
            ProtoError::InvalidField(name) => write!(f, "invalid field: {name}"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after payload"),
            ProtoError::FrameTooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// An error the server sends back over the wire instead of an answer.
/// Carrying a code + free-text detail (rather than a typed enum) keeps old
/// clients able to render errors from newer servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// One of the `ERR_*` codes.
    pub code: u8,
    /// Human-readable detail, safe to log.
    pub detail: String,
}

impl WireError {
    /// Classify a request-decode failure into a wire error code.
    pub fn from_decode(e: &ProtoError) -> WireError {
        let code = match e {
            ProtoError::UnsupportedVersion(_) => ERR_VERSION,
            ProtoError::UnknownKind(_) => ERR_UNKNOWN_KIND,
            ProtoError::FrameTooLarge(_) => ERR_TOO_LARGE,
            _ => ERR_MALFORMED,
        };
        WireError {
            code,
            detail: e.to_string(),
        }
    }

    /// The query decoded but validation rejected it.
    pub fn bad_query(e: &QueryError) -> WireError {
        WireError {
            code: ERR_BAD_QUERY,
            detail: e.to_string(),
        }
    }

    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    pub fn too_large(claimed: u64) -> WireError {
        WireError::from_decode(&ProtoError::FrameTooLarge(claimed))
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server error {}: {}", self.code, self.detail)
    }
}

impl std::error::Error for WireError {}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Evaluate a query against the server's current snapshot.
    Query(Query),
    /// Fetch server/snapshot statistics.
    Stats,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A query answer, tagged with the snapshot epoch that produced it so
    /// clients can pin answers to a consistent store state.
    Rows {
        /// Publish epoch of the snapshot the answer was read from.
        epoch: u64,
        /// The answer.
        result: ResultSet,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// The request was rejected; the server state is unchanged.
    Error(WireError),
}

/// Server/snapshot statistics, answered from the current snapshot without
/// touching the write side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Publish epoch of the current snapshot (0 = initial).
    pub epoch: u64,
    /// Records folded into the snapshot.
    pub inserted: u64,
    /// Live cells in the snapshot.
    pub cells: u64,
    /// Devices registered in the snapshot's directory.
    pub devices: u64,
    /// Frames the server has answered so far (including errors).
    pub requests_served: u64,
}

// ---------------------------------------------------------------------------
// primitive readers/writers
// ---------------------------------------------------------------------------

fn read_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, ProtoError> {
    let b = *bytes.get(*pos).ok_or(ProtoError::Truncated)?;
    *pos += 1;
    Ok(b)
}

fn read_int(bytes: &[u8], pos: &mut usize) -> Result<u64, ProtoError> {
    read_varint(bytes, pos).map_err(|e| match e {
        cellrel_ingest::DecodeError::VarintOverflow => ProtoError::VarintOverflow,
        _ => ProtoError::Truncated,
    })
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_string(bytes: &[u8], pos: &mut usize) -> Result<String, ProtoError> {
    let len = read_int(bytes, pos)? as usize;
    if len > bytes.len().saturating_sub(*pos) {
        return Err(ProtoError::Truncated);
    }
    let s = std::str::from_utf8(&bytes[*pos..*pos + len])
        .map_err(|_| ProtoError::InvalidField("string utf-8"))?;
    *pos += len;
    Ok(s.to_string())
}

// ---------------------------------------------------------------------------
// query / result-set grammar
// ---------------------------------------------------------------------------

const FILTER_KIND: u8 = 1;
const FILTER_ISP: u8 = 2;
const FILTER_RAT: u8 = 3;
const FILTER_MODEL: u8 = 4;
const FILTER_REGION: u8 = 5;
const FILTER_CAUSE_CLASS: u8 = 6;
const FILTER_CAUSE: u8 = 7;
const FILTER_HAS_CAUSE: u8 = 8;
const FILTER_TIME_RANGE: u8 = 9;

const METRIC_COUNT: u8 = 1;
const METRIC_DURATION_TOTAL: u8 = 2;
const METRIC_MEAN_DURATION: u8 = 3;
const METRIC_MAX_DURATION: u8 = 4;
const METRIC_UNDER_30S: u8 = 5;
const METRIC_QUANTILE: u8 = 6;
const METRIC_DEVICES: u8 = 7;
const METRIC_FAILING_DEVICES: u8 = 8;

fn write_filter(out: &mut Vec<u8>, f: &Filter) {
    match f {
        Filter::Kind(k) => {
            out.push(FILTER_KIND);
            write_varint(out, k.index() as u64);
        }
        Filter::Isp(i) => {
            out.push(FILTER_ISP);
            write_varint(out, i.index() as u64);
        }
        Filter::Rat(r) => {
            out.push(FILTER_RAT);
            write_varint(out, r.index() as u64);
        }
        Filter::Model(m) => {
            out.push(FILTER_MODEL);
            write_varint(out, u64::from(m.0));
        }
        Filter::Region(r) => {
            out.push(FILTER_REGION);
            write_varint(out, r.index() as u64);
        }
        Filter::CauseClass(l) => {
            out.push(FILTER_CAUSE_CLASS);
            write_varint(out, l.index() as u64);
        }
        Filter::Cause(c) => {
            out.push(FILTER_CAUSE);
            write_varint(out, zigzag(i64::from(c.code())));
        }
        Filter::HasCause => out.push(FILTER_HAS_CAUSE),
        Filter::TimeRange { start_ms, end_ms } => {
            out.push(FILTER_TIME_RANGE);
            write_varint(out, *start_ms);
            write_varint(out, *end_ms);
        }
    }
}

fn read_filter(bytes: &[u8], pos: &mut usize) -> Result<Filter, ProtoError> {
    let tag = read_u8(bytes, pos)?;
    Ok(match tag {
        FILTER_KIND => {
            let i = read_int(bytes, pos)? as usize;
            Filter::Kind(FailureKind::from_index(i).ok_or(ProtoError::InvalidField("filter.kind"))?)
        }
        FILTER_ISP => {
            let i = read_int(bytes, pos)? as usize;
            Filter::Isp(Isp::from_index(i).ok_or(ProtoError::InvalidField("filter.isp"))?)
        }
        FILTER_RAT => {
            let i = read_int(bytes, pos)? as usize;
            Filter::Rat(Rat::from_index(i).ok_or(ProtoError::InvalidField("filter.rat"))?)
        }
        FILTER_MODEL => {
            let m = read_int(bytes, pos)?;
            let m = u8::try_from(m).map_err(|_| ProtoError::InvalidField("filter.model"))?;
            Filter::Model(PhoneModelId(m))
        }
        FILTER_REGION => {
            let i = read_int(bytes, pos)? as usize;
            Filter::Region(Region::from_index(i).ok_or(ProtoError::InvalidField("filter.region"))?)
        }
        FILTER_CAUSE_CLASS => {
            let i = read_int(bytes, pos)? as usize;
            Filter::CauseClass(
                FailureLayer::from_index(i)
                    .ok_or(ProtoError::InvalidField("filter.cause_class"))?,
            )
        }
        FILTER_CAUSE => {
            let z = unzigzag(read_int(bytes, pos)?);
            let code =
                i32::try_from(z).map_err(|_| ProtoError::InvalidField("filter.cause code"))?;
            Filter::Cause(DataFailCause::from_code(code))
        }
        FILTER_HAS_CAUSE => Filter::HasCause,
        FILTER_TIME_RANGE => Filter::TimeRange {
            start_ms: read_int(bytes, pos)?,
            end_ms: read_int(bytes, pos)?,
        },
        _ => return Err(ProtoError::InvalidField("filter tag")),
    })
}

fn write_metric(out: &mut Vec<u8>, m: &Metric) {
    match m {
        Metric::Count => out.push(METRIC_COUNT),
        Metric::DurationTotalMs => out.push(METRIC_DURATION_TOTAL),
        Metric::MeanDurationMs => out.push(METRIC_MEAN_DURATION),
        Metric::MaxDurationMs => out.push(METRIC_MAX_DURATION),
        Metric::Under30sShare => out.push(METRIC_UNDER_30S),
        Metric::QuantileMs(q) => {
            out.push(METRIC_QUANTILE);
            write_varint(out, q.to_bits());
        }
        Metric::Devices => out.push(METRIC_DEVICES),
        Metric::FailingDevices => out.push(METRIC_FAILING_DEVICES),
    }
}

fn read_metric(bytes: &[u8], pos: &mut usize) -> Result<Metric, ProtoError> {
    let tag = read_u8(bytes, pos)?;
    Ok(match tag {
        METRIC_COUNT => Metric::Count,
        METRIC_DURATION_TOTAL => Metric::DurationTotalMs,
        METRIC_MEAN_DURATION => Metric::MeanDurationMs,
        METRIC_MAX_DURATION => Metric::MaxDurationMs,
        METRIC_UNDER_30S => Metric::Under30sShare,
        // A hostile bit pattern here can decode to NaN or out-of-range —
        // that is fine: query validation rejects it without panicking.
        METRIC_QUANTILE => Metric::QuantileMs(f64::from_bits(read_int(bytes, pos)?)),
        METRIC_DEVICES => Metric::Devices,
        METRIC_FAILING_DEVICES => Metric::FailingDevices,
        _ => return Err(ProtoError::InvalidField("metric tag")),
    })
}

fn write_dims(out: &mut Vec<u8>, dims: &[Dim]) {
    write_varint(out, dims.len() as u64);
    for d in dims {
        write_varint(out, d.index() as u64);
    }
}

fn read_dims(bytes: &[u8], pos: &mut usize) -> Result<Vec<Dim>, ProtoError> {
    let n = read_int(bytes, pos)? as usize;
    // Each dim is ≥ 1 byte; a count the remaining payload cannot hold is a
    // length lie — reject before sizing the Vec.
    if n > bytes.len().saturating_sub(*pos) {
        return Err(ProtoError::InvalidField("group_by overcount"));
    }
    let mut dims = Vec::with_capacity(n);
    for _ in 0..n {
        let i = read_int(bytes, pos)? as usize;
        dims.push(Dim::from_index(i).ok_or(ProtoError::InvalidField("group_by dim"))?);
    }
    Ok(dims)
}

/// Append the wire form of a [`Query`] to `out` — the query grammar of
/// the `CQ` protocol, shared verbatim by the cluster's `CR` replication
/// frames so both families route the exact same query type.
pub fn write_query(out: &mut Vec<u8>, q: &Query) {
    write_varint(out, q.filters.len() as u64);
    for f in &q.filters {
        write_filter(out, f);
    }
    write_dims(out, &q.group_by);
    write_varint(out, q.window_ms);
    write_metric(out, &q.metric);
    write_varint(out, q.top_k as u64);
}

/// Total inverse of [`write_query`]: typed errors on malformed input,
/// allocation bounded by the remaining payload.
pub fn read_query(bytes: &[u8], pos: &mut usize) -> Result<Query, ProtoError> {
    let nf = read_int(bytes, pos)? as usize;
    if nf > bytes.len().saturating_sub(*pos) {
        return Err(ProtoError::InvalidField("filters overcount"));
    }
    let mut filters = Vec::with_capacity(nf);
    for _ in 0..nf {
        filters.push(read_filter(bytes, pos)?);
    }
    let group_by = read_dims(bytes, pos)?;
    let window_ms = read_int(bytes, pos)?;
    let metric = read_metric(bytes, pos)?;
    let top_k =
        usize::try_from(read_int(bytes, pos)?).map_err(|_| ProtoError::InvalidField("top_k"))?;
    Ok(Query {
        filters,
        group_by,
        window_ms,
        metric,
        top_k,
    })
}

fn write_result_set(out: &mut Vec<u8>, rs: &ResultSet) {
    write_dims(out, &rs.group_by);
    write_metric(out, &rs.metric);
    write_varint(out, rs.rows.len() as u64);
    for r in &rs.rows {
        // Key and label counts are written per row (not assumed equal to
        // `group_by.len()`) so encoding is total over arbitrary values —
        // the proptests round-trip hand-built result sets.
        write_varint(out, r.key.len() as u64);
        for k in &r.key {
            write_varint(out, *k);
        }
        write_varint(out, r.labels.len() as u64);
        for l in &r.labels {
            write_string(out, l);
        }
        write_varint(out, r.value.to_bits());
        write_varint(out, r.count);
    }
    write_varint(out, rs.cells_scanned);
    write_varint(out, rs.cells_matched);
}

fn read_result_set(bytes: &[u8], pos: &mut usize) -> Result<ResultSet, ProtoError> {
    let group_by = read_dims(bytes, pos)?;
    let metric = read_metric(bytes, pos)?;
    let nrows = read_int(bytes, pos)? as usize;
    // A row is at least 4 varint bytes (key count, label count, value,
    // count); bound the claimed row count by what the payload could hold.
    if nrows > bytes.len().saturating_sub(*pos) / 4 + 1 {
        return Err(ProtoError::InvalidField("rows overcount"));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let nk = read_int(bytes, pos)? as usize;
        if nk > bytes.len().saturating_sub(*pos) {
            return Err(ProtoError::InvalidField("row key overcount"));
        }
        let mut key = Vec::with_capacity(nk);
        for _ in 0..nk {
            key.push(read_int(bytes, pos)?);
        }
        let nl = read_int(bytes, pos)? as usize;
        if nl > bytes.len().saturating_sub(*pos) {
            return Err(ProtoError::InvalidField("row label overcount"));
        }
        let mut labels = Vec::with_capacity(nl);
        for _ in 0..nl {
            labels.push(read_string(bytes, pos)?);
        }
        let value = f64::from_bits(read_int(bytes, pos)?);
        let count = read_int(bytes, pos)?;
        rows.push(ResultRow {
            key,
            labels,
            value,
            count,
        });
    }
    let cells_scanned = read_int(bytes, pos)?;
    let cells_matched = read_int(bytes, pos)?;
    Ok(ResultSet {
        group_by,
        metric,
        rows,
        cells_scanned,
        cells_matched,
    })
}

fn write_stats(out: &mut Vec<u8>, s: &ServerStats) {
    write_varint(out, s.epoch);
    write_varint(out, s.inserted);
    write_varint(out, s.cells);
    write_varint(out, s.devices);
    write_varint(out, s.requests_served);
}

fn read_stats(bytes: &[u8], pos: &mut usize) -> Result<ServerStats, ProtoError> {
    Ok(ServerStats {
        epoch: read_int(bytes, pos)?,
        inserted: read_int(bytes, pos)?,
        cells: read_int(bytes, pos)?,
        devices: read_int(bytes, pos)?,
        requests_served: read_int(bytes, pos)?,
    })
}

// ---------------------------------------------------------------------------
// framing
// ---------------------------------------------------------------------------

fn begin_frame(kind: u8) -> Vec<u8> {
    vec![MAGIC[0], MAGIC[1], VERSION, kind]
}

fn seal_frame(mut frame: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Validate framing (length, magic, version, CRC) and return the kind byte
/// plus the payload slice. Shared by request and response decoding.
fn open_frame(bytes: &[u8]) -> Result<(u8, &[u8]), ProtoError> {
    if bytes.len() > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge(bytes.len() as u64));
    }
    if bytes.len() < MIN_FRAME_LEN {
        return Err(ProtoError::Truncated);
    }
    if bytes[0..2] != MAGIC {
        return Err(ProtoError::BadMagic {
            found: [bytes[0], bytes[1]],
        });
    }
    if bytes[2] != VERSION {
        return Err(ProtoError::UnsupportedVersion(bytes[2]));
    }
    let body = &bytes[..bytes.len() - 4];
    let found = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let expected = crc32(body);
    if expected != found {
        return Err(ProtoError::BadCrc { expected, found });
    }
    Ok((bytes[3], &body[4..]))
}

fn expect_consumed(payload: &[u8], pos: usize) -> Result<(), ProtoError> {
    if pos == payload.len() {
        Ok(())
    } else {
        Err(ProtoError::TrailingBytes)
    }
}

/// Encode a request as a complete frame (magic through CRC trailer).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut frame = match req {
        Request::Ping => begin_frame(KIND_PING),
        Request::Stats => begin_frame(KIND_STATS),
        Request::Query(q) => {
            let mut f = begin_frame(KIND_QUERY);
            write_query(&mut f, q);
            f
        }
    };
    frame = seal_frame(frame);
    frame
}

/// Decode a request frame. Total: every failure is a typed [`ProtoError`].
pub fn decode_request(bytes: &[u8]) -> Result<Request, ProtoError> {
    let (kind, payload) = open_frame(bytes)?;
    let mut pos = 0usize;
    let req = match kind {
        KIND_PING => Request::Ping,
        KIND_STATS => Request::Stats,
        KIND_QUERY => Request::Query(read_query(payload, &mut pos)?),
        k => return Err(ProtoError::UnknownKind(k)),
    };
    expect_consumed(payload, pos)?;
    Ok(req)
}

/// Encode a response as a complete frame (magic through CRC trailer).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut frame = match resp {
        Response::Pong => begin_frame(KIND_PONG),
        Response::Rows { epoch, result } => {
            let mut f = begin_frame(KIND_ROWS);
            write_varint(&mut f, *epoch);
            write_result_set(&mut f, result);
            f
        }
        Response::Stats(s) => {
            let mut f = begin_frame(KIND_STATS_REPLY);
            write_stats(&mut f, s);
            f
        }
        Response::Error(e) => {
            let mut f = begin_frame(KIND_ERROR);
            f.push(e.code);
            write_string(&mut f, &e.detail);
            f
        }
    };
    frame = seal_frame(frame);
    frame
}

/// Decode a response frame. Total: every failure is a typed [`ProtoError`].
pub fn decode_response(bytes: &[u8]) -> Result<Response, ProtoError> {
    let (kind, payload) = open_frame(bytes)?;
    let mut pos = 0usize;
    let resp = match kind {
        KIND_PONG => Response::Pong,
        KIND_ROWS => {
            let epoch = read_int(payload, &mut pos)?;
            let result = read_result_set(payload, &mut pos)?;
            Response::Rows { epoch, result }
        }
        KIND_STATS_REPLY => Response::Stats(read_stats(payload, &mut pos)?),
        KIND_ERROR => {
            let code = read_u8(payload, &mut pos)?;
            let detail = read_string(payload, &mut pos)?;
            Response::Error(WireError { code, detail })
        }
        k => return Err(ProtoError::UnknownKind(k)),
    };
    expect_consumed(payload, pos)?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Query {
        Query {
            filters: vec![
                Filter::Kind(FailureKind::DataSetupError),
                Filter::Cause(DataFailCause::SignalLost),
                Filter::TimeRange {
                    start_ms: 0,
                    end_ms: 604_800_000,
                },
            ],
            group_by: vec![Dim::Isp, Dim::Rat],
            window_ms: 604_800_000,
            metric: Metric::QuantileMs(0.95),
            top_k: 5,
        }
    }

    fn sample_result() -> ResultSet {
        ResultSet {
            group_by: vec![Dim::Isp],
            metric: Metric::Count,
            rows: vec![ResultRow {
                key: vec![2],
                labels: vec!["ISP-C".into()],
                value: 41.0,
                count: 41,
            }],
            cells_scanned: 100,
            cells_matched: 41,
        }
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Query(sample_query()),
        ] {
            let frame = encode_request(&req);
            assert_eq!(decode_request(&frame).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Pong,
            Response::Rows {
                epoch: 7,
                result: sample_result(),
            },
            Response::Stats(ServerStats {
                epoch: 3,
                inserted: 1000,
                cells: 40,
                devices: 10,
                requests_served: 99,
            }),
            Response::Error(WireError {
                code: ERR_BAD_QUERY,
                detail: "quantile 1.5 outside [0, 1]".into(),
            }),
        ] {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame).unwrap(), resp);
        }
    }

    #[test]
    fn bit_flips_fail_the_crc_or_decode_typed() {
        let frame = encode_request(&Request::Query(sample_query()));
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                assert!(decode_request(&bad).is_err(), "byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn truncation_is_total() {
        let frame = encode_response(&Response::Rows {
            epoch: 1,
            result: sample_result(),
        });
        for cut in 0..frame.len() {
            assert!(decode_response(&frame[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn version_and_kind_errors_are_distinguished() {
        let mut frame = encode_request(&Request::Ping);
        frame[2] = 9;
        let frame = seal_frame(frame[..frame.len() - 4].to_vec());
        assert_eq!(
            decode_request(&frame).unwrap_err(),
            ProtoError::UnsupportedVersion(9)
        );

        let mut frame = encode_request(&Request::Ping);
        frame[3] = 0x44;
        let frame = seal_frame(frame[..frame.len() - 4].to_vec());
        assert_eq!(
            decode_request(&frame).unwrap_err(),
            ProtoError::UnknownKind(0x44)
        );
        // A response kind is not a request.
        let frame = encode_response(&Response::Pong);
        assert_eq!(
            decode_request(&frame).unwrap_err(),
            ProtoError::UnknownKind(KIND_PONG)
        );
    }

    #[test]
    fn length_lies_do_not_allocate() {
        // A rows count of u64::MAX in a tiny payload must be rejected as an
        // overcount, not drive Vec::with_capacity.
        let mut f = begin_frame(KIND_ROWS);
        write_varint(&mut f, 1); // epoch
        write_dims(&mut f, &[]); // group_by
        f.push(METRIC_COUNT);
        write_varint(&mut f, u64::MAX); // rows count lie
        let frame = seal_frame(f);
        assert_eq!(
            decode_response(&frame).unwrap_err(),
            ProtoError::InvalidField("rows overcount")
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode_request(&Request::Ping);
        frame.truncate(frame.len() - 4);
        frame.push(0);
        let frame = seal_frame(frame);
        assert_eq!(
            decode_request(&frame).unwrap_err(),
            ProtoError::TrailingBytes
        );
    }
}
