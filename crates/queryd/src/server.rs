//! The serving core: snapshot-isolated reads over `Arc`-swapped immutable
//! stores, total frame handling, and per-request telemetry.
//!
//! The core is transport-agnostic — [`QuerydCore::handle_frame`] maps one
//! request frame to one response frame and **never panics**, whatever the
//! bytes. The TCP listener and the deterministic in-process client (see
//! [`crate::net`]) both funnel into it, so every protocol test exercises
//! exactly the code the socket path runs.
//!
//! **Snapshot isolation.** The write side (an ingest feed appending through
//! [`StoreSink`]) publishes immutable [`Store`] snapshots with
//! [`QuerydCore::publish`]; readers grab the current `Arc<Snapshot>` under
//! a briefly-held lock and answer entirely from it. A query therefore sees
//! one consistent store state — never a torn mid-merge view — and every
//! answer is tagged with the snapshot's publish epoch so clients can pin a
//! set of queries to one state.
//!
//! **Telemetry.** Counters and latency/row histograms accumulate in
//! thread-safe atomics + mutexed [`QuantileSketch`]es (the server is
//! multi-threaded; the `Telemetry` handle is not `Send`), and export into a
//! regular [`MetricsSnapshot`] on demand. Wall-clock latency needs a clock,
//! which the workspace bans from library code — callers that want latency
//! inject one ([`QuerydCore::with_clock`]); tests inject deterministic
//! counters.

use crate::proto::{self, Request, Response, ServerStats, WireError};
use cellrel_ingest::AcceptedSink;
use cellrel_sim::{MetricsSnapshot, QuantileSketch, Telemetry};
use cellrel_store::{DeviceDirectory, Store, StoreConfig, StoreSink};
use cellrel_types::FailureEvent;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A microsecond wall-clock supplied by the embedding binary (library code
/// cannot use `std::time::Instant` — see `clippy.toml`). Tests inject
/// deterministic counters.
pub type WallClock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// One immutable published store state. Readers hold the `Arc` for the
/// duration of a query; the publisher never mutates a published store.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonic publish counter (0 = the store the core started with).
    pub epoch: u64,
    /// The store state. Immutable once published.
    pub store: Store,
}

/// Anything that hands out epoch-tagged immutable store snapshots — the
/// query daemon core itself, and the cluster tier's leader and follower
/// replicas. Callers written against this trait (the scatter-gather
/// router, the bench drivers) serve identically off any of them.
pub trait SnapshotSource: Send + Sync {
    /// The current epoch-consistent view.
    fn snapshot(&self) -> Arc<Snapshot>;
}

impl SnapshotSource for QuerydCore {
    fn snapshot(&self) -> Arc<Snapshot> {
        QuerydCore::snapshot(self)
    }
}

/// Server-side request metrics: thread-safe accumulators exported into a
/// [`MetricsSnapshot`] on demand.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    requests: AtomicU64,
    pings: AtomicU64,
    queries: AtomicU64,
    stats_requests: AtomicU64,
    wire_errors: AtomicU64,
    query_rejects: AtomicU64,
    latency_us: Mutex<QuantileSketch>,
    rows_returned: Mutex<QuantileSketch>,
}

impl ServerMetrics {
    /// Frames answered so far (including error responses).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with a wire-level error response.
    pub fn wire_errors(&self) -> u64 {
        self.wire_errors.load(Ordering::Relaxed)
    }

    /// Queries rejected by engine validation.
    pub fn query_rejects(&self) -> u64 {
        self.query_rejects.load(Ordering::Relaxed)
    }

    /// Export the accumulators as a regular metrics snapshot
    /// (`queryd.*` counters and histograms).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let tele = Telemetry::enabled();
        tele.add("queryd.requests", self.requests.load(Ordering::Relaxed));
        tele.add("queryd.pings", self.pings.load(Ordering::Relaxed));
        tele.add("queryd.queries", self.queries.load(Ordering::Relaxed));
        tele.add(
            "queryd.stats_requests",
            self.stats_requests.load(Ordering::Relaxed),
        );
        tele.add(
            "queryd.wire_errors",
            self.wire_errors.load(Ordering::Relaxed),
        );
        tele.add(
            "queryd.query_rejects",
            self.query_rejects.load(Ordering::Relaxed),
        );
        let latency = self.latency_us.lock().expect("metrics lock").clone();
        if latency.count() > 0 {
            tele.merge_histogram("queryd.latency_us", latency);
        }
        let rows = self.rows_returned.lock().expect("metrics lock").clone();
        if rows.count() > 0 {
            tele.merge_histogram("queryd.rows_returned", rows);
        }
        tele.snapshot()
    }

    fn observe_latency(&self, us: u64) {
        self.latency_us.lock().expect("metrics lock").push(us);
    }

    fn observe_rows(&self, n: u64) {
        self.rows_returned.lock().expect("metrics lock").push(n);
    }
}

/// The transport-agnostic serving core. Cheap to share across connection
/// threads behind an `Arc`.
pub struct QuerydCore {
    current: RwLock<Arc<Snapshot>>,
    metrics: ServerMetrics,
    clock: Option<WallClock>,
    max_frame_len: usize,
}

impl QuerydCore {
    /// A core serving `store` as epoch 0, with no latency clock.
    pub fn new(store: Store) -> Arc<QuerydCore> {
        Self::build(store, None)
    }

    /// [`QuerydCore::new`] plus a microsecond clock for latency histograms.
    pub fn with_clock(store: Store, clock: WallClock) -> Arc<QuerydCore> {
        Self::build(store, Some(clock))
    }

    fn build(store: Store, clock: Option<WallClock>) -> Arc<QuerydCore> {
        Arc::new(QuerydCore {
            current: RwLock::new(Arc::new(Snapshot { epoch: 0, store })),
            metrics: ServerMetrics::default(),
            clock,
            max_frame_len: proto::MAX_FRAME_LEN,
        })
    }

    /// The frame-size ceiling connections enforce before allocating a body.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame_len
    }

    /// Request metrics accumulated so far.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Swap in a new immutable store state; returns its epoch. In-flight
    /// readers keep answering from the snapshot they already hold.
    pub fn publish(&self, store: Store) -> u64 {
        let mut cur = self.current.write().expect("snapshot lock");
        let epoch = cur.epoch + 1;
        *cur = Arc::new(Snapshot { epoch, store });
        epoch
    }

    /// [`QuerydCore::publish`] with an externally assigned epoch — the
    /// replication path aligns snapshot epochs with its segment-ship
    /// sequence numbers so a router can report exactly which replication
    /// position answered. Monotonicity is the caller's contract; a stale
    /// epoch is refused (the current snapshot wins) and `false` returned.
    pub fn publish_at(&self, store: Store, epoch: u64) -> bool {
        let mut cur = self.current.write().expect("snapshot lock");
        if epoch < cur.epoch {
            return false;
        }
        *cur = Arc::new(Snapshot { epoch, store });
        true
    }

    /// The current snapshot. The lock is held only for the `Arc` clone.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.read().expect("snapshot lock").clone()
    }

    /// Answer a typed request. Queries read from one snapshot for their
    /// whole evaluation; errors come back as [`Response::Error`].
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Ping => {
                self.metrics.pings.fetch_add(1, Ordering::Relaxed);
                Response::Pong
            }
            Request::Stats => {
                self.metrics.stats_requests.fetch_add(1, Ordering::Relaxed);
                let snap = self.snapshot();
                Response::Stats(ServerStats {
                    epoch: snap.epoch,
                    inserted: snap.store.inserted(),
                    cells: snap.store.cells(),
                    devices: snap.store.devices(),
                    requests_served: self.metrics.requests(),
                })
            }
            Request::Query(q) => {
                self.metrics.queries.fetch_add(1, Ordering::Relaxed);
                let snap = self.snapshot();
                match snap.store.query(q) {
                    Ok(result) => {
                        self.metrics.observe_rows(result.rows.len() as u64);
                        Response::Rows {
                            epoch: snap.epoch,
                            result,
                        }
                    }
                    Err(e) => {
                        self.metrics.query_rejects.fetch_add(1, Ordering::Relaxed);
                        Response::Error(WireError::bad_query(&e))
                    }
                }
            }
        }
    }

    /// Map one request frame to one response frame. Total: malformed,
    /// version-mismatched or unknown-kind input produces an encoded error
    /// response, never a panic.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        let start = self.clock.as_ref().map(|c| c());
        let resp = match proto::decode_request(frame) {
            Ok(req) => self.handle(&req),
            Err(e) => {
                self.metrics.wire_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(WireError::from_decode(&e))
            }
        };
        self.finish(start);
        proto::encode_response(&resp)
    }

    /// The error response for a length prefix that exceeds
    /// [`proto::MAX_FRAME_LEN`] — the one failure the transport must answer
    /// *without* materialising the frame.
    pub fn oversize_response(&self, claimed: u64) -> Vec<u8> {
        let start = self.clock.as_ref().map(|c| c());
        self.metrics.wire_errors.fetch_add(1, Ordering::Relaxed);
        self.finish(start);
        proto::encode_response(&Response::Error(WireError::too_large(claimed)))
    }

    fn finish(&self, start: Option<u64>) {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        if let (Some(clock), Some(start)) = (self.clock.as_ref(), start) {
            self.metrics.observe_latency(clock().saturating_sub(start));
        }
    }
}

impl std::fmt::Debug for QuerydCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerydCore")
            .field("epoch", &self.snapshot().epoch)
            .field("requests", &self.metrics.requests())
            .finish()
    }
}

/// Replay `events` into the core the way a live backend would: append
/// through a [`StoreSink`] (the same `AcceptedSink` the ingest collector
/// feeds) and publish an immutable snapshot every `chunk` events, plus a
/// final one. `on_publish` sees each snapshot as it becomes current —
/// tests use it to retain the exact states concurrent clients can observe.
/// Returns the final epoch.
pub fn feed_events(
    core: &QuerydCore,
    cfg: &StoreConfig,
    dir: &DeviceDirectory,
    events: &[FailureEvent],
    chunk: usize,
    mut on_publish: impl FnMut(&Arc<Snapshot>),
) -> u64 {
    let chunk = chunk.max(1);
    let mut sink = StoreSink::new(cfg, dir);
    let mut pending = 0usize;
    for e in events {
        sink.accepted(e);
        pending += 1;
        if pending == chunk {
            pending = 0;
            // Published snapshots are immutable, so flip them to the
            // columnar layout: concurrent readers scan segments instead of
            // the row map. Pure layout change — answers and digests are
            // invariant (the store's differential suite proves it).
            let mut snap = sink.clone().into_store();
            snap.seal_columnar();
            core.publish(snap);
            on_publish(&core.snapshot());
        }
    }
    let mut snap = sink.into_store();
    snap.seal_columnar();
    let epoch = core.publish(snap);
    on_publish(&core.snapshot());
    epoch
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_store::{Dim, Query};

    fn empty_core() -> Arc<QuerydCore> {
        QuerydCore::new(Store::new(&StoreConfig::default()))
    }

    #[test]
    fn ping_stats_and_query_round_trip() {
        let core = empty_core();
        assert_eq!(core.handle(&Request::Ping), Response::Pong);
        let resp = core.handle(&Request::Query(Query::count_by(vec![Dim::Kind])));
        match resp {
            Response::Rows { epoch, result } => {
                assert_eq!(epoch, 0);
                assert!(result.rows.is_empty());
            }
            other => panic!("unexpected response: {other:?}"),
        }
        match core.handle(&Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.epoch, 0);
                assert_eq!(s.inserted, 0);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn hostile_frames_yield_error_responses_not_panics() {
        let core = empty_core();
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0xff; 3],
            vec![0xff; 64],
            b"CQ\x01\x02garbage-without-crc".to_vec(),
            proto::encode_response(&Response::Pong), // response kind as request
        ];
        for bytes in cases {
            let resp = proto::decode_response(&core.handle_frame(&bytes)).expect("valid frame out");
            assert!(matches!(resp, Response::Error(_)), "input {bytes:?}");
        }
        assert_eq!(core.metrics().wire_errors(), 5);
        assert_eq!(core.metrics().requests(), 5);
    }

    #[test]
    fn invalid_query_is_rejected_without_state_change() {
        let core = empty_core();
        let bad = Query {
            group_by: vec![Dim::Kind, Dim::Kind],
            ..Query::count_by(vec![])
        };
        let frame = proto::encode_request(&Request::Query(bad));
        let resp = proto::decode_response(&core.handle_frame(&frame)).unwrap();
        match resp {
            Response::Error(e) => assert_eq!(e.code, proto::ERR_BAD_QUERY),
            other => panic!("unexpected response: {other:?}"),
        }
        assert_eq!(core.metrics().query_rejects(), 1);
        assert_eq!(core.snapshot().epoch, 0);
    }

    #[test]
    fn publish_bumps_epochs_and_readers_keep_their_snapshot() {
        let core = empty_core();
        let held = core.snapshot();
        assert_eq!(core.publish(Store::new(&StoreConfig::default())), 1);
        assert_eq!(core.publish(Store::new(&StoreConfig::default())), 2);
        // The reader's pinned snapshot is unchanged by later publishes.
        assert_eq!(held.epoch, 0);
        assert_eq!(core.snapshot().epoch, 2);
    }

    #[test]
    fn deterministic_clock_feeds_the_latency_histogram() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = ticks.clone();
        let clock: WallClock = Arc::new(move || t.fetch_add(7, Ordering::Relaxed));
        let core = QuerydCore::with_clock(Store::new(&StoreConfig::default()), clock);
        let frame = proto::encode_request(&Request::Ping);
        core.handle_frame(&frame);
        core.handle_frame(&frame);
        let snap = core.metrics().snapshot();
        let lat = snap.histogram("queryd.latency_us").expect("latency sketch");
        assert_eq!(lat.count(), 2);
        assert_eq!(snap.counter("queryd.requests"), 2);
        assert_eq!(snap.counter("queryd.pings"), 2);
    }
}
