//! # cellrel-queryd
//!
//! The query-serving daemon: `cellrel-store`'s typed query engine behind a
//! compact framed wire protocol, serving concurrent readers from immutable
//! `Arc`-swapped snapshots while an ingest feed keeps appending — the
//! paper's backend analyses (Tables 1–2, per-ISP/RAT/model breakdowns) as
//! **served traffic** rather than a batch step.
//!
//! Three layers:
//!
//! * [`proto`] — the wire format: `"CQ"`-magic frames (version byte, kind
//!   byte, varint payload, CRC-32 trailer) carrying [`Query`]/[`ResultSet`]
//!   with the same codec idioms and totality discipline as the ingest wire
//!   format. Decoding never panics and never over-reads.
//! * [`server`] — the transport-agnostic core: snapshot-isolated reads
//!   (readers pin an `Arc<Snapshot>`; [`QuerydCore::publish`] swaps in new
//!   epochs), total frame handling with wire-level error responses, and
//!   per-request counters + latency/row histograms exported as a regular
//!   `MetricsSnapshot`.
//! * [`net`] — transports: a std-only thread-per-connection TCP server
//!   speaking `u32`-length-prefixed frames, a blocking [`TcpClient`], and
//!   the deterministic [`InProcClient`] the equivalence tests pin against.
//!
//! The concurrency contract: a query is answered entirely from one
//! published snapshot, so N concurrent clients racing a live ingest feed
//! each see some exact published store state — byte-identical to querying
//! that store in-process — never a torn intermediate.
//!
//! [`Query`]: cellrel_store::Query
//! [`ResultSet`]: cellrel_store::ResultSet

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod proto;
pub mod server;

pub use net::{
    serve, serve_with, ClientError, InProcClient, QuerydServer, ServerConfig, TcpClient,
};
pub use proto::{ProtoError, Request, Response, ServerStats, WireError};
pub use server::{feed_events, QuerydCore, ServerMetrics, Snapshot, SnapshotSource, WallClock};
