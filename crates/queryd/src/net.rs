//! Transports: a std-only TCP server (thread per connection), a blocking
//! TCP client, and a deterministic in-process client.
//!
//! On the wire each frame travels as `u32` little-endian length + frame
//! bytes. The length prefix is untrusted: a prefix above
//! [`proto::MAX_FRAME_LEN`] is answered with an [`ERR_TOO_LARGE`] error and
//! the connection is closed (the stream's framing can no longer be
//! trusted), without ever allocating the claimed size.
//!
//! [`InProcClient`] feeds [`QuerydCore::handle_frame`] directly — the same
//! encode → decode → serve → encode → decode path as TCP minus the socket,
//! which is what the determinism tests pin against the live server.
//!
//! [`ERR_TOO_LARGE`]: crate::proto::ERR_TOO_LARGE

use crate::proto::{self, ProtoError, Request, Response, ServerStats, WireError};
use crate::server::QuerydCore;
use cellrel_store::{Query, ResultSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of the TCP serving loop. [`ServerConfig::default`] preserves
/// the historical behavior (50 ms shutdown-polling read timeout); latency
/// benches and the cluster router pick tighter values, batch tools looser
/// ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// How often a blocked connection read wakes up to check for
    /// shutdown. Shorter = faster shutdown, more idle wakeups.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// What went wrong on the client side of a call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes failed to decode.
    Proto(ProtoError),
    /// The server answered with a wire error.
    Rejected(WireError),
    /// The server answered with a well-formed but wrong-kind response.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Rejected(e) => write!(f, "{e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

fn expect_rows(resp: Response) -> Result<(u64, ResultSet), ClientError> {
    match resp {
        Response::Rows { epoch, result } => Ok((epoch, result)),
        Response::Error(e) => Err(ClientError::Rejected(e)),
        _ => Err(ClientError::Unexpected("expected rows")),
    }
}

fn expect_stats(resp: Response) -> Result<ServerStats, ClientError> {
    match resp {
        Response::Stats(s) => Ok(s),
        Response::Error(e) => Err(ClientError::Rejected(e)),
        _ => Err(ClientError::Unexpected("expected stats")),
    }
}

/// A client that short-circuits the socket: every call runs the full frame
/// encode/decode path through the shared core, deterministically.
#[derive(Clone)]
pub struct InProcClient {
    core: Arc<QuerydCore>,
}

impl InProcClient {
    /// A client over `core`.
    pub fn new(core: Arc<QuerydCore>) -> Self {
        InProcClient { core }
    }

    /// One request/response exchange.
    pub fn call(&self, req: &Request) -> Result<Response, ClientError> {
        let frame = self.core.handle_frame(&proto::encode_request(req));
        Ok(proto::decode_response(&frame)?)
    }

    /// Evaluate a query; returns the snapshot epoch and the answer.
    pub fn query(&self, q: &Query) -> Result<(u64, ResultSet), ClientError> {
        expect_rows(self.call(&Request::Query(q.clone()))?)
    }

    /// Fetch server statistics.
    pub fn stats(&self) -> Result<ServerStats, ClientError> {
        expect_stats(self.call(&Request::Stats)?)
    }
}

/// A blocking TCP client speaking length-prefixed frames.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connect to a queryd server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient { stream })
    }

    /// One request/response exchange.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &proto::encode_request(req))?;
        let frame = read_frame(&mut self.stream)?;
        Ok(proto::decode_response(&frame)?)
    }

    /// Evaluate a query; returns the snapshot epoch and the answer.
    pub fn query(&mut self, q: &Query) -> Result<(u64, ResultSet), ClientError> {
        expect_rows(self.call(&Request::Query(q.clone()))?)
    }

    /// Fetch server statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        expect_stats(self.call(&Request::Stats)?)
    }
}

fn write_frame(w: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)
}

fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ClientError> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > proto::MAX_FRAME_LEN {
        return Err(ClientError::Proto(ProtoError::FrameTooLarge(len as u64)));
    }
    let mut frame = vec![0u8; len];
    r.read_exact(&mut frame)?;
    Ok(frame)
}

/// A running TCP server. Dropping (or calling [`QuerydServer::shutdown`])
/// stops accepting, wakes blocked connections and joins every thread.
pub struct QuerydServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Serve `core` on `bind_addr` (e.g. `"127.0.0.1:0"` for an OS-assigned
/// port). One thread accepts; each connection gets its own thread that
/// answers frames until the peer closes or the server shuts down.
pub fn serve(core: Arc<QuerydCore>, bind_addr: &str) -> std::io::Result<QuerydServer> {
    serve_with(core, bind_addr, ServerConfig::default())
}

/// [`serve`] with explicit [`ServerConfig`] tunables.
pub fn serve_with(
    core: Arc<QuerydCore>,
    bind_addr: &str,
    cfg: ServerConfig,
) -> std::io::Result<QuerydServer> {
    let listener = TcpListener::bind(bind_addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let stop = stop.clone();
        let conns = conns.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let core = core.clone();
                let stop = stop.clone();
                let handle = std::thread::spawn(move || serve_conn(&core, &stop, cfg, stream));
                conns.lock().expect("conn registry").push(handle);
            }
        })
    };

    Ok(QuerydServer {
        addr,
        stop,
        accept: Some(accept),
        conns,
    })
}

impl QuerydServer {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake blocked reads, and join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .conns
            .lock()
            .expect("conn registry")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for QuerydServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

fn serve_conn(core: &QuerydCore, stop: &AtomicBool, cfg: ServerConfig, mut stream: TcpStream) {
    // Short read timeouts let blocked connections notice shutdown; a frame
    // mid-flight keeps accumulating across timeouts.
    let _ = stream.set_read_timeout(Some(cfg.poll_interval));
    let _ = stream.set_nodelay(true);
    let mut len4 = [0u8; 4];
    loop {
        if !read_exact_polling(&mut stream, &mut len4, stop) {
            return;
        }
        let len = u32::from_le_bytes(len4) as usize;
        if len > core.max_frame_len() {
            // Answer once, then drop the connection: after a lying prefix
            // the byte stream can no longer be framed.
            let _ = write_frame(&mut stream, &core.oversize_response(len as u64));
            return;
        }
        let mut body = vec![0u8; len];
        if !read_exact_polling(&mut stream, &mut body, stop) {
            return;
        }
        let resp = core.handle_frame(&body);
        if write_frame(&mut stream, &resp).is_err() {
            return;
        }
    }
}

/// `read_exact` that tolerates read timeouts, bailing out when the peer
/// closes, the server shuts down, or the stream errors. Returns `true` iff
/// `buf` was filled.
fn read_exact_polling(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> bool {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_store::{Dim, Query, Store, StoreConfig};

    fn served_core() -> (Arc<QuerydCore>, QuerydServer) {
        let core = QuerydCore::new(Store::new(&StoreConfig::default()));
        let server = serve(core.clone(), "127.0.0.1:0").expect("bind");
        (core, server)
    }

    #[test]
    fn tcp_and_inproc_answer_identically() {
        let (core, server) = served_core();
        let mut tcp = TcpClient::connect(server.addr()).expect("connect");
        let inproc = InProcClient::new(core);
        let q = Query::count_by(vec![Dim::Kind]);
        let (e1, r1) = tcp.query(&q).expect("tcp query");
        let (e2, r2) = inproc.query(&q).expect("inproc query");
        assert_eq!(e1, e2);
        assert_eq!(r1, r2);
        assert_eq!(tcp.call(&Request::Ping).unwrap(), Response::Pong);
        drop(tcp);
        server.shutdown();
    }

    #[test]
    fn lying_length_prefix_gets_an_error_then_disconnect() {
        let (_core, server) = served_core();
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        raw.write_all(&(u32::MAX).to_le_bytes()).expect("write");
        let frame = read_frame(&mut raw).expect("error frame back");
        match proto::decode_response(&frame).expect("decodable") {
            Response::Error(e) => assert_eq!(e.code, proto::ERR_TOO_LARGE),
            other => panic!("unexpected: {other:?}"),
        }
        // The server hangs up after a lying prefix.
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).expect("peer closed");
        assert!(rest.is_empty());
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_get_a_malformed_error_and_the_conn_survives() {
        let (_core, server) = served_core();
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        let garbage = [0x5au8; 32];
        raw.write_all(&(garbage.len() as u32).to_le_bytes())
            .expect("write");
        raw.write_all(&garbage).expect("write");
        let frame = read_frame(&mut raw).expect("error frame back");
        match proto::decode_response(&frame).expect("decodable") {
            Response::Error(e) => assert_eq!(e.code, proto::ERR_MALFORMED),
            other => panic!("unexpected: {other:?}"),
        }
        // Framing is intact, so the connection still answers real requests.
        raw.set_nodelay(true).unwrap();
        let ping = proto::encode_request(&Request::Ping);
        raw.write_all(&(ping.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&ping).unwrap();
        let frame = read_frame(&mut raw).expect("pong back");
        assert_eq!(proto::decode_response(&frame).unwrap(), Response::Pong);
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_idle_connections() {
        let (_core, server) = served_core();
        let _idle = TcpClient::connect(server.addr()).expect("connect");
        // The idle connection is mid-read on the length prefix; shutdown
        // must still join it promptly.
        server.shutdown();
    }

    #[test]
    fn custom_poll_interval_answers_identically_to_the_default() {
        // The configurable shutdown-poll timeout is a liveness knob only:
        // answers are byte-identical at any value, and shutdown with an
        // idle (blocked) connection still joins promptly at a tight one.
        let core = QuerydCore::new(Store::new(&StoreConfig::default()));
        let server = serve_with(
            core.clone(),
            "127.0.0.1:0",
            ServerConfig {
                poll_interval: Duration::from_millis(2),
            },
        )
        .expect("bind");
        let mut tcp = TcpClient::connect(server.addr()).expect("connect");
        let q = Query::count_by(vec![Dim::Kind]);
        let (e1, r1) = tcp.query(&q).expect("tcp query");
        let (e2, r2) = InProcClient::new(core).query(&q).expect("inproc query");
        assert_eq!((e1, r1), (e2, r2));
        let _idle = TcpClient::connect(server.addr()).expect("connect");
        server.shutdown();
    }
}
