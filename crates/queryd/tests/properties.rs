//! Protocol totality proptests, mirroring `crates/ingest/tests/properties.rs`
//! for the queryd wire format: arbitrary request/response frames round-trip
//! canonically, and truncated, bit-flipped, length-lying or garbage input
//! always produces a typed error — never a panic, never an over-read — both
//! in the decoder and through the serving core's frame handler.

use cellrel_queryd::proto::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
    ServerStats, WireError,
};
use cellrel_queryd::QuerydCore;
use cellrel_store::{Dim, Filter, Metric, Query, Region, ResultRow, ResultSet, Store, StoreConfig};
use cellrel_types::{DataFailCause, FailureKind, FailureLayer, Isp, PhoneModelId, Rat};
use proptest::prelude::*;

/// One filter's raw material: a variant selector plus enough integers to
/// populate any variant. Grouped into ≤5-element tuples because the
/// vendored proptest implements `Strategy` only up to 5-tuples.
type FilterParts = (usize, u64, u64, i32);

fn build_filter((tag, a, b, code): &FilterParts) -> Filter {
    let (a, b) = (*a, *b);
    match tag % 9 {
        0 => Filter::Kind(FailureKind::from_index(a as usize % 5).expect("kind < 5")),
        1 => Filter::Isp(Isp::from_index(a as usize % 3).expect("isp < 3")),
        2 => Filter::Rat(Rat::from_index(a as usize % 4).expect("rat < 4")),
        3 => Filter::Model(PhoneModelId(a as u8)),
        4 => Filter::Region(Region::from_index(a as usize % 3).expect("region < 3")),
        5 => Filter::CauseClass(FailureLayer::from_index(a as usize % 5).expect("layer < 5")),
        6 => Filter::Cause(DataFailCause::from_code(*code)),
        7 => Filter::HasCause,
        _ => Filter::TimeRange {
            start_ms: a.min(b),
            end_ms: a.max(b),
        },
    }
}

/// Metric material: a variant selector plus a quantile. The quantile stays
/// finite so decoded queries compare equal structurally (NaN would not);
/// canonical re-encoding covers the bit-exactness either way.
fn build_metric((tag, q): &(usize, f64)) -> Metric {
    match tag % 8 {
        0 => Metric::Count,
        1 => Metric::DurationTotalMs,
        2 => Metric::MeanDurationMs,
        3 => Metric::MaxDurationMs,
        4 => Metric::Under30sShare,
        5 => Metric::QuantileMs(*q),
        6 => Metric::Devices,
        _ => Metric::FailingDevices,
    }
}

fn build_dims(indices: &[usize]) -> Vec<Dim> {
    indices
        .iter()
        .map(|i| Dim::from_index(i % 8).expect("dim < 8"))
        .collect()
}

/// Query material: filters, group-by dims, window, metric, top_k. The
/// codec must round-trip *any* query, legal for the engine or not (e.g.
/// duplicate dims) — validation is the engine's job, not the wire's.
type QueryParts = (Vec<FilterParts>, Vec<usize>, u64, (usize, f64), usize);

fn query_parts() -> impl Strategy<Value = QueryParts> {
    (
        prop::collection::vec((0usize..9, any::<u64>(), any::<u64>(), any::<i32>()), 0..6),
        prop::collection::vec(0usize..8, 0..4),
        any::<u64>(),
        (0usize..8, 0.0f64..1.0),
        0usize..1 << 32,
    )
}

fn build_query(p: &QueryParts) -> Query {
    let (filters, dims, window_ms, metric, top_k) = p;
    Query {
        filters: filters.iter().map(build_filter).collect(),
        group_by: build_dims(dims),
        window_ms: *window_ms,
        metric: build_metric(metric),
        top_k: *top_k,
    }
}

/// Row material: key, label bytes (lossy-decoded to exercise multi-byte
/// UTF-8), value bits (any pattern except NaN payloads that break `==`),
/// count.
type RowParts = (Vec<u64>, Vec<Vec<u8>>, u64, u64);

/// ResultSet material: dims, metric, rows, (cells_scanned, cells_matched).
type ResultSetParts = (Vec<usize>, (usize, f64), Vec<RowParts>, (u64, u64));

fn result_set_parts() -> impl Strategy<Value = ResultSetParts> {
    (
        prop::collection::vec(0usize..8, 0..4),
        (0usize..8, 0.0f64..1.0),
        prop::collection::vec(
            (
                prop::collection::vec(any::<u64>(), 0..4),
                prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 0..4),
                any::<u64>(),
                any::<u64>(),
            ),
            0..10,
        ),
        (any::<u64>(), any::<u64>()),
    )
}

fn build_result_set(p: &ResultSetParts) -> ResultSet {
    let (dims, metric, rows, (scanned, matched)) = p;
    ResultSet {
        group_by: build_dims(dims),
        metric: build_metric(metric),
        rows: rows
            .iter()
            .map(|(key, labels, bits, count)| ResultRow {
                key: key.clone(),
                labels: labels
                    .iter()
                    .map(|b| String::from_utf8_lossy(b).into_owned())
                    .collect(),
                // Normalise NaN bit patterns: the wire carries bits
                // faithfully, but the structural-equality assertion needs
                // `value == value`.
                value: {
                    let v = f64::from_bits(*bits);
                    if v.is_nan() {
                        0.0
                    } else {
                        v
                    }
                },
                count: *count,
            })
            .collect(),
        cells_scanned: *scanned,
        cells_matched: *matched,
    }
}

proptest! {
    /// Arbitrary query requests round-trip, and the encoding is canonical:
    /// re-encoding the decoded request reproduces the exact frame bytes.
    #[test]
    fn request_frames_roundtrip_arbitrary_queries(p in query_parts()) {
        let req = Request::Query(build_query(&p));
        let frame = encode_request(&req);
        let decoded = decode_request(&frame).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &req);
        prop_assert_eq!(encode_request(&decoded), frame);
    }

    /// Arbitrary result-set responses round-trip canonically — including
    /// rows whose key/label arities disagree with `group_by`, which a
    /// hostile server could send and a client must still parse or reject
    /// without panicking.
    #[test]
    fn response_frames_roundtrip_arbitrary_result_sets(
        epoch in any::<u64>(),
        p in result_set_parts(),
    ) {
        let resp = Response::Rows { epoch, result: build_result_set(&p) };
        let frame = encode_response(&resp);
        let decoded = decode_response(&frame).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &resp);
        prop_assert_eq!(encode_response(&decoded), frame);
    }

    /// Stats and error responses round-trip for arbitrary field values,
    /// including error details with arbitrary (lossy-decoded) text.
    #[test]
    fn stats_and_error_frames_roundtrip(
        fields in ((any::<u64>(), any::<u64>(), any::<u64>()), (any::<u64>(), any::<u64>())),
        code in any::<u8>(),
        detail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let ((epoch, inserted, cells), (devices, requests_served)) = fields;
        let stats = Response::Stats(ServerStats {
            epoch, inserted, cells, devices, requests_served,
        });
        let err = Response::Error(WireError {
            code,
            detail: String::from_utf8_lossy(&detail).into_owned(),
        });
        for resp in [stats, err] {
            let frame = encode_response(&resp);
            prop_assert_eq!(decode_response(&frame).expect("decodes"), resp);
        }
    }

    /// Every strict prefix of a valid frame is a typed error — the decoder
    /// never reads past the buffer and never panics on truncation.
    #[test]
    fn truncated_frames_are_errors_never_panics(
        p in query_parts(),
        cut_seed in any::<usize>(),
    ) {
        let frame = encode_request(&Request::Query(build_query(&p)));
        let cut = cut_seed % frame.len(); // strictly shorter prefix
        prop_assert!(decode_request(&frame[..cut]).is_err());
        prop_assert!(decode_response(&frame[..cut]).is_err());
    }

    /// A single flipped bit anywhere in a frame is always caught: by the
    /// magic/version/kind checks, the grammar, or the CRC trailer.
    #[test]
    fn corrupted_frames_are_errors_never_panics(
        epoch in any::<u64>(),
        p in result_set_parts(),
        at_seed in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut frame = encode_response(&Response::Rows {
            epoch,
            result: build_result_set(&p),
        });
        let at = at_seed % frame.len();
        frame[at] ^= mask;
        prop_assert!(decode_response(&frame).is_err());
        prop_assert!(decode_request(&frame).is_err());
    }

    /// Arbitrary garbage never panics either decoder.
    #[test]
    fn garbage_never_panics_the_decoders(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// The serving core is total end to end: *any* byte string in produces
    /// a decodable response frame out, and invalid input produces a typed
    /// wire error — the server never panics and never goes silent.
    #[test]
    fn core_answers_every_frame_with_a_valid_frame(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let core = QuerydCore::new(Store::new(&StoreConfig::default()));
        let out = core.handle_frame(&bytes);
        let resp = decode_response(&out).expect("server output always decodes");
        if decode_request(&bytes).is_err() {
            prop_assert!(matches!(resp, Response::Error(_)));
        }
    }

    /// Legal queries through the core come back as `Rows` tagged with the
    /// current epoch, whatever filters they carry. (Tag range excludes
    /// `TimeRange`: arbitrary bounds fail rollup-alignment validation,
    /// which is the engine's contract, not the protocol's.)
    #[test]
    fn core_answers_valid_single_dim_queries_with_rows(
        filters in prop::collection::vec((0usize..8, any::<u64>(), any::<u64>(), any::<i32>()), 0..4),
        dim in 0usize..8,
    ) {
        let core = QuerydCore::new(Store::new(&StoreConfig::default()));
        let q = Query {
            filters: filters.iter().map(build_filter).collect(),
            group_by: vec![Dim::from_index(dim % 8).expect("dim < 8")],
            window_ms: 0,
            metric: Metric::Count,
            top_k: 0,
        };
        let out = core.handle_frame(&encode_request(&Request::Query(q)));
        match decode_response(&out).expect("decodes") {
            Response::Rows { epoch, result } => {
                prop_assert_eq!(epoch, 0);
                prop_assert!(result.rows.is_empty()); // empty store
            }
            other => prop_assert!(false, "unexpected response {other:?}"),
        }
    }
}
