//! Columnar sealed segments: sorted key runs with per-column arrays.
//!
//! A [`ColumnSegment`] is the immutable, scan-optimised layout for sealed
//! cube data: cells sorted by [`CellKey`], stored as one array per key
//! dimension and one per aggregate column, with the per-cell quantile
//! sketches pooled into a single contiguous `(bucket, count)` arena
//! addressed by an offset column. The analytical-store recipe — sorted
//! runs, struct-of-arrays columns, zone maps — applied to the cube so the
//! query engine can run tight per-column filter loops and materialise only
//! matching rows, while every answer stays byte-identical to the row
//! engine (the differential suite in `tests/store_differential.rs` holds
//! that line).
//!
//! **Zone maps.** Each segment carries the inclusive `[min, max]` of every
//! key column ([`Zones`]). A conjunctive equality filter whose wanted value
//! falls outside a column's range provably matches no row of the segment,
//! so the scan can skip it without touching any column — see
//! [`Zones::may_match_value`] for the one subtle case (raw cause codes).
//!
//! **Merging.** Segments never mutate; compaction and merges build a new
//! segment by k-way merging sorted runs ([`merge_runs`]), folding cells
//! with equal keys by the same exact [`Merge`] algebra the row path uses —
//! so layout changes can never change a digest or a query answer.
//!
//! **Framing.** [`ColumnSegment::encode`] emits a self-delimiting `SC`
//! block (magic, version, varint/delta-coded columns, zone maps, CRC-32
//! trailer) embedded by the v2 store image next to the v1 row sections.
//! Decoding is total: truncated, bit-flipped, or adversarial bytes return
//! a typed [`PersistError`], never panic, and never allocate past the
//! input length; decoded sketch runs are re-validated so later
//! materialisation cannot fail.

use crate::cube::{Cell, CellKey};
use crate::persist::PersistError;
use cellrel_ingest::codec::{crc32, read_varint, write_varint};
use cellrel_sim::{Merge, SparseSketch};
use std::collections::BTreeMap;

/// Leading magic of an encoded segment block.
pub const SEGMENT_MAGIC: [u8; 2] = *b"SC";
/// Current segment block format version.
pub const SEGMENT_VERSION: u8 = 1;

/// Per-column inclusive `[min, max]` ranges over one segment's keys.
///
/// Zone maps let the scan skip a whole segment when a filter's wanted
/// value provably falls outside the column's range. They are recomputed
/// and cross-checked on decode, so a restored segment can never carry
/// zones that disagree with its columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Zones {
    /// Time-bucket range.
    pub bucket: (u32, u32),
    /// `FailureKind::index()` range.
    pub kind: (u8, u8),
    /// `Isp::index()` range.
    pub isp: (u8, u8),
    /// `Rat::index()` range.
    pub rat: (u8, u8),
    /// Model id range.
    pub model: (u8, u8),
    /// `Region::index()` range.
    pub region: (u8, u8),
    /// Cause-class range.
    pub cause_class: (u8, u8),
    /// Wire-encoded cause range (`0` = none, else `1 + zigzag(code)`).
    pub cause: (u64, u64),
}

impl Zones {
    /// True when a cell whose raw `cause` field equals `want` could exist
    /// in this segment — the pruning predicate for equality filters on the
    /// cause column.
    ///
    /// The cause filter compares *decoded* `i32` codes, and decoding
    /// truncates (`unzigzag(v - 1) as i32`), so values ≥ 2³² can alias a
    /// small code. The canonical encoding of any `i32` code is < 2³³, and
    /// every alias of it is ≥ 2³², so pruning on `want` is only sound when
    /// the segment's cause column stays below 2³² — then out-of-range
    /// `want` provably matches nothing.
    pub fn may_match_value(&self, want: u64) -> bool {
        if self.cause.1 >= 1 << 32 {
            return true; // aliasing possible: never prune
        }
        self.cause.0 <= want && want <= self.cause.1
    }
}

/// One immutable sealed run of cells in columnar layout. See the module
/// docs; build with [`ColumnSegment::from_rows`] or [`merge_runs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSegment {
    // Key columns, sorted by the composite CellKey order (bucket first).
    pub(crate) buckets: Vec<u32>,
    pub(crate) kinds: Vec<u8>,
    pub(crate) isps: Vec<u8>,
    pub(crate) rats: Vec<u8>,
    pub(crate) models: Vec<u8>,
    pub(crate) regions: Vec<u8>,
    pub(crate) cause_classes: Vec<u8>,
    pub(crate) causes: Vec<u64>,
    // Aggregate columns.
    pub(crate) counts: Vec<u64>,
    pub(crate) duration_totals: Vec<u64>,
    pub(crate) under_30s: Vec<u64>,
    // Sketch pool: cell i's run is sk_pool[sk_off[i]..sk_off[i+1]] with
    // exact extremes sk_min[i]/sk_max[i]; run counts sum to counts[i].
    pub(crate) sk_min: Vec<u64>,
    pub(crate) sk_max: Vec<u64>,
    pub(crate) sk_off: Vec<u32>,
    pub(crate) sk_pool: Vec<(u32, u64)>,
    zones: Zones,
}

impl ColumnSegment {
    fn empty() -> Self {
        ColumnSegment {
            buckets: Vec::new(),
            kinds: Vec::new(),
            isps: Vec::new(),
            rats: Vec::new(),
            models: Vec::new(),
            regions: Vec::new(),
            cause_classes: Vec::new(),
            causes: Vec::new(),
            counts: Vec::new(),
            duration_totals: Vec::new(),
            under_30s: Vec::new(),
            sk_min: Vec::new(),
            sk_max: Vec::new(),
            sk_off: vec![0],
            sk_pool: Vec::new(),
            zones: Zones::default(),
        }
    }

    fn push_row(&mut self, k: CellKey, c: &Cell) {
        debug_assert!(
            self.buckets.is_empty() || self.key_at(self.len() - 1) < k,
            "segment rows must be strictly key-ascending"
        );
        self.buckets.push(k.bucket);
        self.kinds.push(k.kind);
        self.isps.push(k.isp);
        self.rats.push(k.rat);
        self.models.push(k.model);
        self.regions.push(k.region);
        self.cause_classes.push(k.cause_class);
        self.causes.push(k.cause);
        self.counts.push(c.count);
        self.duration_totals.push(c.duration_ms_total);
        self.under_30s.push(c.under_30s);
        self.sk_min.push(c.sketch.min().unwrap_or(0));
        self.sk_max.push(c.sketch.max().unwrap_or(0));
        self.sk_pool
            .extend(c.sketch.nonzero_buckets().map(|(i, n)| (i as u32, n)));
        self.sk_off.push(self.sk_pool.len() as u32);
    }

    fn finish(mut self) -> Option<Self> {
        if self.buckets.is_empty() {
            return None;
        }
        self.zones = compute_zones(&self);
        Some(self)
    }

    /// Build a segment from `(key, cell)` rows; duplicate keys merge by
    /// the exact cell algebra, and rows need not arrive sorted. Returns
    /// `None` for an empty input (empty segments are never stored).
    pub fn from_rows(rows: impl IntoIterator<Item = (CellKey, Cell)>) -> Option<Self> {
        let mut sorted: BTreeMap<CellKey, Cell> = BTreeMap::new();
        for (k, c) in rows {
            match sorted.get_mut(&k) {
                Some(mine) => mine.merge(c),
                None => {
                    sorted.insert(k, c);
                }
            }
        }
        merge_runs(vec![Run::Map(sorted.into_iter())])
    }

    /// Cells in the run.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when the run holds no cells (never stored; a decode result
    /// can still be empty).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The per-column zone maps.
    pub fn zones(&self) -> &Zones {
        &self.zones
    }

    /// Reassemble row `i`'s key.
    pub(crate) fn key_at(&self, i: usize) -> CellKey {
        CellKey {
            bucket: self.buckets[i],
            kind: self.kinds[i],
            isp: self.isps[i],
            rat: self.rats[i],
            model: self.models[i],
            region: self.regions[i],
            cause_class: self.cause_classes[i],
            cause: self.causes[i],
        }
    }

    /// Row `i`'s sketch as a raw `(min, max, run)` triple over the pool —
    /// the zero-copy form [`SparseSketch::merge_run`] accepts.
    pub(crate) fn sketch_run(&self, i: usize) -> (u64, u64, &[(u32, u64)]) {
        let lo = self.sk_off[i] as usize;
        let hi = self.sk_off[i + 1] as usize;
        (self.sk_min[i], self.sk_max[i], &self.sk_pool[lo..hi])
    }

    /// Materialise row `i` as a row-layout cell.
    pub(crate) fn cell_at(&self, i: usize) -> Cell {
        let (min, max, run) = self.sketch_run(i);
        let sketch = SparseSketch::from_parts(min, max, run.iter().map(|&(b, n)| (b as usize, n)))
            .expect("segment sketch runs are validated on build and decode");
        Cell {
            count: self.counts[i],
            duration_ms_total: self.duration_totals[i],
            under_30s: self.under_30s[i],
            sketch,
        }
    }

    /// Iterate `(key, cell)` rows in key order (materialising each cell).
    pub fn rows(&self) -> impl Iterator<Item = (CellKey, Cell)> + '_ {
        (0..self.len()).map(|i| (self.key_at(i), self.cell_at(i)))
    }

    /// Index range `[i0, i1)` of rows whose bucket lies in `[lo, hi)`.
    pub(crate) fn bucket_range(&self, lo: u32, hi: u32) -> (usize, usize) {
        let i0 = self.buckets.partition_point(|&b| b < lo);
        let i1 = self.buckets.partition_point(|&b| b < hi);
        (i0, i1)
    }

    /// Approximate resident bytes (column entries + pool entries), the
    /// analogue of the row side's per-cell accounting.
    pub(crate) fn approx_bytes(&self) -> u64 {
        // Per row: bucket 4 + six u8 + cause/count/duration/under/min/max
        // (6×8) + one pool offset 4 = 62; pool entries 12 each.
        self.len() as u64 * 62 + self.sk_pool.len() as u64 * 12 + 4
    }

    /// Encode as a self-delimiting `SC` block (see the module docs).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&SEGMENT_MAGIC);
        out.push(SEGMENT_VERSION);
        let n = self.len();
        write_varint(out, n as u64);
        // Buckets: first raw, then non-negative deltas (sorted run).
        let mut prev = 0u32;
        for (i, &b) in self.buckets.iter().enumerate() {
            let delta = if i == 0 { b } else { b - prev };
            write_varint(out, u64::from(delta));
            prev = b;
        }
        for col in [
            &self.kinds,
            &self.isps,
            &self.rats,
            &self.models,
            &self.regions,
            &self.cause_classes,
        ] {
            out.extend_from_slice(col);
        }
        for col in [
            &self.causes,
            &self.counts,
            &self.duration_totals,
            &self.under_30s,
            &self.sk_min,
            &self.sk_max,
        ] {
            for &v in col.iter() {
                write_varint(out, v);
            }
        }
        // Sketch pool: per-cell nnz, then delta-coded (index, count) pairs
        // exactly like the v1 row sketches.
        for i in 0..n {
            let (_, _, run) = self.sketch_run(i);
            write_varint(out, run.len() as u64);
            let mut prev_idx = 0u32;
            for (j, &(idx, cnt)) in run.iter().enumerate() {
                let delta = if j == 0 { idx } else { idx - prev_idx };
                write_varint(out, u64::from(delta));
                write_varint(out, cnt);
                prev_idx = idx;
            }
        }
        // Zone maps, written (and cross-checked on decode) so readers can
        // prune without trusting a recomputation they didn't do.
        let z = &self.zones;
        for v in [u64::from(z.bucket.0), u64::from(z.bucket.1)] {
            write_varint(out, v);
        }
        for (lo, hi) in [z.kind, z.isp, z.rat, z.model, z.region, z.cause_class] {
            write_varint(out, u64::from(lo));
            write_varint(out, u64::from(hi));
        }
        write_varint(out, z.cause.0);
        write_varint(out, z.cause.1);
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Decode one `SC` block starting at `*pos`, advancing `*pos` past its
    /// CRC trailer. Total: every failure mode is a typed [`PersistError`].
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        let start = *pos;
        let header = bytes.get(start..start + 3).ok_or(PersistError::TooShort)?;
        if header[..2] != SEGMENT_MAGIC {
            return Err(PersistError::BadMagic);
        }
        if header[2] != SEGMENT_VERSION {
            return Err(PersistError::BadVersion(header[2]));
        }
        *pos = start + 3;
        let n = rv(bytes, pos)? as usize;
        if n > bytes.len().saturating_sub(*pos) {
            return Err(PersistError::Malformed("segment row count exceeds input"));
        }
        let mut seg = ColumnSegment::empty();
        let mut prev = 0u64;
        for i in 0..n {
            let delta = rv(bytes, pos)?;
            let b = if i == 0 {
                delta
            } else {
                prev.checked_add(delta)
                    .ok_or(PersistError::Malformed("bucket overflow"))?
            };
            if b > u64::from(u32::MAX) {
                return Err(PersistError::Malformed("bucket exceeds u32"));
            }
            prev = b;
            seg.buckets.push(b as u32);
        }
        for col in [
            &mut seg.kinds,
            &mut seg.isps,
            &mut seg.rats,
            &mut seg.models,
            &mut seg.regions,
            &mut seg.cause_classes,
        ] {
            let raw = bytes.get(*pos..*pos + n).ok_or(PersistError::TooShort)?;
            col.extend_from_slice(raw);
            *pos += n;
        }
        for col in [
            &mut seg.causes,
            &mut seg.counts,
            &mut seg.duration_totals,
            &mut seg.under_30s,
            &mut seg.sk_min,
            &mut seg.sk_max,
        ] {
            col.reserve(n);
            for _ in 0..n {
                col.push(rv(bytes, pos)?);
            }
        }
        // Keys must come out strictly ascending — equal-bucket runs order
        // by the remaining key columns, which the deltas above can't check.
        for i in 1..n {
            if seg.key_at(i) <= seg.key_at(i - 1) {
                return Err(PersistError::Malformed("segment keys out of order"));
            }
        }
        for i in 0..n {
            let nnz = rv(bytes, pos)? as usize;
            if nnz > bytes.len().saturating_sub(*pos) / 2 + 1 {
                return Err(PersistError::Malformed("sketch length exceeds input"));
            }
            let run_start = seg.sk_pool.len();
            let mut idx = 0u32;
            for j in 0..nnz {
                let delta = rv(bytes, pos)?;
                if j > 0 && delta == 0 {
                    return Err(PersistError::Malformed("zero sketch index delta"));
                }
                let d =
                    u32::try_from(delta).map_err(|_| PersistError::Malformed("sketch index"))?;
                idx = if j == 0 {
                    d
                } else {
                    idx.checked_add(d)
                        .ok_or(PersistError::Malformed("sketch index overflow"))?
                };
                let cnt = rv(bytes, pos)?;
                seg.sk_pool.push((idx, cnt));
            }
            seg.sk_off.push(seg.sk_pool.len() as u32);
            // Re-validate through the sketch's own total constructor so a
            // later materialisation of this row can never fail, and pin the
            // cross-column invariants the builder guarantees.
            let run = &seg.sk_pool[run_start..];
            let sk = SparseSketch::from_parts(
                seg.sk_min[i],
                seg.sk_max[i],
                run.iter().map(|&(b, c)| (b as usize, c)),
            )
            .ok_or(PersistError::Malformed("invalid segment sketch run"))?;
            if sk.count() != seg.counts[i] || seg.under_30s[i] > seg.counts[i] {
                return Err(PersistError::Malformed("segment cell/sketch mismatch"));
            }
        }
        let mut zones = Zones::default();
        let blo = rv(bytes, pos)?;
        let bhi = rv(bytes, pos)?;
        if blo > u64::from(u32::MAX) || bhi > u64::from(u32::MAX) {
            return Err(PersistError::Malformed("zone bucket exceeds u32"));
        }
        zones.bucket = (blo as u32, bhi as u32);
        for field in [
            &mut zones.kind,
            &mut zones.isp,
            &mut zones.rat,
            &mut zones.model,
            &mut zones.region,
            &mut zones.cause_class,
        ] {
            *field = (rv_u8(bytes, pos)?, rv_u8(bytes, pos)?);
        }
        zones.cause = (rv(bytes, pos)?, rv(bytes, pos)?);
        seg.zones = zones;
        if !seg.is_empty() && compute_zones(&seg) != zones {
            return Err(PersistError::Malformed("zone maps disagree with columns"));
        }
        let crc_bytes = bytes.get(*pos..*pos + 4).ok_or(PersistError::TooShort)?;
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte slice"));
        if crc32(&bytes[start..*pos]) != stored {
            return Err(PersistError::BadCrc);
        }
        *pos += 4;
        Ok(seg)
    }
}

fn rv(bytes: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    read_varint(bytes, pos).map_err(|_| PersistError::Varint)
}

fn rv_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, PersistError> {
    let v = rv(bytes, pos)?;
    u8::try_from(v).map_err(|_| PersistError::Malformed("zone field exceeds u8"))
}

fn compute_zones(seg: &ColumnSegment) -> Zones {
    fn range<T: Copy + Ord>(col: &[T]) -> (T, T) {
        let lo = *col.iter().min().expect("non-empty segment");
        let hi = *col.iter().max().expect("non-empty segment");
        (lo, hi)
    }
    Zones {
        bucket: (seg.buckets[0], seg.buckets[seg.buckets.len() - 1]),
        kind: range(&seg.kinds),
        isp: range(&seg.isps),
        rat: range(&seg.rats),
        model: range(&seg.models),
        region: range(&seg.regions),
        cause_class: range(&seg.cause_classes),
        cause: range(&seg.causes),
    }
}

/// One sorted input run for [`merge_runs`]: either an ordered map being
/// dissolved (hot cells, folded rows) or an existing segment passed
/// through by reference.
pub(crate) enum Run<'a> {
    /// Rows from an ordered map (already key-ascending).
    Map(std::collections::btree_map::IntoIter<CellKey, Cell>),
    /// Rows of an existing segment.
    Seg(&'a ColumnSegment, usize),
}

impl Iterator for Run<'_> {
    type Item = (CellKey, Cell);

    fn next(&mut self) -> Option<(CellKey, Cell)> {
        match self {
            Run::Map(it) => it.next(),
            Run::Seg(seg, i) => {
                if *i < seg.len() {
                    let row = (seg.key_at(*i), seg.cell_at(*i));
                    *i += 1;
                    Some(row)
                } else {
                    None
                }
            }
        }
    }
}

impl<'a> Run<'a> {
    /// A run over a whole segment.
    pub(crate) fn seg(seg: &'a ColumnSegment) -> Self {
        Run::Seg(seg, 0)
    }
}

/// K-way merge sorted runs into one canonical segment, folding cells with
/// equal keys by exact cell merge. The result depends only on the merged
/// *content* (cell merge is commutative and associative), never on run
/// order — which keeps partition merges commutative even when both sides
/// carry segments. Returns `None` when the runs hold no rows.
pub(crate) fn merge_runs(runs: Vec<Run<'_>>) -> Option<ColumnSegment> {
    let mut iters: Vec<std::iter::Peekable<Run<'_>>> =
        runs.into_iter().map(Iterator::peekable).collect();
    let mut seg = ColumnSegment::empty();
    loop {
        let mut min: Option<CellKey> = None;
        for it in &mut iters {
            if let Some((k, _)) = it.peek() {
                min = Some(match min {
                    None => *k,
                    Some(m) => m.min(*k),
                });
            }
        }
        let Some(key) = min else { break };
        let mut acc: Option<Cell> = None;
        for it in &mut iters {
            while it.peek().is_some_and(|(k, _)| *k == key) {
                let (_, c) = it.next().expect("peeked");
                match &mut acc {
                    Some(a) => a.merge(c),
                    None => acc = Some(c),
                }
            }
        }
        seg.push_row(key, &acc.expect("at least one run held the min key"));
    }
    seg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(bucket: u32, kind: u8, cause: u64) -> CellKey {
        CellKey {
            bucket,
            kind,
            isp: 1,
            rat: 2,
            model: 3,
            region: 0,
            cause_class: if cause == 0 { 255 } else { 2 },
            cause,
        }
    }

    fn cell(durations: &[u64]) -> Cell {
        let mut c = Cell::default();
        for &d in durations {
            c.push(d);
        }
        c
    }

    #[test]
    fn from_rows_sorts_merges_and_zones() {
        let seg = ColumnSegment::from_rows([
            (key(9, 1, 0), cell(&[5_000])),
            (key(2, 0, 3), cell(&[40_000, 10_000])),
            (key(9, 1, 0), cell(&[7_000])),
        ])
        .unwrap();
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.key_at(0), key(2, 0, 3));
        let (k, c) = seg.rows().nth(1).unwrap();
        assert_eq!(k, key(9, 1, 0));
        assert_eq!(c.count, 2);
        assert_eq!(c.duration_ms_total, 12_000);
        assert_eq!(c.under_30s, 2);
        assert_eq!(c.sketch.max(), Some(7_000));
        let z = seg.zones();
        assert_eq!(z.bucket, (2, 9));
        assert_eq!(z.kind, (0, 1));
        assert_eq!(z.cause, (0, 3));
        assert!(ColumnSegment::from_rows([]).is_none());
    }

    #[test]
    fn merge_runs_is_run_order_invariant() {
        let a = ColumnSegment::from_rows([
            (key(1, 0, 0), cell(&[1_000])),
            (key(5, 2, 7), cell(&[2_000])),
        ])
        .unwrap();
        let b = ColumnSegment::from_rows([
            (key(1, 0, 0), cell(&[9_000])),
            (key(3, 1, 0), cell(&[4_000])),
        ])
        .unwrap();
        let ab = merge_runs(vec![Run::seg(&a), Run::seg(&b)]).unwrap();
        let ba = merge_runs(vec![Run::seg(&b), Run::seg(&a)]).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 3);
        let (_, folded) = ab.rows().next().unwrap();
        assert_eq!(folded.count, 2);
        assert_eq!(folded.duration_ms_total, 10_000);
    }

    #[test]
    fn bucket_range_brackets_edges_exactly() {
        let seg = ColumnSegment::from_rows(
            [0u32, 4, 4, 8, 9]
                .iter()
                .enumerate()
                .map(|(i, &b)| (key(b, i as u8 % 5, 0), cell(&[1_000]))),
        )
        .unwrap();
        assert_eq!(seg.bucket_range(0, u32::MAX), (0, 5));
        assert_eq!(seg.bucket_range(4, 8), (1, 3));
        assert_eq!(seg.bucket_range(8, 9), (3, 4));
        assert_eq!(seg.bucket_range(10, 20), (5, 5));
    }

    #[test]
    fn encode_decode_round_trips() {
        let seg = ColumnSegment::from_rows([
            (key(0, 0, 0), cell(&[100, 200, 400_000])),
            (key(7, 4, 9), cell(&[31_000])),
            (key(7, 4, 11), cell(&[])),
        ])
        .unwrap();
        let mut bytes = Vec::new();
        seg.encode(&mut bytes);
        let mut pos = 0;
        let back = ColumnSegment::decode(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back, seg);
    }

    #[test]
    fn decode_rejects_corruption() {
        let seg = ColumnSegment::from_rows([(key(3, 1, 5), cell(&[10_000, 20_000]))]).unwrap();
        let mut bytes = Vec::new();
        seg.encode(&mut bytes);
        for cut in 0..bytes.len() {
            let mut pos = 0;
            assert!(
                ColumnSegment::decode(&bytes[..cut], &mut pos).is_err(),
                "truncation at {cut} must fail"
            );
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let mut pos = 0;
            assert!(
                ColumnSegment::decode(&bad, &mut pos).is_err(),
                "bit flip at {i} must fail"
            );
        }
    }

    #[test]
    fn cause_zone_pruning_is_alias_aware() {
        let z = Zones {
            cause: (3, 9),
            ..Zones::default()
        };
        assert!(z.may_match_value(3));
        assert!(z.may_match_value(9));
        assert!(!z.may_match_value(2));
        assert!(!z.may_match_value(10));
        // A segment holding huge raw cause values can alias any code after
        // i32 truncation: pruning must switch off entirely.
        let huge = Zones {
            cause: (3, 1 << 33),
            ..Zones::default()
        };
        assert!(huge.may_match_value(2));
    }
}
