//! The cube: partitioned, mergeable multi-dimensional aggregates.
//!
//! Every accepted failure record lands in exactly one **cell**, addressed
//! by a [`CellKey`] — (time bucket, failure kind, ISP, RAT, device model,
//! region, fail-cause class, fail-cause code). A cell holds only mergeable
//! partial aggregates (counts, exact duration sums, a [`SparseSketch`]),
//! so cells, partitions and whole stores combine with the workspace
//! [`Merge`] trait by exact integer/bucket addition: commutative,
//! associative, and therefore bit-identical at any shard order or thread
//! count — the same algebra the ingest collector and the parallel study
//! drivers rely on.
//!
//! **Partitions.** Records route to `device % partitions`. A partition is
//! an ordered map from [`CellKey`] to [`Cell`] plus a per-device directory
//! (model / region / ISP / failure count) that supplies the denominators
//! for prevalence-style metrics (paper Table 1) without a second pass over
//! the population.
//!
//! **Compaction.** [`Store::compact`] folds *sealed* time buckets — those
//! strictly below the newest rollup boundary — onto rollup-aligned bucket
//! starts. Because a query merges the cells of a group anyway and cell
//! merge is associative, pre-merging them never changes an answer; the
//! query layer enforces that time windows and ranges are rollup-aligned so
//! the grouping itself cannot observe the fold. [`Store::digest`] hashes a
//! *canonical rolled-up view*, so it is additionally invariant across
//! compaction on/off and across the partition count.
//!
//! **Tiers.** A partition holds a mutable row tier (the `BTreeMap` hot
//! cells new records land in) plus at most a handful of immutable
//! [`ColumnSegment`] runs holding sealed data in columnar layout.
//! Compaction moves folded cells into a single segment by k-way merging
//! sorted runs; [`Store::seal_columnar`] moves *all* cells columnar
//! without folding (the stream pipeline seals finished windows this way).
//! Both are pure layout changes: answers, digests and merge results are
//! identical whether a cell lives in the row or the columnar tier.

use crate::columnar::{merge_runs, ColumnSegment, Run};
use cellrel_ingest::codec::{unzigzag, zigzag};
use cellrel_ingest::AcceptedSink;
use cellrel_sim::{run_sharded, Digest64, Merge, SparseSketch, Telemetry};
use cellrel_types::{DeviceId, FailureEvent, Isp, PhoneModelId};
use cellrel_workload::{EventSink, Population};
use std::collections::BTreeMap;

/// Coarse geography dimension: the population model distinguishes urban
/// from remote-region devices (§3.4's regional disparity analysis); records
/// arriving without a device directory are `Unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Device in an urban deployment area.
    Urban,
    /// Device in a remote/rural deployment area.
    Remote,
    /// No directory entry for the device.
    Unknown,
}

impl Region {
    /// Every region, in dense-index order.
    pub const ALL: [Region; 3] = [Region::Urban, Region::Remote, Region::Unknown];

    /// Dense index (matches [`Self::from_index`]).
    pub const fn index(self) -> usize {
        match self {
            Region::Urban => 0,
            Region::Remote => 1,
            Region::Unknown => 2,
        }
    }

    /// Inverse of [`Self::index`].
    pub const fn from_index(i: usize) -> Option<Region> {
        match i {
            0 => Some(Region::Urban),
            1 => Some(Region::Remote),
            2 => Some(Region::Unknown),
            _ => None,
        }
    }

    /// Printable label.
    pub const fn label(self) -> &'static str {
        match self {
            Region::Urban => "urban",
            Region::Remote => "remote",
            Region::Unknown => "unknown",
        }
    }
}

/// Store tuning knobs. Routing and bucketing parameters are part of the
/// deterministic state: two stores only merge if their configs agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Width of one time bucket in milliseconds (default: one day).
    pub bucket_ms: u64,
    /// Buckets folded per rollup bucket by compaction (default: 7 — weekly
    /// rollups over daily buckets). Time windows and ranges must be
    /// multiples of `bucket_ms * rollup_buckets` so compaction stays
    /// query-transparent.
    pub rollup_buckets: u32,
    /// Partition count for `device % partitions` routing.
    pub partitions: usize,
    /// Auto-compact a partition after this many inserts (0 = manual
    /// compaction only). Answers and digests do not depend on this knob.
    pub auto_compact_every: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            bucket_ms: 86_400_000,
            rollup_buckets: 7,
            partitions: 16,
            auto_compact_every: 0,
        }
    }
}

/// A cell address: one point in the cube's dimension space.
///
/// Ordered with `bucket` first so a partition's cell map is time-ordered
/// and time-range queries prune to a key range instead of a full scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    /// Time bucket index: `start_ms / bucket_ms` (possibly rollup-aligned
    /// after compaction).
    pub bucket: u32,
    /// `FailureKind::index()`.
    pub kind: u8,
    /// `Isp::index()`.
    pub isp: u8,
    /// `Rat::index()`.
    pub rat: u8,
    /// `PhoneModelId.0` (1-based), or 0 when the device is not in the
    /// directory.
    pub model: u8,
    /// `Region::index()`.
    pub region: u8,
    /// `FailureLayer::index()` of the cause, or [`NO_CAUSE_CLASS`].
    pub cause_class: u8,
    /// Fail-cause code, wire-encoded like the ingest codec: 0 = no cause,
    /// else `1 + zigzag(code)` (codes can be negative).
    pub cause: u64,
}

/// `cause_class` marker for records without a fail cause.
pub const NO_CAUSE_CLASS: u8 = 255;

/// `DeviceRec::isp` marker for devices without a directory entry. The
/// directory is the only ISP source for device records — falling back to an
/// event's in-situ ISP would make the record depend on which of the
/// device's events arrived first, breaking shard-order invariance.
pub const NO_ISP: u8 = 255;

impl CellKey {
    /// Decode the cause field back to the raw Android error code.
    pub fn cause_code(&self) -> Option<i32> {
        (self.cause != 0).then(|| unzigzag(self.cause - 1) as i32)
    }

    fn absorb_into(&self, d: &mut Digest64) {
        d.write_u64(u64::from(self.bucket));
        d.write_u64(u64::from(self.kind));
        d.write_u64(u64::from(self.isp));
        d.write_u64(u64::from(self.rat));
        d.write_u64(u64::from(self.model));
        d.write_u64(u64::from(self.region));
        d.write_u64(u64::from(self.cause_class));
        d.write_u64(self.cause);
    }
}

/// One cell's partial aggregates. Everything merges by exact addition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cell {
    /// Records aggregated.
    pub count: u64,
    /// Exact total duration, integer milliseconds.
    pub duration_ms_total: u64,
    /// Records shorter than 30 s (§3.1's headline share).
    pub under_30s: u64,
    /// Duration sketch (milliseconds) for quantile queries.
    pub sketch: SparseSketch,
}

impl Cell {
    /// Fold one record's duration in.
    pub fn push(&mut self, duration_ms: u64) {
        self.count += 1;
        self.duration_ms_total += duration_ms;
        if duration_ms < 30_000 {
            self.under_30s += 1;
        }
        self.sketch.push(duration_ms);
    }

    fn absorb_into(&self, d: &mut Digest64) {
        d.write_u64(self.count);
        d.write_u64(self.duration_ms_total);
        d.write_u64(self.under_30s);
        self.sketch.absorb_into(d);
    }

    /// [`Merge::merge`] without consuming the other cell — query-time group
    /// accumulation folds thousands of borrowed cells per group, and
    /// cloning each one's sketch just to consume it would dominate the
    /// scan.
    pub fn merge_ref(&mut self, o: &Cell) {
        self.count += o.count;
        self.duration_ms_total += o.duration_ms_total;
        self.under_30s += o.under_30s;
        self.sketch.merge_ref(&o.sketch);
    }
}

impl Merge for Cell {
    fn merge(&mut self, o: Self) {
        self.merge_ref(&o);
    }
}

/// A device's directory entry inside a partition: static dimensions plus
/// its recorded failure count (the Table-1 prevalence numerator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceRec {
    /// `PhoneModelId.0`, or 0 when unknown.
    pub model: u8,
    /// `Region::index()`.
    pub region: u8,
    /// `Isp::index()`, or [`NO_ISP`] when the directory does not list the
    /// device.
    pub isp: u8,
    /// Records stored for this device.
    pub failures: u64,
}

impl Merge for DeviceRec {
    fn merge(&mut self, o: Self) {
        self.failures += o.failures;
        // All shards derive a device's static dims from the same directory,
        // so these agree in practice; elementwise max keeps the merge
        // commutative even on inconsistent streams.
        self.model = self.model.max(o.model);
        self.region = self.region.max(o.region);
        self.isp = self.isp.max(o.isp);
    }
}

/// The static dimensions a [`DeviceDirectory`] supplies per device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceDim {
    /// Phone model, when known.
    pub model: Option<PhoneModelId>,
    /// Deployment region.
    pub region: Region,
    /// Subscribed ISP, when known (events carry their own ISP; this one
    /// seeds the device directory for zero-failure devices).
    pub isp: Option<Isp>,
}

impl DeviceDim {
    /// The all-unknown dimension set (no directory available).
    pub const UNKNOWN: DeviceDim = DeviceDim {
        model: None,
        region: Region::Unknown,
        isp: None,
    };
}

/// Maps device ids to their static dimensions, built once from the
/// generated population (in production: the subscriber database).
#[derive(Debug, Clone, Default)]
pub struct DeviceDirectory {
    dims: Vec<DeviceDim>,
    /// Ownership mask for sharded deployments: when present, [`iter`]
    /// (and therefore [`Store::register_population`]) yields only owned
    /// ids, while [`dim_of`] keeps answering for the whole fleet — any
    /// shard may look up any device's static dimensions.
    ///
    /// [`iter`]: DeviceDirectory::iter
    /// [`dim_of`]: DeviceDirectory::dim_of
    owned: Option<Vec<bool>>,
}

impl DeviceDirectory {
    /// Build from a generated population (device ids are dense 0..n).
    pub fn from_population(pop: &Population) -> Self {
        let mut dims = vec![DeviceDim::UNKNOWN; pop.len()];
        for dev in pop.devices() {
            if let Some(slot) = dims.get_mut(dev.id.0 as usize) {
                *slot = DeviceDim {
                    model: Some(dev.model),
                    region: if dev.remote_region {
                        Region::Remote
                    } else {
                        Region::Urban
                    },
                    isp: Some(dev.isp),
                };
            }
        }
        DeviceDirectory { dims, owned: None }
    }

    /// A shard-local view: [`DeviceDirectory::dim_of`] still answers for
    /// every device, but [`DeviceDirectory::iter`] yields only the
    /// devices `keep` selects — so a sharded store's
    /// [`Store::register_population`] seeds exactly its ownership slice,
    /// and the union of shard views reproduces the full directory.
    pub fn filtered(&self, keep: impl Fn(DeviceId) -> bool) -> Self {
        let owned = (0..self.dims.len())
            .map(|i| keep(DeviceId(i as u32)))
            .collect();
        DeviceDirectory {
            dims: self.dims.clone(),
            owned: Some(owned),
        }
    }

    /// The dimensions of a device ([`DeviceDim::UNKNOWN`] if unlisted).
    pub fn dim_of(&self, device: DeviceId) -> DeviceDim {
        self.dims
            .get(device.0 as usize)
            .copied()
            .unwrap_or(DeviceDim::UNKNOWN)
    }

    /// Devices listed.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when no devices are listed.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Iterate `(device id, dims)` in id order, skipping devices outside
    /// the ownership mask of a [`DeviceDirectory::filtered`] view.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, DeviceDim)> + '_ {
        self.dims
            .iter()
            .enumerate()
            .filter(|(i, _)| self.owned.as_ref().map_or(true, |m| m[*i]))
            .map(|(i, d)| (DeviceId(i as u32), *d))
    }
}

/// One partition: time-ordered cells plus the device directory slice whose
/// ids route here.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Partition {
    pub(crate) cells: BTreeMap<CellKey, Cell>,
    /// Sealed columnar runs (key-sorted, immutable). Compaction and
    /// merging keep this collapsed to at most one run.
    pub(crate) segments: Vec<ColumnSegment>,
    pub(crate) devices: BTreeMap<u32, DeviceRec>,
    /// Records inserted (monotonic; not reduced by compaction).
    pub(crate) inserted: u64,
    /// Compaction sweeps run.
    pub(crate) compactions: u64,
    /// Cells removed by folding (a sweep that folds nothing still counts
    /// as a sweep).
    pub(crate) cells_folded: u64,
    /// Inserts since the last sweep (drives `auto_compact_every`).
    pub(crate) since_compact: u64,
}

impl Partition {
    fn physical_cells(&self) -> usize {
        self.cells.len() + self.segments.iter().map(ColumnSegment::len).sum::<usize>()
    }

    fn compact(&mut self, rollup: u32) {
        self.compactions += 1;
        self.since_compact = 0;
        let max_hot = self.cells.keys().next_back().map(|k| k.bucket);
        let max_seg = self.segments.iter().map(|s| s.zones().bucket.1).max();
        let Some(max_bucket) = max_hot.into_iter().chain(max_seg).max() else {
            return;
        };
        let seal = (max_bucket / rollup) * rollup;
        if seal == 0 && self.segments.len() <= 1 {
            return;
        }
        let before = self.physical_cells();
        // Hot cells below the seal fold onto rollup starts and leave the
        // row tier; open buckets stay hot and mutable.
        let mut dissolved: BTreeMap<CellKey, Cell> = BTreeMap::new();
        let mut open: BTreeMap<CellKey, Cell> = BTreeMap::new();
        for (mut key, cell) in std::mem::take(&mut self.cells) {
            if key.bucket < seal {
                key.bucket = (key.bucket / rollup) * rollup;
                match dissolved.get_mut(&key) {
                    Some(c) => c.merge(cell),
                    None => {
                        dissolved.insert(key, cell);
                    }
                }
            } else {
                open.insert(key, cell);
            }
        }
        self.cells = open;
        // An existing run stays sorted under the fold only if the fold
        // touches none of its rows (open bucket, or already aligned — the
        // fold is then the identity). Runs with unaligned sealed rows
        // (stream seals) dissolve into the fold map, which re-sorts them.
        let old = std::mem::take(&mut self.segments);
        let stable: Vec<bool> = old
            .iter()
            .map(|s| s.buckets.iter().all(|&b| b >= seal || b % rollup == 0))
            .collect();
        for (seg, keep) in old.iter().zip(&stable) {
            if *keep {
                continue;
            }
            for (mut key, cell) in seg.rows() {
                if key.bucket < seal {
                    key.bucket = (key.bucket / rollup) * rollup;
                }
                match dissolved.get_mut(&key) {
                    Some(c) => c.merge(cell),
                    None => {
                        dissolved.insert(key, cell);
                    }
                }
            }
        }
        if dissolved.is_empty() && old.len() <= 1 && stable.iter().all(|&s| s) {
            self.segments = old; // already sealed: a no-op sweep
        } else {
            let mut runs: Vec<Run<'_>> = vec![Run::Map(dissolved.into_iter())];
            runs.extend(
                old.iter()
                    .zip(&stable)
                    .filter(|(_, s)| **s)
                    .map(|(seg, _)| Run::seg(seg)),
            );
            self.segments = merge_runs(runs).into_iter().collect();
        }
        self.cells_folded += (before - self.physical_cells()) as u64;
    }

    /// Move every hot cell into the (single) sealed columnar run, without
    /// any bucket folding — a pure layout change.
    fn seal_columnar(&mut self) {
        if self.cells.is_empty() && self.segments.len() <= 1 {
            return;
        }
        let hot = std::mem::take(&mut self.cells);
        let old = std::mem::take(&mut self.segments);
        let mut runs: Vec<Run<'_>> = vec![Run::Map(hot.into_iter())];
        runs.extend(old.iter().map(Run::seg));
        self.segments = merge_runs(runs).into_iter().collect();
    }
}

impl Merge for Partition {
    fn merge(&mut self, o: Self) {
        for (k, c) in o.cells {
            match self.cells.get_mut(&k) {
                Some(mine) => mine.merge(c),
                None => {
                    self.cells.insert(k, c);
                }
            }
        }
        // Segments from both sides collapse into one canonical run: the
        // k-way result depends only on the merged content (cell merge is
        // commutative and associative), so `a.merge(b) == b.merge(a)`
        // holds structurally even when both sides arrive sealed.
        if self.segments.len() + o.segments.len() >= 2 {
            let mine = std::mem::take(&mut self.segments);
            let mut runs: Vec<Run<'_>> = mine.iter().map(Run::seg).collect();
            runs.extend(o.segments.iter().map(Run::seg));
            self.segments = merge_runs(runs).into_iter().collect();
        } else if self.segments.is_empty() {
            self.segments = o.segments;
        }
        for (id, rec) in o.devices {
            match self.devices.get_mut(&id) {
                Some(mine) => mine.merge(rec),
                None => {
                    self.devices.insert(id, rec);
                }
            }
        }
        self.inserted += o.inserted;
        self.compactions += o.compactions;
        self.cells_folded += o.cells_folded;
        self.since_compact += o.since_compact;
    }
}

/// The analytics cube. See the module docs for the data model and the
/// determinism argument; see [`crate::query`] for reading it back out.
#[derive(Debug, Clone, PartialEq)]
pub struct Store {
    pub(crate) cfg: StoreConfig,
    pub(crate) partitions: Vec<Partition>,
}

impl Store {
    /// Fresh empty store.
    pub fn new(cfg: &StoreConfig) -> Self {
        let parts = cfg.partitions.max(1);
        Store {
            cfg: StoreConfig {
                partitions: parts,
                rollup_buckets: cfg.rollup_buckets.max(1),
                bucket_ms: cfg.bucket_ms.max(1),
                auto_compact_every: cfg.auto_compact_every,
            },
            partitions: vec![Partition::default(); parts],
        }
    }

    /// The (normalised) configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Route a record into its cell. `dim` carries the device's static
    /// dimensions (pass [`DeviceDim::UNKNOWN`] when no directory exists).
    pub fn record(&mut self, e: &FailureEvent, dim: DeviceDim) {
        let bucket = (e.start.as_millis() / self.cfg.bucket_ms).min(u64::from(u32::MAX)) as u32;
        let key = CellKey {
            bucket,
            kind: e.kind.index() as u8,
            isp: e.ctx.isp.index() as u8,
            rat: e.ctx.rat.index() as u8,
            model: dim.model.map_or(0, |m| m.0),
            region: dim.region.index() as u8,
            cause_class: e.cause.map_or(NO_CAUSE_CLASS, |c| c.layer().index() as u8),
            cause: e.cause.map_or(0, |c| 1 + zigzag(i64::from(c.code()))),
        };
        let part = e.device.0 as usize % self.partitions.len();
        let p = &mut self.partitions[part];
        p.cells.entry(key).or_default().push(e.duration.as_millis());
        match p.devices.get_mut(&e.device.0) {
            Some(rec) => rec.failures += 1,
            None => {
                p.devices.insert(
                    e.device.0,
                    DeviceRec {
                        model: dim.model.map_or(0, |m| m.0),
                        region: dim.region.index() as u8,
                        isp: dim.isp.map_or(NO_ISP, |i| i.index() as u8),
                        failures: 1,
                    },
                );
            }
        }
        p.inserted += 1;
        p.since_compact += 1;
        if self.cfg.auto_compact_every > 0 && p.since_compact >= self.cfg.auto_compact_every {
            p.compact(self.cfg.rollup_buckets);
        }
    }

    /// Seed the device directory with every listed device at zero
    /// failures — the denominators prevalence metrics divide by. Existing
    /// entries (devices that already recorded failures) are left untouched,
    /// so registration before or after recording yields the same state.
    pub fn register_population(&mut self, dir: &DeviceDirectory) {
        let parts = self.partitions.len();
        for (id, dim) in dir.iter() {
            self.partitions[id.0 as usize % parts]
                .devices
                .entry(id.0)
                .or_insert(DeviceRec {
                    model: dim.model.map_or(0, |m| m.0),
                    region: dim.region.index() as u8,
                    isp: dim.isp.map_or(NO_ISP, |i| i.index() as u8),
                    failures: 0,
                });
        }
    }

    /// Fold every partition's sealed time buckets onto rollup boundaries,
    /// moving the folded cells into the sealed columnar tier. Query
    /// answers are unchanged (see module docs); only the physical cell
    /// count and layout change.
    pub fn compact(&mut self) {
        let rollup = self.cfg.rollup_buckets;
        for p in &mut self.partitions {
            p.compact(rollup);
        }
    }

    /// Seal every partition's hot cells into its columnar run **without**
    /// bucket folding — a pure layout change (same cells, same answers,
    /// same digest) that trades the mutable row tier for branch-light
    /// columnar scans. The stream pipeline seals finished windows this way
    /// before they are encoded and tiered.
    pub fn seal_columnar(&mut self) {
        for p in &mut self.partitions {
            p.seal_columnar();
        }
    }

    /// Total live cells across partitions (row tier + sealed segments).
    pub fn cells(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.physical_cells() as u64)
            .sum()
    }

    /// Sealed columnar runs across partitions.
    pub fn sealed_segments(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.segments.len() as u64)
            .sum()
    }

    /// Cells living in sealed columnar runs (a subset of [`Store::cells`]).
    pub fn sealed_cells(&self) -> u64 {
        self.partitions
            .iter()
            .flat_map(|p| &p.segments)
            .map(|s| s.len() as u64)
            .sum()
    }

    /// Encoded `SC` blocks of every sealed segment, in partition order —
    /// the surface the golden snapshot pins the on-disk columnar layout
    /// through.
    pub fn segment_blocks(&self) -> Vec<Vec<u8>> {
        self.partitions
            .iter()
            .flat_map(|p| &p.segments)
            .map(|s| {
                let mut out = Vec::new();
                s.encode(&mut out);
                out
            })
            .collect()
    }

    /// Devices in the directory (registered or observed).
    pub fn devices(&self) -> u64 {
        self.partitions.iter().map(|p| p.devices.len() as u64).sum()
    }

    /// Records inserted (not reduced by compaction).
    pub fn inserted(&self) -> u64 {
        self.partitions.iter().map(|p| p.inserted).sum()
    }

    /// Compaction sweeps run across partitions.
    pub fn compactions(&self) -> u64 {
        self.partitions.iter().map(|p| p.compactions).sum()
    }

    /// Cells removed by compaction folding so far.
    pub fn cells_folded(&self) -> u64 {
        self.partitions.iter().map(|p| p.cells_folded).sum()
    }

    /// Approximate resident bytes of the cell state (keys, fixed cell
    /// fields, sparse sketch entries) — the bytes-per-cell number the bench
    /// reports. Directory and map-node overhead excluded.
    pub fn approx_cell_bytes(&self) -> u64 {
        let fixed = (std::mem::size_of::<CellKey>() + 3 * std::mem::size_of::<u64>()) as u64;
        self.partitions
            .iter()
            .flat_map(|p| p.cells.values())
            .map(|c| fixed + 12 * c.sketch.nnz() as u64)
            .sum::<u64>()
            + self
                .partitions
                .iter()
                .flat_map(|p| &p.segments)
                .map(ColumnSegment::approx_bytes)
                .sum::<u64>()
    }

    /// Content digest over the **canonical rolled-up view**: every cell's
    /// bucket is folded to its rollup boundary and all partitions are
    /// merged into one ordered map before hashing. Physical layout —
    /// thread count, partition count, whether compaction ran — therefore
    /// cannot affect it; only the recorded data can.
    pub fn digest(&self) -> u64 {
        let rollup = self.cfg.rollup_buckets;
        let mut canon: BTreeMap<CellKey, Cell> = BTreeMap::new();
        let mut devices: BTreeMap<u32, DeviceRec> = BTreeMap::new();
        for p in &self.partitions {
            for (k, c) in &p.cells {
                let mut key = *k;
                key.bucket = (key.bucket / rollup) * rollup;
                match canon.get_mut(&key) {
                    Some(mine) => mine.merge_ref(c),
                    None => {
                        canon.insert(key, c.clone());
                    }
                }
            }
            for seg in &p.segments {
                for (mut key, cell) in seg.rows() {
                    key.bucket = (key.bucket / rollup) * rollup;
                    match canon.get_mut(&key) {
                        Some(mine) => mine.merge(cell),
                        None => {
                            canon.insert(key, cell);
                        }
                    }
                }
            }
            for (&id, &rec) in &p.devices {
                match devices.get_mut(&id) {
                    Some(mine) => mine.merge(rec),
                    None => {
                        devices.insert(id, rec);
                    }
                }
            }
        }
        let mut d = Digest64::new();
        d.write_u64(self.cfg.bucket_ms);
        d.write_u64(u64::from(rollup));
        d.write_u64(canon.len() as u64);
        for (k, c) in &canon {
            k.absorb_into(&mut d);
            c.absorb_into(&mut d);
        }
        d.write_u64(devices.len() as u64);
        for (&id, rec) in &devices {
            d.write_u64(u64::from(id));
            d.write_u64(u64::from(rec.model));
            d.write_u64(u64::from(rec.region));
            d.write_u64(u64::from(rec.isp));
            d.write_u64(rec.failures);
        }
        d.finish()
    }

    /// Mirror store state into a telemetry registry (cells, devices,
    /// inserts, compaction counters, approximate bytes).
    pub fn record_metrics(&self, tele: &Telemetry) {
        if !tele.is_enabled() {
            return;
        }
        for (name, v) in [
            ("store.partitions", self.partitions.len() as u64),
            ("store.cells", self.cells()),
            ("store.sealed_segments", self.sealed_segments()),
            ("store.sealed_cells", self.sealed_cells()),
            ("store.devices", self.devices()),
            ("store.inserted", self.inserted()),
            ("store.compactions", self.compactions()),
            ("store.cells_folded", self.cells_folded()),
            ("store.cell_bytes", self.approx_cell_bytes()),
        ] {
            tele.add(name, v);
        }
    }
}

impl Merge for Store {
    fn merge(&mut self, o: Self) {
        assert_eq!(
            self.cfg, o.cfg,
            "stores with different configs do not merge"
        );
        for (mine, theirs) in self.partitions.iter_mut().zip(o.partitions) {
            mine.merge(theirs);
        }
    }
}

/// A sink that streams events into a [`Store`], resolving device
/// dimensions through a shared [`DeviceDirectory`]. Implements both the
/// workload's [`EventSink`] (simulation-driven builds) and the ingest
/// collector's [`AcceptedSink`] (wire-driven builds), plus [`Merge`] so the
/// parallel drivers fold per-shard sinks deterministically.
#[derive(Debug, Clone)]
pub struct StoreSink<'a> {
    store: Store,
    dir: &'a DeviceDirectory,
}

impl<'a> StoreSink<'a> {
    /// Empty sink over a directory.
    pub fn new(cfg: &StoreConfig, dir: &'a DeviceDirectory) -> Self {
        StoreSink {
            store: Store::new(cfg),
            dir,
        }
    }

    /// Consume the sink, registering the directory's population so
    /// zero-failure devices appear in the denominators.
    pub fn into_store(mut self) -> Store {
        self.store.register_population(self.dir);
        self.store
    }

    /// Borrow the store built so far (population not yet registered).
    pub fn store(&self) -> &Store {
        &self.store
    }
}

impl EventSink for StoreSink<'_> {
    fn record(&mut self, event: &FailureEvent) {
        let dim = self.dir.dim_of(event.device);
        self.store.record(event, dim);
    }
}

impl AcceptedSink for StoreSink<'_> {
    fn accepted(&mut self, e: &FailureEvent) {
        let dim = self.dir.dim_of(e.device);
        self.store.record(e, dim);
    }
}

impl Merge for StoreSink<'_> {
    fn merge(&mut self, o: Self) {
        self.store.merge(o.store);
    }
}

/// Build a store by replaying `events` sharded over up to `threads` scoped
/// threads (0 = auto via `CELLREL_THREADS`), folding the shard stores in
/// shard order. Bit-identical to a single-threaded replay at any thread
/// count; the population in `dir` is registered on the result.
pub fn build_sharded(
    cfg: &StoreConfig,
    dir: &DeviceDirectory,
    events: &[FailureEvent],
    threads: usize,
) -> Store {
    let shards = run_sharded(events.len(), threads, |range| {
        let mut s = Store::new(cfg);
        for e in &events[range] {
            s.record(e, dir.dim_of(e.device));
        }
        s
    });
    let mut store = Store::new(cfg);
    for shard in shards {
        store.merge(shard);
    }
    store.register_population(dir);
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_types::{
        Apn, BsId, DataFailCause, FailureKind, InSituInfo, Rat, SignalLevel, SimDuration, SimTime,
    };

    pub(crate) fn ev(
        device: u32,
        start_s: u64,
        dur_s: u64,
        kind: FailureKind,
        cause: Option<DataFailCause>,
    ) -> FailureEvent {
        FailureEvent {
            device: DeviceId(device),
            kind,
            start: SimTime::from_secs(start_s),
            duration: SimDuration::from_secs(dur_s),
            cause,
            ctx: InSituInfo {
                rat: Rat::G4,
                signal: SignalLevel::L3,
                apn: Apn::Internet,
                bs: Some(BsId::gsm_cn(0, 1, 2)),
                isp: Isp::A,
            },
        }
    }

    fn small_events(n: u32) -> Vec<FailureEvent> {
        (0..n)
            .map(|i| {
                ev(
                    i % 40,
                    u64::from(i) * 3600,
                    3 + u64::from(i % 50),
                    FailureKind::ALL[i as usize % 5],
                    (i % 3 == 0).then_some(DataFailCause::SignalLost),
                )
            })
            .collect()
    }

    #[test]
    fn cause_key_round_trips_negative_codes() {
        let dir = DeviceDirectory::default();
        let mut s = Store::new(&StoreConfig::default());
        let e = ev(
            1,
            10,
            5,
            FailureKind::DataSetupError,
            Some(DataFailCause::GprsRegistrationFail), // code -2
        );
        s.record(&e, dir.dim_of(e.device));
        let key = *s.partitions[1].cells.keys().next().unwrap();
        assert_eq!(key.cause_code(), Some(-2));
        assert_eq!(key.cause_class, 2, "network layer index");
        let none = ev(2, 10, 5, FailureKind::DataStall, None);
        s.record(&none, dir.dim_of(none.device));
        let key2 = *s.partitions[2].cells.keys().next().unwrap();
        assert_eq!(key2.cause_code(), None);
        assert_eq!(key2.cause_class, NO_CAUSE_CLASS);
    }

    #[test]
    fn digest_is_invariant_across_partition_count_and_compaction() {
        let events = small_events(600);
        let dir = DeviceDirectory::default();
        let base = build_sharded(&StoreConfig::default(), &dir, &events, 1);
        for partitions in [1usize, 4, 32] {
            let cfg = StoreConfig {
                partitions,
                ..StoreConfig::default()
            };
            let mut s = build_sharded(&cfg, &dir, &events, 1);
            assert_eq!(s.digest(), base.digest(), "partitions={partitions}");
            s.compact();
            assert_eq!(
                s.digest(),
                base.digest(),
                "compacted, partitions={partitions}"
            );
            assert!(s.cells() < base.cells() || base.cells() == s.cells());
        }
        // Auto-compaction mid-stream does not change the digest either.
        let auto = build_sharded(
            &StoreConfig {
                auto_compact_every: 16,
                partitions: 2,
                ..StoreConfig::default()
            },
            &dir,
            &events,
            1,
        );
        assert!(auto.compactions() > 0);
        assert_eq!(auto.digest(), base.digest());
    }

    #[test]
    fn build_is_thread_invariant() {
        let events = small_events(400);
        let dir = DeviceDirectory::default();
        let cfg = StoreConfig::default();
        let base = build_sharded(&cfg, &dir, &events, 1);
        for threads in [2usize, 8] {
            let s = build_sharded(&cfg, &dir, &events, threads);
            assert_eq!(s, base, "threads={threads}");
            assert_eq!(s.digest(), base.digest());
        }
    }

    #[test]
    fn registration_order_does_not_matter() {
        let events = small_events(100);
        let dir = DeviceDirectory {
            dims: vec![DeviceDim::UNKNOWN; 40],
            owned: None,
        };
        let cfg = StoreConfig::default();

        let mut before = Store::new(&cfg);
        before.register_population(&dir);
        for e in &events {
            before.record(e, dir.dim_of(e.device));
        }

        let mut after = Store::new(&cfg);
        for e in &events {
            after.record(e, dir.dim_of(e.device));
        }
        after.register_population(&dir);

        assert_eq!(before, after);
        assert_eq!(before.devices(), 40);
    }

    #[test]
    fn compaction_folds_sealed_buckets_only() {
        let cfg = StoreConfig {
            bucket_ms: 1_000,
            rollup_buckets: 4,
            partitions: 1,
            auto_compact_every: 0,
        };
        let dir = DeviceDirectory::default();
        let mut s = Store::new(&cfg);
        // Buckets 0..=9 (one event per second, 1 s buckets).
        for t in 0..10u64 {
            let e = ev(0, t, 1, FailureKind::DataStall, None);
            s.record(&e, dir.dim_of(e.device));
        }
        assert_eq!(s.cells(), 10);
        s.compact();
        // Seal = (9/4)*4 = 8: buckets 0..8 fold to {0, 4} and move to the
        // sealed columnar run; 8 and 9 stay hot in the row tier.
        let hot: Vec<u32> = s.partitions[0].cells.keys().map(|k| k.bucket).collect();
        assert_eq!(hot, vec![8, 9]);
        assert_eq!(s.partitions[0].segments.len(), 1);
        let sealed: Vec<u32> = s.partitions[0].segments[0]
            .rows()
            .map(|(k, _)| k.bucket)
            .collect();
        assert_eq!(sealed, vec![0, 4]);
        assert_eq!(s.cells(), 4);
        assert_eq!(s.sealed_cells(), 2);
        assert_eq!(s.cells_folded(), 6);
        assert_eq!(s.inserted(), 10, "inserted count survives compaction");
        let total: u64 = s.partitions[0].cells.values().map(|c| c.count).sum::<u64>()
            + s.partitions[0].segments[0]
                .rows()
                .map(|(_, c)| c.count)
                .sum::<u64>();
        assert_eq!(total, 10, "no records lost");
    }

    /// Boundary alignment: a stream whose newest bucket lands **exactly**
    /// on a rollup-granularity edge must neither fold that boundary bucket
    /// (it is still open) nor drop or double-count anything in it.
    #[test]
    fn compaction_at_exact_rollup_edge_keeps_boundary_bucket_open() {
        let cfg = StoreConfig {
            bucket_ms: 1_000,
            rollup_buckets: 4,
            partitions: 1,
            auto_compact_every: 0,
        };
        let dir = DeviceDirectory::default();
        let mut s = Store::new(&cfg);
        // Buckets 0..=8: the max bucket (8) sits exactly on the 2nd rollup
        // edge, so seal == max_bucket. Three records land in the edge
        // bucket itself.
        for t in 0..9u64 {
            let e = ev(0, t, 1, FailureKind::DataStall, None);
            s.record(&e, dir.dim_of(e.device));
        }
        for _ in 0..2 {
            let e = ev(0, 8, 2, FailureKind::DataSetupError, None);
            s.record(&e, dir.dim_of(e.device));
        }
        let digest = s.digest();
        s.compact();
        // Seal = (8/4)*4 = 8: buckets 0..8 fold to the sealed run {0, 4};
        // bucket 8 stays hot and unfolded with both its kinds intact.
        let hot: Vec<u32> = s.partitions[0].cells.keys().map(|k| k.bucket).collect();
        assert_eq!(hot, vec![8, 8]);
        let sealed: Vec<u32> = s.partitions[0].segments[0]
            .rows()
            .map(|(k, _)| k.bucket)
            .collect();
        assert_eq!(sealed, vec![0, 4]);
        let edge_total: u64 = s.partitions[0]
            .cells
            .iter()
            .filter(|(k, _)| k.bucket == 8)
            .map(|(_, c)| c.count)
            .sum();
        assert_eq!(edge_total, 3, "boundary bucket neither dropped nor doubled");
        let total: u64 = s.partitions[0].cells.values().map(|c| c.count).sum::<u64>()
            + s.partitions[0].segments[0]
                .rows()
                .map(|(_, c)| c.count)
                .sum::<u64>();
        assert_eq!(total, 11, "no records lost");
        assert_eq!(s.digest(), digest, "canonical digest survives edge seal");
        // A second sweep over the already-sealed layout is a no-op fold.
        let cells = s.cells();
        s.compact();
        assert_eq!(s.cells(), cells);
        assert_eq!(s.digest(), digest);
    }

    #[test]
    fn seal_columnar_is_a_pure_layout_change() {
        let events = small_events(300);
        let dir = DeviceDirectory::default();
        let mut s = build_sharded(&StoreConfig::default(), &dir, &events, 1);
        let row = s.clone();
        s.seal_columnar();
        assert_eq!(s.cells(), row.cells(), "sealing never folds");
        assert_eq!(s.sealed_cells(), s.cells(), "every cell went columnar");
        assert!(s.partitions.iter().all(|p| p.cells.is_empty()));
        assert_eq!(s.digest(), row.digest());
        // Sealing again is a no-op.
        let mut again = s.clone();
        again.seal_columnar();
        assert_eq!(again, s);
        // Merging a sealed store with a row store is commutative and
        // content-equivalent to the all-row merge.
        let mut ab = s.clone();
        ab.merge(row.clone());
        let mut ba = row.clone();
        ba.merge(s.clone());
        assert_eq!(ab.digest(), ba.digest());
        assert_eq!(ab.partitions[0].segments, ba.partitions[0].segments);
    }

    /// The same edge case through the auto-compaction path: sweeps fired
    /// mid-stream while the newest bucket sits on a rollup edge answer
    /// identically to a never-compacted store.
    #[test]
    fn auto_compaction_at_rollup_edges_matches_uncompacted() {
        let cfg = StoreConfig {
            bucket_ms: 1_000,
            rollup_buckets: 4,
            partitions: 2,
            auto_compact_every: 3,
        };
        let plain = StoreConfig {
            auto_compact_every: 0,
            ..cfg
        };
        let dir = DeviceDirectory::default();
        let mut auto = Store::new(&cfg);
        let mut manual = Store::new(&plain);
        // Every record lands exactly on a rollup edge (buckets 0,4,8,...),
        // so each auto sweep runs with max_bucket == seal.
        for i in 0..24u64 {
            let e = ev(
                (i % 5) as u32,
                (i / 2) * 4,
                1,
                FailureKind::OutOfService,
                None,
            );
            auto.record(&e, dir.dim_of(e.device));
            manual.record(&e, dir.dim_of(e.device));
        }
        assert!(auto.compactions() > 0, "auto sweeps actually fired");
        assert_eq!(auto.inserted(), manual.inserted());
        assert_eq!(auto.digest(), manual.digest());
    }
}
