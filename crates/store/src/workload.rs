//! The canonical mixed query workload — one of each shape the store's
//! engine supports — shared by the bench bins (`query`, `queryd`), the
//! differential scan-equivalence suite, and the CI smoke checks, so their
//! throughput numbers measure the same work and their deterministic
//! outputs stay diffable against each other.

use crate::query::{Dim, Filter, Metric, Query};
use cellrel_types::{FailureKind, Isp, Rat};

/// The named workload queries. `week_ms` is the store's rollup granularity
/// (time windows and ranges must align to it).
pub fn canonical(week_ms: u64) -> Vec<(&'static str, Query)> {
    vec![
        ("count_all", Query::count_by(vec![])),
        (
            "count_by_kind_isp",
            Query::count_by(vec![Dim::Kind, Dim::Isp]),
        ),
        (
            "weekly_setup_errors",
            Query {
                filters: vec![Filter::Kind(FailureKind::DataSetupError)],
                group_by: vec![Dim::Time],
                window_ms: week_ms,
                metric: Metric::Count,
                top_k: 0,
            },
        ),
        (
            "mean_duration_by_rat",
            Query {
                filters: vec![],
                group_by: vec![Dim::Rat],
                window_ms: 0,
                metric: Metric::MeanDurationMs,
                top_k: 0,
            },
        ),
        (
            "p95_duration_by_isp",
            Query {
                filters: vec![],
                group_by: vec![Dim::Isp],
                window_ms: 0,
                metric: Metric::QuantileMs(0.95),
                top_k: 0,
            },
        ),
        (
            "top5_setup_causes",
            Query {
                filters: vec![Filter::Kind(FailureKind::DataSetupError), Filter::HasCause],
                group_by: vec![Dim::Cause],
                window_ms: 0,
                metric: Metric::Count,
                top_k: 5,
            },
        ),
        (
            "cause_class_mix_4g",
            Query {
                filters: vec![Filter::Rat(Rat::G4), Filter::HasCause],
                group_by: vec![Dim::CauseClass],
                window_ms: 0,
                metric: Metric::Count,
                top_k: 0,
            },
        ),
        (
            "under_30s_share_by_region",
            Query {
                filters: vec![],
                group_by: vec![Dim::Region],
                window_ms: 0,
                metric: Metric::Under30sShare,
                top_k: 0,
            },
        ),
        (
            "first_week_stalls_by_isp",
            Query {
                filters: vec![
                    Filter::TimeRange {
                        start_ms: 0,
                        end_ms: week_ms,
                    },
                    Filter::Kind(FailureKind::DataStall),
                ],
                group_by: vec![Dim::Isp],
                window_ms: 0,
                metric: Metric::Count,
                top_k: 0,
            },
        ),
        (
            "devices_by_model",
            Query {
                filters: vec![],
                group_by: vec![Dim::Model],
                window_ms: 0,
                metric: Metric::Devices,
                top_k: 0,
            },
        ),
        (
            "failing_devices_isp_a",
            Query {
                filters: vec![Filter::Isp(Isp::A)],
                group_by: vec![Dim::Region],
                window_ms: 0,
                metric: Metric::FailingDevices,
                top_k: 0,
            },
        ),
    ]
}
