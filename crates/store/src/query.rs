//! The embedded query engine: typed filter / group-by / top-k / quantile
//! queries over the cube.
//!
//! A [`Query`] names the dimensions to group by, the predicates to filter
//! on, the [`Metric`] to compute per group, and optionally a top-k cut.
//! Evaluation is a single pass: the engine scans each partition's cell map
//! (pruned to a key range when the filters bound time), folds matching
//! cells into one accumulator [`Cell`](crate::cube::Cell) per group — the
//! same exact merge the build path uses, so grouping is associative and
//! compaction-transparent — then derives the metric per group.
//!
//! **Compaction transparency.** Time windows and time-range bounds must be
//! multiples of the rollup granularity (`bucket_ms × rollup_buckets`);
//! validation rejects anything finer. Under that rule a cell and its
//! rolled-up image always land in the same group of every legal query, so
//! answers are identical with compaction on or off — asserted by the
//! property tests and the CI store-smoke job.
//!
//! **Determinism.** Group accumulation uses ordered maps keyed by the
//! numeric group key; rows come out key-ascending, and top-k orders by
//! (value descending, key ascending) — no iteration-order or tie
//! nondeterminism anywhere.

use crate::columnar::{ColumnSegment, Zones};
use crate::cube::{Cell, CellKey, Region, Store, NO_CAUSE_CLASS, NO_ISP};
use cellrel_ingest::codec::{unzigzag, zigzag};
use cellrel_sim::Telemetry;
use cellrel_types::{DataFailCause, FailureKind, FailureLayer, Isp, PhoneModelId, Rat};
use std::collections::BTreeMap;
use std::fmt;

/// A cube dimension a query can group by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// Time window (width = [`Query::window_ms`]).
    Time,
    /// Failure kind.
    Kind,
    /// ISP.
    Isp,
    /// Radio access technology.
    Rat,
    /// Device model.
    Model,
    /// Deployment region.
    Region,
    /// Fail-cause protocol layer.
    CauseClass,
    /// Individual fail-cause code.
    Cause,
}

impl Dim {
    /// Every dimension, in wire/key order. [`Dim::index`] is the position
    /// here and [`Dim::from_index`] inverts it — the queryd protocol
    /// encodes dimensions by this index, so the order is frozen.
    pub const ALL: [Dim; 8] = [
        Dim::Time,
        Dim::Kind,
        Dim::Isp,
        Dim::Rat,
        Dim::Model,
        Dim::Region,
        Dim::CauseClass,
        Dim::Cause,
    ];

    /// Stable numeric index (position in [`Dim::ALL`]).
    pub const fn index(self) -> usize {
        match self {
            Dim::Time => 0,
            Dim::Kind => 1,
            Dim::Isp => 2,
            Dim::Rat => 3,
            Dim::Model => 4,
            Dim::Region => 5,
            Dim::CauseClass => 6,
            Dim::Cause => 7,
        }
    }

    /// Inverse of [`Dim::index`]; `None` for out-of-range values.
    pub const fn from_index(i: usize) -> Option<Dim> {
        match i {
            0 => Some(Dim::Time),
            1 => Some(Dim::Kind),
            2 => Some(Dim::Isp),
            3 => Some(Dim::Rat),
            4 => Some(Dim::Model),
            5 => Some(Dim::Region),
            6 => Some(Dim::CauseClass),
            7 => Some(Dim::Cause),
            _ => None,
        }
    }

    /// Column header used in rendered/exported result sets.
    pub const fn label(self) -> &'static str {
        match self {
            Dim::Time => "window",
            Dim::Kind => "kind",
            Dim::Isp => "isp",
            Dim::Rat => "rat",
            Dim::Model => "model",
            Dim::Region => "region",
            Dim::CauseClass => "cause_class",
            Dim::Cause => "cause",
        }
    }
}

/// A conjunctive filter predicate (a query matches a cell iff **all** its
/// filters match).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Filter {
    /// Keep one failure kind.
    Kind(FailureKind),
    /// Keep one ISP.
    Isp(Isp),
    /// Keep one RAT.
    Rat(Rat),
    /// Keep one device model.
    Model(PhoneModelId),
    /// Keep one region.
    Region(Region),
    /// Keep one fail-cause layer.
    CauseClass(FailureLayer),
    /// Keep one fail-cause code.
    Cause(DataFailCause),
    /// Keep only records that carried a fail cause.
    HasCause,
    /// Keep records with `start_ms ∈ [start_ms, end_ms)`. Bounds must be
    /// multiples of the rollup granularity.
    TimeRange {
        /// Inclusive window start, milliseconds.
        start_ms: u64,
        /// Exclusive window end, milliseconds.
        end_ms: u64,
    },
}

/// The aggregate computed per group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// Records in the group.
    Count,
    /// Exact summed duration, ms.
    DurationTotalMs,
    /// Mean duration, ms.
    MeanDurationMs,
    /// Maximum duration, ms (exact — sketches track exact extremes).
    MaxDurationMs,
    /// Share of records shorter than 30 s.
    Under30sShare,
    /// Duration quantile in ms, `q ∈ [0, 1]`.
    QuantileMs(f64),
    /// Devices in the directory (group/filter dims limited to
    /// model/region/ISP).
    Devices,
    /// Devices with at least one recorded failure (same dim limits).
    FailingDevices,
}

impl Metric {
    /// Column header for the metric value.
    pub fn label(&self) -> String {
        match self {
            Metric::Count => "count".into(),
            Metric::DurationTotalMs => "duration_total_ms".into(),
            Metric::MeanDurationMs => "mean_duration_ms".into(),
            Metric::MaxDurationMs => "max_duration_ms".into(),
            Metric::Under30sShare => "under_30s_share".into(),
            Metric::QuantileMs(q) => {
                let pct = q * 100.0;
                if pct == pct.trunc() {
                    format!("p{pct:.0}_ms")
                } else {
                    format!("p{pct}_ms")
                }
            }
            Metric::Devices => "devices".into(),
            Metric::FailingDevices => "failing_devices".into(),
        }
    }

    /// Deterministic value formatting for rendering/export.
    pub fn format(&self, v: f64) -> String {
        match self {
            Metric::MeanDurationMs => format!("{v:.2}"),
            Metric::Under30sShare => format!("{v:.4}"),
            _ => format!("{v:.0}"),
        }
    }

    pub(crate) fn is_device_metric(&self) -> bool {
        matches!(self, Metric::Devices | Metric::FailingDevices)
    }
}

/// A typed query over the cube.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Conjunctive predicates.
    pub filters: Vec<Filter>,
    /// Dimensions to group by (empty = one global row).
    pub group_by: Vec<Dim>,
    /// Time-window width in ms when grouping by [`Dim::Time`]; 0 picks the
    /// rollup granularity. Must be a multiple of the rollup granularity.
    pub window_ms: u64,
    /// The aggregate to compute.
    pub metric: Metric,
    /// Keep only the k highest-valued rows (0 = all rows, key-ascending).
    pub top_k: usize,
}

impl Query {
    /// A grouped count query — the most common shape.
    pub fn count_by(group_by: Vec<Dim>) -> Self {
        Query {
            filters: Vec::new(),
            group_by,
            window_ms: 0,
            metric: Metric::Count,
            top_k: 0,
        }
    }
}

/// Why a query was rejected (validation is total; evaluation never panics
/// on a hostile query).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A dimension appears twice in `group_by`.
    DuplicateDim(Dim),
    /// The time window is not a positive multiple of the rollup
    /// granularity (`bucket_ms × rollup_buckets`).
    UnalignedWindow {
        /// Offending window, ms.
        window_ms: u64,
        /// Required granularity, ms.
        granularity_ms: u64,
    },
    /// A time-range bound is not a multiple of the rollup granularity, or
    /// the range is empty.
    UnalignedRange {
        /// Offending bound, ms.
        bound_ms: u64,
        /// Required granularity, ms.
        granularity_ms: u64,
    },
    /// Device metrics only support model/region/ISP dimensions.
    DeviceMetricDim(Dim),
    /// Device metrics only support model/region/ISP (and their filters).
    DeviceMetricFilter(&'static str),
    /// Quantile outside `[0, 1]`.
    BadQuantile(f64),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::DuplicateDim(d) => write!(f, "dimension {} appears twice", d.label()),
            QueryError::UnalignedWindow {
                window_ms,
                granularity_ms,
            } => write!(
                f,
                "window {window_ms} ms is not a positive multiple of the rollup granularity {granularity_ms} ms"
            ),
            QueryError::UnalignedRange {
                bound_ms,
                granularity_ms,
            } => write!(
                f,
                "time-range bound {bound_ms} ms is not aligned to the rollup granularity {granularity_ms} ms (or the range is empty)"
            ),
            QueryError::DeviceMetricDim(d) => write!(
                f,
                "device metrics cannot group by {} (model/region/isp only)",
                d.label()
            ),
            QueryError::DeviceMetricFilter(name) => write!(
                f,
                "device metrics cannot filter on {name} (model/region/isp only)"
            ),
            QueryError::BadQuantile(q) => write!(f, "quantile {q} outside [0, 1]"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One result row: the numeric group key (one entry per `group_by` dim, in
/// order), printable labels for each, the metric value, and the record
/// count that contributed.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Numeric group key per dimension.
    pub key: Vec<u64>,
    /// Printable label per dimension.
    pub labels: Vec<String>,
    /// The metric value.
    pub value: f64,
    /// Records contributing to the group (devices for device metrics).
    pub count: u64,
}

/// A query result: rows plus scan accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// The grouping dimensions, in key order.
    pub group_by: Vec<Dim>,
    /// The computed metric.
    pub metric: Metric,
    /// Result rows (key-ascending, or value-descending after a top-k cut).
    pub rows: Vec<ResultRow>,
    /// Cells visited (after time-range pruning).
    pub cells_scanned: u64,
    /// Cells that passed all filters.
    pub cells_matched: u64,
}

impl ResultSet {
    /// Plain-text table rendering (deterministic widths and formatting).
    pub fn render(&self) -> String {
        let mut headers: Vec<String> = self
            .group_by
            .iter()
            .map(|d| d.label().to_string())
            .collect();
        headers.push(self.metric.label());
        headers.push("records".into());
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cols = r.labels.clone();
                cols.push(self.metric.format(r.value));
                cols.push(r.count.to_string());
                cols
            })
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_line = |cols: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (c, w)) in cols.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:>w$}", w = *w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_line(&headers, &widths));
        for row in &rows {
            out.push_str(&fmt_line(row, &widths));
        }
        out
    }
}

pub(crate) struct Plan {
    pub(crate) window_ms: u64,
    bucket_lo: u32,
    bucket_hi: u32, // exclusive
}

/// There are exactly [`MAX_DIMS`] dimensions and duplicates are rejected,
/// so a fixed array (unused slots 0) holds any legal group key without
/// per-cell heap allocation.
pub(crate) const MAX_DIMS: usize = 8;
pub(crate) type GroupKey = [u64; MAX_DIMS];

pub(crate) fn validate(store: &Store, q: &Query) -> Result<Plan, QueryError> {
    let cfg = store.config();
    let granularity_ms = cfg.bucket_ms * u64::from(cfg.rollup_buckets);
    for (i, d) in q.group_by.iter().enumerate() {
        if q.group_by[..i].contains(d) {
            return Err(QueryError::DuplicateDim(*d));
        }
    }
    if let Metric::QuantileMs(qq) = q.metric {
        if !(0.0..=1.0).contains(&qq) {
            return Err(QueryError::BadQuantile(qq));
        }
    }
    if q.metric.is_device_metric() {
        for d in &q.group_by {
            if !matches!(d, Dim::Model | Dim::Region | Dim::Isp) {
                return Err(QueryError::DeviceMetricDim(*d));
            }
        }
        for f in &q.filters {
            if !matches!(f, Filter::Model(_) | Filter::Region(_) | Filter::Isp(_)) {
                return Err(QueryError::DeviceMetricFilter(filter_name(f)));
            }
        }
    }
    let mut window_ms = granularity_ms;
    if q.group_by.contains(&Dim::Time) && q.window_ms != 0 {
        if q.window_ms % granularity_ms != 0 {
            return Err(QueryError::UnalignedWindow {
                window_ms: q.window_ms,
                granularity_ms,
            });
        }
        window_ms = q.window_ms;
    }
    let mut bucket_lo = 0u32;
    let mut bucket_hi = u32::MAX;
    for f in &q.filters {
        if let Filter::TimeRange { start_ms, end_ms } = f {
            for b in [*start_ms, *end_ms] {
                if b % granularity_ms != 0 {
                    return Err(QueryError::UnalignedRange {
                        bound_ms: b,
                        granularity_ms,
                    });
                }
            }
            if end_ms <= start_ms {
                return Err(QueryError::UnalignedRange {
                    bound_ms: *end_ms,
                    granularity_ms,
                });
            }
            bucket_lo = bucket_lo.max((start_ms / cfg.bucket_ms).min(u64::from(u32::MAX)) as u32);
            bucket_hi = bucket_hi.min((end_ms / cfg.bucket_ms).min(u64::from(u32::MAX)) as u32);
        }
    }
    Ok(Plan {
        window_ms,
        bucket_lo,
        bucket_hi,
    })
}

const fn filter_name(f: &Filter) -> &'static str {
    match f {
        Filter::Kind(_) => "kind",
        Filter::Isp(_) => "isp",
        Filter::Rat(_) => "rat",
        Filter::Model(_) => "model",
        Filter::Region(_) => "region",
        Filter::CauseClass(_) => "cause_class",
        Filter::Cause(_) => "cause",
        Filter::HasCause => "has_cause",
        Filter::TimeRange { .. } => "time_range",
    }
}

fn group_component(key: &CellKey, d: Dim, bucket_ms: u64, window_ms: u64) -> u64 {
    match d {
        Dim::Time => (u64::from(key.bucket) * bucket_ms) / window_ms,
        Dim::Kind => u64::from(key.kind),
        Dim::Isp => u64::from(key.isp),
        Dim::Rat => u64::from(key.rat),
        Dim::Model => u64::from(key.model),
        Dim::Region => u64::from(key.region),
        Dim::CauseClass => u64::from(key.cause_class),
        Dim::Cause => key.cause,
    }
}

fn component_label(d: Dim, component: u64, window_ms: u64) -> String {
    match d {
        Dim::Time => {
            let start = component * window_ms;
            let end = start + window_ms;
            format!("[{}h,{}h)", start / 3_600_000, end / 3_600_000)
        }
        Dim::Kind => FailureKind::from_index(component as usize)
            .map_or_else(|| format!("kind#{component}"), |k| k.label().to_string()),
        Dim::Isp => {
            if component == u64::from(NO_ISP) {
                "unknown".to_string()
            } else {
                Isp::from_index(component as usize)
                    .map_or_else(|| format!("isp#{component}"), |i| i.label().to_string())
            }
        }
        Dim::Rat => Rat::from_index(component as usize)
            .map_or_else(|| format!("rat#{component}"), |r| r.label().to_string()),
        Dim::Model => {
            if component == 0 {
                "unknown".to_string()
            } else {
                format!("model-{component:02}")
            }
        }
        Dim::Region => Region::from_index(component as usize)
            .map_or_else(|| format!("region#{component}"), |r| r.label().to_string()),
        Dim::CauseClass => {
            if component == u64::from(NO_CAUSE_CLASS) {
                "none".to_string()
            } else {
                FailureLayer::from_index(component as usize)
                    .map_or_else(|| format!("layer#{component}"), |l| l.to_string())
            }
        }
        Dim::Cause => {
            if component == 0 {
                "none".to_string()
            } else {
                let code = cellrel_ingest::codec::unzigzag(component - 1) as i32;
                DataFailCause::from_code(code).to_string()
            }
        }
    }
}

/// Which physical scan implementation serves sealed segments. The hot row
/// tier always scans cell-by-cell; the engines differ only on segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Engine {
    /// Zone-pruned, filter-before-materialise per-column loops.
    Columnar,
    /// Reference path: materialise every row and reuse the hot-tier code.
    Row,
}

impl Store {
    /// Evaluate a query. See the module docs for semantics and guarantees.
    pub fn query(&self, q: &Query) -> Result<ResultSet, QueryError> {
        self.query_with(q, &Telemetry::disabled())
    }

    /// Evaluate a query through the **row reference engine**: sealed
    /// segments are walked cell by cell through the same per-cell
    /// filter/merge code the hot tier uses — no zone pruning, no
    /// per-column loops. Exists so the differential suite (and the CI
    /// smoke checks) can prove the columnar scan path of [`Store::query`]
    /// returns byte-identical `ResultSet`s; it is not the serving path.
    pub fn query_row(&self, q: &Query) -> Result<ResultSet, QueryError> {
        let plan = validate(self, q)?;
        Ok(if q.metric.is_device_metric() {
            self.eval_devices(q)
        } else {
            self.eval_cells(q, &plan, Engine::Row)
        })
    }

    /// [`Store::query`] with instrumentation: bumps `store.queries`,
    /// `store.cells_scanned` and the `store.query.cells_scanned` /
    /// `store.query.rows` histograms on an enabled registry.
    pub fn query_with(&self, q: &Query, tele: &Telemetry) -> Result<ResultSet, QueryError> {
        let plan = validate(self, q)?;
        let rs = if q.metric.is_device_metric() {
            self.eval_devices(q)
        } else {
            self.eval_cells(q, &plan, Engine::Columnar)
        };
        tele.inc("store.queries");
        tele.add("store.cells_scanned", rs.cells_scanned);
        tele.observe("store.query.cells_scanned", rs.cells_scanned);
        tele.observe("store.query.rows", rs.rows.len() as u64);
        Ok(rs)
    }

    fn eval_cells(&self, q: &Query, plan: &Plan, engine: Engine) -> ResultSet {
        let (groups, scanned, matched) = self.collect_cells(q, plan, engine);
        finalize_groups(q, plan.window_ms, groups, scanned, matched)
    }

    /// The scan half of cell evaluation: fold matching cells into one
    /// partial-aggregate [`Cell`] per group and report the scan
    /// accounting, leaving metric derivation to [`finalize_groups`]. The
    /// cluster tier ships these partials across shards before finalising.
    pub(crate) fn collect_cells(
        &self,
        q: &Query,
        plan: &Plan,
        engine: Engine,
    ) -> (BTreeMap<GroupKey, Cell>, u64, u64) {
        let bucket_ms = self.config().bucket_ms;
        let mut scanned = 0u64;
        let mut matched = 0u64;
        // Group keys are fixed arrays (unused dims stay 0), not Vecs: the
        // scan visits every cell once per query, and a heap allocation per
        // cell would dominate it. `MAX_DIMS` bounds `group_by` (validated).
        let mut groups: BTreeMap<GroupKey, Cell> = BTreeMap::new();
        let lo = CellKey {
            bucket: plan.bucket_lo,
            kind: 0,
            isp: 0,
            rat: 0,
            model: 0,
            region: 0,
            cause_class: 0,
            cause: 0,
        };
        let hi = CellKey {
            bucket: plan.bucket_hi,
            ..lo
        };
        for p in &self.partitions {
            let range: Box<dyn Iterator<Item = (&CellKey, &Cell)>> =
                if plan.bucket_lo == 0 && plan.bucket_hi == u32::MAX {
                    Box::new(p.cells.iter())
                } else {
                    Box::new(p.cells.range(lo..hi))
                };
            for (key, cell) in range {
                scanned += 1;
                if !q.filters.iter().all(|f| filter_hits(key, f, bucket_ms)) {
                    continue;
                }
                matched += 1;
                let mut gk: GroupKey = [0; MAX_DIMS];
                for (slot, d) in gk.iter_mut().zip(&q.group_by) {
                    *slot = group_component(key, *d, bucket_ms, plan.window_ms);
                }
                match groups.get_mut(&gk) {
                    Some(acc) => acc.merge_ref(cell),
                    None => {
                        groups.insert(gk, cell.clone());
                    }
                }
            }
            for seg in &p.segments {
                // Same pruning semantics as the row tier: an unbounded
                // plan scans every row; a bounded one scans the bucket
                // range. Scan accounting counts the range either way, so
                // both engines report identical `cells_scanned`.
                let (i0, i1) = if plan.bucket_lo == 0 && plan.bucket_hi == u32::MAX {
                    (0, seg.len())
                } else {
                    seg.bucket_range(plan.bucket_lo, plan.bucket_hi)
                };
                scanned += (i1 - i0) as u64;
                if i0 == i1 {
                    continue;
                }
                match engine {
                    Engine::Columnar => {
                        matched +=
                            scan_segment_columnar(seg, q, plan, bucket_ms, i0, i1, &mut groups);
                    }
                    Engine::Row => {
                        for i in i0..i1 {
                            let key = seg.key_at(i);
                            if !q.filters.iter().all(|f| filter_hits(&key, f, bucket_ms)) {
                                continue;
                            }
                            matched += 1;
                            let cell = seg.cell_at(i);
                            let mut gk: GroupKey = [0; MAX_DIMS];
                            for (slot, d) in gk.iter_mut().zip(&q.group_by) {
                                *slot = group_component(&key, *d, bucket_ms, plan.window_ms);
                            }
                            match groups.get_mut(&gk) {
                                Some(acc) => acc.merge_ref(&cell),
                                None => {
                                    groups.insert(gk, cell);
                                }
                            }
                        }
                    }
                }
            }
        }
        (groups, scanned, matched)
    }

    fn eval_devices(&self, q: &Query) -> ResultSet {
        let (groups, scanned, matched) = self.collect_devices(q);
        // Device labels never involve a time window; width 1 keeps the
        // (unreachable) `Dim::Time` arm well-defined.
        finalize_groups(q, 1, groups, scanned, matched)
    }

    /// The scan half of device-directory evaluation: one group per
    /// model/region/ISP key, the device tally carried in [`Cell::count`]
    /// so the same partial-aggregate shape (and the same cluster shipping
    /// path) serves cell and device metrics alike.
    pub(crate) fn collect_devices(&self, q: &Query) -> (BTreeMap<GroupKey, Cell>, u64, u64) {
        let failing_only = matches!(q.metric, Metric::FailingDevices);
        let mut groups: BTreeMap<GroupKey, Cell> = BTreeMap::new();
        let mut scanned = 0u64;
        for p in &self.partitions {
            for rec in p.devices.values() {
                scanned += 1;
                if failing_only && rec.failures == 0 {
                    continue;
                }
                let keep = q.filters.iter().all(|f| match f {
                    Filter::Model(m) => rec.model == m.0,
                    Filter::Region(r) => usize::from(rec.region) == r.index(),
                    Filter::Isp(i) => usize::from(rec.isp) == i.index(),
                    _ => true, // validation rejects the rest
                });
                if !keep {
                    continue;
                }
                let mut gk: GroupKey = [0; MAX_DIMS];
                for (slot, d) in gk.iter_mut().zip(&q.group_by) {
                    *slot = match d {
                        Dim::Model => u64::from(rec.model),
                        Dim::Region => u64::from(rec.region),
                        Dim::Isp => u64::from(rec.isp),
                        _ => 0, // validation rejects the rest
                    };
                }
                groups.entry(gk).or_default().count += 1;
            }
        }
        let matched: u64 = groups.values().map(|c| c.count).sum();
        (groups, scanned, matched)
    }
}

/// Shared groups→rows finalisation: label every group key, derive the
/// metric value from the accumulated partial aggregate (device metrics
/// read the tally straight out of [`Cell::count`]), and apply the top-k
/// cut. Local evaluation and the cluster's merge-then-finalize both end
/// here — the single code path is what makes scatter-gathered answers
/// byte-identical to single-node ones.
pub(crate) fn finalize_groups(
    q: &Query,
    window_ms: u64,
    groups: BTreeMap<GroupKey, Cell>,
    cells_scanned: u64,
    cells_matched: u64,
) -> ResultSet {
    let device = q.metric.is_device_metric();
    let mut rows: Vec<ResultRow> = groups
        .into_iter()
        .map(|(gk, acc)| {
            let key: Vec<u64> = gk[..q.group_by.len()].to_vec();
            let labels = key
                .iter()
                .zip(&q.group_by)
                .map(|(c, d)| component_label(*d, *c, window_ms))
                .collect();
            let value = if device {
                acc.count as f64
            } else {
                metric_value(&q.metric, &acc)
            };
            ResultRow {
                key,
                labels,
                value,
                count: acc.count,
            }
        })
        .collect();
    apply_top_k(&mut rows, q.top_k);
    ResultSet {
        group_by: q.group_by.clone(),
        metric: q.metric,
        rows,
        cells_scanned,
        cells_matched,
    }
}

/// True when a cell matching `f` **could** exist in a segment with zone
/// maps `z` — the pruning predicate. Soundness (a pruned segment provably
/// contains no matching row) is what keeps the columnar engine's answers
/// byte-identical to the row engine, and is pinned by the zone-edge
/// regression tests below and the differential suite.
fn zone_may_match(z: &Zones, f: &Filter) -> bool {
    fn within(r: (u8, u8), want: usize) -> bool {
        usize::from(r.0) <= want && want <= usize::from(r.1)
    }
    match f {
        Filter::Kind(k) => within(z.kind, k.index()),
        Filter::Isp(i) => within(z.isp, i.index()),
        Filter::Rat(r) => within(z.rat, r.index()),
        Filter::Model(m) => within(z.model, usize::from(m.0)),
        Filter::Region(r) => within(z.region, r.index()),
        Filter::CauseClass(l) => within(z.cause_class, l.index()),
        Filter::Cause(c) => z.may_match_value(1 + zigzag(i64::from(c.code()))),
        Filter::HasCause => z.cause.1 != 0,
        // Time is handled by the bucket-range scan bounds, and pruned
        // ranges must still count as scanned — never prune on it here.
        Filter::TimeRange { .. } => true,
    }
}

/// Scan rows `[i0, i1)` of one sealed segment with per-column loops:
/// prune by zone map, refine a selection one filter (= one column) at a
/// time, then materialise only the surviving rows into the group
/// accumulators — skipping sketch-pool merging entirely for metrics that
/// never read a sketch. Returns the matched-row count.
fn scan_segment_columnar(
    seg: &ColumnSegment,
    q: &Query,
    plan: &Plan,
    bucket_ms: u64,
    i0: usize,
    i1: usize,
    groups: &mut BTreeMap<GroupKey, Cell>,
) -> u64 {
    let z = seg.zones();
    if !q.filters.iter().all(|f| zone_may_match(z, f)) {
        return 0;
    }
    // Selection refinement: `None` = all rows in range still match. Each
    // filter reads exactly one column. TimeRange filters are already
    // satisfied by `[i0, i1)` (validation aligns bounds to whole buckets),
    // matching the row engine's per-cell re-check by construction.
    let mut sel: Option<Vec<u32>> = None;
    for f in &q.filters {
        match f {
            Filter::Kind(k) => {
                let w = k.index() as u8;
                refine(&mut sel, i0, i1, &seg.kinds, |&v| v == w);
            }
            Filter::Isp(i) => {
                let w = i.index() as u8;
                refine(&mut sel, i0, i1, &seg.isps, |&v| v == w);
            }
            Filter::Rat(r) => {
                let w = r.index() as u8;
                refine(&mut sel, i0, i1, &seg.rats, |&v| v == w);
            }
            Filter::Model(m) => {
                let w = m.0;
                refine(&mut sel, i0, i1, &seg.models, |&v| v == w);
            }
            Filter::Region(r) => {
                let w = r.index() as u8;
                refine(&mut sel, i0, i1, &seg.regions, |&v| v == w);
            }
            Filter::CauseClass(l) => {
                let w = l.index() as u8;
                refine(&mut sel, i0, i1, &seg.cause_classes, |&v| v == w);
            }
            Filter::Cause(c) => {
                let code = c.code();
                refine(&mut sel, i0, i1, &seg.causes, |&v| {
                    v != 0 && unzigzag(v - 1) as i32 == code
                });
            }
            Filter::HasCause => refine(&mut sel, i0, i1, &seg.causes, |&v| v != 0),
            Filter::TimeRange { .. } => {}
        }
        if sel.as_ref().is_some_and(Vec::is_empty) {
            return 0;
        }
    }
    let needs_sketch = matches!(q.metric, Metric::MaxDurationMs | Metric::QuantileMs(_));
    let mut fold = |i: usize| {
        let mut gk: GroupKey = [0; MAX_DIMS];
        for (slot, d) in gk.iter_mut().zip(&q.group_by) {
            *slot = match d {
                Dim::Time => (u64::from(seg.buckets[i]) * bucket_ms) / plan.window_ms,
                Dim::Kind => u64::from(seg.kinds[i]),
                Dim::Isp => u64::from(seg.isps[i]),
                Dim::Rat => u64::from(seg.rats[i]),
                Dim::Model => u64::from(seg.models[i]),
                Dim::Region => u64::from(seg.regions[i]),
                Dim::CauseClass => u64::from(seg.cause_classes[i]),
                Dim::Cause => seg.causes[i],
            };
        }
        let acc = groups.entry(gk).or_default();
        acc.count += seg.counts[i];
        acc.duration_ms_total += seg.duration_totals[i];
        acc.under_30s += seg.under_30s[i];
        if needs_sketch {
            let (min, max, run) = seg.sketch_run(i);
            let count = run.iter().map(|&(_, c)| c).sum();
            acc.sketch.merge_run(count, min, max, run);
        }
    };
    match sel {
        None => {
            for i in i0..i1 {
                fold(i);
            }
            (i1 - i0) as u64
        }
        Some(rows) => {
            for &i in &rows {
                fold(i as usize);
            }
            rows.len() as u64
        }
    }
}

/// Refine a row selection against one column: on the first filter, scan
/// the whole `[i0, i1)` slice; afterwards, re-test only the survivors.
fn refine<T>(
    sel: &mut Option<Vec<u32>>,
    i0: usize,
    i1: usize,
    col: &[T],
    pred: impl Fn(&T) -> bool,
) {
    match sel {
        None => {
            let mut v = Vec::new();
            for (off, x) in col[i0..i1].iter().enumerate() {
                if pred(x) {
                    v.push((i0 + off) as u32);
                }
            }
            *sel = Some(v);
        }
        Some(v) => v.retain(|&i| pred(&col[i as usize])),
    }
}

fn filter_hits(key: &CellKey, f: &Filter, bucket_ms: u64) -> bool {
    match f {
        Filter::Kind(k) => usize::from(key.kind) == k.index(),
        Filter::Isp(i) => usize::from(key.isp) == i.index(),
        Filter::Rat(r) => usize::from(key.rat) == r.index(),
        Filter::Model(m) => key.model == m.0,
        Filter::Region(r) => usize::from(key.region) == r.index(),
        Filter::CauseClass(l) => usize::from(key.cause_class) == l.index(),
        Filter::Cause(c) => key.cause_code() == Some(c.code()),
        Filter::HasCause => key.cause != 0,
        // Ranges also prune the scan to a key range; re-checking here keeps
        // intersecting ranges exact without a separate intersection step.
        Filter::TimeRange { start_ms, end_ms } => {
            let t = u64::from(key.bucket) * bucket_ms;
            t >= *start_ms && t < *end_ms
        }
    }
}

fn metric_value(m: &Metric, acc: &Cell) -> f64 {
    match m {
        Metric::Count => acc.count as f64,
        Metric::DurationTotalMs => acc.duration_ms_total as f64,
        Metric::MeanDurationMs => {
            if acc.count == 0 {
                0.0
            } else {
                acc.duration_ms_total as f64 / acc.count as f64
            }
        }
        Metric::MaxDurationMs => acc.sketch.max().unwrap_or(0) as f64,
        Metric::Under30sShare => {
            if acc.count == 0 {
                0.0
            } else {
                acc.under_30s as f64 / acc.count as f64
            }
        }
        Metric::QuantileMs(q) => acc.sketch.quantile(*q).unwrap_or(0) as f64,
        Metric::Devices | Metric::FailingDevices => 0.0, // device path never lands here
    }
}

fn apply_top_k(rows: &mut Vec<ResultRow>, k: usize) {
    if k == 0 || rows.len() <= k {
        if k != 0 {
            // Still rank the short list by value for presentation parity.
            sort_by_value(rows);
        }
        return;
    }
    sort_by_value(rows);
    rows.truncate(k);
}

fn sort_by_value(rows: &mut [ResultRow]) {
    // `total_cmp`, not `partial_cmp().expect(..)`: metric values are finite
    // today, but the ranking must stay total (and the server built on this
    // engine must never panic) even if a future metric produces a NaN. The
    // (value desc, key asc) order is the one explicit tie-break — nothing
    // here may depend on pre-sort row order or map iteration order.
    rows.sort_by(|a, b| b.value.total_cmp(&a.value).then_with(|| a.key.cmp(&b.key)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{build_sharded, DeviceDirectory, StoreConfig};
    use cellrel_types::{
        Apn, BsId, DeviceId, FailureEvent, InSituInfo, SignalLevel, SimDuration, SimTime,
    };

    fn ev(device: u32, start_s: u64, dur_s: u64, kind: FailureKind, rat: Rat) -> FailureEvent {
        FailureEvent {
            device: DeviceId(device),
            kind,
            start: SimTime::from_secs(start_s),
            duration: SimDuration::from_secs(dur_s),
            cause: (kind == FailureKind::DataSetupError).then_some(DataFailCause::SignalLost),
            ctx: InSituInfo {
                rat,
                signal: SignalLevel::L3,
                apn: Apn::Internet,
                bs: Some(BsId::gsm_cn(0, 1, 2)),
                isp: Isp::ALL[device as usize % 3],
            },
        }
    }

    fn fixture() -> Store {
        let events: Vec<FailureEvent> = (0..300u32)
            .map(|i| {
                ev(
                    i % 30,
                    u64::from(i) * 7_200, // spread over ~25 days
                    2 + u64::from(i % 60),
                    FailureKind::ALL[i as usize % 5],
                    Rat::ALL[i as usize % 4],
                )
            })
            .collect();
        build_sharded(
            &StoreConfig::default(),
            &DeviceDirectory::default(),
            &events,
            1,
        )
    }

    #[test]
    fn global_count_matches_inserted() {
        let s = fixture();
        let rs = s.query(&Query::count_by(vec![])).unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0].value as u64, s.inserted());
        assert_eq!(rs.cells_scanned, s.cells());
    }

    #[test]
    fn group_by_kind_partitions_the_count() {
        let s = fixture();
        let rs = s.query(&Query::count_by(vec![Dim::Kind])).unwrap();
        assert_eq!(rs.rows.len(), 5);
        let total: u64 = rs.rows.iter().map(|r| r.count).sum();
        assert_eq!(total, 300);
        // Rows are key-ascending; labels come from the kind catalogue.
        assert_eq!(rs.rows[0].labels, vec!["Data_Setup_Error".to_string()]);
    }

    #[test]
    fn filters_compose_conjunctively() {
        let s = fixture();
        let q = Query {
            filters: vec![
                Filter::Kind(FailureKind::DataSetupError),
                Filter::Rat(Rat::G4),
            ],
            group_by: vec![Dim::Isp],
            window_ms: 0,
            metric: Metric::Count,
            top_k: 0,
        };
        let rs = s.query(&q).unwrap();
        let brute: u64 = rs.rows.iter().map(|r| r.count).sum();
        // i%5==0 (setup) and i%4==2 (G4) → i ≡ 10 (mod 20): 15 of 300.
        assert_eq!(brute, 15);
    }

    #[test]
    fn time_range_prunes_and_filters_identically() {
        let s = fixture();
        let week_ms = 7 * 86_400_000u64;
        let q = Query {
            filters: vec![Filter::TimeRange {
                start_ms: 0,
                end_ms: week_ms,
            }],
            group_by: vec![Dim::Kind],
            window_ms: 0,
            metric: Metric::Count,
            top_k: 0,
        };
        let rs = s.query(&q).unwrap();
        // Events 0..84 start inside the first week (7200 s apart).
        let total: u64 = rs.rows.iter().map(|r| r.count).sum();
        assert_eq!(total, 84);
        assert!(rs.cells_scanned < s.cells(), "range scan must prune");
    }

    #[test]
    fn quantile_and_max_track_exact_extremes() {
        let s = fixture();
        let q = Query {
            filters: vec![],
            group_by: vec![],
            window_ms: 0,
            metric: Metric::MaxDurationMs,
            top_k: 0,
        };
        let rs = s.query(&q).unwrap();
        assert_eq!(rs.rows[0].value, 61_000.0); // 2 + 59 seconds
        let q1 = Query {
            metric: Metric::QuantileMs(1.0),
            ..q
        };
        assert_eq!(s.query(&q1).unwrap().rows[0].value, 61_000.0);
        let q0 = Query {
            metric: Metric::QuantileMs(0.0),
            ..q1
        };
        assert_eq!(s.query(&q0).unwrap().rows[0].value, 2_000.0);
    }

    #[test]
    fn top_k_orders_by_value_then_key() {
        let s = fixture();
        let q = Query {
            filters: vec![],
            group_by: vec![Dim::Rat],
            window_ms: 0,
            metric: Metric::Count,
            top_k: 2,
        };
        let rs = s.query(&q).unwrap();
        assert_eq!(rs.rows.len(), 2);
        // 300 events over 4 RATs: counts 75 each — the tie breaks by key.
        assert_eq!(rs.rows[0].key, vec![0]);
        assert_eq!(rs.rows[1].key, vec![1]);
    }

    #[test]
    fn top_k_with_empty_group_by_is_stable() {
        // Regression: top_k combined with an empty group_by must go through
        // the same explicit (value desc, key asc) ranking as grouped
        // queries — one global row in, the same row out, on both the cell
        // and the device evaluation paths, at any partition split.
        let s = fixture();
        for metric in [Metric::Count, Metric::FailingDevices] {
            let with_k = Query {
                filters: vec![],
                group_by: vec![],
                window_ms: 0,
                metric,
                top_k: 1,
            };
            let without_k = Query {
                top_k: 0,
                ..with_k.clone()
            };
            let a = s.query(&with_k).unwrap();
            let b = s.query(&without_k).unwrap();
            assert_eq!(a.rows, b.rows, "{metric:?}");
            assert_eq!(a.rows.len(), 1);
        }
    }

    #[test]
    fn top_k_tie_break_is_partition_invariant() {
        // The fixture gives every RAT and every ISP identical counts, so a
        // top-k cut is all ties: the ranking must come out identical no
        // matter how cells are spread over partitions (map iteration order
        // differs) and must equal the explicit (value desc, key asc) order.
        let events: Vec<FailureEvent> = (0..300u32)
            .map(|i| {
                ev(
                    i % 30,
                    u64::from(i) * 7_200,
                    2 + u64::from(i % 60),
                    FailureKind::ALL[i as usize % 5],
                    Rat::ALL[i as usize % 4],
                )
            })
            .collect();
        let q = Query {
            filters: vec![],
            group_by: vec![Dim::Rat, Dim::Isp],
            window_ms: 0,
            metric: Metric::Count,
            top_k: 5,
        };
        let mut baseline: Option<Vec<ResultRow>> = None;
        for partitions in [1usize, 4, 16] {
            let cfg = StoreConfig {
                partitions,
                ..StoreConfig::default()
            };
            let s = build_sharded(&cfg, &DeviceDirectory::default(), &events, 1);
            let rows = s.query(&q).unwrap().rows;
            for w in rows.windows(2) {
                assert!(
                    w[0].value > w[1].value || (w[0].value == w[1].value && w[0].key <= w[1].key),
                    "rows must be (value desc, key asc): {w:?}"
                );
            }
            match &baseline {
                None => baseline = Some(rows),
                Some(b) => assert_eq!(b, &rows, "partitions={partitions}"),
            }
        }
    }

    #[test]
    fn device_metrics_count_the_directory() {
        let s = fixture();
        let rs = s
            .query(&Query {
                filters: vec![],
                group_by: vec![],
                window_ms: 0,
                metric: Metric::FailingDevices,
                top_k: 0,
            })
            .unwrap();
        assert_eq!(rs.rows[0].value as u64, 30);
        let err = s
            .query(&Query {
                filters: vec![],
                group_by: vec![Dim::Kind],
                window_ms: 0,
                metric: Metric::Devices,
                top_k: 0,
            })
            .unwrap_err();
        assert_eq!(err, QueryError::DeviceMetricDim(Dim::Kind));
    }

    #[test]
    fn validation_rejects_bad_queries() {
        let s = fixture();
        let dup = Query::count_by(vec![Dim::Kind, Dim::Kind]);
        assert_eq!(
            s.query(&dup).unwrap_err(),
            QueryError::DuplicateDim(Dim::Kind)
        );
        let bad_window = Query {
            group_by: vec![Dim::Time],
            window_ms: 86_400_000, // one day < the weekly rollup granularity
            ..Query::count_by(vec![])
        };
        assert!(matches!(
            s.query(&bad_window),
            Err(QueryError::UnalignedWindow { .. })
        ));
        let bad_range = Query {
            filters: vec![Filter::TimeRange {
                start_ms: 0,
                end_ms: 3_600_000,
            }],
            ..Query::count_by(vec![])
        };
        assert!(matches!(
            s.query(&bad_range),
            Err(QueryError::UnalignedRange { .. })
        ));
        let bad_q = Query {
            metric: Metric::QuantileMs(1.5),
            ..Query::count_by(vec![])
        };
        assert_eq!(s.query(&bad_q).unwrap_err(), QueryError::BadQuantile(1.5));
    }

    #[test]
    fn columnar_engine_matches_row_reference_on_the_workload() {
        let mut s = fixture();
        s.compact();
        assert!(s.sealed_segments() > 0, "fixture must exercise segments");
        for (name, q) in crate::workload::canonical(7 * 86_400_000) {
            assert_eq!(s.query(&q).unwrap(), s.query_row(&q).unwrap(), "{name}");
        }
        // Sealed-without-folding layout too (the stream pipeline's shape).
        let mut sealed = fixture();
        sealed.seal_columnar();
        for (name, q) in crate::workload::canonical(7 * 86_400_000) {
            assert_eq!(
                sealed.query(&q).unwrap(),
                sealed.query_row(&q).unwrap(),
                "sealed {name}"
            );
        }
    }

    /// Regression for the cube's rollup-edge case in columnar form: when
    /// the seal lands exactly on the newest bucket, the sealed run ends at
    /// the last rollup start while the edge bucket stays hot. Zone-map and
    /// bucket-range pruning at those exact edges must be *sound* — a
    /// pruned segment provably contains no row the filter could match —
    /// which the row reference engine verifies by scanning everything.
    #[test]
    fn zone_pruning_at_exact_rollup_edges_is_sound() {
        let cfg = StoreConfig {
            bucket_ms: 1_000,
            rollup_buckets: 4,
            partitions: 1,
            auto_compact_every: 0,
        };
        let dir = DeviceDirectory::default();
        let mut s = crate::cube::Store::new(&cfg);
        // Buckets 0..=8, all Data_Stall; the edge bucket (8, == seal) also
        // holds two Data_Setup_Error records carrying a cause.
        for t in 0..9u64 {
            let e = ev(0, t, 1, FailureKind::DataStall, Rat::G4);
            s.record(&e, dir.dim_of(e.device));
        }
        for _ in 0..2 {
            let e = ev(0, 8, 2, FailureKind::DataSetupError, Rat::G4);
            s.record(&e, dir.dim_of(e.device));
        }
        s.compact();
        assert_eq!(s.sealed_cells(), 2, "sealed run holds rollup starts 0,4");
        let count = |filters: Vec<Filter>| Query {
            filters,
            group_by: vec![],
            window_ms: 0,
            metric: Metric::Count,
            top_k: 0,
        };
        let cases = [
            // Range covering exactly the sealed run.
            count(vec![Filter::TimeRange {
                start_ms: 0,
                end_ms: 8_000,
            }]),
            // Range starting at the seal edge: every sealed row is
            // range-pruned, every hot row is in range.
            count(vec![Filter::TimeRange {
                start_ms: 8_000,
                end_ms: 12_000,
            }]),
            // Interior edge: only the second rollup start survives.
            count(vec![Filter::TimeRange {
                start_ms: 4_000,
                end_ms: 8_000,
            }]),
            // Kind only the hot tier holds: the zone map prunes the run.
            count(vec![Filter::Kind(FailureKind::DataSetupError)]),
            // Cause filters at the zone edges.
            count(vec![Filter::HasCause]),
            count(vec![Filter::Cause(DataFailCause::SignalLost)]),
        ];
        for (i, q) in cases.iter().enumerate() {
            let columnar = s.query(q).unwrap();
            let row = s.query_row(q).unwrap();
            assert_eq!(columnar, row, "case {i}");
        }
        // The zone-pruned kind query still reports the full scan while
        // matching only the hot setup-error cell.
        let rs = s
            .query(&count(vec![Filter::Kind(FailureKind::DataSetupError)]))
            .unwrap();
        assert_eq!(rs.cells_scanned, s.cells());
        assert_eq!(rs.cells_matched, 1);
        assert_eq!(rs.rows[0].count, 2);
    }

    #[test]
    fn compaction_does_not_change_answers() {
        let mut s = fixture();
        let queries = [
            Query::count_by(vec![Dim::Kind, Dim::Isp]),
            Query {
                group_by: vec![Dim::Time, Dim::Kind],
                ..Query::count_by(vec![])
            },
            Query {
                metric: Metric::QuantileMs(0.9),
                group_by: vec![Dim::Rat],
                ..Query::count_by(vec![])
            },
            Query {
                filters: vec![Filter::HasCause],
                group_by: vec![Dim::Cause],
                metric: Metric::Count,
                window_ms: 0,
                top_k: 3,
            },
        ];
        let before: Vec<_> = queries.iter().map(|q| s.query(q).unwrap().rows).collect();
        s.compact();
        let after: Vec<_> = queries.iter().map(|q| s.query(q).unwrap().rows).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn render_is_stable() {
        let s = fixture();
        let rs = s.query(&Query::count_by(vec![Dim::Isp])).unwrap();
        let text = rs.render();
        assert_eq!(text.lines().next().unwrap().trim(), "isp  count  records");
        assert!(text.contains("ISP-A    100      100"), "{text}");
        assert_eq!(text.lines().count(), 4);
    }
}
