//! # cellrel-store
//!
//! An embedded, deterministic **fleet-analytics cube** over ingested
//! telemetry — the serving layer the paper's backend needs to answer
//! multi-dimensional reliability questions (failure rates by ISP × RAT ×
//! model × region × fail-cause class over time, Tables 1–2, §3–§5)
//! without a batch pass per question.
//!
//! Six layers:
//!
//! * [`cube`] — partitioned storage: records land in cells keyed by
//!   (time bucket, kind, ISP, RAT, model, region, cause class, cause);
//!   cells hold only mergeable partial aggregates (counts, exact duration
//!   sums, sparse quantile sketches), so sharded builds fold with the
//!   workspace `Merge` trait and are **bit-identical at any thread
//!   count**. Rollup compaction folds sealed time buckets without
//!   changing query answers, and [`Store::digest`] hashes a canonical
//!   rolled-up view so it is invariant across threads, partition counts,
//!   and compaction on/off.
//! * [`columnar`] — the sealed-segment layout: sorted key runs stored as
//!   per-column arrays with zone maps, k-way merge compaction, and a
//!   CRC-framed `SC` block codec the v2 store image embeds. Sealed data
//!   scans branch-light (tight per-column filter loops, prune by zone,
//!   materialise only matches) while staying byte-identical to the row
//!   engine — proven by the differential suite.
//! * [`query`] — the typed embedded query engine:
//!   [`Query`] { filters, group-by, window, metric, top-k } →
//!   [`ResultSet`], with validation that keeps every legal query
//!   compaction-transparent. [`Store::query`] scans segments columnar;
//!   [`Store::query_row`] is the row reference engine the differential
//!   harness compares against.
//! * [`federate`] — scatter-gather support for the cluster tier:
//!   [`Store::query_partial`] evaluates up to (not including)
//!   finalisation, [`merge_partials`] folds shard partials with the
//!   exact cell algebra and finalises through the same code path local
//!   queries use, so federated answers are byte-identical to
//!   single-node ones.
//! * [`persist`] — CRC-framed save/restore of the full store state,
//!   mirroring the ingest checkpoint format discipline (total restore,
//!   typed errors, no unbounded allocations on hostile input). Images are
//!   version-gated: v1 (row-only) stays byte-stable; stores holding
//!   sealed segments save as v2 with embedded `SC` blocks.
//! * [`workload`] — the canonical 11-query benchmark workload shared by
//!   the bench bins, the differential suite, and CI smoke checks.
//!
//! Records arrive either from the simulation drivers (via the workload
//! `EventSink`) or from the ingest collector (via its `AcceptedSink`) —
//! [`StoreSink`] implements both over a shared [`DeviceDirectory`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod cube;
pub mod federate;
pub mod persist;
pub mod query;
pub mod workload;

pub use columnar::{ColumnSegment, Zones, SEGMENT_MAGIC, SEGMENT_VERSION};
pub use cube::{
    build_sharded, Cell, CellKey, DeviceDim, DeviceDirectory, DeviceRec, Region, Store,
    StoreConfig, StoreSink, NO_CAUSE_CLASS, NO_ISP,
};
pub use federate::{decode_partial, encode_partial, merge_partials, PartialResultSet};
pub use persist::{restore_store, save_store, PersistError};
pub use query::{Dim, Filter, Metric, Query, QueryError, ResultRow, ResultSet};
