//! Federation support for sharded serving: per-shard **partial** query
//! results that merge exactly.
//!
//! A finalized [`ResultSet`] cannot be combined across shards — a mean, a
//! quantile, or an under-30 s share computed per shard loses the partial
//! aggregates it was derived from. So shards answer with a
//! [`PartialResultSet`]: one mergeable [`Cell`](crate::Cell) of partial
//! aggregates per group (count, exact duration sum, under-30 s tally,
//! quantile sketch — the same algebra the build path folds with), plus the
//! scan accounting. [`merge_partials`] folds any number of shard partials
//! with the cube's exact `Cell` merge and only then finalises through the
//! **same** groups→rows code path local evaluation uses — which is what
//! makes a scatter-gathered answer byte-identical to a single-node one,
//! row for row, label for label (the cluster differential suite pins
//! this at 1/2/4 shards).
//!
//! Accounting contract: rows, labels, values and per-row counts are
//! shard-count-invariant. `cells_scanned` / `cells_matched` are **additive**
//! across shards — with more than one shard a cell key populated by devices
//! on different shards is scanned once per shard, so the merged counters
//! legitimately exceed the single-node layout's (the same caveat the
//! store differential suite documents for compacted layouts). At one shard
//! the layout is identical and the full `ResultSet` matches exactly.
//!
//! The wire form ([`encode_partial`] / [`decode_partial`]) is a bare
//! varint sequence in the persistence idiom — framing, versioning and CRC
//! belong to the carrying protocol (the cluster's `CR` frames). Decoding
//! is total: hostile bytes return a typed [`PersistError`], never panic,
//! and never allocate proportionally to an unchecked length claim.

use crate::cube::{Cell, Store};
use crate::persist::{read_sketch, rv, write_sketch, PersistError};
use crate::query::{finalize_groups, validate, Engine, GroupKey, MAX_DIMS};
use crate::{Query, QueryError, ResultSet};
use cellrel_ingest::codec::write_varint;
use std::collections::BTreeMap;

/// One shard's contribution to a federated query: mergeable per-group
/// partial aggregates plus scan accounting. Group keys are truncated to
/// the query's `group_by` width and come out key-ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialResultSet {
    /// The time-window width the shard planned with (1 for device
    /// metrics); every shard derives the same value from the query and
    /// the shared store configuration.
    pub window_ms: u64,
    /// `(group key, partial aggregate)` pairs, key-ascending. Device
    /// metrics carry the device tally in [`Cell::count`].
    pub groups: Vec<(Vec<u64>, Cell)>,
    /// Cells visited on this shard (after time-range pruning).
    pub cells_scanned: u64,
    /// Cells that passed all filters on this shard.
    pub cells_matched: u64,
}

impl Store {
    /// Evaluate a query up to — but not including — finalisation: the
    /// shard half of scatter-gather. Validation is identical to
    /// [`Store::query`], so a query one shard rejects is rejected by all
    /// shards with the same [`QueryError`].
    pub fn query_partial(&self, q: &Query) -> Result<PartialResultSet, QueryError> {
        let plan = validate(self, q)?;
        let (groups, scanned, matched, window_ms) = if q.metric.is_device_metric() {
            let (g, s, m) = self.collect_devices(q);
            (g, s, m, 1)
        } else {
            let (g, s, m) = self.collect_cells(q, &plan, Engine::Columnar);
            (g, s, m, plan.window_ms)
        };
        Ok(PartialResultSet {
            window_ms,
            groups: groups
                .into_iter()
                .map(|(gk, c)| (gk[..q.group_by.len()].to_vec(), c))
                .collect(),
            cells_scanned: scanned,
            cells_matched: matched,
        })
    }
}

/// Merge shard partials with the exact `Cell` algebra, then finalise
/// (metric derivation, labels, top-k) through the same code path local
/// evaluation uses. Accounting sums saturating — decoded wire input could
/// claim anything; answers must still be total.
pub fn merge_partials(q: &Query, partials: &[PartialResultSet]) -> ResultSet {
    let window_ms = partials.first().map_or(1, |p| p.window_ms);
    let mut groups: BTreeMap<GroupKey, Cell> = BTreeMap::new();
    let mut scanned = 0u64;
    let mut matched = 0u64;
    for p in partials {
        scanned = scanned.saturating_add(p.cells_scanned);
        matched = matched.saturating_add(p.cells_matched);
        for (key, cell) in &p.groups {
            let mut gk: GroupKey = [0; MAX_DIMS];
            for (slot, k) in gk.iter_mut().zip(key) {
                *slot = *k;
            }
            match groups.get_mut(&gk) {
                Some(acc) => acc.merge_ref(cell),
                None => {
                    groups.insert(gk, cell.clone());
                }
            }
        }
    }
    finalize_groups(q, window_ms, groups, scanned, matched)
}

/// Serialize a partial result as a bare varint sequence (no framing — the
/// carrying protocol owns magic/version/CRC).
pub fn encode_partial(p: &PartialResultSet) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, p.window_ms);
    write_varint(&mut out, p.cells_scanned);
    write_varint(&mut out, p.cells_matched);
    let key_len = p.groups.first().map_or(0, |(k, _)| k.len());
    debug_assert!(p.groups.iter().all(|(k, _)| k.len() == key_len));
    write_varint(&mut out, key_len as u64);
    write_varint(&mut out, p.groups.len() as u64);
    for (key, c) in &p.groups {
        for k in key {
            write_varint(&mut out, *k);
        }
        write_varint(&mut out, c.count);
        write_varint(&mut out, c.duration_ms_total);
        write_varint(&mut out, c.under_30s);
        write_sketch(&mut out, &c.sketch);
    }
    out
}

/// Total inverse of [`encode_partial`]: typed errors on truncated,
/// corrupted or adversarial bytes, allocation bounded by the input size.
pub fn decode_partial(bytes: &[u8]) -> Result<PartialResultSet, PersistError> {
    let mut pos = 0usize;
    let window_ms = rv(bytes, &mut pos)?;
    let cells_scanned = rv(bytes, &mut pos)?;
    let cells_matched = rv(bytes, &mut pos)?;
    let key_len = rv(bytes, &mut pos)? as usize;
    if key_len > MAX_DIMS {
        return Err(PersistError::Malformed("group key too wide"));
    }
    let n = rv(bytes, &mut pos)? as usize;
    // Each group costs at least key_len + 3 cell + 3 sketch-header bytes;
    // a count claiming more groups than the input could hold is hostile.
    if n > bytes.len().saturating_sub(pos) / (key_len + 6) + 1 {
        return Err(PersistError::Malformed("group count exceeds input"));
    }
    let mut groups = Vec::with_capacity(n);
    let mut prev: Option<Vec<u64>> = None;
    for _ in 0..n {
        let mut key = Vec::with_capacity(key_len);
        for _ in 0..key_len {
            key.push(rv(bytes, &mut pos)?);
        }
        if let Some(p) = &prev {
            if *p >= key {
                return Err(PersistError::Malformed("group keys not ascending"));
            }
        }
        let count = rv(bytes, &mut pos)?;
        let duration_ms_total = rv(bytes, &mut pos)?;
        let under_30s = rv(bytes, &mut pos)?;
        if under_30s > count {
            return Err(PersistError::Malformed("under_30s exceeds count"));
        }
        let sketch = read_sketch(bytes, &mut pos)?;
        prev = Some(key.clone());
        groups.push((
            key,
            Cell {
                count,
                duration_ms_total,
                under_30s,
                sketch,
            },
        ));
    }
    if pos != bytes.len() {
        return Err(PersistError::TrailingBytes);
    }
    Ok(PartialResultSet {
        window_ms,
        groups,
        cells_scanned,
        cells_matched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{build_sharded, DeviceDirectory, StoreConfig};
    use crate::{Dim, Filter, Metric};
    use cellrel_types::{
        Apn, BsId, DataFailCause, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat,
        SignalLevel, SimDuration, SimTime,
    };

    fn events(n: u32) -> Vec<FailureEvent> {
        (0..n)
            .map(|i| FailureEvent {
                device: DeviceId(i % 40),
                kind: FailureKind::ALL[i as usize % 5],
                start: SimTime::from_secs(u64::from(i) * 3_600),
                duration: SimDuration::from_secs(2 + u64::from(i % 90)),
                cause: (i % 4 == 0).then_some(DataFailCause::SignalLost),
                ctx: InSituInfo {
                    rat: Rat::ALL[i as usize % 4],
                    signal: SignalLevel::L3,
                    apn: Apn::Internet,
                    bs: Some(BsId::gsm_cn(0, 1, 2)),
                    isp: Isp::ALL[i as usize % 3],
                },
            })
            .collect()
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::count_by(vec![]),
            Query::count_by(vec![Dim::Kind, Dim::Isp]),
            Query {
                metric: Metric::MeanDurationMs,
                group_by: vec![Dim::Rat],
                ..Query::count_by(vec![])
            },
            Query {
                metric: Metric::QuantileMs(0.9),
                group_by: vec![Dim::Kind],
                top_k: 3,
                ..Query::count_by(vec![])
            },
            Query {
                metric: Metric::Under30sShare,
                filters: vec![Filter::HasCause],
                ..Query::count_by(vec![])
            },
            Query {
                metric: Metric::FailingDevices,
                group_by: vec![Dim::Isp],
                ..Query::count_by(vec![])
            },
        ]
    }

    /// Split the fixture into per-device-parity sub-stores and prove
    /// merge-then-finalize reproduces the single store's rows exactly —
    /// mean/quantile/share metrics included, which per-shard finalisation
    /// would get wrong.
    #[test]
    fn merged_partials_match_single_store_rows() {
        let evs = events(400);
        let cfg = StoreConfig::default();
        let whole_dir = DeviceDirectory::default();
        let whole = build_sharded(&cfg, &whole_dir, &evs, 1);
        let shards = 3u32;
        let stores: Vec<_> = (0..shards)
            .map(|s| {
                let sub: Vec<_> = evs
                    .iter()
                    .filter(|e| e.device.0 % shards == s)
                    .cloned()
                    .collect();
                build_sharded(&cfg, &whole_dir, &sub, 1)
            })
            .collect();
        for q in queries() {
            let single = whole.query(&q).unwrap();
            let partials: Vec<_> = stores
                .iter()
                .map(|s| s.query_partial(&q).unwrap())
                .collect();
            let merged = merge_partials(&q, &partials);
            assert_eq!(merged.rows, single.rows, "{q:?}");
            assert_eq!(merged.group_by, single.group_by);
            assert_eq!(merged.metric, single.metric);
        }
    }

    #[test]
    fn single_partial_finalises_to_the_exact_result_set() {
        let s = build_sharded(
            &StoreConfig::default(),
            &DeviceDirectory::default(),
            &events(300),
            1,
        );
        for q in queries() {
            let direct = s.query(&q).unwrap();
            let merged = merge_partials(&q, &[s.query_partial(&q).unwrap()]);
            assert_eq!(merged, direct, "{q:?}");
        }
    }

    #[test]
    fn partial_roundtrips_through_the_wire_form() {
        let s = build_sharded(
            &StoreConfig::default(),
            &DeviceDirectory::default(),
            &events(300),
            1,
        );
        for q in queries() {
            let p = s.query_partial(&q).unwrap();
            let bytes = encode_partial(&p);
            assert_eq!(decode_partial(&bytes).unwrap(), p, "{q:?}");
        }
    }

    #[test]
    fn decode_is_total_on_hostile_bytes() {
        let s = build_sharded(
            &StoreConfig::default(),
            &DeviceDirectory::default(),
            &events(300),
            1,
        );
        let q = Query::count_by(vec![Dim::Kind, Dim::Isp]);
        let bytes = encode_partial(&s.query_partial(&q).unwrap());
        // Every truncation either decodes (a prefix can be a valid image
        // only when it consumes everything) or returns a typed error.
        for cut in 0..bytes.len() {
            let _ = decode_partial(&bytes[..cut]);
        }
        // Bit flips: never panic.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x41;
            let _ = decode_partial(&b);
        }
        // A group count lying past the input is rejected before allocating.
        let mut lie = Vec::new();
        for v in [0u64, 0, 0, 8] {
            cellrel_ingest::codec::write_varint(&mut lie, v);
        }
        cellrel_ingest::codec::write_varint(&mut lie, u64::MAX);
        assert!(matches!(
            decode_partial(&lie),
            Err(PersistError::Malformed(_))
        ));
        // Trailing garbage after a valid image is rejected.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode_partial(&trailing), Err(PersistError::TrailingBytes));
    }

    #[test]
    fn rejects_unordered_group_keys() {
        let q = Query::count_by(vec![Dim::Kind]);
        let cell = Cell {
            count: 1,
            ..Default::default()
        };
        let p = PartialResultSet {
            window_ms: 1,
            groups: vec![(vec![2], cell.clone()), (vec![1], cell)],
            cells_scanned: 2,
            cells_matched: 2,
        };
        let bytes = encode_partial(&p);
        assert!(matches!(
            decode_partial(&bytes),
            Err(PersistError::Malformed("group keys not ascending"))
        ));
        // The merge itself is still total on such input.
        let _ = merge_partials(&q, &[p]);
    }
}
