//! CRC-framed persistence for the store, mirroring the `cellrel-ingest`
//! checkpoint machinery: magic + version header, LEB128 varints, sparse
//! delta-coded sketches, and a CRC-32 trailer over everything.
//!
//! Restore is **total**: truncated, corrupted, or adversarial bytes return
//! a typed [`PersistError`], never panic, and never allocate proportionally
//! to a length claim that exceeds the input. A successful restore
//! reproduces the saved store exactly (`==`, same digest, same query
//! answers) — asserted by the round-trip and property tests.

use crate::columnar::ColumnSegment;
use crate::cube::{Cell, CellKey, DeviceRec, Store, StoreConfig};
use cellrel_ingest::codec::{crc32, read_varint, write_varint};
use cellrel_sim::SparseSketch;

/// Leading magic of a store image.
pub const STORE_MAGIC: [u8; 2] = *b"CS";
/// Row-only format version. Stores with no sealed segments save exactly
/// as they always have — byte-identical v1 images — so old readers and
/// golden snapshots of row-only stores are untouched.
pub const STORE_VERSION: u8 = 1;
/// Columnar format version: identical to v1 except each partition writes
/// a segment count followed by CRC-framed `SC` blocks (see
/// [`crate::columnar`]) between its cells and its device table. Emitted
/// only when at least one partition holds a sealed segment.
pub const STORE_VERSION_COLUMNAR: u8 = 2;

/// Why a store image failed to restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistError {
    /// Too short to hold magic, version and trailer.
    TooShort,
    /// Magic mismatch.
    BadMagic,
    /// Unsupported version byte.
    BadVersion(u8),
    /// CRC-32 trailer mismatch (bit rot / truncation).
    BadCrc,
    /// A varint ran past the end of the image.
    Varint,
    /// Structurally invalid image (reason attached).
    Malformed(&'static str),
    /// Valid image followed by unconsumed bytes.
    TrailingBytes,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::TooShort => write!(f, "image too short"),
            PersistError::BadMagic => write!(f, "bad magic"),
            PersistError::BadVersion(v) => write!(f, "unsupported store format version {v}"),
            PersistError::BadCrc => write!(f, "CRC mismatch"),
            PersistError::Varint => write!(f, "truncated varint"),
            PersistError::Malformed(why) => write!(f, "malformed image: {why}"),
            PersistError::TrailingBytes => write!(f, "trailing bytes after image"),
        }
    }
}

impl std::error::Error for PersistError {}

pub(crate) fn rv(bytes: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    read_varint(bytes, pos).map_err(|_| PersistError::Varint)
}

fn rv_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, PersistError> {
    let v = rv(bytes, pos)?;
    u8::try_from(v).map_err(|_| PersistError::Malformed("field exceeds u8"))
}

pub(crate) fn write_sketch(out: &mut Vec<u8>, s: &SparseSketch) {
    write_varint(out, s.min().unwrap_or(0));
    write_varint(out, s.max().unwrap_or(0));
    let pairs: Vec<(usize, u64)> = s.nonzero_buckets().collect();
    write_varint(out, pairs.len() as u64);
    let mut prev = 0usize;
    for (n, &(i, c)) in pairs.iter().enumerate() {
        // First index raw, then strictly positive deltas.
        let delta = if n == 0 { i } else { i - prev };
        write_varint(out, delta as u64);
        write_varint(out, c);
        prev = i;
    }
}

pub(crate) fn read_sketch(bytes: &[u8], pos: &mut usize) -> Result<SparseSketch, PersistError> {
    let min = rv(bytes, pos)?;
    let max = rv(bytes, pos)?;
    let nnz = rv(bytes, pos)? as usize;
    // Each pair costs at least two bytes; a claim beyond that is hostile.
    if nnz > bytes.len().saturating_sub(*pos) / 2 + 1 {
        return Err(PersistError::Malformed("sketch length exceeds input"));
    }
    let mut pairs = Vec::with_capacity(nnz);
    let mut idx = 0usize;
    for n in 0..nnz {
        let delta = rv(bytes, pos)? as usize;
        if n > 0 && delta == 0 {
            return Err(PersistError::Malformed("zero sketch index delta"));
        }
        idx = if n == 0 {
            delta
        } else {
            idx.checked_add(delta)
                .ok_or(PersistError::Malformed("sketch index overflow"))?
        };
        let count = rv(bytes, pos)?;
        pairs.push((idx, count));
    }
    SparseSketch::from_parts(min, max, pairs)
        .ok_or(PersistError::Malformed("invalid sketch buckets"))
}

/// Serialize the full store state.
pub fn save_store(store: &Store) -> Vec<u8> {
    let columnar = store.partitions.iter().any(|p| !p.segments.is_empty());
    let mut out = Vec::new();
    out.extend_from_slice(&STORE_MAGIC);
    out.push(if columnar {
        STORE_VERSION_COLUMNAR
    } else {
        STORE_VERSION
    });
    let cfg = store.config();
    write_varint(&mut out, cfg.bucket_ms);
    write_varint(&mut out, u64::from(cfg.rollup_buckets));
    write_varint(&mut out, cfg.partitions as u64);
    write_varint(&mut out, cfg.auto_compact_every);
    for p in &store.partitions {
        write_varint(&mut out, p.inserted);
        write_varint(&mut out, p.compactions);
        write_varint(&mut out, p.cells_folded);
        write_varint(&mut out, p.since_compact);
        write_varint(&mut out, p.cells.len() as u64);
        for (k, c) in &p.cells {
            write_varint(&mut out, u64::from(k.bucket));
            write_varint(&mut out, u64::from(k.kind));
            write_varint(&mut out, u64::from(k.isp));
            write_varint(&mut out, u64::from(k.rat));
            write_varint(&mut out, u64::from(k.model));
            write_varint(&mut out, u64::from(k.region));
            write_varint(&mut out, u64::from(k.cause_class));
            write_varint(&mut out, k.cause);
            write_varint(&mut out, c.count);
            write_varint(&mut out, c.duration_ms_total);
            write_varint(&mut out, c.under_30s);
            write_sketch(&mut out, &c.sketch);
        }
        if columnar {
            write_varint(&mut out, p.segments.len() as u64);
            for seg in &p.segments {
                seg.encode(&mut out);
            }
        }
        write_varint(&mut out, p.devices.len() as u64);
        let mut prev: Option<u32> = None;
        for (&id, rec) in &p.devices {
            // First id raw, then strictly positive deltas (ids ascend).
            let v = match prev {
                None => u64::from(id),
                Some(last) => u64::from(id - last),
            };
            prev = Some(id);
            write_varint(&mut out, v);
            write_varint(&mut out, u64::from(rec.model));
            write_varint(&mut out, u64::from(rec.region));
            write_varint(&mut out, u64::from(rec.isp));
            write_varint(&mut out, rec.failures);
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Restore a store image. Total: every failure mode is a [`PersistError`].
pub fn restore_store(bytes: &[u8]) -> Result<Store, PersistError> {
    if bytes.len() < STORE_MAGIC.len() + 1 + 4 {
        return Err(PersistError::TooShort);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    if crc32(body) != stored_crc {
        return Err(PersistError::BadCrc);
    }
    if body[..2] != STORE_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = body[2];
    if version != STORE_VERSION && version != STORE_VERSION_COLUMNAR {
        return Err(PersistError::BadVersion(version));
    }
    let mut pos = 3usize;
    let bucket_ms = rv(body, &mut pos)?;
    let rollup = rv(body, &mut pos)?;
    let nparts = rv(body, &mut pos)? as usize;
    let auto_compact_every = rv(body, &mut pos)?;
    if bucket_ms == 0 || rollup == 0 || rollup > u64::from(u32::MAX) {
        return Err(PersistError::Malformed("invalid bucket geometry"));
    }
    if nparts == 0 || nparts > body.len() {
        return Err(PersistError::Malformed("partition count exceeds input"));
    }
    let cfg = StoreConfig {
        bucket_ms,
        rollup_buckets: rollup as u32,
        partitions: nparts,
        auto_compact_every,
    };
    let mut store = Store::new(&cfg);
    for p in store.partitions.iter_mut() {
        p.inserted = rv(body, &mut pos)?;
        p.compactions = rv(body, &mut pos)?;
        p.cells_folded = rv(body, &mut pos)?;
        p.since_compact = rv(body, &mut pos)?;
        let ncells = rv(body, &mut pos)? as usize;
        if ncells > body.len().saturating_sub(pos) {
            return Err(PersistError::Malformed("cell count exceeds input"));
        }
        let mut prev_key: Option<CellKey> = None;
        for _ in 0..ncells {
            let bucket = rv(body, &mut pos)?;
            if bucket > u64::from(u32::MAX) {
                return Err(PersistError::Malformed("bucket exceeds u32"));
            }
            let key = CellKey {
                bucket: bucket as u32,
                kind: rv_u8(body, &mut pos)?,
                isp: rv_u8(body, &mut pos)?,
                rat: rv_u8(body, &mut pos)?,
                model: rv_u8(body, &mut pos)?,
                region: rv_u8(body, &mut pos)?,
                cause_class: rv_u8(body, &mut pos)?,
                cause: rv(body, &mut pos)?,
            };
            if prev_key.is_some_and(|pk| key <= pk) {
                return Err(PersistError::Malformed("cells out of order"));
            }
            prev_key = Some(key);
            let count = rv(body, &mut pos)?;
            let duration_ms_total = rv(body, &mut pos)?;
            let under_30s = rv(body, &mut pos)?;
            let sketch = read_sketch(body, &mut pos)?;
            if sketch.count() != count || under_30s > count {
                return Err(PersistError::Malformed("cell/sketch count mismatch"));
            }
            p.cells.insert(
                key,
                Cell {
                    count,
                    duration_ms_total,
                    under_30s,
                    sketch,
                },
            );
        }
        if version == STORE_VERSION_COLUMNAR {
            let nsegs = rv(body, &mut pos)? as usize;
            // A segment costs at least a header + CRC; cap the claim.
            if nsegs > body.len().saturating_sub(pos) / 8 + 1 {
                return Err(PersistError::Malformed("segment count exceeds input"));
            }
            for _ in 0..nsegs {
                p.segments.push(ColumnSegment::decode(body, &mut pos)?);
            }
        }
        let ndevices = rv(body, &mut pos)? as usize;
        if ndevices > body.len().saturating_sub(pos) {
            return Err(PersistError::Malformed("device count exceeds input"));
        }
        let mut prev_id: Option<u32> = None;
        for _ in 0..ndevices {
            let v = rv(body, &mut pos)?;
            let id = match prev_id {
                None => u32::try_from(v).map_err(|_| PersistError::Malformed("device id"))?,
                Some(last) => {
                    if v == 0 {
                        return Err(PersistError::Malformed("zero device id delta"));
                    }
                    last.checked_add(
                        u32::try_from(v).map_err(|_| PersistError::Malformed("device id"))?,
                    )
                    .ok_or(PersistError::Malformed("device id overflow"))?
                }
            };
            prev_id = Some(id);
            let rec = DeviceRec {
                model: rv_u8(body, &mut pos)?,
                region: rv_u8(body, &mut pos)?,
                isp: rv_u8(body, &mut pos)?,
                failures: rv(body, &mut pos)?,
            };
            p.devices.insert(id, rec);
        }
    }
    if pos != body.len() {
        return Err(PersistError::TrailingBytes);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{build_sharded, DeviceDirectory};
    use cellrel_types::{
        Apn, BsId, DataFailCause, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat,
        SignalLevel, SimDuration, SimTime,
    };

    fn fixture() -> Store {
        let events: Vec<FailureEvent> = (0..250u32)
            .map(|i| FailureEvent {
                device: DeviceId(i % 25),
                kind: FailureKind::ALL[i as usize % 5],
                start: SimTime::from_secs(u64::from(i) * 5_000),
                duration: SimDuration::from_secs(1 + u64::from(i % 90)),
                cause: (i % 4 == 0).then_some(DataFailCause::NoService),
                ctx: InSituInfo {
                    rat: Rat::ALL[i as usize % 4],
                    signal: SignalLevel::L2,
                    apn: Apn::Internet,
                    bs: Some(BsId::gsm_cn(0, 3, 9)),
                    isp: Isp::ALL[i as usize % 3],
                },
            })
            .collect();
        build_sharded(
            &StoreConfig {
                partitions: 5,
                auto_compact_every: 40,
                ..StoreConfig::default()
            },
            &DeviceDirectory::default(),
            &events,
            1,
        )
    }

    #[test]
    fn round_trip_is_exact() {
        let store = fixture();
        assert!(
            store.sealed_segments() > 0,
            "fixture auto-compacts, so it must exercise the v2 path"
        );
        let bytes = save_store(&store);
        assert_eq!(bytes[2], STORE_VERSION_COLUMNAR);
        let restored = restore_store(&bytes).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.digest(), store.digest());
    }

    #[test]
    fn row_only_stores_still_save_as_v1() {
        // No compaction → no segments → the image must be plain v1, so
        // pre-columnar readers and golden row-store snapshots never see
        // the new framing.
        let store = build_sharded(
            &StoreConfig {
                partitions: 5,
                auto_compact_every: 0,
                ..StoreConfig::default()
            },
            &DeviceDirectory::default(),
            &[],
            1,
        );
        let bytes = save_store(&store);
        assert_eq!(bytes[2], STORE_VERSION);
        assert_eq!(restore_store(&bytes).unwrap(), store);
    }

    #[test]
    fn sealed_store_round_trips_exactly() {
        let mut store = fixture();
        store.seal_columnar();
        assert_eq!(store.sealed_cells(), store.cells());
        let bytes = save_store(&store);
        assert_eq!(bytes[2], STORE_VERSION_COLUMNAR);
        let restored = restore_store(&bytes).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.digest(), store.digest());
    }

    #[test]
    fn empty_store_round_trips() {
        let store = Store::new(&StoreConfig::default());
        let restored = restore_store(&save_store(&store)).unwrap();
        assert_eq!(restored, store);
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let bytes = save_store(&fixture());
        assert_eq!(restore_store(&[]), Err(PersistError::TooShort));
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                restore_store(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        for i in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            assert!(restore_store(&bad).is_err(), "bit flip at {i} must fail");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(restore_store(&trailing).is_err());
    }

    #[test]
    fn version_and_magic_are_checked() {
        let mut bytes = save_store(&Store::new(&StoreConfig::default()));
        // Bump the version byte and re-seal the CRC so only the version
        // check can object.
        bytes[2] = 9;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(restore_store(&bytes), Err(PersistError::BadVersion(9)));
        bytes[0] = b'X';
        bytes[2] = STORE_VERSION;
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(restore_store(&bytes), Err(PersistError::BadMagic));
    }
}
