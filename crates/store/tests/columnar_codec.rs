//! Property tests for the columnar `SC` segment codec: encode/decode is
//! an exact round trip on arbitrary segments, and decoding is **total** —
//! truncations, bit flips, and garbage return a typed [`PersistError`],
//! never panic, and never allocate proportionally to a hostile length
//! claim. Same discipline as the store-image and checkpoint codecs.

use cellrel_store::{ColumnSegment, PersistError, SEGMENT_MAGIC};
use cellrel_types::{
    Apn, BsId, DataFailCause, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat,
    SignalLevel, SimDuration, SimTime,
};
use proptest::prelude::*;

/// The varying material of one event, shaped like the store property
/// tests (the vendored proptest implements `Strategy` for tuples of ≤ 5
/// elements only).
type EventParts = (
    (u32, u64, u64),      // device, start ms, duration ms
    (usize, Option<i32>), // kind index, cause code
    (usize, usize),       // rat, isp
);

fn parts_strategy() -> impl Strategy<Value = EventParts> {
    (
        (0u32..32, 0u64..30 * 86_400_000, 0u64..1 << 22),
        (0usize..5, prop::option::of(-20i32..4000)),
        (0usize..4, 0usize..3),
    )
}

fn build_event(p: &EventParts) -> FailureEvent {
    let ((device, start, duration), (kind, cause), (rat, isp)) = *p;
    FailureEvent {
        device: DeviceId(device),
        kind: FailureKind::from_index(kind).expect("kind < 5"),
        start: SimTime::from_millis(start),
        duration: SimDuration::from_millis(duration),
        cause: cause.map(DataFailCause::from_code),
        ctx: InSituInfo {
            rat: Rat::from_index(rat).expect("rat < 4"),
            signal: SignalLevel::L3,
            apn: Apn::Internet,
            bs: Some(BsId::gsm_cn(0, 1, 2)),
            isp: Isp::from_index(isp).expect("isp < 3"),
        },
    }
}

/// Build a segment by sealing a store fed with the generated events, so
/// the rows carry realistic sketches, causes and aliasing.
fn segment_from(parts: &[EventParts]) -> Option<ColumnSegment> {
    let cfg = cellrel_store::StoreConfig {
        partitions: 1,
        ..cellrel_store::StoreConfig::default()
    };
    let dir = cellrel_store::DeviceDirectory::default();
    let mut s = cellrel_store::Store::new(&cfg);
    for p in parts {
        let e = build_event(p);
        s.record(&e, dir.dim_of(e.device));
    }
    s.seal_columnar();
    let blocks = s.segment_blocks();
    let mut pos = 0usize;
    let seg = blocks
        .first()
        .map(|b| ColumnSegment::decode(b, &mut pos).expect("sealed segment decodes"));
    seg
}

fn encode(seg: &ColumnSegment) -> Vec<u8> {
    let mut out = Vec::new();
    seg.encode(&mut out);
    out
}

proptest! {
    #[test]
    fn encode_decode_round_trips_exactly(
        parts in prop::collection::vec(parts_strategy(), 1..150),
    ) {
        let seg = segment_from(&parts).expect("non-empty segment");
        let bytes = encode(&seg);
        let mut pos = 0usize;
        let back = ColumnSegment::decode(&bytes, &mut pos).expect("round trip");
        prop_assert_eq!(pos, bytes.len());
        prop_assert_eq!(&back, &seg);
        // Re-encoding the decoded segment is byte-stable.
        prop_assert_eq!(encode(&back), bytes);
    }

    /// Every truncation of a valid block fails with a typed error — no
    /// panic, no partial segment.
    #[test]
    fn truncation_is_a_typed_error(
        parts in prop::collection::vec(parts_strategy(), 1..60),
        frac in 0.0f64..1.0,
    ) {
        let seg = segment_from(&parts).expect("non-empty segment");
        let bytes = encode(&seg);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let mut pos = 0usize;
        prop_assert!(ColumnSegment::decode(&bytes[..cut], &mut pos).is_err());
    }

    /// Every single-bit flip fails: the CRC trailer seals the whole block,
    /// so structurally-plausible corruption cannot slip through.
    #[test]
    fn bit_flips_are_typed_errors(
        parts in prop::collection::vec(parts_strategy(), 1..60),
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let seg = segment_from(&parts).expect("non-empty segment");
        let mut bytes = encode(&seg);
        let i = ((bytes.len() - 1) as f64 * frac) as usize;
        bytes[i] ^= 1 << bit;
        let mut pos = 0usize;
        prop_assert!(ColumnSegment::decode(&bytes, &mut pos).is_err());
    }

    /// Arbitrary garbage — magic-prefixed or not — decodes to a typed
    /// error without panicking or over-allocating.
    #[test]
    fn garbage_is_a_typed_error(
        mut junk in prop::collection::vec(any::<u8>(), 0..300),
        with_magic in any::<bool>(),
    ) {
        if with_magic && junk.len() >= 2 {
            junk[0] = SEGMENT_MAGIC[0];
            junk[1] = SEGMENT_MAGIC[1];
        }
        let mut pos = 0usize;
        // Never a valid CRC-sealed block by construction odds; if the
        // 1-in-2^32 lottery ever hits, the decoded segment must still be
        // internally consistent (decode re-validates keys, sketches and
        // zones), so only assert no panic on the error path.
        let _ = ColumnSegment::decode(&junk, &mut pos);
    }
}

#[test]
fn empty_input_is_too_short() {
    let mut pos = 0usize;
    assert!(matches!(
        ColumnSegment::decode(&[], &mut pos),
        Err(PersistError::TooShort | PersistError::Varint | PersistError::Malformed(_))
    ));
}
