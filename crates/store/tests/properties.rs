//! Property-based tests for the store algebra: partition/store merge is
//! commutative and associative, compaction never changes a legal query's
//! answer, and sharded builds are bit-identical to single-threaded builds
//! at any thread count — the invariants the digest, the CI store-smoke job
//! and the analysis adapters all lean on.

use cellrel_sim::Merge;
use cellrel_store::{
    build_sharded, DeviceDirectory, Dim, Filter, Metric, Query, Store, StoreConfig,
};
use cellrel_types::{
    Apn, BsId, DataFailCause, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat,
    SignalLevel, SimDuration, SimTime,
};
use proptest::prelude::*;

/// The varying material of one event. Grouped into nested tuples because
/// the vendored proptest implements `Strategy` for tuples of ≤ 5 elements
/// only.
type EventParts = (
    (u32, u64, u64),      // device, start ms, duration ms
    (usize, Option<i32>), // kind index, cause code
    (usize, usize),       // rat, isp
);

fn parts_strategy() -> impl Strategy<Value = EventParts> {
    (
        // ~90 days of starts over 64 devices: several rollup windows deep.
        (0u32..64, 0u64..90 * 86_400_000, 0u64..1 << 22),
        (0usize..5, prop::option::of(-20i32..4000)),
        (0usize..4, 0usize..3),
    )
}

fn build_event(p: &EventParts) -> FailureEvent {
    let ((device, start, duration), (kind, cause), (rat, isp)) = *p;
    FailureEvent {
        device: DeviceId(device),
        kind: FailureKind::from_index(kind).expect("kind < 5"),
        start: SimTime::from_millis(start),
        duration: SimDuration::from_millis(duration),
        cause: cause.map(DataFailCause::from_code),
        ctx: InSituInfo {
            rat: Rat::from_index(rat).expect("rat < 4"),
            signal: SignalLevel::L3,
            apn: Apn::Internet,
            bs: Some(BsId::gsm_cn(0, 1, 2)),
            isp: Isp::from_index(isp).expect("isp < 3"),
        },
    }
}

fn build_store(cfg: &StoreConfig, parts: &[EventParts]) -> Store {
    let dir = DeviceDirectory::default();
    let mut s = Store::new(cfg);
    for p in parts {
        let e = build_event(p);
        s.record(&e, dir.dim_of(e.device));
    }
    s
}

/// A fixed set of legal query shapes covering grouping, filtering, time
/// windows, quantiles and top-k — the shapes compaction transparency and
/// merge invariance must hold for.
fn query_set() -> Vec<Query> {
    vec![
        Query::count_by(vec![]),
        Query::count_by(vec![Dim::Kind, Dim::Isp]),
        Query {
            group_by: vec![Dim::Time, Dim::Kind],
            ..Query::count_by(vec![])
        },
        Query {
            filters: vec![Filter::TimeRange {
                start_ms: 7 * 86_400_000,
                end_ms: 8 * 7 * 86_400_000,
            }],
            group_by: vec![Dim::Rat],
            window_ms: 0,
            metric: Metric::MeanDurationMs,
            top_k: 0,
        },
        Query {
            filters: vec![Filter::HasCause],
            group_by: vec![Dim::Cause],
            window_ms: 0,
            metric: Metric::Count,
            top_k: 5,
        },
        Query {
            filters: vec![],
            group_by: vec![Dim::Isp],
            window_ms: 0,
            metric: Metric::QuantileMs(0.95),
            top_k: 0,
        },
    ]
}

proptest! {
    #[test]
    fn store_merge_is_commutative(
        xs in prop::collection::vec(parts_strategy(), 0..120),
        ys in prop::collection::vec(parts_strategy(), 0..120),
        partitions in 1usize..9,
    ) {
        let cfg = StoreConfig { partitions, ..StoreConfig::default() };
        let a = build_store(&cfg, &xs);
        let b = build_store(&cfg, &ys);

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        prop_assert_eq!(&ab, &ba);

        // Merging equals recording the concatenated stream.
        let both: Vec<EventParts> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(&ab, &build_store(&cfg, &both));
        prop_assert_eq!(ab.digest(), build_store(&cfg, &both).digest());
    }

    #[test]
    fn store_merge_is_associative(
        xs in prop::collection::vec(parts_strategy(), 0..80),
        ys in prop::collection::vec(parts_strategy(), 0..80),
        zs in prop::collection::vec(parts_strategy(), 0..80),
    ) {
        let cfg = StoreConfig::default();
        let (a, b, c) = (
            build_store(&cfg, &xs),
            build_store(&cfg, &ys),
            build_store(&cfg, &zs),
        );

        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());

        let mut bc = b;
        bc.merge(c);
        let mut right = a;
        right.merge(bc);

        prop_assert_eq!(left, right);
    }

    /// Compaction is query-transparent: every legal query answers
    /// identically before and after folding sealed buckets, and the digest
    /// does not move.
    #[test]
    fn compaction_never_changes_query_answers(
        parts in prop::collection::vec(parts_strategy(), 1..200),
        partitions in 1usize..9,
    ) {
        let cfg = StoreConfig { partitions, ..StoreConfig::default() };
        let mut s = build_store(&cfg, &parts);
        let digest = s.digest();
        let before: Vec<_> = query_set()
            .iter()
            .map(|q| s.query(q).expect("legal query").rows)
            .collect();
        s.compact();
        let after: Vec<_> = query_set()
            .iter()
            .map(|q| s.query(q).expect("legal query").rows)
            .collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(s.digest(), digest);
    }

    /// Mid-stream auto-compaction is equivalent to no compaction at all.
    #[test]
    fn auto_compaction_matches_manual_and_none(
        parts in prop::collection::vec(parts_strategy(), 1..150),
        every in 1u64..40,
    ) {
        let plain = build_store(&StoreConfig::default(), &parts);
        let auto = build_store(
            &StoreConfig { auto_compact_every: every, ..StoreConfig::default() },
            &parts,
        );
        prop_assert_eq!(auto.digest(), plain.digest());
        for q in query_set() {
            prop_assert_eq!(
                auto.query(&q).expect("legal query").rows,
                plain.query(&q).expect("legal query").rows
            );
        }
    }

    /// Sharded builds are bit-identical to the single-threaded build at
    /// every thread count (the CI store-smoke invariant).
    #[test]
    fn sharded_build_digest_is_thread_invariant(
        parts in prop::collection::vec(parts_strategy(), 0..200),
    ) {
        let events: Vec<FailureEvent> = parts.iter().map(build_event).collect();
        let cfg = StoreConfig::default();
        let dir = DeviceDirectory::default();
        let base = build_sharded(&cfg, &dir, &events, 1);
        for threads in [2usize, 8] {
            let s = build_sharded(&cfg, &dir, &events, threads);
            prop_assert_eq!(&s, &base, "threads={}", threads);
            prop_assert_eq!(s.digest(), base.digest());
        }
    }
}
