//! End-to-end wiring: device uploads enter the ingest collector as CRC-framed
//! wire batches, the collector's `AcceptedSink` streams every accepted record
//! into a [`StoreSink`], and the resulting store answers queries — identical
//! to a store built directly from the clean event list, at any worker count.

use cellrel_ingest::codec::encode_batch;
use cellrel_ingest::{run_ingest_with, CollectorConfig};
use cellrel_store::{build_sharded, DeviceDirectory, Dim, Query, Store, StoreConfig, StoreSink};
use cellrel_types::{
    Apn, BsId, DataFailCause, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat,
    SignalLevel, SimDuration, SimTime,
};

fn ev(device: u32, start_s: u64, dur_s: u64, kind: FailureKind) -> FailureEvent {
    FailureEvent {
        device: DeviceId(device),
        kind,
        start: SimTime::from_secs(start_s),
        duration: SimDuration::from_secs(dur_s),
        cause: (kind == FailureKind::DataSetupError).then_some(DataFailCause::SignalLost),
        ctx: InSituInfo {
            rat: Rat::ALL[device as usize % 4],
            signal: SignalLevel::L3,
            apn: Apn::Internet,
            bs: Some(BsId::gsm_cn(0, 1, 2)),
            isp: Isp::ALL[device as usize % 3],
        },
    }
}

/// Per-device batches for a small fleet: 40 devices, 10 records each.
fn batches() -> (Vec<Vec<u8>>, Vec<FailureEvent>) {
    let mut batches = Vec::new();
    let mut all = Vec::new();
    for d in 0..40u32 {
        let events: Vec<FailureEvent> = (0..10u64)
            .map(|i| {
                ev(
                    d,
                    u64::from(d) * 100 + i * 86_400,
                    3 + i,
                    FailureKind::ALL[(d as u64 + i) as usize % 5],
                )
            })
            .collect();
        batches.push(encode_batch(DeviceId(d), 0, &events));
        all.extend_from_slice(&events);
    }
    (batches, all)
}

fn ingest_into_store(workers: usize, dir: &DeviceDirectory) -> Store {
    let (wire, _) = batches();
    let cfg = CollectorConfig {
        workers,
        ..CollectorConfig::default()
    };
    let store_cfg = StoreConfig::default();
    let (_collector, sink) = run_ingest_with(
        &cfg,
        || StoreSink::new(&store_cfg, dir),
        |emit| {
            for b in &wire {
                emit(b.clone());
            }
        },
    );
    sink.into_store()
}

#[test]
fn collector_fed_store_matches_direct_build_at_any_worker_count() {
    let dir = DeviceDirectory::default();
    let (_, events) = batches();
    let direct = build_sharded(&StoreConfig::default(), &dir, &events, 1);
    let base = ingest_into_store(1, &dir);
    assert_eq!(base, direct, "wire-fed store must equal the direct build");
    assert_eq!(base.digest(), direct.digest());
    for workers in [2usize, 8] {
        let s = ingest_into_store(workers, &dir);
        assert_eq!(s, base, "workers={workers}");
        assert_eq!(s.digest(), base.digest(), "workers={workers}");
    }
}

#[test]
fn collector_fed_store_answers_queries() {
    let dir = DeviceDirectory::default();
    let s = ingest_into_store(2, &dir);
    let rs = s.query(&Query::count_by(vec![Dim::Kind])).unwrap();
    assert_eq!(rs.rows.len(), 5);
    let total: u64 = rs.rows.iter().map(|r| r.count).sum();
    assert_eq!(total, 400, "every accepted record lands in the cube");
}
