//! Simulated time.
//!
//! The whole workspace runs on a virtual clock with millisecond resolution.
//! [`SimTime`] is an instant (milliseconds since simulation start) and
//! [`SimDuration`] is a span. Both are plain `u64`s underneath, totally
//! ordered, and support the arithmetic the event kernel needs. Wall-clock
//! time never appears anywhere in the simulation — determinism depends on it.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An instant on the simulated clock, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Whole seconds since simulation start (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Elapsed span since `earlier`. Saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a span.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span; used as a sentinel for "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1000.0).round() as u64)
    }

    /// The span in raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply the span by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale the span by a non-negative float factor.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative duration scaling");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Minimum of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Maximum of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        let (d, rem) = (ms / 86_400_000, ms % 86_400_000);
        let (h, rem) = (rem / 3_600_000, rem % 3_600_000);
        let (m, rem) = (rem / 60_000, rem % 60_000);
        let (s, ms) = (rem / 1000, rem % 1000);
        if d > 0 {
            write!(f, "{d}d {h:02}:{m:02}:{s:02}.{ms:03}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 3600.0 {
            write!(f, "{:.2}h", s / 3600.0)
        } else if s >= 60.0 {
            write!(f, "{:.2}min", s / 60.0)
        } else {
            write!(f, "{s:.3}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(1).as_secs(), 3600);
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 15);
        assert_eq!((t - SimTime::from_secs(10)).as_secs(), 5);
        assert_eq!(SimDuration::from_secs(4) * 3, SimDuration::from_secs(12));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(4));
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(3_723_004).to_string(), "01:02:03.004");
        assert_eq!(
            (SimTime::from_days_for_test(2) + SimDuration::from_secs(1)).to_string(),
            "2d 00:00:01.000"
        );
        assert_eq!(SimDuration::from_secs(30).to_string(), "30.000s");
        assert_eq!(SimDuration::from_mins(2).to_string(), "2.00min");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3.00h");
    }

    impl SimTime {
        fn from_days_for_test(d: u64) -> SimTime {
            SimTime::from_millis(d * 86_400_000)
        }
    }
}
