//! # cellrel-types
//!
//! Shared domain vocabulary for the `cellrel` workspace — the simulation-based
//! reproduction of *"A Nationwide Study on Cellular Reliability"* (SIGCOMM '21).
//!
//! This crate defines the types every other crate speaks in:
//!
//! * [`SimTime`] / [`SimDuration`] — the simulated clock (millisecond ticks).
//! * [`Rat`] / [`RatSet`] — radio access technologies (2G..5G).
//! * [`SignalLevel`] / [`RssDbm`] — received signal strength and the Android
//!   0–5 signal-level mapping.
//! * [`DataFailCause`] — Android's data-connection failure codes, with the
//!   layer classification and false-positive tagging the paper relies on.
//! * [`FailureKind`] / [`FailureEvent`] — the cellular failure taxonomy of the
//!   study (`Data_Setup_Error`, `Out_of_Service`, `Data_Stall`, …) and the
//!   in-situ record captured for each occurrence.
//! * Identifiers: [`DeviceId`], [`BsId`], [`Isp`], [`Apn`].
//! * Device descriptors: [`AndroidVersion`], [`PhoneModelId`], [`HardwareSpec`].
//! * [`ServiceState`] — the Android service-state a device perceives.
//!
//! The crate is dependency-free and `#![forbid(unsafe_code)]`; everything is
//! plain data with cheap `Copy`/`Clone` semantics so the simulation layers can
//! pass values around freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod fail_cause;
pub mod failure;
pub mod ids;
pub mod rat;
pub mod service;
pub mod signal;
pub mod time;

pub use device::{AndroidVersion, HardwareSpec, PhoneModelId};
pub use fail_cause::{DataFailCause, FailureLayer, FalsePositiveClass};
pub use failure::{FailureEvent, FailureKind, InSituInfo};
pub use ids::{Apn, BsId, DeviceId, Isp};
pub use rat::{Rat, RatSet};
pub use service::ServiceState;
pub use signal::{RssDbm, SignalLevel};
pub use time::{SimDuration, SimTime};
