//! Device descriptors: Android versions, phone model identity, hardware.
//!
//! The study covers 34 phone models running Android 9 or Android 10
//! (Table 1). The concrete table data — prevalence, frequency, user share —
//! lives in `cellrel-workload::models`; this module holds only the shared
//! shape of a model description.

use crate::rat::{Rat, RatSet};
use std::fmt;

/// Android OS major version. Only 9 and 10 appear in the measurement
/// (Android 11 shipped after the study window; §6 argues the findings carry
/// over).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AndroidVersion {
    /// Android 9 "Pie" (Aug 2018) — the more stable baseline in the paper.
    V9,
    /// Android 10 (Sep 2019) — adds 5G support and the blind 5G-preference
    /// RAT policy the paper identifies as a reliability defect.
    V10,
}

impl AndroidVersion {
    /// Both studied versions.
    pub const ALL: [AndroidVersion; 2] = [AndroidVersion::V9, AndroidVersion::V10];

    /// Numeric major version.
    pub const fn number(self) -> u8 {
        match self {
            AndroidVersion::V9 => 9,
            AndroidVersion::V10 => 10,
        }
    }

    /// Whether this version supports 5G at all (only Android 10 does).
    pub const fn supports_5g(self) -> bool {
        matches!(self, AndroidVersion::V10)
    }
}

impl fmt::Display for AndroidVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Android {}", self.number())
    }
}

/// Index of a phone model in the study's Table 1 (1..=34).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhoneModelId(pub u8);

impl PhoneModelId {
    /// Number of models in the study.
    pub const COUNT: usize = 34;

    /// All model ids 1..=34.
    pub fn all() -> impl Iterator<Item = PhoneModelId> {
        (1..=Self::COUNT as u8).map(PhoneModelId)
    }

    /// Zero-based array index.
    pub const fn index(self) -> usize {
        (self.0 - 1) as usize
    }
}

impl fmt::Display for PhoneModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Model {}", self.0)
    }
}

/// Hardware configuration of a phone model (Table 1's left columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareSpec {
    /// CPU clock in GHz — Table 1's proxy for hardware tier.
    pub cpu_ghz: f64,
    /// RAM in GB.
    pub memory_gb: u8,
    /// Flash storage in GB.
    pub storage_gb: u16,
    /// Whether the model carries a 5G modem.
    pub has_5g_modem: bool,
    /// Android version the model ships.
    pub android: AndroidVersion,
}

impl HardwareSpec {
    /// RATs the device hardware can use. 5G models support everything; the
    /// rest top out at 4G.
    pub fn supported_rats(&self) -> RatSet {
        if self.has_5g_modem {
            RatSet::up_to(Rat::G5)
        } else {
            RatSet::up_to(Rat::G4)
        }
    }

    /// A scalar "hardware tier" in [0, 1] used for ordering models from
    /// low-end to high-end, mirroring Table 1's ordering. Combines CPU clock,
    /// memory and storage with CPU dominating.
    pub fn tier(&self) -> f64 {
        let cpu = ((self.cpu_ghz - 1.8) / (2.84 - 1.8)).clamp(0.0, 1.0);
        let mem = ((self.memory_gb as f64 - 2.0) / 6.0).clamp(0.0, 1.0);
        let sto = ((self.storage_gb as f64).log2() - 4.0) / 4.0;
        (0.6 * cpu + 0.25 * mem + 0.15 * sto.clamp(0.0, 1.0)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn android_versions() {
        assert_eq!(AndroidVersion::V9.number(), 9);
        assert!(!AndroidVersion::V9.supports_5g());
        assert!(AndroidVersion::V10.supports_5g());
        assert_eq!(AndroidVersion::V10.to_string(), "Android 10");
    }

    #[test]
    fn model_id_indexing() {
        assert_eq!(PhoneModelId::all().count(), 34);
        assert_eq!(PhoneModelId(1).index(), 0);
        assert_eq!(PhoneModelId(34).index(), 33);
    }

    #[test]
    fn supported_rats_follow_modem() {
        let low = HardwareSpec {
            cpu_ghz: 1.8,
            memory_gb: 2,
            storage_gb: 16,
            has_5g_modem: false,
            android: AndroidVersion::V9,
        };
        assert!(!low.supported_rats().contains(Rat::G5));
        assert!(low.supported_rats().contains(Rat::G4));

        let high = HardwareSpec {
            has_5g_modem: true,
            android: AndroidVersion::V10,
            ..low
        };
        assert!(high.supported_rats().contains(Rat::G5));
    }

    #[test]
    fn tier_orders_low_to_high() {
        let low = HardwareSpec {
            cpu_ghz: 1.8,
            memory_gb: 2,
            storage_gb: 16,
            has_5g_modem: false,
            android: AndroidVersion::V9,
        };
        let high = HardwareSpec {
            cpu_ghz: 2.84,
            memory_gb: 8,
            storage_gb: 256,
            has_5g_modem: true,
            android: AndroidVersion::V10,
        };
        assert!(low.tier() < high.tier());
        assert!(low.tier() >= 0.0 && high.tier() <= 1.0);
    }
}
