//! The cellular-failure taxonomy of the study and the in-situ record
//! captured for each failure.
//!
//! The paper's three dominant failure kinds (>99 % of the 2.32 B events):
//!
//! * **`Data_Setup_Error`** — a data connection to a reachable BS cannot be
//!   established; carries a [`DataFailCause`].
//! * **`Out_of_Service`** — a connection exists but no cellular data flows.
//! * **`Data_Stall`** — data flowed, then the connection silently stalls
//!   (>10 outbound TCP segments with zero inbound within a minute).
//!
//! The remainder (<1 %) relates to legacy SMS / voice services; we model it
//! with [`FailureKind::SmsSendFail`] and [`FailureKind::VoiceSetupFail`].
//!
//! Each captured failure is a [`FailureEvent`]: kind + timing + the
//! [`InSituInfo`] Android-MOD records (RAT, signal level, APN, BS identity,
//! error code) that vanilla Android does not expose (§2.1).

use crate::fail_cause::DataFailCause;
use crate::ids::{Apn, BsId, DeviceId, Isp};
use crate::rat::Rat;
use crate::signal::SignalLevel;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// The kind of a cellular failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Cannot establish a data connection with a reachable BS.
    DataSetupError,
    /// Connection established but no cellular data service.
    OutOfService,
    /// Established connection abnormally stalls.
    DataStall,
    /// Short-message send failure (`RIL_SMS_SEND_FAIL_RETRY`); <1 % bucket.
    SmsSendFail,
    /// Circuit-switched voice call setup failure; <1 % bucket.
    VoiceSetupFail,
}

impl FailureKind {
    /// All kinds.
    pub const ALL: [FailureKind; 5] = [
        FailureKind::DataSetupError,
        FailureKind::OutOfService,
        FailureKind::DataStall,
        FailureKind::SmsSendFail,
        FailureKind::VoiceSetupFail,
    ];

    /// The three kinds that make up >99 % of the dataset.
    pub const MAJOR: [FailureKind; 3] = [
        FailureKind::DataSetupError,
        FailureKind::OutOfService,
        FailureKind::DataStall,
    ];

    /// Stable array index.
    pub const fn index(self) -> usize {
        match self {
            FailureKind::DataSetupError => 0,
            FailureKind::OutOfService => 1,
            FailureKind::DataStall => 2,
            FailureKind::SmsSendFail => 3,
            FailureKind::VoiceSetupFail => 4,
        }
    }

    /// Inverse of [`FailureKind::index`] — wire decoders map bytes back to
    /// kinds through this.
    pub const fn from_index(i: usize) -> Option<FailureKind> {
        match i {
            0 => Some(FailureKind::DataSetupError),
            1 => Some(FailureKind::OutOfService),
            2 => Some(FailureKind::DataStall),
            3 => Some(FailureKind::SmsSendFail),
            4 => Some(FailureKind::VoiceSetupFail),
            _ => None,
        }
    }

    /// Paper-style label.
    pub const fn label(self) -> &'static str {
        match self {
            FailureKind::DataSetupError => "Data_Setup_Error",
            FailureKind::OutOfService => "Out_of_Service",
            FailureKind::DataStall => "Data_Stall",
            FailureKind::SmsSendFail => "SMS_Send_Fail",
            FailureKind::VoiceSetupFail => "Voice_Setup_Fail",
        }
    }

    /// Whether this kind is one of the three major data-connection kinds.
    pub const fn is_major(self) -> bool {
        matches!(
            self,
            FailureKind::DataSetupError | FailureKind::OutOfService | FailureKind::DataStall
        )
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The radio/BS context captured at the moment a failure occurs (§2.2):
/// "current RAT, RSS, APNs and BS ID", plus the serving ISP derived from the
/// BS identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InSituInfo {
    /// Radio access technology in use (or being attempted).
    pub rat: Rat,
    /// Discrete signal level at the failure instant.
    pub signal: SignalLevel,
    /// APN the data connection uses.
    pub apn: Apn,
    /// Identity of the serving / target base station, if camped on one.
    pub bs: Option<BsId>,
    /// Serving ISP.
    pub isp: Isp,
}

/// One captured cellular failure: what happened, to whom, when, for how
/// long, and in what radio context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// The device the failure occurred on.
    pub device: DeviceId,
    /// Failure kind.
    pub kind: FailureKind,
    /// Simulation instant the failure began (detection-adjusted for stalls).
    pub start: SimTime,
    /// Measured failure duration. For `Data_Setup_Error` this is the span
    /// until a successful (re)connection; for `Data_Stall` the probed stall
    /// duration; for `Out_of_Service` the outage span.
    pub duration: SimDuration,
    /// Protocol error code (only for `Data_Setup_Error`).
    pub cause: Option<DataFailCause>,
    /// Radio context at the failure instant.
    pub ctx: InSituInfo,
}

impl FailureEvent {
    /// Instant the failure ended.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// True if the attached cause (if any) marks this a false positive.
    /// Events without a cause are never false positives by this check alone;
    /// stall-probing and instrumentation-level filters handle those cases.
    pub fn cause_is_false_positive(&self) -> bool {
        self.cause
            .map(|c| c.false_positive().is_some())
            .unwrap_or(false)
    }
}

impl fmt::Display for FailureEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} on {} ({} {} via {}, {})",
            self.start,
            self.kind,
            self.device,
            self.ctx.rat,
            self.ctx.signal,
            self.ctx.apn,
            self.ctx.isp
        )?;
        if let Some(c) = self.cause {
            write!(f, " cause={c}")?;
        }
        write!(f, " dur={}", self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ctx() -> InSituInfo {
        InSituInfo {
            rat: Rat::G4,
            signal: SignalLevel::L3,
            apn: Apn::Internet,
            bs: Some(BsId::gsm_cn(0, 100, 42)),
            isp: Isp::A,
        }
    }

    #[test]
    fn major_kinds() {
        assert!(FailureKind::DataStall.is_major());
        assert!(!FailureKind::SmsSendFail.is_major());
        assert_eq!(FailureKind::MAJOR.len(), 3);
    }

    #[test]
    fn indices_unique() {
        let mut seen = [false; 5];
        for k in FailureKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
    }

    #[test]
    fn index_round_trips() {
        for k in FailureKind::ALL {
            assert_eq!(FailureKind::from_index(k.index()), Some(k));
        }
        assert_eq!(FailureKind::from_index(5), None);
    }

    #[test]
    fn event_end_and_fp() {
        let ev = FailureEvent {
            device: DeviceId(1),
            kind: FailureKind::DataSetupError,
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(30),
            cause: Some(DataFailCause::InsufficientResources),
            ctx: sample_ctx(),
        };
        assert_eq!(ev.end(), SimTime::from_secs(130));
        assert!(ev.cause_is_false_positive());

        let true_ev = FailureEvent {
            cause: Some(DataFailCause::SignalLost),
            ..ev
        };
        assert!(!true_ev.cause_is_false_positive());

        let stall = FailureEvent {
            kind: FailureKind::DataStall,
            cause: None,
            ..ev
        };
        assert!(!stall.cause_is_false_positive());
    }

    #[test]
    fn display_includes_cause() {
        let ev = FailureEvent {
            device: DeviceId(7),
            kind: FailureKind::DataSetupError,
            start: SimTime::from_secs(1),
            duration: SimDuration::from_secs(2),
            cause: Some(DataFailCause::PppTimeout),
            ctx: sample_ctx(),
        };
        let s = ev.to_string();
        assert!(s.contains("Data_Setup_Error"));
        assert!(s.contains("PppTimeout"));
    }
}
