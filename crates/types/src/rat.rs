//! Radio access technologies.
//!
//! The study spans four RAT generations (2G GSM/CDMA, 3G UMTS/EVDO, 4G LTE,
//! 5G NR). Base stations may support several generations simultaneously
//! (the paper reports 23.4 % / 10.2 % / 65.2 % / 7.3 % support for 2G/3G/4G/5G,
//! summing past 100 %), so [`RatSet`] is a small bitset over [`Rat`].

use std::fmt;

/// A radio access technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rat {
    /// 2G (GSM / GPRS / EDGE / CDMA 1x).
    G2,
    /// 3G (UMTS / HSPA / EVDO).
    G3,
    /// 4G (LTE).
    G4,
    /// 5G (NR).
    G5,
}

impl Rat {
    /// All generations, ascending.
    pub const ALL: [Rat; 4] = [Rat::G2, Rat::G3, Rat::G4, Rat::G5];

    /// A stable small index (0..4) for array-indexed tables.
    pub const fn index(self) -> usize {
        match self {
            Rat::G2 => 0,
            Rat::G3 => 1,
            Rat::G4 => 2,
            Rat::G5 => 3,
        }
    }

    /// Inverse of [`Rat::index`]. Returns `None` for out-of-range indices.
    pub const fn from_index(i: usize) -> Option<Rat> {
        match i {
            0 => Some(Rat::G2),
            1 => Some(Rat::G3),
            2 => Some(Rat::G4),
            3 => Some(Rat::G5),
            _ => None,
        }
    }

    /// The generation number (2..=5).
    pub const fn generation(self) -> u8 {
        match self {
            Rat::G2 => 2,
            Rat::G3 => 3,
            Rat::G4 => 4,
            Rat::G5 => 5,
        }
    }

    /// The conventional short label ("2G".."5G").
    pub const fn label(self) -> &'static str {
        match self {
            Rat::G2 => "2G",
            Rat::G3 => "3G",
            Rat::G4 => "4G",
            Rat::G5 => "5G",
        }
    }

    /// Nominal peak downlink data rate in Mbps for a *perfect* link, used by
    /// the data-rate side-effect model of the RAT-transition policy (§4.2).
    pub const fn peak_rate_mbps(self) -> f64 {
        match self {
            Rat::G2 => 0.2,
            Rat::G3 => 42.0,
            Rat::G4 => 1000.0,
            Rat::G5 => 10_000.0,
        }
    }

    /// The next-lower generation, if any.
    pub const fn downgrade(self) -> Option<Rat> {
        match self {
            Rat::G2 => None,
            Rat::G3 => Some(Rat::G2),
            Rat::G4 => Some(Rat::G3),
            Rat::G5 => Some(Rat::G4),
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of RATs, e.g. the technologies a base station or a phone supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RatSet(u8);

impl RatSet {
    /// The empty set.
    pub const EMPTY: RatSet = RatSet(0);

    /// Build from a slice of RATs.
    pub fn from_slice(rats: &[Rat]) -> Self {
        let mut s = RatSet::EMPTY;
        for &r in rats {
            s.insert(r);
        }
        s
    }

    /// Set containing every generation up to and including `max`
    /// (phones supporting 5G also support 4G/3G/2G, etc.).
    pub fn up_to(max: Rat) -> Self {
        let mut s = RatSet::EMPTY;
        for r in Rat::ALL {
            if r <= max {
                s.insert(r);
            }
        }
        s
    }

    /// Insert one RAT.
    pub fn insert(&mut self, r: Rat) {
        self.0 |= 1 << r.index();
    }

    /// Remove one RAT.
    pub fn remove(&mut self, r: Rat) {
        self.0 &= !(1 << r.index());
    }

    /// Membership test.
    pub const fn contains(self, r: Rat) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// True if no RAT is present.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of RATs present.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set intersection.
    pub const fn intersection(self, other: RatSet) -> RatSet {
        RatSet(self.0 & other.0)
    }

    /// Set union.
    pub const fn union(self, other: RatSet) -> RatSet {
        RatSet(self.0 | other.0)
    }

    /// The highest generation in the set, if any.
    pub fn highest(self) -> Option<Rat> {
        Rat::ALL.iter().rev().copied().find(|&r| self.contains(r))
    }

    /// The lowest generation in the set, if any.
    pub fn lowest(self) -> Option<Rat> {
        Rat::ALL.iter().copied().find(|&r| self.contains(r))
    }

    /// Iterate members in ascending generation order.
    pub fn iter(self) -> impl Iterator<Item = Rat> {
        Rat::ALL.into_iter().filter(move |&r| self.contains(r))
    }
}

impl FromIterator<Rat> for RatSet {
    fn from_iter<T: IntoIterator<Item = Rat>>(iter: T) -> Self {
        let mut s = RatSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl fmt::Display for RatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for r in Rat::ALL {
            assert_eq!(Rat::from_index(r.index()), Some(r));
        }
        assert_eq!(Rat::from_index(4), None);
    }

    #[test]
    fn ordering_follows_generation() {
        assert!(Rat::G2 < Rat::G3 && Rat::G3 < Rat::G4 && Rat::G4 < Rat::G5);
        assert_eq!(Rat::G5.generation(), 5);
    }

    #[test]
    fn set_basics() {
        let mut s = RatSet::from_slice(&[Rat::G2, Rat::G4]);
        assert!(s.contains(Rat::G2) && s.contains(Rat::G4));
        assert!(!s.contains(Rat::G3));
        assert_eq!(s.len(), 2);
        s.insert(Rat::G5);
        assert_eq!(s.highest(), Some(Rat::G5));
        assert_eq!(s.lowest(), Some(Rat::G2));
        s.remove(Rat::G2);
        assert_eq!(s.lowest(), Some(Rat::G4));
    }

    #[test]
    fn up_to_builds_prefix_sets() {
        let s = RatSet::up_to(Rat::G4);
        assert!(s.contains(Rat::G2) && s.contains(Rat::G3) && s.contains(Rat::G4));
        assert!(!s.contains(Rat::G5));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_algebra() {
        let a = RatSet::from_slice(&[Rat::G2, Rat::G3]);
        let b = RatSet::from_slice(&[Rat::G3, Rat::G4]);
        assert_eq!(a.intersection(b), RatSet::from_slice(&[Rat::G3]));
        assert_eq!(a.union(b), RatSet::from_slice(&[Rat::G2, Rat::G3, Rat::G4]));
        assert!(RatSet::EMPTY.is_empty());
        assert_eq!(RatSet::EMPTY.highest(), None);
    }

    #[test]
    fn iteration_is_ascending() {
        let s = RatSet::from_slice(&[Rat::G5, Rat::G2, Rat::G4]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![Rat::G2, Rat::G4, Rat::G5]);
    }

    #[test]
    fn display() {
        let s = RatSet::from_slice(&[Rat::G4, Rat::G5]);
        assert_eq!(s.to_string(), "{4G,5G}");
    }

    #[test]
    fn downgrade_chain() {
        assert_eq!(Rat::G5.downgrade(), Some(Rat::G4));
        assert_eq!(Rat::G2.downgrade(), None);
    }
}
