//! Received signal strength and Android signal levels.
//!
//! Android buckets raw received signal strength (RSS) into discrete *signal
//! levels*. The paper uses a 0–5 scale (level 0 = worst, level 5 =
//! "excellent"); Figures 15–17 are keyed entirely on these levels, so the
//! mapping is part of the reproduction surface.
//!
//! The thresholds below follow the spirit of Android's
//! `SignalStrength`/`CellSignalStrength*` buckets (RSRP for LTE/NR, RSCP for
//! UMTS, RSSI for GSM), extended from Android's 0–4 scale to the paper's 0–5
//! scale by splitting the top "great" bucket into *good* (4) and *excellent*
//! (5).

use crate::rat::Rat;
use std::fmt;

/// Raw received signal strength in dBm (RSRP for 4G/5G, RSCP for 3G,
/// RSSI for 2G). Stored as `f64`; finer than any bucketing needs.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct RssDbm(pub f64);

impl RssDbm {
    /// The dBm value.
    pub const fn dbm(self) -> f64 {
        self.0
    }
}

impl fmt::Display for RssDbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

/// An Android-style discrete signal level, 0 (worst) ..= 5 (excellent),
/// matching the scale used throughout the paper's Figures 15–17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalLevel(u8);

impl SignalLevel {
    /// Worst level: signal effectively absent.
    pub const L0: SignalLevel = SignalLevel(0);
    /// Poor.
    pub const L1: SignalLevel = SignalLevel(1);
    /// Moderate.
    pub const L2: SignalLevel = SignalLevel(2);
    /// Fair.
    pub const L3: SignalLevel = SignalLevel(3);
    /// Good.
    pub const L4: SignalLevel = SignalLevel(4);
    /// Excellent — the level at which the paper observes the failure anomaly.
    pub const L5: SignalLevel = SignalLevel(5);

    /// All levels ascending.
    pub const ALL: [SignalLevel; 6] = [
        SignalLevel(0),
        SignalLevel(1),
        SignalLevel(2),
        SignalLevel(3),
        SignalLevel(4),
        SignalLevel(5),
    ];

    /// Number of distinct levels.
    pub const COUNT: usize = 6;

    /// Construct from a raw value, clamping into 0..=5.
    pub const fn new(level: u8) -> Self {
        if level > 5 {
            SignalLevel(5)
        } else {
            SignalLevel(level)
        }
    }

    /// The raw level value (0..=5).
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Usable as an array index (0..=5).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Bucket a raw RSS reading for the given RAT into a level.
    ///
    /// Thresholds per RAT (in dBm, lower bound of each level):
    ///
    /// | RAT | metric | L1 | L2 | L3 | L4 | L5 |
    /// |-----|--------|----|----|----|----|----|
    /// | 2G  | RSSI   | -107 | -103 | -97 | -89 | -80 |
    /// | 3G  | RSCP   | -112 | -105 | -99 | -93 | -85 |
    /// | 4G  | RSRP   | -124 | -115 | -105 | -95 | -85 |
    /// | 5G  | SS-RSRP| -125 | -115 | -105 | -95 | -85 |
    pub fn from_rss(rss: RssDbm, rat: Rat) -> SignalLevel {
        let t = Self::thresholds(rat);
        let v = rss.0;
        let mut level = 0u8;
        for (i, &lo) in t.iter().enumerate() {
            if v >= lo {
                level = (i + 1) as u8;
            }
        }
        SignalLevel(level)
    }

    /// Lower-bound dBm thresholds for levels 1..=5 for the given RAT.
    pub const fn thresholds(rat: Rat) -> [f64; 5] {
        match rat {
            Rat::G2 => [-107.0, -103.0, -97.0, -89.0, -80.0],
            Rat::G3 => [-112.0, -105.0, -99.0, -93.0, -85.0],
            Rat::G4 => [-124.0, -115.0, -105.0, -95.0, -85.0],
            Rat::G5 => [-125.0, -115.0, -105.0, -95.0, -85.0],
        }
    }

    /// A representative mid-bucket RSS for this level under the given RAT,
    /// useful for synthesising raw readings from a level.
    pub fn representative_rss(self, rat: Rat) -> RssDbm {
        let t = Self::thresholds(rat);
        let v = match self.0 {
            0 => t[0] - 6.0,
            1 => (t[0] + t[1]) / 2.0,
            2 => (t[1] + t[2]) / 2.0,
            3 => (t[2] + t[3]) / 2.0,
            4 => (t[3] + t[4]) / 2.0,
            _ => t[4] + 5.0,
        };
        RssDbm(v)
    }
}

impl fmt::Display for SignalLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "level-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        assert_eq!(SignalLevel::new(9), SignalLevel::L5);
        assert_eq!(SignalLevel::new(0), SignalLevel::L0);
    }

    #[test]
    fn bucketing_is_monotone() {
        for rat in Rat::ALL {
            let mut last = SignalLevel::L0;
            let mut v = -140.0;
            while v <= -60.0 {
                let lvl = SignalLevel::from_rss(RssDbm(v), rat);
                assert!(lvl >= last, "level not monotone at {v} dBm for {rat}");
                last = lvl;
                v += 0.5;
            }
            assert_eq!(last, SignalLevel::L5);
        }
    }

    #[test]
    fn lte_thresholds_match_doc() {
        assert_eq!(
            SignalLevel::from_rss(RssDbm(-130.0), Rat::G4),
            SignalLevel::L0
        );
        assert_eq!(
            SignalLevel::from_rss(RssDbm(-120.0), Rat::G4),
            SignalLevel::L1
        );
        assert_eq!(
            SignalLevel::from_rss(RssDbm(-110.0), Rat::G4),
            SignalLevel::L2
        );
        assert_eq!(
            SignalLevel::from_rss(RssDbm(-100.0), Rat::G4),
            SignalLevel::L3
        );
        assert_eq!(
            SignalLevel::from_rss(RssDbm(-90.0), Rat::G4),
            SignalLevel::L4
        );
        assert_eq!(
            SignalLevel::from_rss(RssDbm(-80.0), Rat::G4),
            SignalLevel::L5
        );
    }

    #[test]
    fn representative_rss_round_trips() {
        for rat in Rat::ALL {
            for lvl in SignalLevel::ALL {
                let rss = lvl.representative_rss(rat);
                assert_eq!(
                    SignalLevel::from_rss(rss, rat),
                    lvl,
                    "representative RSS for {lvl} under {rat} did not round-trip"
                );
            }
        }
    }

    #[test]
    fn exact_threshold_lands_in_upper_bucket() {
        // A reading exactly on a lower bound belongs to that level.
        assert_eq!(
            SignalLevel::from_rss(RssDbm(-85.0), Rat::G4),
            SignalLevel::L5
        );
        assert_eq!(
            SignalLevel::from_rss(RssDbm(-124.0), Rat::G4),
            SignalLevel::L1
        );
    }

    #[test]
    fn display() {
        assert_eq!(SignalLevel::L3.to_string(), "level-3");
        assert_eq!(RssDbm(-97.25).to_string(), "-97.2 dBm");
    }
}
