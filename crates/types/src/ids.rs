//! Identifiers: devices, base stations, ISPs, APNs.
//!
//! Base stations are identified the way the paper records them: GSM-family
//! cells by (MCC, MNC, LAC, CID), CDMA cells by (SID, NID, BID). The three
//! mobile ISPs are anonymised as in the paper (ISP-A = China Mobile,
//! ISP-B = China Telecom, ISP-C = China Unicom).

use std::fmt;

/// An opaque, study-local device identifier. The paper collected no PII; our
/// synthetic devices likewise carry only a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev-{}", self.0)
    }
}

/// One of the three mobile ISPs in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isp {
    /// ISP-A (China Mobile): most BSes, lowest median radio frequency.
    A,
    /// ISP-B (China Telecom): higher frequency, smaller per-BS coverage —
    /// the ISP with the worst failure prevalence in the paper (27.1 %).
    B,
    /// ISP-C (China Unicom): fewest BSes, best prevalence (14.7 %).
    C,
}

impl Isp {
    /// All ISPs.
    pub const ALL: [Isp; 3] = [Isp::A, Isp::B, Isp::C];

    /// Stable array index (0..3).
    pub const fn index(self) -> usize {
        match self {
            Isp::A => 0,
            Isp::B => 1,
            Isp::C => 2,
        }
    }

    /// Inverse of [`Isp::index`].
    pub const fn from_index(i: usize) -> Option<Isp> {
        match i {
            0 => Some(Isp::A),
            1 => Some(Isp::B),
            2 => Some(Isp::C),
            _ => None,
        }
    }

    /// Share of the 5.3 M BSes belonging to this ISP (§3.3: 44.8 % / 29.4 % /
    /// 25.8 %).
    pub const fn bs_share(self) -> f64 {
        match self {
            Isp::A => 0.448,
            Isp::B => 0.294,
            Isp::C => 0.258,
        }
    }

    /// Approximate subscriber share used by the population generator.
    /// Mirrors the Chinese mobile market during the study period.
    pub const fn user_share(self) -> f64 {
        match self {
            Isp::A => 0.59,
            Isp::B => 0.21,
            Isp::C => 0.20,
        }
    }

    /// Representative median carrier frequency in MHz. The paper notes
    /// median frequency ISP-B > ISP-C > ISP-A, which drives both ISP-B's
    /// smaller coverage and the adjacent-channel interference analysis.
    pub const fn median_freq_mhz(self) -> f64 {
        match self {
            Isp::A => 1880.0,
            Isp::B => 2370.0,
            Isp::C => 2100.0,
        }
    }

    /// The paper's anonymised label.
    pub const fn label(self) -> &'static str {
        match self {
            Isp::A => "ISP-A",
            Isp::B => "ISP-B",
            Isp::C => "ISP-C",
        }
    }
}

impl fmt::Display for Isp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A base-station identifier, in either GSM-family or CDMA form (§2.2,
/// footnote 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BsId {
    /// GSM/UMTS/LTE/NR identity: Mobile Country Code, Mobile Network Code,
    /// Location Area Code, Cell Identity.
    Gsm {
        /// Mobile Country Code (China = 460).
        mcc: u16,
        /// Mobile Network Code, distinguishing the ISP.
        mnc: u16,
        /// Location Area Code.
        lac: u16,
        /// Cell Identity.
        cid: u32,
    },
    /// CDMA identity: System / Network / Base-station IDs.
    Cdma {
        /// System Identity.
        sid: u16,
        /// Network Identity.
        nid: u16,
        /// Base Station Identity.
        bid: u32,
    },
}

impl BsId {
    /// Convenience constructor for a Chinese GSM-family cell.
    pub const fn gsm_cn(mnc: u16, lac: u16, cid: u32) -> BsId {
        BsId::Gsm {
            mcc: 460,
            mnc,
            lac,
            cid,
        }
    }

    /// A dense, collision-free u64 encoding for hashing/sorting.
    pub const fn as_u64(self) -> u64 {
        match self {
            BsId::Gsm { mcc, mnc, lac, cid } => {
                ((mcc as u64) << 48) | ((mnc as u64) << 40) | ((lac as u64) << 24) | cid as u64
            }
            BsId::Cdma { sid, nid, bid } => {
                (1u64 << 63) | ((sid as u64) << 44) | ((nid as u64) << 28) | bid as u64
            }
        }
    }
}

impl fmt::Display for BsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BsId::Gsm { mcc, mnc, lac, cid } => write!(f, "{mcc}-{mnc:02}-{lac}-{cid}"),
            BsId::Cdma { sid, nid, bid } => write!(f, "cdma:{sid}-{nid}-{bid}"),
        }
    }
}

/// An access point name. Devices carry a small set of these; the monitor
/// records the APN in use when a failure occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Apn {
    /// Default internet APN.
    Internet,
    /// IP multimedia subsystem (VoLTE signalling).
    Ims,
    /// MMS.
    Mms,
    /// Carrier-specific supplementary APN.
    Supl,
}

impl Apn {
    /// All APN kinds.
    pub const ALL: [Apn; 4] = [Apn::Internet, Apn::Ims, Apn::Mms, Apn::Supl];

    /// Stable array index (0..4).
    pub const fn index(self) -> usize {
        match self {
            Apn::Internet => 0,
            Apn::Ims => 1,
            Apn::Mms => 2,
            Apn::Supl => 3,
        }
    }

    /// Inverse of [`Apn::index`].
    pub const fn from_index(i: usize) -> Option<Apn> {
        match i {
            0 => Some(Apn::Internet),
            1 => Some(Apn::Ims),
            2 => Some(Apn::Mms),
            3 => Some(Apn::Supl),
            _ => None,
        }
    }

    /// Conventional APN string.
    pub const fn name(self) -> &'static str {
        match self {
            Apn::Internet => "internet",
            Apn::Ims => "ims",
            Apn::Mms => "mms",
            Apn::Supl => "supl",
        }
    }
}

impl fmt::Display for Apn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isp_shares_sum_to_one() {
        let bs: f64 = Isp::ALL.iter().map(|i| i.bs_share()).sum();
        let users: f64 = Isp::ALL.iter().map(|i| i.user_share()).sum();
        assert!((bs - 1.0).abs() < 1e-9);
        assert!((users - 1.0).abs() < 1e-9);
    }

    #[test]
    fn isp_frequency_ordering_matches_paper() {
        // §3.3: median frequency ISP-B > ISP-C > ISP-A.
        assert!(Isp::B.median_freq_mhz() > Isp::C.median_freq_mhz());
        assert!(Isp::C.median_freq_mhz() > Isp::A.median_freq_mhz());
    }

    #[test]
    fn apn_index_round_trip() {
        for apn in Apn::ALL {
            assert_eq!(Apn::from_index(apn.index()), Some(apn));
        }
        assert_eq!(Apn::from_index(4), None);
    }

    #[test]
    fn isp_index_round_trip() {
        for isp in Isp::ALL {
            assert_eq!(Isp::from_index(isp.index()), Some(isp));
        }
        assert_eq!(Isp::from_index(3), None);
    }

    #[test]
    fn bsid_u64_encoding_distinguishes_families() {
        let g = BsId::gsm_cn(0, 17, 99);
        let c = BsId::Cdma {
            sid: 0,
            nid: 17,
            bid: 99,
        };
        assert_ne!(g.as_u64(), c.as_u64());
    }

    #[test]
    fn bsid_u64_is_injective_on_samples() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for mnc in 0..4u16 {
            for lac in 0..16u16 {
                for cid in 0..16u32 {
                    assert!(seen.insert(BsId::gsm_cn(mnc, lac, cid).as_u64()));
                }
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(BsId::gsm_cn(1, 22, 333).to_string(), "460-01-22-333");
        assert_eq!(Apn::Internet.to_string(), "internet");
        assert_eq!(Isp::B.to_string(), "ISP-B");
        assert_eq!(DeviceId(7).to_string(), "dev-7");
    }
}
