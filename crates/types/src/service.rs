//! Android service state, as tracked by `ServiceStateTracker`.
//!
//! The paper's `Out_of_Service` failure kind is defined against this state:
//! a data connection exists but the device cannot actually send/receive
//! cellular data, so Android marks the service state `OUT_OF_SERVICE`.

use std::fmt;

/// The service state a device perceives, mirroring Android's
/// `android.telephony.ServiceState` constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceState {
    /// Normal operation: registered, data flows.
    InService,
    /// Registered or registering but unable to exchange data — the paper's
    /// `Out_of_Service` condition.
    OutOfService,
    /// Only emergency calls are possible.
    EmergencyOnly,
    /// The radio is powered off (airplane mode, modem restart window).
    PowerOff,
}

impl ServiceState {
    /// Whether user data can flow in this state.
    pub const fn data_possible(self) -> bool {
        matches!(self, ServiceState::InService)
    }

    /// Android constant-style name.
    pub const fn name(self) -> &'static str {
        match self {
            ServiceState::InService => "STATE_IN_SERVICE",
            ServiceState::OutOfService => "STATE_OUT_OF_SERVICE",
            ServiceState::EmergencyOnly => "STATE_EMERGENCY_ONLY",
            ServiceState::PowerOff => "STATE_POWER_OFF",
        }
    }
}

impl fmt::Display for ServiceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_only_in_service() {
        assert!(ServiceState::InService.data_possible());
        assert!(!ServiceState::OutOfService.data_possible());
        assert!(!ServiceState::EmergencyOnly.data_possible());
        assert!(!ServiceState::PowerOff.data_possible());
    }

    #[test]
    fn names() {
        assert_eq!(
            ServiceState::OutOfService.to_string(),
            "STATE_OUT_OF_SERVICE"
        );
    }
}
