//! Android data-connection failure causes.
//!
//! When a data-call setup fails, the radio interface produces an error code
//! describing why (§2.1). Android defines 344 such codes in
//! `android.telephony.DataFailCause`; the paper analysed all of them to
//! (a) decompose `Data_Setup_Error` failures by root cause (Table 2) and
//! (b) identify codes that indicate *rational* rejections — e.g. a base
//! station shedding load — which are false positives, not true failures.
//!
//! This module reproduces the part of that catalogue with behavioural
//! significance: every code the paper names, the standard 3GPP session
//! management causes, the legacy RIL-internal causes, and the
//! false-positive-relevant vendor codes. The long tail of inert codes is
//! carried by [`DataFailCause::Other`].
//!
//! Each cause knows:
//! * its numeric code (AOSP values where they are standardised, a stable
//!   vendor-range value otherwise),
//! * the protocol [`FailureLayer`] it originates from (the paper highlights
//!   that the top-10 causes span physical, link/MAC and network layers),
//! * whether it is a *rational rejection* and therefore a false positive
//!   ([`FalsePositiveClass`]),
//! * whether Android treats it as permanent (no retry) or transient.

use std::fmt;

/// The protocol layer a failure cause originates from (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureLayer {
    /// Physical layer: radio signal loss, handover radio failures.
    Physical,
    /// Data-link / MAC layer: authentication, PPP negotiation.
    LinkMac,
    /// Network layer: registration, mobility management, IP/PDP allocation.
    Network,
    /// Modem- or device-internal conditions (restart, SIM state, power).
    Modem,
    /// Catch-all for codes whose layer is not classified.
    Unknown,
}

impl FailureLayer {
    /// Every layer, in dense-index order (matches [`Self::index`]).
    pub const ALL: [FailureLayer; 5] = [
        FailureLayer::Physical,
        FailureLayer::LinkMac,
        FailureLayer::Network,
        FailureLayer::Modem,
        FailureLayer::Unknown,
    ];

    /// Dense index for array-backed accumulators and cube keys.
    pub const fn index(self) -> usize {
        match self {
            FailureLayer::Physical => 0,
            FailureLayer::LinkMac => 1,
            FailureLayer::Network => 2,
            FailureLayer::Modem => 3,
            FailureLayer::Unknown => 4,
        }
    }

    /// Inverse of [`Self::index`].
    pub const fn from_index(i: usize) -> Option<FailureLayer> {
        match i {
            0 => Some(FailureLayer::Physical),
            1 => Some(FailureLayer::LinkMac),
            2 => Some(FailureLayer::Network),
            3 => Some(FailureLayer::Modem),
            4 => Some(FailureLayer::Unknown),
            _ => None,
        }
    }
}

impl fmt::Display for FailureLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureLayer::Physical => "physical",
            FailureLayer::LinkMac => "link/MAC",
            FailureLayer::Network => "network",
            FailureLayer::Modem => "modem",
            FailureLayer::Unknown => "unknown",
        })
    }
}

/// Why a reported event is a false positive rather than a true cellular
/// failure. The paper's monitoring infrastructure filters all of these out
/// before analysis (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FalsePositiveClass {
    /// The BS rationally rejected the setup because it is overloaded.
    BsOverload,
    /// A normal, expected teardown (network- or user-ordered deactivation).
    NormalTeardown,
    /// User-initiated condition: manual disconnect, airplane mode, data off.
    UserInitiated,
    /// Service suspension for non-technical reasons (insufficient balance).
    AccountSuspended,
    /// Connection disruption by an incoming voice call (non-VoLTE CS fallback).
    VoiceCallInterruption,
    /// Problem on the device/system side, not the cellular network
    /// (firewall misconfiguration, broken proxy, modem driver fault) —
    /// the probing component's "system side" verdict.
    SystemSide,
    /// DNS resolution service outage: the network path works but name
    /// resolution does not — also a false positive per §2.2.
    DnsServiceDown,
}

impl fmt::Display for FalsePositiveClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FalsePositiveClass::BsOverload => "bs-overload",
            FalsePositiveClass::NormalTeardown => "normal-teardown",
            FalsePositiveClass::UserInitiated => "user-initiated",
            FalsePositiveClass::AccountSuspended => "account-suspended",
            FalsePositiveClass::VoiceCallInterruption => "voice-call",
            FalsePositiveClass::SystemSide => "system-side",
            FalsePositiveClass::DnsServiceDown => "dns-down",
        })
    }
}

macro_rules! fail_causes {
    ($(
        $(#[$meta:meta])*
        $variant:ident = $code:literal,
        layer: $layer:ident,
        fp: $fp:expr,
        permanent: $perm:literal,
        desc: $desc:literal;
    )*) => {
        /// A data-connection failure cause, mirroring
        /// `android.telephony.DataFailCause`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum DataFailCause {
            $( $(#[$meta])* $variant, )*
            /// Any of the remaining (behaviourally inert) Android codes,
            /// carried by raw value.
            Other(u16),
        }

        impl DataFailCause {
            /// Every named cause (excludes the `Other` catch-all).
            pub const NAMED: &'static [DataFailCause] = &[
                $( DataFailCause::$variant, )*
            ];

            /// The numeric error code.
            pub const fn code(self) -> i32 {
                match self {
                    $( DataFailCause::$variant => $code, )*
                    DataFailCause::Other(c) => c as i32,
                }
            }

            /// The Android constant-style name.
            pub const fn name(self) -> &'static str {
                match self {
                    $( DataFailCause::$variant => stringify!($variant), )*
                    DataFailCause::Other(_) => "OTHER",
                }
            }

            /// Human-readable description (Table 2 wording where applicable).
            pub const fn description(self) -> &'static str {
                match self {
                    $( DataFailCause::$variant => $desc, )*
                    DataFailCause::Other(_) => "Unclassified data fail cause",
                }
            }

            /// Which protocol layer the cause originates from.
            pub const fn layer(self) -> FailureLayer {
                match self {
                    $( DataFailCause::$variant => FailureLayer::$layer, )*
                    DataFailCause::Other(_) => FailureLayer::Unknown,
                }
            }

            /// If this code indicates a rational rejection / non-failure,
            /// the false-positive class; `None` means a true failure.
            pub const fn false_positive(self) -> Option<FalsePositiveClass> {
                match self {
                    $( DataFailCause::$variant => $fp, )*
                    DataFailCause::Other(_) => None,
                }
            }

            /// Whether Android treats the cause as permanent (retrying with
            /// the same parameters is pointless).
            pub const fn is_permanent(self) -> bool {
                match self {
                    $( DataFailCause::$variant => $perm, )*
                    DataFailCause::Other(_) => false,
                }
            }
        }
    };
}

use FalsePositiveClass as FP;

fail_causes! {
    // ---- Causes named in the paper's Table 2 (top-10 true-failure codes) ----

    /// Failures due to unsuccessful GPRS registration — Table 2 rank 1 (12.8 %).
    GprsRegistrationFail = -2,
    layer: Network, fp: None, permanent: false,
    desc: "Failures due to unsuccessful GPRS registration";

    /// Failures due to network/modem disconnection — Table 2 rank 2 (7.2 %).
    SignalLost = -3,
    layer: Physical, fp: None, permanent: false,
    desc: "Failures due to network/modem disconnection";

    /// No service during connection setup — Table 2 rank 3 (6.5 %).
    NoService = 0x1011,
    layer: Physical, fp: None, permanent: false,
    desc: "No service during connection setup";

    /// Invalid EPS Mobility Management state — Table 2 rank 4 (4.9 %).
    InvalidEmmState = 0x1284,
    layer: Network, fp: None, permanent: false,
    desc: "Invalid state of EPS Mobility Management in LTE";

    /// Current RAT is no longer the preferred RAT — Table 2 rank 5 (4.3 %).
    UnpreferredRat = -4,
    layer: Physical, fp: None, permanent: false,
    desc: "Current RAT is no longer the preferred RAT";

    /// PPP negotiation timeout — Table 2 rank 6 (3.5 %).
    PppTimeout = 0x1231,
    layer: LinkMac, fp: None, permanent: false,
    desc: "Failures at the Point-to-Point Protocol setup stage due to a timeout";

    /// No hybrid High-Data-Rate service — Table 2 rank 7 (2.2 %).
    NoHybridHdrService = 0x1100,
    layer: Physical, fp: None, permanent: false,
    desc: "No hybrid High-Data-Rate service";

    /// PDP error from RRC failures or forbidden PLMN — Table 2 rank 8 (1.9 %).
    PdpLowerlayerError = 0x1252,
    layer: Network, fp: None, permanent: false,
    desc: "Packet Data Protocol error due to radio resource control failures or a forbidden PLMN";

    /// Exceeded maximum number of access probes — Table 2 rank 9 (1.8 %).
    MaxAccessProbe = 0x1EC1,
    layer: Physical, fp: None, permanent: false,
    desc: "Exceeding maximum number of access probes";

    /// Data call lost during inter-RAT handover — Table 2 rank 10 (1.6 %).
    IratHandoverFailed = 0x1121,
    layer: Physical, fp: None, permanent: false,
    desc: "Unsuccessful transfer of data call during an Inter-RAT handover";

    // ---- EMM / mobility-management causes highlighted in §3.3 ----

    /// EMM access barred by the network — frequent near dense BS deployments.
    EmmAccessBarred = 0x1244,
    layer: Network, fp: None, permanent: false,
    desc: "EPS Mobility Management access barred";

    /// EMM access barred infinitely (barring with no retry timer).
    EmmAccessBarredInfiniteRetry = 0x1246,
    layer: Network, fp: None, permanent: false,
    desc: "EMM access barred with infinite retry";

    /// Device detached from EPS mobility management.
    EmmDetached = 0x1283,
    layer: Network, fp: None, permanent: false,
    desc: "Device detached from EPS Mobility Management";

    /// T3417 expired while waiting for a service-request response.
    EmmT3417Expired = 0x1288,
    layer: Network, fp: None, permanent: false,
    desc: "EMM timer T3417 expired during service request";

    // ---- Standard 3GPP session-management causes (AOSP values) ----

    /// Operator-determined barring.
    OperatorBarred = 0x08,
    layer: Network, fp: None, permanent: true,
    desc: "Operator-determined barring";

    /// NAS signalling error.
    NasSignalling = 0x0E,
    layer: Network, fp: None, permanent: false,
    desc: "NAS signalling error";

    /// LLC or SNDCP failure.
    LlcSndcpFailure = 0x19,
    layer: LinkMac, fp: None, permanent: false,
    desc: "LLC or SNDCP failure";

    /// Insufficient resources at the BS — rational load shedding, a false
    /// positive per the paper's filtering (§2.2).
    InsufficientResources = 0x1A,
    layer: Network, fp: Some(FP::BsOverload), permanent: false,
    desc: "Insufficient network resources (BS overloaded)";

    /// APN missing or unknown.
    MissingUnknownApn = 0x1B,
    layer: Network, fp: None, permanent: true,
    desc: "Missing or unknown APN";

    /// PDP address type unknown.
    UnknownPdpAddressType = 0x1C,
    layer: Network, fp: None, permanent: true,
    desc: "Unknown PDP address or type";

    /// User authentication (PAP/CHAP) failed.
    UserAuthentication = 0x1D,
    layer: LinkMac, fp: None, permanent: true,
    desc: "User authentication failed at the link layer";

    /// Activation rejected by GGSN/SGW/PGW.
    ActivationRejectGgsn = 0x1E,
    layer: Network, fp: None, permanent: false,
    desc: "Activation rejected by the gateway node";

    /// Activation rejected, unspecified reason.
    ActivationRejectUnspecified = 0x1F,
    layer: Network, fp: None, permanent: false,
    desc: "Activation rejected for an unspecified reason";

    /// Requested service option not supported.
    ServiceOptionNotSupported = 0x20,
    layer: Network, fp: None, permanent: true,
    desc: "Service option not supported";

    /// Service option not subscribed.
    ServiceOptionNotSubscribed = 0x21,
    layer: Network, fp: None, permanent: true,
    desc: "Requested service option not subscribed";

    /// Service option temporarily out of order — congestion-class rejection.
    ServiceOptionOutOfOrder = 0x22,
    layer: Network, fp: Some(FP::BsOverload), permanent: false,
    desc: "Service option temporarily out of order (network congestion)";

    /// NSAPI already used.
    NsapiInUse = 0x23,
    layer: Network, fp: None, permanent: false,
    desc: "NSAPI already in use";

    /// Regular deactivation — normal teardown, not a failure.
    RegularDeactivation = 0x24,
    layer: Network, fp: Some(FP::NormalTeardown), permanent: false,
    desc: "Regular (expected) connection deactivation";

    /// Requested QoS not accepted.
    QosNotAccepted = 0x25,
    layer: Network, fp: None, permanent: false,
    desc: "Requested QoS not accepted by the network";

    /// Generic network failure.
    NetworkFailure = 0x26,
    layer: Network, fp: None, permanent: false,
    desc: "Network failure";

    /// UMTS reactivation requested.
    UmtsReactivationReq = 0x27,
    layer: Network, fp: None, permanent: false,
    desc: "UMTS reactivation required";

    /// Semantic error in the TFT operation.
    TftSemanticError = 0x29,
    layer: Network, fp: None, permanent: true,
    desc: "Semantic error in the traffic flow template operation";

    /// Syntactical error in the TFT operation.
    TftSyntaxError = 0x2A,
    layer: Network, fp: None, permanent: true,
    desc: "Syntactical error in the traffic flow template operation";

    /// Unknown PDP context.
    UnknownPdpContext = 0x2B,
    layer: Network, fp: None, permanent: true,
    desc: "Unknown PDP context";

    /// Semantic error in packet filters.
    FilterSemanticError = 0x2C,
    layer: Network, fp: None, permanent: true,
    desc: "Semantic error in packet filters";

    /// Syntactical error in packet filters.
    FilterSyntaxError = 0x2D,
    layer: Network, fp: None, permanent: true,
    desc: "Syntactical error in packet filters";

    /// PDP context without an active TFT.
    PdpWithoutActiveTft = 0x2E,
    layer: Network, fp: None, permanent: true,
    desc: "PDP context activated without an active TFT";

    /// Only IPv4 addressing allowed by the subscription.
    OnlyIpv4Allowed = 0x32,
    layer: Network, fp: None, permanent: true,
    desc: "Only IPv4 PDP addressing allowed";

    /// Only IPv6 addressing allowed by the subscription.
    OnlyIpv6Allowed = 0x33,
    layer: Network, fp: None, permanent: true,
    desc: "Only IPv6 PDP addressing allowed";

    /// Only single-bearer operation allowed.
    OnlySingleBearerAllowed = 0x34,
    layer: Network, fp: None, permanent: true,
    desc: "Only single address bearers allowed";

    /// ESM information not received by the network.
    EsmInfoNotReceived = 0x35,
    layer: Network, fp: None, permanent: false,
    desc: "ESM information not received";

    /// PDN connection does not exist (stale bearer reference).
    PdnConnDoesNotExist = 0x36,
    layer: Network, fp: None, permanent: false,
    desc: "PDN connection does not exist";

    /// Multiple connections to the same PDN are not allowed.
    MultiConnToSamePdnNotAllowed = 0x37,
    layer: Network, fp: None, permanent: true,
    desc: "Multiple PDN connections for the same APN not allowed";

    /// Protocol errors, unspecified.
    ProtocolErrors = 0x6F,
    layer: Network, fp: None, permanent: true,
    desc: "Unspecified protocol error";

    /// APN type conflict.
    ApnTypeConflict = 0x70,
    layer: Network, fp: None, permanent: true,
    desc: "APN type conflict";

    /// Invalid PCSCF (IMS proxy) address — blocks the IMS APN only.
    InvalidPcscfAddress = 0x71,
    layer: Network, fp: None, permanent: true,
    desc: "Invalid proxy call-session-control-function address";

    /// Internal call pre-emption by a higher-priority APN.
    InternalCallPreempt = 0x72,
    layer: Modem, fp: Some(FP::NormalTeardown), permanent: false,
    desc: "Data call pre-empted by a higher-priority APN context";

    /// EMM access barred for emergency bearer services.
    EmergencyIfaceOnly = 0x74,
    layer: Network, fp: None, permanent: false,
    desc: "Only emergency bearer services are reachable";

    /// The requested APN is currently disabled on the carrier side.
    ApnDisabled = 0x7A2,
    layer: Network, fp: None, permanent: true,
    desc: "Requested APN administratively disabled";

    /// Maximum number of PDP contexts already active.
    MaxPdpExceeded = 0x7A3,
    layer: Modem, fp: None, permanent: false,
    desc: "Maximum number of simultaneous PDP contexts reached";

    // ---- Legacy RIL-internal causes (negative AOSP values) ----

    /// Generic registration failure.
    RegistrationFail = -1,
    layer: Network, fp: None, permanent: false,
    desc: "Failures due to unsuccessful network registration";

    /// The radio is powered off — user action (airplane mode), not a failure.
    RadioPowerOff = -5,
    layer: Modem, fp: Some(FP::UserInitiated), permanent: false,
    desc: "Radio powered off by the user";

    /// A tethered (circuit-switched) call is active — CS-fallback disruption.
    TetheredCallActive = -6,
    layer: Modem, fp: Some(FP::VoiceCallInterruption), permanent: false,
    desc: "Data interrupted by an active circuit-switched call";

    /// The cellular link was lost after setup (generic loss marker).
    LostConnection = 0x10004,
    layer: Physical, fp: None, permanent: false,
    desc: "Established data connection lost";

    // ---- Modem / device internal ----

    /// The modem restarted mid-call (also emitted by recovery stage 3).
    ModemRestart = 0x2001,
    layer: Modem, fp: None, permanent: false,
    desc: "Modem restarted while a data call was active";

    /// RIL reports the radio is not available.
    RadioNotAvailable = 0x10001,
    layer: Modem, fp: None, permanent: false,
    desc: "Radio interface not available";

    /// The SIM was removed or changed.
    SimCardChanged = 0x2002,
    layer: Modem, fp: Some(FP::UserInitiated), permanent: true,
    desc: "SIM card removed or changed";

    /// Modem driver fault on the application processor side — a system-side
    /// condition the probing component classifies as a false positive.
    ModemDriverFault = 0x2003,
    layer: Modem, fp: Some(FP::SystemSide), permanent: false,
    desc: "Device-side modem driver fault";

    /// Data service disabled by carrier because the account balance ran out.
    AccountBalanceExhausted = 0x2E10,
    layer: Network, fp: Some(FP::AccountSuspended), permanent: true,
    desc: "Service suspended: insufficient account balance";

    /// User switched mobile data off / detached manually.
    UserDataDisabled = 0x2E11,
    layer: Modem, fp: Some(FP::UserInitiated), permanent: false,
    desc: "Mobile data disabled by the user";

    // ---- Additional vendor-range physical/link causes used by the modem model ----

    /// RACH (random access) failure on the air interface.
    RandomAccessFailure = 0x1ED0,
    layer: Physical, fp: None, permanent: false,
    desc: "Random access procedure failed";

    /// RRC connection establishment failure (access stratum).
    RrcConnectionFailure = 0x1ED1,
    layer: LinkMac, fp: None, permanent: false,
    desc: "RRC connection establishment failed";

    /// RRC connection release by the network with congestion indication.
    RrcReleaseCongestion = 0x1ED2,
    layer: LinkMac, fp: Some(FP::BsOverload), permanent: false,
    desc: "RRC connection released due to cell congestion";

    /// PDN IPv4 address allocation failed.
    Ipv4AddressAllocationFail = 0x1ED3,
    layer: Network, fp: None, permanent: false,
    desc: "IP address allocation failure during PDN setup";

    /// DNS servers unreachable after setup (provisioning fault).
    DnsUnreachable = 0x1ED4,
    layer: Network, fp: None, permanent: false,
    desc: "Assigned DNS servers unreachable";

    /// Concurrent services not supported by the serving cell.
    ConcurrentServicesNotAllowed = 0x1ED5,
    layer: Network, fp: None, permanent: false,
    desc: "Concurrent voice+data services not supported by the cell";

    /// CDMA-family intercept (reorder) condition.
    CdmaIntercept = 0x1EC2,
    layer: Physical, fp: None, permanent: false,
    desc: "CDMA call intercepted / reordered";

    /// CDMA release due to SO rejection.
    CdmaReleaseSoReject = 0x1EC3,
    layer: Physical, fp: None, permanent: false,
    desc: "CDMA release due to service option rejection";

    /// Handoff preference changed mid-setup.
    HandoffPreferenceChanged = 0x1EC4,
    layer: Physical, fp: None, permanent: false,
    desc: "Handoff preference changed during setup";

    /// Connection setup timed out waiting for the network response.
    SetupTimeout = 0x1ED6,
    layer: Network, fp: None, permanent: false,
    desc: "Data call setup timed out";

    /// PLMN is forbidden for this subscriber.
    ForbiddenPlmn = 0x1ED7,
    layer: Network, fp: None, permanent: true,
    desc: "Forbidden PLMN";
}

impl DataFailCause {
    /// The paper's Table 2: the ten most common true-failure codes and the
    /// share of `Data_Setup_Error` failures each accounts for.
    pub const TABLE2_TOP10: [(DataFailCause, f64); 10] = [
        (DataFailCause::GprsRegistrationFail, 0.128),
        (DataFailCause::SignalLost, 0.072),
        (DataFailCause::NoService, 0.065),
        (DataFailCause::InvalidEmmState, 0.049),
        (DataFailCause::UnpreferredRat, 0.043),
        (DataFailCause::PppTimeout, 0.035),
        (DataFailCause::NoHybridHdrService, 0.022),
        (DataFailCause::PdpLowerlayerError, 0.019),
        (DataFailCause::MaxAccessProbe, 0.018),
        (DataFailCause::IratHandoverFailed, 0.016),
    ];

    /// Total number of data-fail codes Android defines (§2.2). Only the
    /// behaviourally significant subset is named here; see module docs.
    pub const ANDROID_TOTAL_CODES: usize = 344;

    /// True if this cause represents a genuine cellular failure (i.e. it is
    /// not classified as any false-positive class).
    pub const fn is_true_failure(self) -> bool {
        self.false_positive().is_none()
    }

    /// Look up a named cause by its numeric code; falls back to `Other`.
    pub fn from_code(code: i32) -> DataFailCause {
        Self::NAMED
            .iter()
            .copied()
            .find(|c| c.code() == code)
            .unwrap_or(DataFailCause::Other(code.unsigned_abs() as u16))
    }
}

impl fmt::Display for DataFailCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataFailCause::Other(c) => write!(f, "OTHER({c})"),
            c => f.write_str(c.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn codes_are_unique() {
        let mut seen = HashSet::new();
        for c in DataFailCause::NAMED {
            assert!(
                seen.insert(c.code()),
                "duplicate code {} for {}",
                c.code(),
                c
            );
        }
    }

    #[test]
    fn table2_shares_match_paper_total() {
        let total: f64 = DataFailCause::TABLE2_TOP10.iter().map(|(_, s)| s).sum();
        // The paper: top 10 codes account for 46.7 % of Data_Setup_Error.
        assert!((total - 0.467).abs() < 1e-9, "top-10 shares sum to {total}");
    }

    #[test]
    fn table2_entries_are_true_failures() {
        for (c, _) in DataFailCause::TABLE2_TOP10 {
            assert!(c.is_true_failure(), "{c} in Table 2 must be a true failure");
        }
    }

    #[test]
    fn table2_is_sorted_descending() {
        let shares: Vec<f64> = DataFailCause::TABLE2_TOP10
            .iter()
            .map(|(_, s)| *s)
            .collect();
        assert!(shares.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn false_positive_classes() {
        assert_eq!(
            DataFailCause::InsufficientResources.false_positive(),
            Some(FalsePositiveClass::BsOverload)
        );
        assert_eq!(
            DataFailCause::RadioPowerOff.false_positive(),
            Some(FalsePositiveClass::UserInitiated)
        );
        assert_eq!(DataFailCause::SignalLost.false_positive(), None);
        assert!(!DataFailCause::InsufficientResources.is_true_failure());
        assert!(DataFailCause::SignalLost.is_true_failure());
    }

    #[test]
    fn layers_cover_the_stack() {
        // §3.2: the top-10 causes span physical, link/MAC and network layers.
        let layers: HashSet<_> = DataFailCause::TABLE2_TOP10
            .iter()
            .map(|(c, _)| c.layer())
            .collect();
        assert!(layers.contains(&FailureLayer::Physical));
        assert!(layers.contains(&FailureLayer::LinkMac));
        assert!(layers.contains(&FailureLayer::Network));
    }

    #[test]
    fn from_code_round_trips_named() {
        for &c in DataFailCause::NAMED {
            assert_eq!(DataFailCause::from_code(c.code()), c);
        }
    }

    #[test]
    fn from_code_falls_back_to_other() {
        let c = DataFailCause::from_code(0x7FFF);
        assert!(matches!(c, DataFailCause::Other(0x7FFF)));
        assert_eq!(c.layer(), FailureLayer::Unknown);
        assert!(c.is_true_failure());
    }

    #[test]
    fn layer_index_round_trips() {
        for (i, layer) in FailureLayer::ALL.iter().enumerate() {
            assert_eq!(layer.index(), i);
            assert_eq!(FailureLayer::from_index(i), Some(*layer));
        }
        assert_eq!(FailureLayer::from_index(FailureLayer::ALL.len()), None);
    }

    #[test]
    fn permanent_flags_sane() {
        assert!(DataFailCause::MissingUnknownApn.is_permanent());
        assert!(DataFailCause::OperatorBarred.is_permanent());
        assert!(!DataFailCause::SignalLost.is_permanent());
        assert!(!DataFailCause::GprsRegistrationFail.is_permanent());
    }

    #[test]
    fn display_names() {
        assert_eq!(DataFailCause::PppTimeout.to_string(), "PppTimeout");
        assert_eq!(DataFailCause::Other(12).to_string(), "OTHER(12)");
    }

    #[test]
    fn named_catalogue_is_substantial() {
        // We promise "~70 codes" in DESIGN.md; enforce a floor so the
        // catalogue does not silently shrink.
        assert!(
            DataFailCause::NAMED.len() >= 70,
            "{}",
            DataFailCause::NAMED.len()
        );
    }
}
