//! The calibrated Table-2 cause sampler for macro-scale studies.
//!
//! The micro pipeline ([`crate::setup`]) derives causes mechanistically; the
//! population study instead needs millions of `Data_Setup_Error` causes per
//! second, so it samples directly from the paper's published decomposition:
//! the top-10 codes with their Table 2 shares (46.7 % total) plus a long
//! tail over the remaining true-failure codes.

use cellrel_sim::{SimRng, WeightedIndex};
use cellrel_types::DataFailCause;

/// A reusable sampler over `Data_Setup_Error` causes calibrated to Table 2.
#[derive(Debug, Clone)]
pub struct CauseMix {
    causes: Vec<DataFailCause>,
    weights: WeightedIndex,
}

impl CauseMix {
    /// Build the paper-calibrated mix.
    pub fn table2() -> Self {
        let mut causes = Vec::new();
        let mut weights = Vec::new();
        let mut top_total = 0.0;
        for (cause, share) in DataFailCause::TABLE2_TOP10 {
            causes.push(cause);
            weights.push(share);
            top_total += share;
        }
        // Long tail: the remaining 53.3 % spread over the other 334 codes —
        // the named non-top-10 true failures first, then anonymous
        // `Other(...)` codes standing in for the rest of Android's
        // catalogue — with geometric decay. The tail must be *thin enough*
        // that none of its codes outranks the paper's rank 10 (1.6 %).
        let mut tail: Vec<DataFailCause> = DataFailCause::NAMED
            .iter()
            .copied()
            .filter(|c| {
                c.is_true_failure() && !DataFailCause::TABLE2_TOP10.iter().any(|(t, _)| t == c)
            })
            .collect();
        let total_tail = DataFailCause::ANDROID_TOTAL_CODES - 10;
        for i in tail.len()..total_tail {
            tail.push(DataFailCause::Other(0x3000 + i as u16));
        }
        let tail_mass = 1.0 - top_total;
        let decay = 0.98f64;
        let norm: f64 = (0..tail.len()).map(|i| decay.powi(i as i32)).sum();
        for (i, cause) in tail.iter().enumerate() {
            causes.push(*cause);
            weights.push(tail_mass * decay.powi(i as i32) / norm);
        }
        CauseMix {
            causes,
            weights: WeightedIndex::new(&weights),
        }
    }

    /// Draw one cause.
    pub fn sample(&self, rng: &mut SimRng) -> DataFailCause {
        self.causes[self.weights.sample(rng)]
    }

    /// The probability assigned to a specific cause.
    pub fn probability_of(&self, cause: DataFailCause) -> f64 {
        self.causes
            .iter()
            .position(|&c| c == cause)
            .map(|i| self.weights.probability(i))
            .unwrap_or(0.0)
    }

    /// Number of distinct causes in the mix.
    pub fn len(&self) -> usize {
        self.causes.len()
    }

    /// Always false; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.causes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top10_shares_match_table2() {
        let mix = CauseMix::table2();
        for (cause, share) in DataFailCause::TABLE2_TOP10 {
            let p = mix.probability_of(cause);
            assert!((p - share).abs() < 1e-9, "{cause}: {p} vs {share}");
        }
    }

    #[test]
    fn all_causes_are_true_failures() {
        let mix = CauseMix::table2();
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert!(mix.sample(&mut rng).is_true_failure());
        }
    }

    #[test]
    fn empirical_mix_matches_table2() {
        let mix = CauseMix::table2();
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let gprs = (0..n)
            .filter(|_| mix.sample(&mut rng) == DataFailCause::GprsRegistrationFail)
            .count();
        let share = gprs as f64 / n as f64;
        assert!((share - 0.128).abs() < 0.01, "GPRS share {share}");
    }

    #[test]
    fn tail_exists_and_sums_correctly() {
        let mix = CauseMix::table2();
        assert!(mix.len() > 20, "tail too small: {}", mix.len());
        let top: f64 = DataFailCause::TABLE2_TOP10
            .iter()
            .map(|(c, _)| mix.probability_of(*c))
            .sum();
        assert!((top - 0.467).abs() < 1e-9);
    }
}
