//! # cellrel-modem
//!
//! The modem / radio-interface-layer (RIL) substrate. Android's connection
//! management never touches the air interface directly — it issues setup
//! requests to the modem and receives either a data call or a
//! `DataFailCause`. This crate models that boundary:
//!
//! * [`sim_card`] — SIM presence/lock state.
//! * [`fault`] — fault-injection profile (force causes, scale hazards),
//!   mirroring the fault-injection idiom of the workspace guides.
//! * [`setup`] — the staged data-call setup pipeline (overload check →
//!   physical → EMM attach/service → RRC/link → PDP/IP), each stage failing
//!   with the causes that genuinely originate at that layer. Table 2's
//!   cause decomposition is an emergent property of this pipeline.
//! * [`modem`] — the [`Modem`] device: power, camping, data calls,
//!   handover, restart (recovery stage 3 consumes this).
//! * [`cause_mix`] — the calibrated Table-2 cause sampler used by the
//!   macro-scale population study, where running the full pipeline per
//!   failure would be wasteful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cause_mix;
pub mod fault;
pub mod modem;
pub mod setup;
pub mod sim_card;

pub use fault::FaultProfile;
pub use modem::{DataCall, Modem};
pub use sim_card::SimCardState;
