//! Fault injection for the modem pipeline.
//!
//! Tests and ablation experiments need to force rare paths deterministically:
//! a specific `DataFailCause`, an inflated failure rate, or a guaranteed
//! overload rejection. Following the fault-injection idiom of the guides,
//! the profile is a first-class input to the setup pipeline rather than an
//! afterthought.

use cellrel_types::DataFailCause;

/// Fault-injection knobs for a modem.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultProfile {
    /// If set, every setup attempt fails with exactly this cause.
    pub forced_cause: Option<DataFailCause>,
    /// Additive extra probability of a setup failure (applied at the
    /// physical stage with generic causes).
    pub extra_failure_prob: f64,
    /// Force the next attempt to hit a rational overload rejection.
    pub force_overload: bool,
    /// Multiplier on every stage's failure probability (1.0 = neutral).
    pub hazard_scale: f64,
}

impl FaultProfile {
    /// The neutral profile: no injected faults.
    pub fn none() -> Self {
        FaultProfile {
            forced_cause: None,
            extra_failure_prob: 0.0,
            force_overload: false,
            hazard_scale: 1.0,
        }
    }

    /// Force every setup to fail with `cause`.
    pub fn forcing(cause: DataFailCause) -> Self {
        FaultProfile {
            forced_cause: Some(cause),
            ..Self::none()
        }
    }

    /// Scale all hazards by `k`.
    pub fn scaled(k: f64) -> Self {
        FaultProfile {
            hazard_scale: k,
            ..Self::none()
        }
    }

    /// The effective hazard multiplier (guards the zero-initialised default).
    pub fn scale(&self) -> f64 {
        if self.hazard_scale <= 0.0 {
            1.0
        } else {
            self.hazard_scale
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_profile() {
        let f = FaultProfile::none();
        assert!(f.forced_cause.is_none());
        assert_eq!(f.scale(), 1.0);
        assert!(!f.force_overload);
    }

    #[test]
    fn default_scale_is_guarded() {
        let f = FaultProfile::default();
        assert_eq!(f.scale(), 1.0, "zero-initialised scale must act neutral");
    }

    #[test]
    fn forcing_sets_cause() {
        let f = FaultProfile::forcing(DataFailCause::PppTimeout);
        assert_eq!(f.forced_cause, Some(DataFailCause::PppTimeout));
    }

    #[test]
    fn scaled_sets_multiplier() {
        assert_eq!(FaultProfile::scaled(3.0).scale(), 3.0);
    }
}
