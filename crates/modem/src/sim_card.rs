//! SIM card state.
//!
//! Setup requests fail immediately (with `SIM_CARD_CHANGED`-class causes)
//! when no usable SIM is present — one of the instrumentation-level false
//! positives the monitor filters.

use std::fmt;

/// State of the device's SIM card.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimCardState {
    /// SIM present and unlocked — normal operation.
    #[default]
    Ready,
    /// No SIM inserted.
    Absent,
    /// SIM present but PIN-locked.
    PinLocked,
}

impl SimCardState {
    /// Whether data calls are possible with this SIM state.
    pub const fn usable(self) -> bool {
        matches!(self, SimCardState::Ready)
    }
}

impl fmt::Display for SimCardState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimCardState::Ready => "READY",
            SimCardState::Absent => "ABSENT",
            SimCardState::PinLocked => "PIN_LOCKED",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_ready_is_usable() {
        assert!(SimCardState::Ready.usable());
        assert!(!SimCardState::Absent.usable());
        assert!(!SimCardState::PinLocked.usable());
    }

    #[test]
    fn default_is_ready() {
        assert_eq!(SimCardState::default(), SimCardState::Ready);
    }
}
