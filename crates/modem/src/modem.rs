//! The [`Modem`] device: the stateful boundary Android's telephony stack
//! programs against.

use crate::fault::FaultProfile;
use crate::setup::{run_setup, setup_fail_counter};
use crate::sim_card::SimCardState;
use cellrel_radio::{CellView, EmmStateMachine, RiskFactors};
use cellrel_sim::{SimRng, Telemetry};
use cellrel_types::{Apn, DataFailCause, Rat, SimTime};

/// An established data call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataCall {
    /// APN the call serves.
    pub apn: Apn,
    /// The serving cell at establishment.
    pub cell: CellView,
    /// When the call came up.
    pub established_at: SimTime,
}

impl DataCall {
    /// The call's RAT.
    pub fn rat(&self) -> Rat {
        self.cell.rat
    }
}

/// Maximum simultaneous PDP contexts the modem supports (typical baseband
/// limit; exceeding it yields `MAX_PDP_EXCEEDED`).
pub const MAX_PDP_CONTEXTS: usize = 3;

/// The modem: power, SIM, EMM registration, serving cell and the active
/// data calls (one per APN, up to [`MAX_PDP_CONTEXTS`]). The default
/// internet bearer is the study's main concern; IMS/MMS contexts ride
/// alongside as Android's `DcTracker` manages them.
#[derive(Debug, Clone)]
pub struct Modem {
    powered: bool,
    sim: SimCardState,
    emm: EmmStateMachine,
    serving: Option<CellView>,
    calls: Vec<DataCall>,
    /// Dual-connectivity standby: a secondary cell whose control plane is
    /// pre-established (3GPP TS 37.340). Handing over to it is cheap.
    standby: Option<CellView>,
    fault: FaultProfile,
    restart_count: u32,
    tele: Telemetry,
}

impl Default for Modem {
    fn default() -> Self {
        Self::new()
    }
}

impl Modem {
    /// A powered-on modem with a ready SIM and no serving cell.
    pub fn new() -> Self {
        Modem {
            powered: true,
            sim: SimCardState::Ready,
            emm: EmmStateMachine::new(),
            serving: None,
            calls: Vec::new(),
            standby: None,
            fault: FaultProfile::none(),
            restart_count: 0,
            tele: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle (disabled by default; every recording call
    /// is then a no-op branch).
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.tele = tele;
    }

    /// Replace the fault-injection profile.
    pub fn set_fault(&mut self, fault: FaultProfile) {
        self.fault = fault;
    }

    /// Change the SIM state (drops any call if the SIM becomes unusable).
    pub fn set_sim(&mut self, sim: SimCardState) {
        self.sim = sim;
        if !sim.usable() {
            self.calls.clear();
            self.emm.detach();
        }
    }

    /// Whether the radio is powered.
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Power the radio on/off. Powering off tears down everything.
    pub fn set_power(&mut self, on: bool) {
        self.powered = on;
        if !on {
            self.calls.clear();
            self.serving = None;
            self.standby = None;
            self.emm.detach();
        }
    }

    /// Restart the radio component (recovery stage 3): power-cycle without
    /// losing the SIM. Counts restarts for overhead accounting.
    pub fn restart(&mut self) {
        self.set_power(false);
        self.set_power(true);
        self.restart_count += 1;
        self.tele.inc("modem.restart");
    }

    /// How many times the radio was restarted.
    pub fn restart_count(&self) -> u32 {
        self.restart_count
    }

    /// The serving cell, if camped.
    pub fn serving(&self) -> Option<&CellView> {
        self.serving.as_ref()
    }

    /// The default-internet data call, if any (the study's main bearer).
    pub fn call(&self) -> Option<&DataCall> {
        self.call_for(Apn::Internet)
    }

    /// The data call serving a specific APN, if any.
    pub fn call_for(&self, apn: Apn) -> Option<&DataCall> {
        self.calls.iter().find(|c| c.apn == apn)
    }

    /// All active data calls.
    pub fn calls(&self) -> &[DataCall] {
        &self.calls
    }

    /// Access the EMM machine (tests, diagnosis).
    pub fn emm(&self) -> &EmmStateMachine {
        &self.emm
    }

    /// Pre-establish a dual-connectivity standby on `cell` (only meaningful
    /// for 4G/5G secondary cell groups; other RATs are ignored).
    pub fn prepare_standby(&mut self, cell: CellView) {
        if matches!(cell.rat, Rat::G4 | Rat::G5) {
            self.standby = Some(cell);
        }
    }

    /// Drop the standby control plane.
    pub fn clear_standby(&mut self) {
        self.standby = None;
    }

    /// The current standby cell, if any.
    pub fn standby(&self) -> Option<&CellView> {
        self.standby.as_ref()
    }

    /// Camp on a cell (idle reselection). Dropping to a different cell while
    /// a call is active is a handover and must go through [`Modem::handover`].
    pub fn camp_on(&mut self, cell: CellView) {
        debug_assert!(
            self.calls.is_empty(),
            "camp_on with an active call — use handover()"
        );
        self.serving = Some(cell);
    }

    /// Attempt to bring up a data call on the serving cell.
    pub fn setup_data_call(
        &mut self,
        apn: Apn,
        risk: &RiskFactors,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Result<DataCall, DataFailCause> {
        self.tele.inc("modem.setup.attempt");
        match self.try_setup_data_call(apn, risk, now, rng) {
            Ok(call) => {
                self.tele.inc("modem.setup.ok");
                Ok(call)
            }
            Err(cause) => {
                self.tele.inc(setup_fail_counter(cause));
                Err(cause)
            }
        }
    }

    fn try_setup_data_call(
        &mut self,
        apn: Apn,
        risk: &RiskFactors,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Result<DataCall, DataFailCause> {
        let cell = self.serving.ok_or(DataFailCause::NoService)?;
        if let Some(existing) = self.call_for(apn) {
            // Android tears down before re-setup; treat as idempotent.
            return Ok(*existing);
        }
        if self.calls.len() >= MAX_PDP_CONTEXTS {
            return Err(DataFailCause::MaxPdpExceeded);
        }
        run_setup(
            cell.rat,
            cell.level,
            risk,
            &mut self.emm,
            self.sim,
            self.powered,
            &self.fault,
            rng,
        )?;
        let call = DataCall {
            apn,
            cell,
            established_at: now,
        };
        self.calls.push(call);
        Ok(call)
    }

    /// Tear *all* data calls down (clean-up, user action, or recovery
    /// stage 1). Returns whether any call existed.
    pub fn deactivate(&mut self) -> bool {
        let had = !self.calls.is_empty();
        self.calls.clear();
        if had {
            self.emm.release();
        }
        had
    }

    /// Tear down the call serving one APN. Returns whether it existed.
    pub fn deactivate_apn(&mut self, apn: Apn) -> bool {
        let before = self.calls.len();
        self.calls.retain(|c| c.apn != apn);
        let removed = self.calls.len() != before;
        if removed && self.calls.is_empty() {
            self.emm.release();
        }
        removed
    }

    /// Detach and re-register (recovery stage 2).
    pub fn reregister(
        &mut self,
        risk: &RiskFactors,
        rng: &mut SimRng,
    ) -> Result<(), DataFailCause> {
        self.calls.clear();
        self.emm.detach();
        let rat = self
            .serving
            .map(|c| c.rat)
            .ok_or(DataFailCause::NoService)?;
        self.emm.attach(rat, risk, rng)
    }

    /// Run a tracking-area update against the serving cell (mobility).
    /// On failure the active call is torn down (the EMM state is stale).
    pub fn tracking_area_update(
        &mut self,
        risk: &RiskFactors,
        rng: &mut SimRng,
    ) -> Result<(), DataFailCause> {
        match self.emm.tracking_area_update(risk, rng) {
            Ok(()) => Ok(()),
            Err(cause) => {
                self.calls.clear();
                Err(cause)
            }
        }
    }

    /// Hand the active call over to a new cell. Inter-RAT handovers carry
    /// the `IRAT_HANDOVER_FAILED` hazard (Table 2 rank 10); a failed
    /// handover drops the call.
    pub fn handover(
        &mut self,
        to: CellView,
        to_risk: &RiskFactors,
        rng: &mut SimRng,
    ) -> Result<(), DataFailCause> {
        let call = *self.calls.first().ok_or(DataFailCause::LostConnection)?;
        let inter_rat = call.rat() != to.rat;
        // A pre-established standby control plane (dual connectivity) makes
        // the transfer a reconfiguration instead of a fresh attach.
        let prepared = self
            .standby
            .is_some_and(|s| s.bs == to.bs && s.rat == to.rat);

        // Base handover failure risk scales with target-cell risk; inter-RAT
        // transfers are substantially more fragile.
        let mut p_fail = 0.3 * to_risk.signal_risk * (1.0 + to_risk.interference);
        if inter_rat {
            p_fail += 0.05 + 0.25 * to_risk.signal_risk;
        }
        if prepared {
            p_fail *= 0.35;
        }
        if rng.chance(p_fail.min(0.8)) {
            self.tele.inc("modem.handover.fail");
            self.calls.clear();
            self.serving = Some(to);
            let cause = if inter_rat {
                DataFailCause::IratHandoverFailed
            } else if rng.chance(0.3) {
                DataFailCause::HandoffPreferenceChanged
            } else {
                DataFailCause::LostConnection
            };
            return Err(cause);
        }

        self.tele.inc("modem.handover.ok");
        self.serving = Some(to);
        // Every surviving bearer rides the new cell.
        for c in &mut self.calls {
            c.cell = to;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_radio::BsIndex;
    use cellrel_types::RssDbm;

    fn cell(rat: Rat, dbm: f64) -> CellView {
        CellView::new(BsIndex(0), rat, RssDbm(dbm))
    }

    fn quiet_risk() -> RiskFactors {
        RiskFactors {
            signal_risk: 0.022,
            interference: 0.0,
            overload_prob: 0.0,
            emm_pressure: 0.0,
            disrepair: false,
        }
    }

    fn bring_up(m: &mut Modem, rng: &mut SimRng) -> DataCall {
        let risk = quiet_risk();
        loop {
            match m.setup_data_call(Apn::Internet, &risk, SimTime::ZERO, rng) {
                Ok(c) => return c,
                Err(_) => continue,
            }
        }
    }

    #[test]
    fn setup_without_cell_is_no_service() {
        let mut m = Modem::new();
        let mut rng = SimRng::new(1);
        let err = m
            .setup_data_call(Apn::Internet, &quiet_risk(), SimTime::ZERO, &mut rng)
            .unwrap_err();
        assert_eq!(err, DataFailCause::NoService);
    }

    #[test]
    fn setup_and_teardown() {
        let mut m = Modem::new();
        let mut rng = SimRng::new(2);
        m.camp_on(cell(Rat::G4, -95.0));
        let call = bring_up(&mut m, &mut rng);
        assert_eq!(call.apn, Apn::Internet);
        assert_eq!(call.rat(), Rat::G4);
        assert!(m.call().is_some());
        assert!(m.deactivate());
        assert!(m.call().is_none());
        assert!(!m.deactivate(), "second deactivate is a no-op");
    }

    #[test]
    fn power_off_kills_call() {
        let mut m = Modem::new();
        let mut rng = SimRng::new(3);
        m.camp_on(cell(Rat::G4, -95.0));
        bring_up(&mut m, &mut rng);
        m.set_power(false);
        assert!(m.call().is_none());
        assert!(m.serving().is_none());
        let err = m
            .setup_data_call(Apn::Internet, &quiet_risk(), SimTime::ZERO, &mut rng)
            .unwrap_err();
        assert_eq!(err, DataFailCause::NoService); // not camped after power-off
    }

    #[test]
    fn restart_counts_and_recovers() {
        let mut m = Modem::new();
        m.restart();
        m.restart();
        assert_eq!(m.restart_count(), 2);
        assert!(m.powered());
    }

    #[test]
    fn sim_removal_drops_call() {
        let mut m = Modem::new();
        let mut rng = SimRng::new(4);
        m.camp_on(cell(Rat::G4, -95.0));
        bring_up(&mut m, &mut rng);
        m.set_sim(SimCardState::Absent);
        assert!(m.call().is_none());
        m.camp_on(cell(Rat::G4, -95.0));
        let err = m
            .setup_data_call(Apn::Internet, &quiet_risk(), SimTime::ZERO, &mut rng)
            .unwrap_err();
        assert_eq!(err, DataFailCause::SimCardChanged);
    }

    #[test]
    fn intra_rat_handover_usually_succeeds() {
        let mut rng = SimRng::new(5);
        let risk = quiet_risk();
        let mut ok = 0;
        for _ in 0..500 {
            let mut m = Modem::new();
            m.camp_on(cell(Rat::G4, -95.0));
            bring_up(&mut m, &mut rng);
            if m.handover(cell(Rat::G4, -100.0), &risk, &mut rng).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 480, "intra-RAT handover ok {ok}/500");
    }

    #[test]
    fn inter_rat_handover_to_weak_cell_often_fails_with_irat_cause() {
        let mut rng = SimRng::new(6);
        let weak_risk = RiskFactors {
            signal_risk: 0.32,
            interference: 0.5,
            overload_prob: 0.0,
            emm_pressure: 0.3,
            disrepair: false,
        };
        let mut irat_fails = 0;
        for _ in 0..500 {
            let mut m = Modem::new();
            m.camp_on(cell(Rat::G4, -95.0));
            bring_up(&mut m, &mut rng);
            if m.handover(cell(Rat::G5, -126.0), &weak_risk, &mut rng)
                == Err(DataFailCause::IratHandoverFailed)
            {
                irat_fails += 1;
                assert!(m.call().is_none(), "failed handover must drop the call");
            }
        }
        assert!(irat_fails > 30, "IRAT failures {irat_fails}/500");
    }

    #[test]
    fn prepared_standby_makes_inter_rat_handover_safer() {
        let mut rng = SimRng::new(60);
        let weak_risk = RiskFactors {
            signal_risk: 0.32,
            interference: 0.5,
            overload_prob: 0.0,
            emm_pressure: 0.3,
            disrepair: false,
        };
        let target = cell(Rat::G5, -120.0);
        let run = |prepare: bool, rng: &mut SimRng| {
            let mut fails = 0;
            for _ in 0..600 {
                let mut m = Modem::new();
                m.camp_on(cell(Rat::G4, -95.0));
                bring_up(&mut m, rng);
                if prepare {
                    m.prepare_standby(target);
                }
                if m.handover(target, &weak_risk, rng).is_err() {
                    fails += 1;
                }
            }
            fails
        };
        let unprepared = run(false, &mut rng);
        let prepared = run(true, &mut rng);
        assert!(
            prepared * 2 < unprepared,
            "prepared {prepared} vs unprepared {unprepared} failures"
        );
    }

    #[test]
    fn standby_only_accepts_4g_5g() {
        let mut m = Modem::new();
        m.prepare_standby(cell(Rat::G3, -90.0));
        assert!(m.standby().is_none());
        m.prepare_standby(cell(Rat::G5, -100.0));
        assert!(m.standby().is_some());
        m.clear_standby();
        assert!(m.standby().is_none());
    }

    #[test]
    fn handover_without_call_errors() {
        let mut m = Modem::new();
        let mut rng = SimRng::new(7);
        assert_eq!(
            m.handover(cell(Rat::G4, -90.0), &quiet_risk(), &mut rng),
            Err(DataFailCause::LostConnection)
        );
    }

    #[test]
    fn reregister_requires_serving_cell() {
        let mut m = Modem::new();
        let mut rng = SimRng::new(8);
        assert_eq!(
            m.reregister(&quiet_risk(), &mut rng),
            Err(DataFailCause::NoService)
        );
        m.camp_on(cell(Rat::G4, -95.0));
        // Retry until attach succeeds on the quiet cell.
        let mut ok = false;
        for _ in 0..20 {
            if m.reregister(&quiet_risk(), &mut rng).is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok);
    }

    #[test]
    fn setup_is_idempotent_with_active_call() {
        let mut m = Modem::new();
        let mut rng = SimRng::new(9);
        m.camp_on(cell(Rat::G4, -95.0));
        let first = bring_up(&mut m, &mut rng);
        let second = m
            .setup_data_call(
                Apn::Internet,
                &quiet_risk(),
                SimTime::from_secs(5),
                &mut rng,
            )
            .expect("idempotent setup");
        assert_eq!(first, second);
    }
}
