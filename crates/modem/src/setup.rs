//! The staged data-call setup pipeline.
//!
//! §2.1: a setup "may occur at the physical layer (e.g., radio signal loss),
//! the data link or MAC layer (e.g., device authentication failure), and/or
//! the network layer (e.g., IP address allocation failure)". The pipeline
//! walks those stages in protocol order; each stage fails with the causes
//! that genuinely originate there, with probabilities driven by the cell's
//! [`RiskFactors`]. Rational overload rejections are evaluated *first* and
//! produce false-positive-class causes — the noise the monitor must filter.

use crate::fault::FaultProfile;
use crate::sim_card::SimCardState;
use cellrel_radio::{EmmStateMachine, RiskFactors};
use cellrel_sim::SimRng;
use cellrel_types::{DataFailCause, FailureLayer, Rat, SignalLevel};

/// Outcome classification of one setup attempt, used by tests and by the
/// monitor's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupOutcome {
    /// The data call came up.
    Success,
    /// A true failure with the attached cause.
    Failed(DataFailCause),
}

/// Run one data-call setup attempt through the staged pipeline.
///
/// `emm` carries registration state across attempts (retries interact with
/// barring streaks, as in the real stack).
#[allow(clippy::too_many_arguments)]
pub fn run_setup(
    rat: Rat,
    level: SignalLevel,
    risk: &RiskFactors,
    emm: &mut EmmStateMachine,
    sim: SimCardState,
    powered: bool,
    fault: &FaultProfile,
    rng: &mut SimRng,
) -> Result<(), DataFailCause> {
    // Device-local preconditions.
    if !powered {
        return Err(DataFailCause::RadioPowerOff);
    }
    if !sim.usable() {
        return Err(DataFailCause::SimCardChanged);
    }
    if let Some(cause) = fault.forced_cause {
        return Err(cause);
    }
    let scale = fault.scale();

    // Stage 0 — rational rejection by an overloaded BS (false positive).
    if fault.force_overload || rng.chance((risk.overload_prob * scale).min(1.0)) {
        let overload_causes = [
            (DataFailCause::InsufficientResources, 0.60),
            (DataFailCause::RrcReleaseCongestion, 0.25),
            (DataFailCause::ServiceOptionOutOfOrder, 0.15),
        ];
        return Err(pick(&overload_causes, rng));
    }

    // Stage 1 — physical layer.
    let mut p_phys = 0.45 * risk.signal_risk * scale + fault.extra_failure_prob;
    if risk.disrepair {
        p_phys += 0.25;
    }
    if rng.chance(p_phys.min(0.9)) {
        return Err(physical_cause(rat, level, rng));
    }

    // Stage 2 — mobility management (attach, then service request). The EMM
    // machine's internal probabilities already scale with `risk`.
    emm.attach(rat, risk, rng)?;
    emm.service_request(risk, rng)?;

    // Stage 3 — data-link / MAC.
    let p_link = (0.05 * (1.0 + risk.interference) * (risk.signal_risk / 0.32) * scale).min(0.6);
    if rng.chance(p_link) {
        return Err(link_cause(rat, rng));
    }

    // Stage 4 — network layer (PDP/PDN activation, IP allocation).
    let p_net = (0.04 * (1.0 + 1.5 * risk.interference + risk.emm_pressure) * scale).min(0.6);
    if rng.chance(p_net) {
        return Err(network_cause(rng));
    }

    Ok(())
}

/// The telemetry counter a failed setup attempt lands in, by the cause's
/// class: false-positive causes (the stage-0 overload rejections and
/// user-initiated teardowns the monitor filters) in one bucket, true
/// failures by the protocol layer they originate from (stages 1–4 of the
/// pipeline). Static labels so the hot path never allocates.
pub fn setup_fail_counter(cause: DataFailCause) -> &'static str {
    if cause.false_positive().is_some() {
        return "modem.setup.fail.fp";
    }
    match cause.layer() {
        FailureLayer::Physical => "modem.setup.fail.physical",
        FailureLayer::LinkMac => "modem.setup.fail.link_mac",
        FailureLayer::Network => "modem.setup.fail.network",
        FailureLayer::Modem => "modem.setup.fail.modem",
        FailureLayer::Unknown => "modem.setup.fail.unknown",
    }
}

/// Physical-layer cause mix, conditioned on RAT and signal level.
fn physical_cause(rat: Rat, level: SignalLevel, rng: &mut SimRng) -> DataFailCause {
    // At level 0 the dominant symptom is simply "no service".
    let no_service_boost = if level == SignalLevel::L0 { 0.35 } else { 0.0 };
    match rat {
        Rat::G2 => pick(
            &[
                (DataFailCause::SignalLost, 0.40),
                (DataFailCause::NoService, 0.30 + no_service_boost),
                (DataFailCause::MaxAccessProbe, 0.20),
                (DataFailCause::CdmaIntercept, 0.10),
            ],
            rng,
        ),
        Rat::G3 => pick(
            &[
                (DataFailCause::SignalLost, 0.35),
                (DataFailCause::NoService, 0.25 + no_service_boost),
                (DataFailCause::NoHybridHdrService, 0.20),
                (DataFailCause::MaxAccessProbe, 0.15),
                (DataFailCause::CdmaReleaseSoReject, 0.05),
            ],
            rng,
        ),
        Rat::G4 | Rat::G5 => pick(
            &[
                (DataFailCause::SignalLost, 0.45),
                (DataFailCause::NoService, 0.35 + no_service_boost),
                (DataFailCause::RandomAccessFailure, 0.20),
            ],
            rng,
        ),
    }
}

/// Link/MAC-layer cause mix: PPP dominates on legacy RATs, RRC on LTE/NR.
fn link_cause(rat: Rat, rng: &mut SimRng) -> DataFailCause {
    match rat {
        Rat::G2 | Rat::G3 => pick(
            &[
                (DataFailCause::PppTimeout, 0.60),
                (DataFailCause::UserAuthentication, 0.15),
                (DataFailCause::LlcSndcpFailure, 0.25),
            ],
            rng,
        ),
        Rat::G4 | Rat::G5 => pick(
            &[
                (DataFailCause::RrcConnectionFailure, 0.55),
                (DataFailCause::PppTimeout, 0.25),
                (DataFailCause::UserAuthentication, 0.20),
            ],
            rng,
        ),
    }
}

/// Network-layer cause mix.
fn network_cause(rng: &mut SimRng) -> DataFailCause {
    pick(
        &[
            (DataFailCause::PdpLowerlayerError, 0.28),
            (DataFailCause::ActivationRejectGgsn, 0.18),
            (DataFailCause::Ipv4AddressAllocationFail, 0.18),
            (DataFailCause::SetupTimeout, 0.16),
            (DataFailCause::ActivationRejectUnspecified, 0.10),
            (DataFailCause::QosNotAccepted, 0.06),
            (DataFailCause::NetworkFailure, 0.04),
        ],
        rng,
    )
}

fn pick(table: &[(DataFailCause, f64)], rng: &mut SimRng) -> DataFailCause {
    let weights: Vec<f64> = table.iter().map(|(_, w)| *w).collect();
    table[rng.weighted_index(&weights)].0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> RiskFactors {
        RiskFactors {
            signal_risk: 0.022,
            interference: 0.05,
            overload_prob: 0.0,
            emm_pressure: 0.05,
            disrepair: false,
        }
    }

    fn hostile() -> RiskFactors {
        RiskFactors {
            signal_risk: 0.32,
            interference: 0.9,
            overload_prob: 0.3,
            emm_pressure: 0.9,
            disrepair: false,
        }
    }

    fn attempt(risk: &RiskFactors, rng: &mut SimRng) -> Result<(), DataFailCause> {
        let mut emm = EmmStateMachine::new();
        run_setup(
            Rat::G4,
            SignalLevel::L3,
            risk,
            &mut emm,
            SimCardState::Ready,
            true,
            &FaultProfile::none(),
            rng,
        )
    }

    #[test]
    fn quiet_cell_mostly_succeeds() {
        let mut rng = SimRng::new(1);
        let ok = (0..2000)
            .filter(|_| attempt(&quiet(), &mut rng).is_ok())
            .count();
        assert!(ok > 1750, "quiet cell succeeded only {ok}/2000");
    }

    #[test]
    fn hostile_cell_mostly_fails() {
        let mut rng = SimRng::new(2);
        let ok = (0..2000)
            .filter(|_| attempt(&hostile(), &mut rng).is_ok())
            .count();
        assert!(ok < 1000, "hostile cell succeeded {ok}/2000");
    }

    #[test]
    fn power_and_sim_preconditions() {
        let mut rng = SimRng::new(3);
        let mut emm = EmmStateMachine::new();
        let err = run_setup(
            Rat::G4,
            SignalLevel::L3,
            &quiet(),
            &mut emm,
            SimCardState::Ready,
            false,
            &FaultProfile::none(),
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, DataFailCause::RadioPowerOff);

        let err = run_setup(
            Rat::G4,
            SignalLevel::L3,
            &quiet(),
            &mut emm,
            SimCardState::Absent,
            true,
            &FaultProfile::none(),
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, DataFailCause::SimCardChanged);
    }

    #[test]
    fn forced_cause_wins() {
        let mut rng = SimRng::new(4);
        let mut emm = EmmStateMachine::new();
        let err = run_setup(
            Rat::G4,
            SignalLevel::L5,
            &quiet(),
            &mut emm,
            SimCardState::Ready,
            true,
            &FaultProfile::forcing(DataFailCause::ForbiddenPlmn),
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, DataFailCause::ForbiddenPlmn);
    }

    #[test]
    fn forced_overload_yields_false_positive_cause() {
        let mut rng = SimRng::new(5);
        let fault = FaultProfile {
            force_overload: true,
            ..FaultProfile::none()
        };
        let mut emm = EmmStateMachine::new();
        let err = run_setup(
            Rat::G4,
            SignalLevel::L4,
            &quiet(),
            &mut emm,
            SimCardState::Ready,
            true,
            &fault,
            &mut rng,
        )
        .unwrap_err();
        assert!(err.false_positive().is_some(), "{err} should be a FP cause");
    }

    #[test]
    fn failure_causes_match_their_layers() {
        use cellrel_types::FailureLayer;
        let mut rng = SimRng::new(6);
        let mut layers_seen = std::collections::HashSet::new();
        for _ in 0..4000 {
            if let Err(c) = attempt(&hostile(), &mut rng) {
                layers_seen.insert(c.layer());
            }
        }
        assert!(layers_seen.contains(&FailureLayer::Physical));
        assert!(layers_seen.contains(&FailureLayer::Network));
        assert!(layers_seen.contains(&FailureLayer::LinkMac));
    }

    #[test]
    fn legacy_rats_produce_legacy_causes() {
        let mut rng = SimRng::new(7);
        let risk = hostile();
        let mut causes = std::collections::HashSet::new();
        for _ in 0..4000 {
            let mut emm = EmmStateMachine::new();
            if let Err(c) = run_setup(
                Rat::G3,
                SignalLevel::L1,
                &risk,
                &mut emm,
                SimCardState::Ready,
                true,
                &FaultProfile::none(),
                &mut rng,
            ) {
                causes.insert(c);
            }
        }
        assert!(causes.contains(&DataFailCause::NoHybridHdrService));
        assert!(causes.contains(&DataFailCause::GprsRegistrationFail));
    }

    #[test]
    fn hazard_scale_increases_failures() {
        let mut rng = SimRng::new(8);
        let risk = quiet();
        let run = |fault: FaultProfile, rng: &mut SimRng| {
            (0..2000)
                .filter(|_| {
                    let mut emm = EmmStateMachine::new();
                    run_setup(
                        Rat::G4,
                        SignalLevel::L3,
                        &risk,
                        &mut emm,
                        SimCardState::Ready,
                        true,
                        &fault,
                        rng,
                    )
                    .is_err()
                })
                .count()
        };
        let base = run(FaultProfile::none(), &mut rng);
        let scaled = run(FaultProfile::scaled(5.0), &mut rng);
        assert!(scaled > base * 2, "scaled {scaled} vs base {base}");
    }
}
