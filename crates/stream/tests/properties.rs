//! Property-based totality and round-trip tests for the stream formats:
//! the pipeline checkpoint, the segment frame, and the manifest must
//! restore exactly from their own bytes and map every truncated,
//! bit-flipped, or garbage input onto a typed [`StreamError`] — never a
//! panic (mirror of `crates/ingest/tests/properties.rs`).

use cellrel_ingest::{encode_batch, CollectorConfig};
use cellrel_store::{DeviceDirectory, StoreConfig};
use cellrel_stream::{
    decode_manifest, decode_segment, encode_segment, MemSegments, SegmentEntry, SegmentKind,
    StreamConfig, StreamError, StreamPipeline,
};
use cellrel_types::{
    Apn, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat, SignalLevel, SimDuration,
    SimTime,
};
use proptest::prelude::*;

fn small_cfg() -> StreamConfig {
    StreamConfig {
        window_ms: 4_000,
        lateness_ms: 0,
        hot_windows: 1,
        late_flush: 2,
        collector: CollectorConfig {
            virtual_shards: 8,
            ..CollectorConfig::default()
        },
        store: StoreConfig {
            bucket_ms: 1_000,
            rollup_buckets: 4,
            partitions: 4,
            auto_compact_every: 0,
        },
    }
}

fn evt(device: u32, ms: u64) -> FailureEvent {
    FailureEvent {
        device: DeviceId(device),
        kind: FailureKind::ALL[(device as usize + ms as usize / 900) % 5],
        start: SimTime::from_millis(ms),
        duration: SimDuration::from_millis(400 + ms % 1_700),
        cause: None,
        ctx: InSituInfo {
            rat: Rat::G4,
            signal: SignalLevel::L3,
            apn: Apn::Internet,
            bs: None,
            isp: Isp::A,
        },
    }
}

/// A pipeline driven over synthetic batches far enough to seal windows,
/// fold the hot tier, and route late records (device 0 lags behind the
/// watermark). Returns (checkpoint bytes, surviving segments, digest).
fn populated(devices: u32, rounds: usize) -> (Vec<u8>, MemSegments, u64) {
    let cfg = small_cfg();
    let dir = DeviceDirectory::default();
    let mut p = StreamPipeline::new(&cfg, &dir).expect("valid config");
    let mut segs = MemSegments::new();
    for s in 0..rounds {
        for d in 0..devices {
            let t = (s as u64 * u64::from(devices) + u64::from(d)) * 2_100;
            let t = if d == 0 { t.saturating_sub(9_000) } else { t };
            let b = encode_batch(DeviceId(d), s as u64, &[evt(d, t), evt(d, t + 350)]);
            p.offer(&b, &mut segs).expect("offer succeeds");
        }
    }
    (p.checkpoint(), segs, p.digest())
}

proptest! {
    /// Checkpoint → restore reproduces the pipeline exactly: same cursor,
    /// same merged digest, same manifest length.
    #[test]
    fn checkpoint_roundtrips_mid_stream(devices in 1u32..6, rounds in 1usize..6) {
        let (ckpt, segs, digest) = populated(devices, rounds);
        let dir = DeviceDirectory::default();
        let p = StreamPipeline::restore(&ckpt, &dir, &segs).expect("own checkpoint restores");
        prop_assert_eq!(p.cursor(), u64::from(devices) * rounds as u64);
        prop_assert_eq!(p.digest(), digest);
        // Re-checkpointing the restored pipeline reproduces the bytes
        // except the restore counter; restoring *that* agrees again.
        let again = StreamPipeline::restore(&p.checkpoint(), &dir, &segs)
            .expect("second-generation checkpoint restores");
        prop_assert_eq!(again.digest(), digest);
        prop_assert_eq!(again.counters().restores, 2);
    }

    /// Every strict prefix of a valid pipeline checkpoint is a typed
    /// error, never a panic.
    #[test]
    fn truncated_pipeline_checkpoints_are_errors(
        devices in 1u32..5,
        rounds in 1usize..4,
        cut_seed in any::<usize>(),
    ) {
        let (ckpt, segs, _) = populated(devices, rounds);
        let dir = DeviceDirectory::default();
        let cut = cut_seed % ckpt.len(); // strictly shorter prefix
        prop_assert!(StreamPipeline::restore(&ckpt[..cut], &dir, &segs).is_err());
    }

    /// A single flipped byte anywhere in the checkpoint is always a typed
    /// error (CRC for payload flips, CRC comparison for trailer flips).
    #[test]
    fn corrupted_pipeline_checkpoints_are_errors(
        devices in 1u32..5,
        rounds in 1usize..4,
        at_seed in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let (mut ckpt, segs, _) = populated(devices, rounds);
        let dir = DeviceDirectory::default();
        let at = at_seed % ckpt.len();
        ckpt[at] ^= mask;
        prop_assert!(StreamPipeline::restore(&ckpt, &dir, &segs).is_err());
    }

    /// Arbitrary garbage never panics restore.
    #[test]
    fn garbage_never_panics_pipeline_restore(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let dir = DeviceDirectory::default();
        let segs = MemSegments::new();
        let _ = StreamPipeline::restore(&bytes, &dir, &segs);
    }

    /// Restore notices a segment the manifest names but the backend lost.
    #[test]
    fn missing_segment_is_a_typed_error(
        devices in 2u32..6,
        rounds in 2usize..6,
        pick in any::<usize>(),
    ) {
        let (ckpt, mut segs, _) = populated(devices, rounds);
        prop_assume!(!segs.is_empty());
        let dir = DeviceDirectory::default();
        let names: Vec<String> = segs.raw_mut().keys().cloned().collect();
        let victim = names[pick % names.len()].clone();
        segs.raw_mut().remove(&victim);
        match StreamPipeline::restore(&ckpt, &dir, &segs) {
            Err(StreamError::SegmentMissing(name)) => prop_assert_eq!(name, victim),
            other => prop_assert!(false, "expected SegmentMissing, got {:?}", other.map(|_| ())),
        }
    }

    /// Restore notices a tampered persisted segment.
    #[test]
    fn corrupted_segment_is_a_typed_error(
        devices in 2u32..6,
        rounds in 2usize..6,
        pick in any::<usize>(),
        at_seed in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let (ckpt, mut segs, _) = populated(devices, rounds);
        prop_assume!(!segs.is_empty());
        let dir = DeviceDirectory::default();
        let names: Vec<String> = segs.raw_mut().keys().cloned().collect();
        let victim = names[pick % names.len()].clone();
        let bytes = segs.raw_mut().get_mut(&victim).expect("victim exists");
        let at = at_seed % bytes.len();
        bytes[at] ^= mask;
        prop_assert!(StreamPipeline::restore(&ckpt, &dir, &segs).is_err());
    }

    /// Segment frames round-trip and their decoder is total on truncation
    /// and corruption.
    #[test]
    fn segment_frames_roundtrip_and_decode_totally(
        device in 0u32..8,
        n in 1usize..20,
        cut_seed in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut store = cellrel_store::Store::new(&small_cfg().store);
        let dir = DeviceDirectory::default();
        for i in 0..n {
            let e = evt(device, i as u64 * 777);
            store.record(&e, dir.dim_of(e.device));
        }
        let entry = SegmentEntry {
            kind: SegmentKind::Window,
            index: u64::from(device),
            watermark_ms: n as u64 * 777,
            records: store.inserted(),
            digest: store.digest(),
            bytes: 0,
        };
        let bytes = encode_segment(&entry, &store);
        let (got, back) = decode_segment(&bytes).expect("own encoding decodes");
        prop_assert_eq!(got.bytes, bytes.len() as u64);
        prop_assert_eq!((got.kind, got.index, got.records), (entry.kind, entry.index, entry.records));
        prop_assert_eq!(back.digest(), store.digest());

        let cut = cut_seed % bytes.len();
        prop_assert!(decode_segment(&bytes[..cut]).is_err());
        let mut flipped = bytes.clone();
        flipped[cut] ^= mask;
        prop_assert!(decode_segment(&flipped).is_err());
    }

    /// Garbage never panics the segment or manifest decoders.
    #[test]
    fn garbage_never_panics_segment_and_manifest_decoders(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode_segment(&bytes);
        let mut pos = 0;
        let _ = decode_manifest(&bytes, &mut pos);
    }
}
