//! Continuously running windowed pipeline over the collector and the store.
//!
//! The batch pipeline runs simulate → ingest → store once; a nationwide
//! monitoring platform never stops. This crate turns the same deterministic
//! parts into a long-running stream processor:
//!
//! - [`StreamPipeline`] pulls encoded upload batches through the sharded
//!   collector and routes every accepted record into an event-time window
//!   (`start_ms / window_ms`). Windows **seal** when the collector's
//!   watermark — the newest accepted timestamp across shards — has moved
//!   past the window end by the configured lateness bound.
//! - Sealing persists the window's store delta as a CRC-framed **segment**
//!   (see [`segment`]) through a [`SegmentStore`] backend and appends a
//!   [`SegmentEntry`] to the manifest. Sealed segments live in a bounded
//!   hot in-memory tier; older ones fold into a compacted base tier.
//!   Records arriving for already-sealed windows land in a bounded
//!   **late lane** that flushes as its own segment kind, so nothing is
//!   ever dropped and the merged view stays byte-identical to batch.
//! - Tables 1/2 re-derive incrementally from the merged view after every
//!   seal ([`StreamPipeline::tables`]), and [`publish::run_published`]
//!   pushes a snapshot into a `queryd` core per sealed window.
//! - [`StreamPipeline::checkpoint`] serializes the whole pipeline —
//!   collector checkpoint, segment manifest, pending (unsealed) window
//!   deltas, late lane, cursor — as one versioned CRC-framed blob;
//!   [`StreamPipeline::restore`] rebuilds from that blob plus the segment
//!   backend. Restart is **digest-transparent**: replaying the remaining
//!   batches yields byte-identical store digests, manifests, and tables,
//!   even when the kill lands mid-window ([`campaign::run_kill_restart`]).
//!
//! Everything is std-only and deterministic; all decode paths are total
//! (malformed checkpoint/segment/manifest bytes yield a typed
//! [`StreamError`], never a panic).

pub mod campaign;
pub mod checkpoint;
pub mod pipeline;
pub mod publish;
pub mod segment;
pub mod source;

mod error;

pub use campaign::{run_kill_restart, KillOutcome, KillRestartConfig, KillRestartReport};
pub use checkpoint::{CKPT_STREAM_MAGIC, CKPT_STREAM_VERSION};
pub use error::StreamError;
pub use pipeline::{StreamConfig, StreamCounters, StreamPipeline};
pub use publish::run_published;
pub use segment::{
    decode_manifest, decode_segment, encode_manifest, encode_segment, DirSegments, MemSegments,
    SegmentEntry, SegmentKind, SegmentStore, SEG_MAGIC, SEG_VERSION,
};
pub use source::batches_from_events;
