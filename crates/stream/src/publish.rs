//! Serving the live stream: per-sealed-window snapshot publishes.

use crate::pipeline::StreamPipeline;
use crate::segment::SegmentStore;
use crate::StreamError;
use cellrel_queryd::{QuerydCore, Snapshot};
use std::sync::Arc;

/// Drive a pipeline over `batches`, publishing the merged view into a
/// query-daemon core after **every call that seals at least one segment**
/// and once more after the end-of-stream flush. `on_publish` receives each
/// published snapshot (epoch + store), so callers can retain them and
/// later replay served answers against the exact state that produced them
/// — the same harness shape as `queryd::feed_events`, with window seals
/// as the publish cadence. Returns the final epoch.
pub fn run_published(
    pipeline: &mut StreamPipeline<'_>,
    batches: &[Vec<u8>],
    segs: &mut dyn SegmentStore,
    core: &QuerydCore,
    mut on_publish: impl FnMut(&Arc<Snapshot>),
) -> Result<u64, StreamError> {
    core.publish(pipeline.store());
    on_publish(&core.snapshot());
    for bytes in batches {
        if !pipeline.offer(bytes, segs)?.is_empty() {
            core.publish(pipeline.store());
            on_publish(&core.snapshot());
        }
    }
    pipeline.flush(segs)?;
    let epoch = core.publish(pipeline.store());
    on_publish(&core.snapshot());
    Ok(epoch)
}
