//! Versioned pipeline checkpoint: the whole stream state as one frame.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! "SP" version(u8)
//! window_ms lateness_ms hot_windows late_flush        stream config
//! virtual_shards collector_lateness_ms                collector config
//! bucket_ms rollup_buckets partitions auto_compact    store config
//! cursor sealed_before late_seq                       replay position
//! counters x9                                         bookkeeping
//! len collector_checkpoint                            embedded "CK" frame
//! manifest                                            see segment module
//! n (window_index len store_image)*                   pending windows
//! len store_image                                     late lane
//! crc32 (u32 LE)                                      over all prior bytes
//! ```
//!
//! The checkpoint carries everything except sealed segment *contents* —
//! those reload from the [`SegmentStore`](crate::SegmentStore) backend and
//! are cross-checked against the manifest. Restore is total: truncated,
//! bit-flipped, or garbage bytes yield a typed [`StreamError`].

use crate::error::{check_crc, narrow, read_varint, take};
use crate::pipeline::{StreamConfig, StreamCounters, StreamPipeline};
use crate::segment::{decode_manifest, decode_segment, encode_manifest, SegmentStore};
use crate::StreamError;
use cellrel_ingest::codec::{crc32, write_varint};
use cellrel_ingest::{restore_checkpoint, save_checkpoint, CollectorConfig};
use cellrel_store::{restore_store, save_store, DeviceDirectory, Store, StoreConfig};
use cellrel_types::SimDuration;
use std::collections::BTreeMap;

/// Magic bytes opening a pipeline checkpoint.
pub const CKPT_STREAM_MAGIC: [u8; 2] = *b"SP";
/// Current pipeline checkpoint schema version.
pub const CKPT_STREAM_VERSION: u8 = 1;

impl<'d> StreamPipeline<'d> {
    /// Serialize the full pipeline state. Pure: checkpointing never
    /// mutates the pipeline, so any cadence (every seal, every batch) is
    /// behaviour-neutral.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(&CKPT_STREAM_MAGIC);
        out.push(CKPT_STREAM_VERSION);
        write_varint(&mut out, self.cfg.window_ms);
        write_varint(&mut out, self.cfg.lateness_ms);
        write_varint(&mut out, self.cfg.hot_windows as u64);
        write_varint(&mut out, self.cfg.late_flush);
        write_varint(&mut out, self.cfg.collector.virtual_shards as u64);
        write_varint(&mut out, self.cfg.collector.lateness.as_millis());
        write_varint(&mut out, self.cfg.store.bucket_ms);
        write_varint(&mut out, u64::from(self.cfg.store.rollup_buckets));
        write_varint(&mut out, self.cfg.store.partitions as u64);
        write_varint(&mut out, self.cfg.store.auto_compact_every);
        write_varint(&mut out, self.cursor);
        write_varint(&mut out, self.sealed_before);
        write_varint(&mut out, self.late_seq);
        for c in counters_fields(&self.counters) {
            write_varint(&mut out, c);
        }
        let ck = save_checkpoint(&self.collector);
        write_varint(&mut out, ck.len() as u64);
        out.extend_from_slice(&ck);
        encode_manifest(&self.manifest, &mut out);
        write_varint(&mut out, self.pending.len() as u64);
        for (&w, delta) in &self.pending {
            write_varint(&mut out, w);
            let img = save_store(delta);
            write_varint(&mut out, img.len() as u64);
            out.extend_from_slice(&img);
        }
        let img = save_store(&self.late);
        write_varint(&mut out, img.len() as u64);
        out.extend_from_slice(&img);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Rebuild a pipeline from a checkpoint and its segment backend.
    /// Every manifest entry is reloaded and verified (missing or tampered
    /// segments are typed errors); the hot/base tiers are rebuilt by
    /// replaying the manifest in seal order, so the merged view — and the
    /// behaviour of every subsequent [`offer`](StreamPipeline::offer) — is
    /// exactly what the uninterrupted pipeline would have produced.
    pub fn restore(
        bytes: &[u8],
        dir: &'d DeviceDirectory,
        segs: &dyn SegmentStore,
    ) -> Result<Self, StreamError> {
        let payload = check_crc(bytes, CKPT_STREAM_MAGIC.len() + 1)?;
        if payload[..2] != CKPT_STREAM_MAGIC {
            return Err(StreamError::BadMagic);
        }
        if payload[2] != CKPT_STREAM_VERSION {
            return Err(StreamError::BadVersion(payload[2]));
        }
        let mut pos = 3usize;
        let window_ms = read_varint(payload, &mut pos)?;
        let lateness_ms = read_varint(payload, &mut pos)?;
        let hot_windows: usize = narrow(read_varint(payload, &mut pos)?, "hot_windows")?;
        let late_flush = read_varint(payload, &mut pos)?;
        let virtual_shards: usize = narrow(read_varint(payload, &mut pos)?, "virtual_shards")?;
        let collector_lateness = read_varint(payload, &mut pos)?;
        let store = StoreConfig {
            bucket_ms: read_varint(payload, &mut pos)?,
            rollup_buckets: narrow(read_varint(payload, &mut pos)?, "rollup_buckets")?,
            partitions: narrow(read_varint(payload, &mut pos)?, "partitions")?,
            auto_compact_every: read_varint(payload, &mut pos)?,
        };
        let cfg = StreamConfig {
            window_ms,
            lateness_ms,
            hot_windows,
            late_flush,
            collector: CollectorConfig {
                virtual_shards,
                lateness: SimDuration::from_millis(collector_lateness),
                ..CollectorConfig::default()
            },
            store,
        };
        cfg.validate()?;
        let cursor = read_varint(payload, &mut pos)?;
        let sealed_before = read_varint(payload, &mut pos)?;
        let late_seq = read_varint(payload, &mut pos)?;
        let mut cfields = [0u64; 9];
        for c in cfields.iter_mut() {
            *c = read_varint(payload, &mut pos)?;
        }
        let counters = counters_from_fields(cfields);

        let ck_len: usize = narrow(read_varint(payload, &mut pos)?, "collector length")?;
        let collector = restore_checkpoint(take(payload, &mut pos, ck_len)?)?;
        let manifest = decode_manifest(payload, &mut pos)?;

        let npending: usize = narrow(read_varint(payload, &mut pos)?, "pending count")?;
        if npending > payload.len().saturating_sub(pos) / 2 + 1 {
            return Err(StreamError::Malformed("pending count"));
        }
        let mut pending = BTreeMap::new();
        let mut prev: Option<u64> = None;
        for _ in 0..npending {
            let w = read_varint(payload, &mut pos)?;
            if w < sealed_before || prev.is_some_and(|p| w <= p) {
                return Err(StreamError::Malformed("pending window order"));
            }
            prev = Some(w);
            let len: usize = narrow(read_varint(payload, &mut pos)?, "pending image length")?;
            let delta = restore_store(take(payload, &mut pos, len)?)?;
            if *delta.config() != cfg.store {
                return Err(StreamError::Malformed("pending window store config"));
            }
            pending.insert(w, delta);
        }
        let late_len: usize = narrow(read_varint(payload, &mut pos)?, "late image length")?;
        let late = restore_store(take(payload, &mut pos, late_len)?)?;
        if *late.config() != cfg.store {
            return Err(StreamError::Malformed("late lane store config"));
        }
        if pos != payload.len() {
            return Err(StreamError::TrailingBytes);
        }

        let mut p = StreamPipeline {
            cfg,
            dir,
            collector,
            cursor,
            sealed_before,
            pending,
            late,
            late_seq,
            base: Store::new(&cfg.store),
            hot: Default::default(),
            manifest: Vec::with_capacity(manifest.len()),
            counters: StreamCounters::default(),
        };
        // Replay the manifest in seal order, verifying each segment
        // against its entry; this reproduces the hot/base tier split.
        for entry in manifest {
            let seg_bytes = segs.get(&entry.name())?;
            let (got, delta) = decode_segment(&seg_bytes)?;
            if got != entry || *delta.config() != cfg.store {
                return Err(StreamError::SegmentMismatch(entry.name()));
            }
            p.manifest.push(entry);
            p.tier_insert(entry, delta, false);
        }
        p.counters = counters;
        p.counters.restores += 1;
        Ok(p)
    }
}

fn counters_fields(c: &StreamCounters) -> [u64; 9] {
    [
        c.batches,
        c.records,
        c.late_records,
        c.windows_sealed,
        c.empty_windows,
        c.late_segments,
        c.segments_persisted,
        c.base_folds,
        c.restores,
    ]
}

fn counters_from_fields(f: [u64; 9]) -> StreamCounters {
    StreamCounters {
        batches: f[0],
        records: f[1],
        late_records: f[2],
        windows_sealed: f[3],
        empty_windows: f[4],
        late_segments: f[5],
        segments_persisted: f[6],
        base_folds: f[7],
        restores: f[8],
    }
}
