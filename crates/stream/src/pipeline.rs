//! The continuously running pipeline: collector → windows → tiers.

use crate::segment::{encode_segment, SegmentEntry, SegmentKind, SegmentStore};
use crate::StreamError;
use cellrel_analysis::store_tables::{table1_from_store, table2_from_store};
use cellrel_analysis::table1::Table1;
use cellrel_analysis::table2::Table2;
use cellrel_ingest::{AcceptedSink, Collector, CollectorConfig};
use cellrel_sim::Merge;
use cellrel_store::{DeviceDirectory, QueryError, Store, StoreConfig};
use cellrel_types::FailureEvent;
use std::collections::{BTreeMap, VecDeque};

/// Stream tuning knobs. Window geometry is part of the deterministic
/// state; runtime knobs (hot-tier depth) never change answers or digests.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Width of one event-time window in ms. Must be a positive multiple
    /// of `store.bucket_ms` so window seals land on bucket edges and the
    /// store's rollup compaction stays window-transparent.
    pub window_ms: u64,
    /// Bounded out-of-orderness: a window seals once the collector
    /// watermark exceeds its end by this much.
    pub lateness_ms: u64,
    /// Sealed segments kept in the hot in-memory tier before folding into
    /// the compacted base tier. Purely a memory/latency knob.
    pub hot_windows: usize,
    /// Flush the late lane as its own segment once it holds this many
    /// records (0 = only flush at end of stream).
    pub late_flush: u64,
    /// Collector (sharding, dedup, lateness accounting) configuration.
    pub collector: CollectorConfig,
    /// Store (bucketing, rollup, partitioning) configuration.
    pub store: StoreConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            // One store bucket (a day) per window; seal after six hours of
            // watermark progress beyond the window end.
            window_ms: 86_400_000,
            lateness_ms: 6 * 3_600_000,
            hot_windows: 4,
            late_flush: 4_096,
            collector: CollectorConfig::default(),
            store: StoreConfig::default(),
        }
    }
}

impl StreamConfig {
    /// Check the window/bucket alignment constraint.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.window_ms == 0 {
            return Err(StreamError::Config("window_ms must be positive"));
        }
        if self.store.bucket_ms == 0 || self.window_ms % self.store.bucket_ms != 0 {
            return Err(StreamError::Config(
                "window_ms must be a positive multiple of store.bucket_ms",
            ));
        }
        Ok(())
    }
}

/// Deterministic stream bookkeeping; serialized in the checkpoint, so a
/// restarted run reports the same numbers as an uninterrupted one
/// (`restores` excepted — it counts actual restarts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounters {
    /// Batches offered to the pipeline.
    pub batches: u64,
    /// Records accepted by the collector and routed into windows.
    pub records: u64,
    /// Accepted records that arrived for an already-sealed window.
    pub late_records: u64,
    /// Time windows sealed into segments.
    pub windows_sealed: u64,
    /// Watermark-passed windows that held no records (no segment written).
    pub empty_windows: u64,
    /// Late-lane flush segments written.
    pub late_segments: u64,
    /// Segments persisted to the backend (windows + late flushes).
    pub segments_persisted: u64,
    /// Hot-tier segments folded into the compacted base tier.
    pub base_folds: u64,
    /// Times this pipeline state was rebuilt from a checkpoint.
    pub restores: u64,
}

/// Routes accepted records into pending windows or the late lane while a
/// batch is being decoded inside the collector.
struct WindowRouter<'a> {
    window_ms: u64,
    sealed_before: u64,
    store_cfg: StoreConfig,
    dir: &'a DeviceDirectory,
    pending: &'a mut BTreeMap<u64, Store>,
    late: &'a mut Store,
    counters: &'a mut StreamCounters,
}

impl AcceptedSink for WindowRouter<'_> {
    fn accepted(&mut self, e: &FailureEvent) {
        self.counters.records += 1;
        let dim = self.dir.dim_of(e.device);
        let w = e.start.as_millis() / self.window_ms;
        if w < self.sealed_before {
            self.counters.late_records += 1;
            self.late.record(e, dim);
        } else {
            self.pending
                .entry(w)
                .or_insert_with(|| Store::new(&self.store_cfg))
                .record(e, dim);
        }
    }
}

/// The continuously running pipeline. Feed it encoded batches with
/// [`offer`](StreamPipeline::offer); it seals windows as the watermark
/// advances and [`flush`](StreamPipeline::flush) drains the rest at end
/// of stream. All state is deterministic: two pipelines fed the same
/// batch sequence are equal field-for-field, and
/// [`checkpoint`](StreamPipeline::checkpoint) /
/// [`restore`](StreamPipeline::restore) round-trip that state exactly.
pub struct StreamPipeline<'d> {
    pub(crate) cfg: StreamConfig,
    pub(crate) dir: &'d DeviceDirectory,
    pub(crate) collector: Collector,
    /// Batches consumed so far; the replay position after a restore.
    pub(crate) cursor: u64,
    /// First window index not yet sealed.
    pub(crate) sealed_before: u64,
    /// Open windows: index → that window's store delta.
    pub(crate) pending: BTreeMap<u64, Store>,
    /// Records that arrived after their window sealed.
    pub(crate) late: Store,
    /// Sequence number for late-lane flush segments.
    pub(crate) late_seq: u64,
    /// Compacted fold of segments evicted from the hot tier.
    pub(crate) base: Store,
    /// Most recent sealed segments, newest at the back.
    pub(crate) hot: VecDeque<(SegmentEntry, Store)>,
    /// Every segment ever sealed, in seal order.
    pub(crate) manifest: Vec<SegmentEntry>,
    pub(crate) counters: StreamCounters,
}

impl<'d> StreamPipeline<'d> {
    /// A fresh pipeline over a device directory.
    pub fn new(cfg: &StreamConfig, dir: &'d DeviceDirectory) -> Result<Self, StreamError> {
        cfg.validate()?;
        Ok(StreamPipeline {
            cfg: *cfg,
            dir,
            collector: Collector::new(&cfg.collector),
            cursor: 0,
            sealed_before: 0,
            pending: BTreeMap::new(),
            late: Store::new(&cfg.store),
            late_seq: 0,
            base: Store::new(&cfg.store),
            hot: VecDeque::new(),
            manifest: Vec::new(),
            counters: StreamCounters::default(),
        })
    }

    /// Offer one encoded batch. Accepted records route into windows; any
    /// window whose end the watermark has passed by the lateness bound is
    /// sealed into a segment. Returns the entries sealed by this call.
    pub fn offer(
        &mut self,
        bytes: &[u8],
        segs: &mut dyn SegmentStore,
    ) -> Result<Vec<SegmentEntry>, StreamError> {
        let mut router = WindowRouter {
            window_ms: self.cfg.window_ms,
            sealed_before: self.sealed_before,
            store_cfg: self.cfg.store,
            dir: self.dir,
            pending: &mut self.pending,
            late: &mut self.late,
            counters: &mut self.counters,
        };
        self.collector.ingest_with(bytes, &mut router);
        self.cursor += 1;
        self.counters.batches += 1;
        self.advance(segs)
    }

    /// Seal every window the watermark has passed, then flush the late
    /// lane if it hit its capacity.
    fn advance(&mut self, segs: &mut dyn SegmentStore) -> Result<Vec<SegmentEntry>, StreamError> {
        let wm = self.collector.watermark_ms();
        let bound = wm.saturating_sub(self.cfg.lateness_ms) / self.cfg.window_ms;
        let mut sealed = Vec::new();
        while self.sealed_before < bound {
            let w = self.sealed_before;
            self.sealed_before = w + 1;
            match self.pending.remove(&w) {
                Some(delta) => {
                    sealed.push(self.seal(SegmentKind::Window, w, wm, delta, segs)?);
                    self.counters.windows_sealed += 1;
                }
                None => self.counters.empty_windows += 1,
            }
        }
        if self.cfg.late_flush > 0 && self.late.inserted() >= self.cfg.late_flush {
            sealed.push(self.flush_late(segs)?);
        }
        Ok(sealed)
    }

    /// End of stream: seal all still-open windows (watermark regardless)
    /// and flush a non-empty late lane.
    pub fn flush(&mut self, segs: &mut dyn SegmentStore) -> Result<Vec<SegmentEntry>, StreamError> {
        let wm = self.collector.watermark_ms();
        let mut sealed = Vec::new();
        let open: Vec<u64> = self.pending.keys().copied().collect();
        for w in open {
            let delta = self.pending.remove(&w).expect("listed window is pending");
            sealed.push(self.seal(SegmentKind::Window, w, wm, delta, segs)?);
            self.counters.windows_sealed += 1;
            self.sealed_before = self.sealed_before.max(w + 1);
        }
        if self.late.inserted() > 0 {
            sealed.push(self.flush_late(segs)?);
        }
        Ok(sealed)
    }

    fn flush_late(&mut self, segs: &mut dyn SegmentStore) -> Result<SegmentEntry, StreamError> {
        let delta = std::mem::replace(&mut self.late, Store::new(&self.cfg.store));
        let wm = self.collector.watermark_ms();
        let seq = self.late_seq;
        self.late_seq += 1;
        let entry = self.seal(SegmentKind::Late, seq, wm, delta, segs)?;
        self.counters.late_segments += 1;
        Ok(entry)
    }

    /// Persist one delta as a segment, append it to the manifest, and slot
    /// it into the hot tier (folding the oldest into base when over depth).
    fn seal(
        &mut self,
        kind: SegmentKind,
        index: u64,
        watermark_ms: u64,
        mut delta: Store,
        segs: &mut dyn SegmentStore,
    ) -> Result<SegmentEntry, StreamError> {
        // Sealed windows are immutable from here on: flip the delta to the
        // columnar layout so both the persisted segment image and the hot
        // tier scan columnar. Pure layout change — digest, inserted count,
        // and every query answer are invariant (the store's differential
        // suite proves it), so the header cross-checks below still hold.
        delta.seal_columnar();
        let mut entry = SegmentEntry {
            kind,
            index,
            watermark_ms,
            records: delta.inserted(),
            digest: delta.digest(),
            bytes: 0,
        };
        let bytes = encode_segment(&entry, &delta);
        entry.bytes = bytes.len() as u64;
        segs.put(&entry.name(), &bytes)?;
        self.counters.segments_persisted += 1;
        self.manifest.push(entry);
        self.tier_insert(entry, delta, true);
        Ok(entry)
    }

    /// Push a sealed delta into the hot tier, folding overflow into the
    /// compacted base. `count` is false when rebuilding from a checkpoint
    /// (the restored counters already include those folds).
    pub(crate) fn tier_insert(&mut self, entry: SegmentEntry, delta: Store, count: bool) {
        self.hot.push_back((entry, delta));
        while self.hot.len() > self.cfg.hot_windows.max(1) {
            let (_, old) = self.hot.pop_front().expect("hot tier is non-empty");
            self.base.merge(old);
            self.base.compact();
            if count {
                self.counters.base_folds += 1;
            }
        }
    }

    /// The merged queryable view: base + hot + pending + late, with the
    /// device population registered. Content-identical to the batch store
    /// over the same accepted records, at any point in the stream.
    pub fn store(&self) -> Store {
        let mut s = self.base.clone();
        for (_, seg) in &self.hot {
            s.merge(seg.clone());
        }
        for delta in self.pending.values() {
            s.merge(delta.clone());
        }
        s.merge(self.late.clone());
        s.register_population(self.dir);
        s
    }

    /// Canonical digest of the merged view (layout- and tier-invariant).
    pub fn digest(&self) -> u64 {
        self.store().digest()
    }

    /// Incremental Tables 1/2 from the merged view — byte-identical to the
    /// batch `store_tables` output over the same accepted records.
    pub fn tables(&self, k: usize) -> Result<(Table1, Table2), QueryError> {
        let s = self.store();
        Ok((table1_from_store(&s)?, table2_from_store(&s, k)?))
    }

    /// The stream configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The device directory the pipeline resolves dimensions from.
    pub fn directory(&self) -> &'d DeviceDirectory {
        self.dir
    }

    /// Batches consumed so far — the replay position after a restore.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// First window index not yet sealed.
    pub fn sealed_before(&self) -> u64 {
        self.sealed_before
    }

    /// Open (unsealed) windows currently holding records.
    pub fn pending_windows(&self) -> usize {
        self.pending.len()
    }

    /// Records currently waiting in the late lane.
    pub fn late_pending(&self) -> u64 {
        self.late.inserted()
    }

    /// The collector's event-time watermark, ms.
    pub fn watermark_ms(&self) -> u64 {
        self.collector.watermark_ms()
    }

    /// Content digest of the embedded collector state.
    pub fn collector_digest(&self) -> u64 {
        self.collector.digest()
    }

    /// Every segment sealed so far, in seal order.
    pub fn manifest(&self) -> &[SegmentEntry] {
        &self.manifest
    }

    /// The manifest entries sealed at position `from` and later — the
    /// replication export hook: a shard leader tracks how many entries it
    /// has shipped and fetches the suffix to forward (or to answer a
    /// follower's catch-up request). `from` past the end is an empty
    /// suffix, not an error.
    pub fn manifest_suffix(&self, from: usize) -> &[SegmentEntry] {
        self.manifest.get(from..).unwrap_or(&[])
    }

    /// Fetch one sealed segment's frame bytes from the backend for
    /// shipping, cross-checked against the manifest entry (kind, index,
    /// watermark, records, digest) so a corrupted backend is a typed
    /// error at export time, not a diverging follower later.
    pub fn export_segment(
        &self,
        entry: &SegmentEntry,
        segs: &dyn SegmentStore,
    ) -> Result<Vec<u8>, StreamError> {
        let bytes = segs.get(&entry.name())?;
        let (decoded, _) = crate::segment::decode_segment(&bytes)?;
        if decoded != *entry {
            return Err(StreamError::SegmentMismatch(entry.name()));
        }
        Ok(bytes)
    }

    /// Stream bookkeeping counters.
    pub fn counters(&self) -> &StreamCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{MemSegments, SegmentKind};
    use cellrel_ingest::encode_batch;
    use cellrel_store::StoreSink;
    use cellrel_types::{
        Apn, DeviceId, FailureKind, InSituInfo, Isp, Rat, SignalLevel, SimDuration, SimTime,
    };

    /// Small geometry: 1 s buckets, 4-bucket rollups, 4 s windows — every
    /// window edge is also a rollup-granularity edge.
    fn small_cfg() -> StreamConfig {
        StreamConfig {
            window_ms: 4_000,
            lateness_ms: 0,
            hot_windows: 2,
            late_flush: 0,
            collector: CollectorConfig {
                virtual_shards: 8,
                ..CollectorConfig::default()
            },
            store: StoreConfig {
                bucket_ms: 1_000,
                rollup_buckets: 4,
                partitions: 4,
                auto_compact_every: 0,
            },
        }
    }

    fn evt(device: u32, ms: u64) -> FailureEvent {
        FailureEvent {
            device: DeviceId(device),
            kind: FailureKind::DataStall,
            start: SimTime::from_millis(ms),
            duration: SimDuration::from_millis(700),
            cause: None,
            ctx: InSituInfo {
                rat: Rat::G4,
                signal: SignalLevel::L3,
                apn: Apn::Internet,
                bs: None,
                isp: Isp::A,
            },
        }
    }

    fn batch(device: u32, seq: u64, times_ms: &[u64]) -> Vec<u8> {
        let records: Vec<FailureEvent> = times_ms.iter().map(|&t| evt(device, t)).collect();
        encode_batch(DeviceId(device), seq, &records)
    }

    #[test]
    fn misaligned_window_is_a_config_error() {
        let dir = DeviceDirectory::default();
        for bad_window in [0u64, 1_500, 3_999] {
            let cfg = StreamConfig {
                window_ms: bad_window,
                ..small_cfg()
            };
            assert!(
                matches!(StreamPipeline::new(&cfg, &dir), Err(StreamError::Config(_))),
                "window_ms={bad_window} must be rejected"
            );
        }
    }

    /// Boundary alignment: an event timestamped **exactly** on a window
    /// edge belongs to the window starting there — sealing at a watermark
    /// on the edge neither drops it nor counts it in both windows.
    #[test]
    fn window_edge_event_lands_in_exactly_one_window() {
        let dir = DeviceDirectory::default();
        let mut segs = MemSegments::new();
        let mut p = StreamPipeline::new(&small_cfg(), &dir).expect("valid config");

        assert_eq!(p.offer(&batch(0, 0, &[1_000]), &mut segs).unwrap(), vec![]);
        // t=4000 sits exactly on the window-0/window-1 edge (which is also
        // a rollup edge): the watermark seals window 0 without it.
        let sealed = p.offer(&batch(0, 1, &[4_000]), &mut segs).unwrap();
        assert_eq!(sealed.len(), 1);
        assert_eq!((sealed[0].index, sealed[0].records), (0, 1));
        assert_eq!(p.pending_windows(), 1, "edge event is pending in window 1");

        // Watermark past the next edge: window 1 seals with only the edge
        // event — once, not zero times, not twice.
        let sealed = p.offer(&batch(1, 0, &[8_000]), &mut segs).unwrap();
        assert_eq!(sealed.len(), 1);
        assert_eq!((sealed[0].index, sealed[0].records), (1, 1));

        p.flush(&mut segs).unwrap();
        assert_eq!(p.counters().records, 3);
        assert_eq!(p.store().inserted(), 3, "every record exactly once");
    }

    /// The merged view equals the batch store over the same batches, with
    /// seals landing exactly on rollup-granularity edges throughout.
    #[test]
    fn merged_view_matches_batch_store_across_edge_seals() {
        let cfg = small_cfg();
        let dir = DeviceDirectory::default();
        let batches: Vec<Vec<u8>> = (0..12u64)
            .map(|i| {
                let dev = (i % 3) as u32;
                // Timestamps hit window edges (multiples of 4000) half the
                // time, interior offsets otherwise.
                let t0 = i * 2_000;
                batch(dev, i / 3, &[t0, t0 + 2_000])
            })
            .collect();

        let mut segs = MemSegments::new();
        let mut p = StreamPipeline::new(&cfg, &dir).expect("valid config");
        for b in &batches {
            p.offer(b, &mut segs).unwrap();
        }
        p.flush(&mut segs).unwrap();

        let mut collector = Collector::new(&cfg.collector);
        let mut sink = StoreSink::new(&cfg.store, &dir);
        for b in &batches {
            collector.ingest_with(b, &mut sink);
        }
        let batch_store = sink.into_store();

        assert_eq!(p.digest(), batch_store.digest());
        assert_eq!(p.store().inserted(), batch_store.inserted());
        assert_eq!(p.collector_digest(), collector.digest());
        assert!(p.counters().windows_sealed > 0);
    }

    /// Records arriving for an already-sealed window route to the late
    /// lane and flush as a `Late` segment — never dropped.
    #[test]
    fn late_records_flow_through_the_late_lane() {
        let dir = DeviceDirectory::default();
        let mut segs = MemSegments::new();
        let mut p = StreamPipeline::new(&small_cfg(), &dir).expect("valid config");

        p.offer(&batch(0, 0, &[5_000]), &mut segs).unwrap();
        assert_eq!(p.sealed_before(), 1);
        assert_eq!(p.counters().empty_windows, 1, "window 0 sealed empty");

        // A different device reports a record from the sealed window 0.
        p.offer(&batch(1, 0, &[100]), &mut segs).unwrap();
        assert_eq!(p.counters().late_records, 1);
        assert_eq!(p.late_pending(), 1);

        p.flush(&mut segs).unwrap();
        let kinds: Vec<SegmentKind> = p.manifest().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![SegmentKind::Window, SegmentKind::Late]);
        assert_eq!(p.store().inserted(), 2, "late record preserved");
        assert_eq!(p.counters().late_segments, 1);
    }

    /// Checkpoint → restore mid-stream, then continue both pipelines:
    /// every observable ends identical.
    #[test]
    fn restore_mid_stream_is_digest_transparent() {
        let cfg = StreamConfig {
            hot_windows: 1, // force base-tier folds
            ..small_cfg()
        };
        let dir = DeviceDirectory::default();
        let batches: Vec<Vec<u8>> = (0..16u64)
            .map(|i| batch((i % 4) as u32, i / 4, &[i * 1_500, i * 1_500 + 300]))
            .collect();

        let mut segs = MemSegments::new();
        let mut live = StreamPipeline::new(&cfg, &dir).expect("valid config");
        for b in &batches[..9] {
            live.offer(b, &mut segs).unwrap();
        }
        let ckpt = live.checkpoint();

        let mut restored = StreamPipeline::restore(&ckpt, &dir, &segs).expect("restores");
        assert_eq!(restored.cursor(), 9);
        assert_eq!(restored.counters().restores, 1);
        assert_eq!(restored.digest(), live.digest());

        let mut segs2 = segs.clone();
        for b in &batches[9..] {
            live.offer(b, &mut segs).unwrap();
            restored.offer(b, &mut segs2).unwrap();
        }
        live.flush(&mut segs).unwrap();
        restored.flush(&mut segs2).unwrap();

        assert_eq!(restored.digest(), live.digest());
        assert_eq!(restored.collector_digest(), live.collector_digest());
        assert_eq!(restored.manifest(), live.manifest());
        assert_eq!(segs, segs2, "persisted segment bytes identical");
        let mut rc = *restored.counters();
        rc.restores = 0;
        assert_eq!(rc, *live.counters());
        assert!(live.counters().base_folds > 0, "base tier was exercised");
    }
}
