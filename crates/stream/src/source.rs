//! Turning a study's event log into a live-ordered batch stream.

use cellrel_ingest::encode_batch;
use cellrel_types::{DeviceId, FailureEvent};
use std::collections::BTreeMap;

/// Encode `events` as per-device upload batches (at most `cap` records
/// each, per-device sequence numbers from 0) and order them by **upload
/// time** — the newest record in each batch, device id as tie-break — the
/// way a live fleet's uploads interleave at the collector. Unlike the
/// device-ordered replay the batch bins use, this ordering advances the
/// event-time watermark monotonically with bounded out-of-orderness, so
/// it exercises window sealing and the late lane realistically.
pub fn batches_from_events(events: &[FailureEvent], cap: usize) -> Vec<Vec<u8>> {
    let cap = cap.max(1);
    let mut per_device: BTreeMap<u32, Vec<FailureEvent>> = BTreeMap::new();
    for e in events {
        per_device.entry(e.device.0).or_default().push(*e);
    }
    // (upload_ms, device, seq) totally orders the batches.
    let mut batches: Vec<(u64, u32, u64, Vec<u8>)> = Vec::new();
    for (device, mut evs) in per_device {
        evs.sort_by_key(|e| e.start.as_millis());
        for (seq, chunk) in evs.chunks(cap).enumerate() {
            let upload_ms = chunk
                .last()
                .expect("chunks are non-empty")
                .start
                .as_millis();
            let bytes = encode_batch(DeviceId(device), seq as u64, chunk);
            batches.push((upload_ms, device, seq as u64, bytes));
        }
    }
    batches.sort_by_key(|a| (a.0, a.1, a.2));
    batches.into_iter().map(|(_, _, _, b)| b).collect()
}
