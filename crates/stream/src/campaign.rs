//! Kill/restart fault campaign: crash-transparency as an invariant.
//!
//! For each kill point the campaign runs the pipeline up to a random
//! batch, keeps only what would survive a crash — the latest durable
//! checkpoint and the persisted segments — drops the live pipeline,
//! restores from the checkpoint, replays the remaining batches from the
//! restored cursor, and compares **everything observable** against an
//! uninterrupted run over the same batch stream: final store digest,
//! collector digest, Tables 1/2 renders, the full segment manifest, and
//! the stream counters. Any divergence — a record lost at the kill, a
//! window double-sealed on replay, a tier rebuilt wrong — fails that kill.

use crate::pipeline::{StreamConfig, StreamCounters, StreamPipeline};
use crate::segment::{MemSegments, SegmentEntry};
use crate::StreamError;
use cellrel_sim::{Digest64, SimRng};
use cellrel_store::DeviceDirectory;

/// Campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct KillRestartConfig {
    /// Kill points to sample (each is an independent run).
    pub kills: usize,
    /// RNG seed for kill-point selection.
    pub seed: u64,
    /// Checkpoint every N offered batches in addition to every seal
    /// (0 = checkpoint only at seals). Mid-window kills need a non-seal
    /// cadence to land on a checkpoint with open windows.
    pub checkpoint_every: u64,
}

impl Default for KillRestartConfig {
    fn default() -> Self {
        KillRestartConfig {
            kills: 32,
            seed: 2021,
            checkpoint_every: 5,
        }
    }
}

/// What one kill/restart run observed.
#[derive(Debug, Clone)]
pub struct KillOutcome {
    /// Batch index the kill landed after.
    pub kill_at: u64,
    /// Cursor the durable checkpoint put the restored pipeline at (≤
    /// `kill_at`; batches between were re-offered and deduped upstream).
    pub restored_cursor: u64,
    /// The restored checkpoint held open (unsealed) windows.
    pub mid_window: bool,
    /// All final state matched the uninterrupted run.
    pub ok: bool,
    /// What diverged, when `ok` is false.
    pub detail: String,
}

/// Campaign verdict.
#[derive(Debug, Clone)]
pub struct KillRestartReport {
    /// Per-kill outcomes, in sampling order.
    pub outcomes: Vec<KillOutcome>,
    /// Uninterrupted-run final store digest all kills must reproduce.
    pub baseline_digest: u64,
    /// Uninterrupted-run manifest length (windows + late segments).
    pub baseline_segments: u64,
    /// Kills whose restore point held an open window.
    pub mid_window_kills: u64,
    /// Kills that diverged.
    pub failures: u64,
    /// Content digest over the whole campaign (CI reruns compare this).
    pub digest: u64,
}

struct Baseline {
    digest: u64,
    collector_digest: u64,
    manifest: Vec<SegmentEntry>,
    counters: StreamCounters,
    t1: String,
    t2: String,
}

fn run_to_end(
    cfg: &StreamConfig,
    dir: &DeviceDirectory,
    batches: &[Vec<u8>],
) -> Result<Baseline, StreamError> {
    let mut segs = MemSegments::new();
    let mut p = StreamPipeline::new(cfg, dir)?;
    for b in batches {
        p.offer(b, &mut segs)?;
    }
    p.flush(&mut segs)?;
    let (t1, t2) = p
        .tables(10)
        .map_err(|_| StreamError::Malformed("table query"))?;
    Ok(Baseline {
        digest: p.digest(),
        collector_digest: p.collector_digest(),
        manifest: p.manifest().to_vec(),
        counters: *p.counters(),
        t1: t1.render(),
        t2: t2.render(),
    })
}

/// Run the campaign. Deterministic: the same `(cfg, kcfg, batches)` yield
/// the same report digest at any thread count (the campaign is
/// sequential) and across reruns.
pub fn run_kill_restart(
    cfg: &StreamConfig,
    kcfg: &KillRestartConfig,
    dir: &DeviceDirectory,
    batches: &[Vec<u8>],
) -> Result<KillRestartReport, StreamError> {
    if batches.len() < 2 {
        return Err(StreamError::Config(
            "kill campaign needs at least 2 batches",
        ));
    }
    let base = run_to_end(cfg, dir, batches)?;
    let mut rng = SimRng::new(kcfg.seed);
    let mut outcomes = Vec::with_capacity(kcfg.kills);
    let mut mid_window_kills = 0u64;
    let mut failures = 0u64;
    for _ in 0..kcfg.kills {
        let kill_at = rng.range_u64(1, batches.len() as u64);
        let outcome = one_kill(cfg, kcfg, dir, batches, kill_at, &base)?;
        mid_window_kills += u64::from(outcome.mid_window);
        failures += u64::from(!outcome.ok);
        outcomes.push(outcome);
    }
    let mut d = Digest64::new();
    d.write_u64(base.digest);
    d.write_u64(base.collector_digest);
    d.write_u64(base.manifest.len() as u64);
    for o in &outcomes {
        d.write_u64(o.kill_at);
        d.write_u64(o.restored_cursor);
        d.write_u64(u64::from(o.mid_window));
        d.write_u64(u64::from(o.ok));
    }
    Ok(KillRestartReport {
        outcomes,
        baseline_digest: base.digest,
        baseline_segments: base.manifest.len() as u64,
        mid_window_kills,
        failures,
        digest: d.finish(),
    })
}

fn one_kill(
    cfg: &StreamConfig,
    kcfg: &KillRestartConfig,
    dir: &DeviceDirectory,
    batches: &[Vec<u8>],
    kill_at: u64,
    base: &Baseline,
) -> Result<KillOutcome, StreamError> {
    // Phase 1: live until the kill. Only `durable` (the latest checkpoint
    // blob) and `segs` (persisted segments) survive the drop below.
    let mut segs = MemSegments::new();
    let mut p = StreamPipeline::new(cfg, dir)?;
    let mut durable = p.checkpoint();
    for (i, b) in batches[..kill_at as usize].iter().enumerate() {
        let sealed = p.offer(b, &mut segs)?;
        let cadence = kcfg.checkpoint_every > 0 && (i as u64 + 1) % kcfg.checkpoint_every == 0;
        if !sealed.is_empty() || cadence {
            durable = p.checkpoint();
        }
    }
    drop(p); // the crash: all live state is gone

    // Phase 2: restore and replay the un-checkpointed suffix. Windows the
    // pre-kill run sealed after the checkpoint get resealed on replay;
    // determinism makes the rewritten segment bytes identical, and
    // `SegmentStore::put` overwrites idempotently.
    let mut r = StreamPipeline::restore(&durable, dir, &segs)?;
    let restored_cursor = r.cursor();
    let mid_window = r.pending_windows() > 0;
    for b in &batches[restored_cursor as usize..] {
        r.offer(b, &mut segs)?;
    }
    r.flush(&mut segs)?;

    let (t1, t2) = r
        .tables(10)
        .map_err(|_| StreamError::Malformed("table query"))?;
    let mut replay_counters = *r.counters();
    replay_counters.restores = 0;
    let mut detail = String::new();
    if r.digest() != base.digest {
        detail = format!("store digest {:016x} != {:016x}", r.digest(), base.digest);
    } else if r.collector_digest() != base.collector_digest {
        detail = "collector digest diverged".to_string();
    } else if r.manifest() != &base.manifest[..] {
        detail = format!(
            "manifest diverged ({} segments vs {})",
            r.manifest().len(),
            base.manifest.len()
        );
    } else if t1.render() != base.t1 {
        detail = "table 1 diverged".to_string();
    } else if t2.render() != base.t2 {
        detail = "table 2 diverged".to_string();
    } else if replay_counters != base.counters {
        detail = format!(
            "counters diverged: {replay_counters:?} vs {:?}",
            base.counters
        );
    }
    Ok(KillOutcome {
        kill_at,
        restored_cursor,
        mid_window,
        ok: detail.is_empty(),
        detail,
    })
}
