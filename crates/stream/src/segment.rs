//! Tiered segment storage: CRC-framed persisted window deltas plus the
//! manifest that names them.
//!
//! A **segment** is one sealed store delta — the cells contributed by a
//! single time window (or one flush of the late lane) — wrapped in a
//! versioned frame: magic, header fields, the `cellrel-store` persistence
//! image, CRC-32 trailer. Segments are immutable once written and are
//! re-written idempotently on replay (a restart may reseal a window whose
//! segment already landed; the bytes are identical by determinism).
//!
//! The **manifest** is the ordered list of [`SegmentEntry`] headers, one
//! per seal, serialized inside the pipeline checkpoint. On restore every
//! entry is reloaded from the [`SegmentStore`] backend and cross-checked
//! against the manifest (kind, index, watermark, record count, digest) —
//! a missing or tampered segment is a typed error, not a wrong answer.

use crate::error::{check_crc, narrow, read_varint, take};
use crate::StreamError;
use cellrel_ingest::codec::{crc32, write_varint};
use cellrel_store::{restore_store, save_store, Store};
use std::collections::BTreeMap;

/// Magic bytes opening every segment frame.
pub const SEG_MAGIC: [u8; 2] = *b"SG";
/// Current segment frame schema version.
pub const SEG_VERSION: u8 = 1;

/// What a segment holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// One sealed time window's delta; `index` is the window index.
    Window,
    /// One flush of the late lane; `index` is the flush sequence number.
    Late,
}

impl SegmentKind {
    fn as_u8(self) -> u8 {
        match self {
            SegmentKind::Window => 0,
            SegmentKind::Late => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self, StreamError> {
        match v {
            0 => Ok(SegmentKind::Window),
            1 => Ok(SegmentKind::Late),
            _ => Err(StreamError::Malformed("segment kind")),
        }
    }
}

/// One manifest line: everything needed to name, reload, and verify a
/// persisted segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Window segment or late-lane flush.
    pub kind: SegmentKind,
    /// Window index (`start_ms / window_ms`) or late-flush sequence.
    pub index: u64,
    /// Collector watermark at seal time, ms.
    pub watermark_ms: u64,
    /// Records folded into the segment's delta.
    pub records: u64,
    /// `Store::digest` of the delta (canonical, layout-invariant).
    pub digest: u64,
    /// Encoded frame length in bytes (not part of the frame header).
    pub bytes: u64,
}

impl SegmentEntry {
    /// The backend name the segment persists under.
    pub fn name(&self) -> String {
        match self.kind {
            SegmentKind::Window => format!("w{:010}.seg", self.index),
            SegmentKind::Late => format!("l{:010}.seg", self.index),
        }
    }
}

/// Encode one sealed delta as a segment frame. The returned bytes are a
/// pure function of `(entry, store)` — replays overwrite identically.
pub fn encode_segment(entry: &SegmentEntry, store: &Store) -> Vec<u8> {
    let image = save_store(store);
    let mut out = Vec::with_capacity(image.len() + 32);
    out.extend_from_slice(&SEG_MAGIC);
    out.push(SEG_VERSION);
    out.push(entry.kind.as_u8());
    write_varint(&mut out, entry.index);
    write_varint(&mut out, entry.watermark_ms);
    write_varint(&mut out, entry.records);
    write_varint(&mut out, entry.digest);
    write_varint(&mut out, image.len() as u64);
    out.extend_from_slice(&image);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a segment frame back into its header and delta. Total: hostile
/// bytes yield a typed [`StreamError`]. The returned entry's `bytes` field
/// is the frame length.
pub fn decode_segment(bytes: &[u8]) -> Result<(SegmentEntry, Store), StreamError> {
    let payload = check_crc(bytes, SEG_MAGIC.len() + 2)?;
    if payload[..2] != SEG_MAGIC {
        return Err(StreamError::BadMagic);
    }
    if payload[2] != SEG_VERSION {
        return Err(StreamError::BadVersion(payload[2]));
    }
    let mut pos = 3usize;
    let kind = SegmentKind::from_u8(*payload.get(pos).ok_or(StreamError::Truncated)?)?;
    pos += 1;
    let index = read_varint(payload, &mut pos)?;
    let watermark_ms = read_varint(payload, &mut pos)?;
    let records = read_varint(payload, &mut pos)?;
    let digest = read_varint(payload, &mut pos)?;
    let image_len: usize = narrow(read_varint(payload, &mut pos)?, "segment image length")?;
    let image = take(payload, &mut pos, image_len)?;
    if pos != payload.len() {
        return Err(StreamError::TrailingBytes);
    }
    let store = restore_store(image)?;
    if store.inserted() != records || store.digest() != digest {
        return Err(StreamError::Malformed("segment header/image disagreement"));
    }
    let entry = SegmentEntry {
        kind,
        index,
        watermark_ms,
        records,
        digest,
        bytes: bytes.len() as u64,
    };
    Ok((entry, store))
}

/// Serialize a manifest (an ordered entry list) as a bare field sequence —
/// embedded in the pipeline checkpoint, which provides framing and CRC.
pub fn encode_manifest(entries: &[SegmentEntry], out: &mut Vec<u8>) {
    write_varint(out, entries.len() as u64);
    for e in entries {
        out.push(e.kind.as_u8());
        write_varint(out, e.index);
        write_varint(out, e.watermark_ms);
        write_varint(out, e.records);
        write_varint(out, e.digest);
        write_varint(out, e.bytes);
    }
}

/// Inverse of [`encode_manifest`]. Total; bounds entry count by the bytes
/// actually present so a lying length cannot balloon the allocation.
pub fn decode_manifest(bytes: &[u8], pos: &mut usize) -> Result<Vec<SegmentEntry>, StreamError> {
    let n: usize = narrow(read_varint(bytes, pos)?, "manifest length")?;
    // Each entry takes at least 6 bytes (kind + five 1-byte varints).
    if n > bytes.len().saturating_sub(*pos) / 6 + 1 {
        return Err(StreamError::Malformed("manifest length"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = SegmentKind::from_u8(*bytes.get(*pos).ok_or(StreamError::Truncated)?)?;
        *pos += 1;
        entries.push(SegmentEntry {
            kind,
            index: read_varint(bytes, pos)?,
            watermark_ms: read_varint(bytes, pos)?,
            records: read_varint(bytes, pos)?,
            digest: read_varint(bytes, pos)?,
            bytes: read_varint(bytes, pos)?,
        });
    }
    Ok(entries)
}

/// Where sealed segments persist. The pipeline only needs put-by-name and
/// get-by-name; `put` must overwrite idempotently (restart replays may
/// reseal a window whose segment already landed).
pub trait SegmentStore {
    /// Persist `bytes` under `name`, replacing any previous content.
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StreamError>;
    /// Fetch the bytes persisted under `name`.
    fn get(&self, name: &str) -> Result<Vec<u8>, StreamError>;
}

/// In-memory segment backend: the hot default for tests and campaigns,
/// and the stand-in for "durable storage that survives the kill".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemSegments {
    segments: BTreeMap<String, Vec<u8>>,
}

impl MemSegments {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Segments currently held.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segment has been persisted yet.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total persisted bytes across all segments.
    pub fn bytes(&self) -> u64 {
        self.segments.values().map(|v| v.len() as u64).sum()
    }

    /// Mutable access for fault injection in tests (bit flips, deletions).
    pub fn raw_mut(&mut self) -> &mut BTreeMap<String, Vec<u8>> {
        &mut self.segments
    }
}

impl SegmentStore for MemSegments {
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StreamError> {
        self.segments.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StreamError> {
        self.segments
            .get(name)
            .cloned()
            .ok_or_else(|| StreamError::SegmentMissing(name.to_string()))
    }
}

/// Filesystem segment backend: one file per segment under a directory.
/// Used by the long-running bins; writes go through a temp file + fsync +
/// rename + directory fsync, so a kill mid-write never leaves a torn
/// segment under its final name **and** a crash right after publish
/// cannot lose a segment the manifest already references (the rename
/// itself is only durable once the parent directory entry is synced).
#[derive(Debug, Clone)]
pub struct DirSegments {
    dir: std::path::PathBuf,
}

impl DirSegments {
    /// Open (creating if needed) a directory-backed segment store.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<Self, StreamError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StreamError::Io(e.to_string()))?;
        Ok(DirSegments { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

impl SegmentStore for DirSegments {
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StreamError> {
        use std::io::Write;
        let io = |e: std::io::Error| StreamError::Io(e.to_string());
        let tmp = self.dir.join(format!("{name}.tmp"));
        let fin = self.dir.join(name);
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        // Contents must hit stable storage before the rename publishes the
        // final name, and the rename must hit it before the caller records
        // the segment in its manifest — hence file fsync, rename, then
        // parent-directory fsync.
        f.sync_all().map_err(io)?;
        drop(f);
        std::fs::rename(&tmp, &fin).map_err(io)?;
        std::fs::File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(io)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StreamError> {
        match std::fs::read(self.dir.join(name)) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StreamError::SegmentMissing(name.to_string()))
            }
            Err(e) => Err(StreamError::Io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the durability hole the cluster replication path
    /// leans on: `put` must leave no `.tmp` residue under the final name's
    /// directory, survive overwrites, and round-trip bytes exactly. (The
    /// fsync-ordering property itself is not observable in-process; this
    /// pins the publish protocol around it.)
    #[test]
    fn dir_segments_publish_leaves_no_temp_residue() {
        let dir = std::env::temp_dir().join(format!("cellrel-dirsegs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut segs = DirSegments::open(&dir).expect("open");
        segs.put("w0000000001.seg", b"first").expect("put");
        segs.put("w0000000001.seg", b"second write wins")
            .expect("overwrite");
        segs.put("l0000000001.seg", b"late lane").expect("put");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "temp residue after publish: {names:?}"
        );
        assert_eq!(
            segs.get("w0000000001.seg").expect("get"),
            b"second write wins"
        );
        assert_eq!(segs.get("l0000000001.seg").expect("get"), b"late lane");
        assert!(matches!(
            segs.get("missing.seg"),
            Err(StreamError::SegmentMissing(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
