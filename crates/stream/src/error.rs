//! The one error type every fallible stream path returns.

use cellrel_ingest::DecodeError;
use cellrel_store::PersistError;

/// Why a stream operation failed. Decoding is **total**: hostile
/// checkpoint, segment, or manifest bytes map onto one of these variants,
/// never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A configuration constraint was violated (e.g. window width not a
    /// multiple of the store bucket width).
    Config(&'static str),
    /// Input ended before the frame said it would.
    Truncated,
    /// The frame does not start with the expected magic bytes.
    BadMagic,
    /// The frame's schema version is newer than this build understands.
    BadVersion(u8),
    /// The CRC-32 trailer does not match the payload.
    BadCrc { computed: u32, stored: u32 },
    /// A field decoded but its value is impossible.
    Malformed(&'static str),
    /// Bytes remained after a complete, CRC-valid frame.
    TrailingBytes,
    /// The embedded collector checkpoint failed to restore.
    Collector(DecodeError),
    /// An embedded store image failed to restore.
    Store(PersistError),
    /// The manifest names a segment the backend cannot produce.
    SegmentMissing(String),
    /// A reloaded segment disagrees with its manifest entry.
    SegmentMismatch(String),
    /// A filesystem-backed segment store hit an I/O error.
    Io(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Config(why) => write!(f, "bad stream config: {why}"),
            StreamError::Truncated => write!(f, "truncated stream frame"),
            StreamError::BadMagic => write!(f, "bad stream frame magic"),
            StreamError::BadVersion(v) => write!(f, "unsupported stream frame version {v}"),
            StreamError::BadCrc { computed, stored } => {
                write!(
                    f,
                    "stream frame crc mismatch: computed {computed:08x}, stored {stored:08x}"
                )
            }
            StreamError::Malformed(field) => write!(f, "malformed stream frame field: {field}"),
            StreamError::TrailingBytes => write!(f, "trailing bytes after stream frame"),
            StreamError::Collector(e) => write!(f, "collector checkpoint: {e}"),
            StreamError::Store(e) => write!(f, "store image: {e}"),
            StreamError::SegmentMissing(name) => write!(f, "segment missing from backend: {name}"),
            StreamError::SegmentMismatch(name) => {
                write!(f, "segment disagrees with manifest: {name}")
            }
            StreamError::Io(e) => write!(f, "segment backend i/o: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> Self {
        StreamError::Collector(e)
    }
}

impl From<PersistError> for StreamError {
    fn from(e: PersistError) -> Self {
        StreamError::Store(e)
    }
}

/// Read one varint, mapping codec errors onto stream errors.
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, StreamError> {
    cellrel_ingest::codec::read_varint(bytes, pos).map_err(|e| match e {
        DecodeError::Truncated => StreamError::Truncated,
        _ => StreamError::Malformed("varint"),
    })
}

/// Narrow a decoded `u64` into a smaller integer type.
pub(crate) fn narrow<T: TryFrom<u64>>(v: u64, field: &'static str) -> Result<T, StreamError> {
    T::try_from(v).map_err(|_| StreamError::Malformed(field))
}

/// Split a frame into payload and verified CRC-32 trailer. Checked before
/// any field parsing so field errors are only reported for intact frames.
pub(crate) fn check_crc(bytes: &[u8], min_len: usize) -> Result<&[u8], StreamError> {
    if bytes.len() < min_len + 4 {
        return Err(StreamError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = cellrel_ingest::codec::crc32(payload);
    if computed != stored {
        return Err(StreamError::BadCrc { computed, stored });
    }
    Ok(payload)
}

/// Take `len` bytes at `*pos`, advancing it.
pub(crate) fn take<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    len: usize,
) -> Result<&'a [u8], StreamError> {
    let end = pos.checked_add(len).ok_or(StreamError::Truncated)?;
    let s = bytes.get(*pos..end).ok_or(StreamError::Truncated)?;
    *pos = end;
    Ok(s)
}
