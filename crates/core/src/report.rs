//! Canonical single-device trace report.
//!
//! One fully simulated Android phone — radio scans, RAT selection, data-call
//! setups through the staged modem pipeline, injected stalls, the three-stage
//! recovery — rendered as the telephony event log the way Android-MOD sees
//! it, followed by the monitor's filtered dataset.
//!
//! The `device_trace` example prints this; `tests/golden_trace.rs` pins it
//! byte-for-byte at seed 2021 so that any change to event ordering, RNG
//! stream consumption, or formatting anywhere in the stack shows up as a
//! readable diff instead of a silent behaviour shift.

use crate::monitor::MonitoringService;
use crate::radio::{DeploymentConfig, RadioEnvironment};
use crate::sim::{EventQueue, SimRng};
use crate::telephony::{DeviceConfig, DeviceSim, RatPolicyKind, RecordingBoth, TelephonyEvent};
use crate::types::{DeviceId, Isp, Rat, RatSet, SimTime};
use std::fmt::Write as _;

/// Simulate one device for 24 h at `seed` and render the full trace report.
///
/// Deterministic: the same seed yields the same string on every platform
/// and at every thread count (the run is single-device, so threading never
/// enters into it).
pub fn device_trace_report(seed: u64) -> String {
    let mut rng = SimRng::new(seed);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);

    // A 5G phone living near (but not at) a city centre, with an elevated
    // stall hazard so a day-long run shows interesting behaviour. Note how
    // many injected stalls never reach the 1-minute vanilla detector: the
    // user's ~30 s patience fires first (exactly the §3.2 finding).
    let mut cfg = DeviceConfig::new(DeviceId(0), Isp::A, env.city_centers()[0]);
    cfg.home = cfg.home.offset(3.0, 1.0);
    cfg.rats = RatSet::up_to(Rat::G5);
    cfg.policy = RatPolicyKind::Android10;
    cfg.stall_rate_per_hour = 4.0;

    let listener = RecordingBoth::new(MonitoringService::new(DeviceId(0), rng.fork(1)));
    let mut queue = EventQueue::new();
    let mut dev = DeviceSim::new(cfg, &env, listener, rng.fork(2), &mut queue);
    let horizon = SimTime::from_secs(24 * 3600);
    queue.run_until(&mut dev, horizon);

    let stats = *dev.stats();
    let listener = dev.into_listener();

    let mut out = String::new();
    let _ = writeln!(out, "== raw telephony event log (first 40 events) ==");
    for (at, ev) in listener.log.iter().take(40) {
        let _ = writeln!(out, "[{at}] {}", describe(ev));
    }
    let _ = writeln!(out, "... {} events total\n", listener.log.len());

    let _ = writeln!(out, "== device counters ==\n{stats:#?}\n");

    let monitor = listener.inner;
    let _ = writeln!(out, "== Android-MOD view ==");
    let _ = writeln!(
        out,
        "events seen: {}, true failures recorded: {}, false positives filtered: {}",
        monitor.events_seen(),
        monitor.records().len(),
        monitor.fp_counters().total()
    );
    for rec in monitor.records().iter().take(15) {
        let _ = writeln!(
            out,
            "  [{}] {} dur={} rat={} level={} cause={}",
            rec.start,
            rec.kind,
            rec.duration,
            rec.ctx.rat,
            rec.ctx.signal,
            rec.cause
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    let _ = writeln!(
        out,
        "\noverhead: cpu {:.2}% of failure windows, mem {} B, storage {} B, network {} B",
        monitor.overhead().cpu_utilization() * 100.0,
        monitor.overhead().peak_memory_bytes(),
        monitor.overhead().storage_bytes(),
        monitor.overhead().network_bytes()
    );
    out
}

fn describe(ev: &TelephonyEvent) -> String {
    match ev {
        TelephonyEvent::DataSetupError { cause, ctx } => {
            format!(
                "Data_Setup_Error cause={cause} ({} {})",
                ctx.rat, ctx.signal
            )
        }
        TelephonyEvent::DataSetupSuccess { ctx } => {
            format!("data call up ({} {})", ctx.rat, ctx.signal)
        }
        TelephonyEvent::DataStallSuspected { condition, .. } => {
            format!("Data_Stall suspected (condition: {condition})")
        }
        TelephonyEvent::DataStallCleared { duration, .. } => {
            format!("Data_Stall cleared after {duration}")
        }
        TelephonyEvent::RecoveryActionExecuted { stage, fixed } => {
            format!("recovery stage {stage} executed (fixed: {fixed})")
        }
        TelephonyEvent::OutOfServiceBegan { .. } => "Out_of_Service began".into(),
        TelephonyEvent::OutOfServiceEnded { duration, .. } => {
            format!("Out_of_Service ended after {duration}")
        }
        TelephonyEvent::RatChanged { from, to } => match from {
            Some(f) => format!("RAT {f} -> {to}"),
            None => format!("camped on {to}"),
        },
        TelephonyEvent::ManualReset => "user reset data connection".into(),
        TelephonyEvent::VoiceCallInterruption => "voice call interrupted data".into(),
        TelephonyEvent::SmsSendFailed => "SMS send failed".into(),
        TelephonyEvent::VoiceSetupFailed => "voice call setup failed".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic_per_seed() {
        let a = device_trace_report(7);
        let b = device_trace_report(7);
        assert_eq!(a, b);
        assert_ne!(a, device_trace_report(8), "seed must matter");
        assert!(a.contains("== Android-MOD view =="));
    }
}
