//! # cellrel
//!
//! A simulation-based reproduction of **"A Nationwide Study on Cellular
//! Reliability: Measurement, Analysis, and Enhancements"** (Li et al.,
//! SIGCOMM 2021) — the cellular substrate, Android's connection-management
//! stack, the Android-MOD measurement infrastructure, the analysis pipeline
//! behind every table and figure, and the two deployed enhancements
//! (Stability-Compatible RAT transition and TIMP-based Data_Stall recovery),
//! all rebuilt in Rust.
//!
//! This facade re-exports the workspace crates under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `cellrel-types` | shared vocabulary (RATs, levels, causes, events) |
//! | [`sim`] | `cellrel-sim` | deterministic DES kernel, RNG, statistics |
//! | [`radio`] | `cellrel-radio` | BS deployment, propagation, EMM, interference |
//! | [`modem`] | `cellrel-modem` | RIL modem, staged setup, cause generation |
//! | [`netstack`] | `cellrel-netstack` | TCP counters, ICMP/DNS probes, link faults |
//! | [`telephony`] | `cellrel-telephony` | DataConnection FSM, stall detection, recovery, RAT policies, device agent |
//! | [`monitor`] | `cellrel-monitor` | Android-MOD: filtering, probing, traces, overhead |
//! | [`ingest`] | `cellrel-ingest` | backend ingestion: wire codec, sharded collector, sketches |
//! | [`store`] | `cellrel-store` | embedded analytics cube: mergeable partitions, query engine |
//! | [`queryd`] | `cellrel-queryd` | query daemon: framed wire protocol, snapshot-isolated server, TCP + in-process transports |
//! | [`stream`] | `cellrel-stream` | continuous windowed pipeline: watermark sealing, tiered segments, crash-transparent restart |
//! | [`cluster`] | `cellrel-cluster` | sharded, replicated serving tier: device-hash partitioning, segment-shipping replication, scatter-gather federation |
//! | [`timp`] | `cellrel-timp` | TIMP model + annealing optimizer |
//! | [`workload`] | `cellrel-workload` | calibrated population, macro study, A/B drivers |
//! | [`analysis`] | `cellrel-analysis` | per-table/figure estimators and renderers |
//!
//! ## Quickstart
//!
//! ```
//! use cellrel::workload::{run_macro_study, StudyConfig};
//! use cellrel::analysis::headline;
//!
//! // A small synthetic fleet over the 8-month study window.
//! let mut cfg = StudyConfig::small();
//! cfg.population.devices = 2_000;
//! let dataset = run_macro_study(&cfg);
//! let stats = headline::compute(&dataset);
//! assert!(stats.prevalence > 0.1 && stats.prevalence < 0.35);
//! println!("{}", stats.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use cellrel_analysis as analysis;
pub use cellrel_cluster as cluster;
pub use cellrel_ingest as ingest;
pub use cellrel_modem as modem;
pub use cellrel_monitor as monitor;
pub use cellrel_netstack as netstack;
pub use cellrel_queryd as queryd;
pub use cellrel_radio as radio;
pub use cellrel_sim as sim;
pub use cellrel_store as store;
pub use cellrel_stream as stream;
pub use cellrel_telephony as telephony;
pub use cellrel_timp as timp;
pub use cellrel_types as types;
pub use cellrel_workload as workload;

/// The library version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // Touch one symbol from each re-export so the facade can't silently
        // drop a crate.
        let _ = crate::types::Rat::G5;
        let _ = crate::sim::SimRng::new(0);
        let _ = crate::radio::DeploymentConfig::small();
        let _ = crate::modem::FaultProfile::none();
        let _ = crate::netstack::LinkCondition::Healthy;
        let _ = crate::telephony::RecoveryConfig::timp_optimized();
        let _ = crate::monitor::ProbeSession;
        let _ = crate::ingest::CollectorConfig::default();
        let _ = crate::store::StoreConfig::default();
        let _ = crate::queryd::Request::Ping;
        let _ = crate::stream::StreamConfig::default();
        let _ = crate::cluster::ClusterConfig::default();
        let _ = crate::timp::AnnealConfig::default();
        let _ = crate::workload::StudyConfig::small();
        let _ = crate::analysis::Table::new("t", &["a"]);
        assert!(!crate::VERSION.is_empty());
    }
}
