//! The TIMP model of the Data_Stall recovery process.
//!
//! Fig. 18: five states — S₀ (stall detected), S₁..S₃ (the three recovery
//! operations started), S_e (recovered). The transition S_i → S_e happens
//! with a probability that depends on *elapsed time* (devices self-heal as
//! time passes — Fig. 10), which is exactly what makes the process
//! time-inhomogeneous: a plain Markov chain cannot express it.
//!
//! The model combines:
//!
//! * the **natural-recovery CDF** `F(t)` estimated from measured stall
//!   durations (the probability the stall has self-healed by elapsed time
//!   `t` since detection), and
//! * the **operation effects**: executing recovery operation *k* fixes the
//!   stall instantly with probability `s_k`, at execution cost `O_k`
//!   (`O₁ < O₂ < O₃`).
//!
//! After operations `1..=i` have run, the probability of being recovered by
//! time `t` is `P_i(t) = 1 − (1 − F(t)) · Π_{k≤i} (1 − s_k)`. The expected
//! overall recovery time for a probation triple `(Pro₀, Pro₁, Pro₂)` follows
//! Eq. 1's recursion, evaluated as a proper expectation over the
//! recovery-time distribution.
//!
//! Evaluation is closed-form over the empirical CDF: with
//! `G(t) = ∫₀ᵗ u·dF(u)` precomputed as prefix sums of the sorted samples,
//! each window's contribution is `mult · (G(b) − G(a))` plus shift terms, so
//! one evaluation costs a few binary searches — the annealer runs thousands
//! of evaluations per optimisation.

/// The fitted TIMP model.
#[derive(Debug, Clone)]
pub struct TimpModel {
    /// Sorted natural-recovery durations (seconds).
    sorted: Vec<f64>,
    /// `prefix[i]` = sum of the first `i` sorted durations.
    prefix: Vec<f64>,
    /// Probability each recovery operation fixes the stall when executed.
    op_success: [f64; 3],
    /// Execution cost of each operation, seconds.
    op_cost: [f64; 3],
    /// Maximum stall duration observed (`t_m` in the paper).
    t_max: f64,
}

impl TimpModel {
    /// Fit the model from measured stall durations (seconds, the time until
    /// *natural* recovery), with the recovery-operation parameters.
    ///
    /// # Panics
    /// Panics on empty samples or out-of-range probabilities.
    pub fn from_durations(samples: &[f64], op_success: [f64; 3], op_cost: [f64; 3]) -> Self {
        assert!(!samples.is_empty(), "TimpModel needs duration samples");
        assert!(op_success.iter().all(|p| (0.0..=1.0).contains(p)));
        assert!(op_cost.iter().all(|&c| c >= 0.0));
        let mut sorted: Vec<f64> = samples
            .iter()
            .copied()
            .filter(|d| d.is_finite() && *d >= 0.0)
            .collect();
        assert!(!sorted.is_empty(), "TimpModel needs duration samples");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
        let t_max = *sorted.last().expect("non-empty");
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &d in &sorted {
            acc += d;
            prefix.push(acc);
        }
        TimpModel {
            sorted,
            prefix,
            op_success,
            op_cost,
            t_max,
        }
    }

    /// The observed maximum duration `t_m`.
    pub fn t_max(&self) -> f64 {
        self.t_max
    }

    /// Natural-recovery CDF `F(t)` (empirical step function).
    pub fn natural_cdf(&self, t: f64) -> f64 {
        self.sorted.partition_point(|&d| d <= t) as f64 / self.sorted.len() as f64
    }

    /// Partial first moment `G(t) = ∫₀ᵗ u·dF(u)` — the mean contribution of
    /// samples ≤ `t`.
    fn partial_moment(&self, t: f64) -> f64 {
        let k = self.sorted.partition_point(|&d| d <= t);
        self.prefix[k] / self.sorted.len() as f64
    }

    /// `P_{i→e}(t)`: probability of having recovered by elapsed time `t`
    /// after operations `1..=i` have executed.
    pub fn p_recovered(&self, ops_executed: usize, t: f64) -> f64 {
        let mult: f64 = self.op_success[..ops_executed.min(3)]
            .iter()
            .map(|s| 1.0 - s)
            .product();
        1.0 - (1.0 - self.natural_cdf(t)) * mult
    }

    /// Expected overall recovery time `T_recovery = T₀` (Eq. 1) for the
    /// probation triple, in seconds.
    ///
    /// Mass recovering naturally inside window *i* contributes its recovery
    /// instant (plus any accumulated operation-execution shift); mass
    /// surviving to a probation boundary pays the next operation's cost and
    /// may be fixed instantly by it; mass surviving everything recovers by
    /// `t_m` (stage 3's integral upper bound in the paper).
    pub fn expected_recovery_time(&self, probations: [f64; 3]) -> f64 {
        assert!(
            probations.iter().all(|&p| p > 0.0),
            "probations must be positive"
        );
        let boundaries = [
            probations[0],
            probations[0] + probations[1],
            probations[0] + probations[1] + probations[2],
        ];

        let mut expectation = 0.0;
        let mut mult = 1.0; // Π (1 − s_k) over executed ops
        let mut cost_shift = 0.0; // accumulated op execution time
        let mut window_start = 0.0f64;

        for stage in 0..4usize {
            let end = boundaries
                .get(stage)
                .map_or(self.t_max, |b| b.min(self.t_max));
            let a = window_start.min(end);
            // Natural recovery inside [a, end]: contributes its instant plus
            // the shift accrued so far.
            let df = (self.natural_cdf(end) - self.natural_cdf(a)).max(0.0);
            let dg = (self.partial_moment(end) - self.partial_moment(a)).max(0.0);
            expectation += mult * (dg + cost_shift * df);

            if stage < 3 {
                // Execute operation `stage+1` on the surviving mass at `end`.
                let p_before = 1.0 - (1.0 - self.natural_cdf(end)) * mult;
                cost_shift += self.op_cost[stage];
                mult *= 1.0 - self.op_success[stage];
                let p_after = 1.0 - (1.0 - self.natural_cdf(end)) * mult;
                expectation += (p_after - p_before).max(0.0) * (end + cost_shift);
            }
            window_start = end;
        }

        // Residual mass (ops all failed, natural heal at the horizon) is
        // charged the full horizon, as in the paper's T₃ upper bound.
        let p_final = 1.0 - (1.0 - self.natural_cdf(self.t_max)) * mult;
        expectation += (1.0 - p_final).max(0.0) * (self.t_max + cost_shift);
        expectation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_sim::SimRng;

    /// Fig. 10-like duration sample: 60 % ≤ 10 s, >80 % < 300 s, heavy tail.
    fn paper_like_durations(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| {
                if rng.chance(0.9) {
                    rng.lognormal(1.9, 1.1)
                } else {
                    rng.pareto(30.0, 1.1).min(90_000.0)
                }
            })
            .collect()
    }

    fn model() -> TimpModel {
        TimpModel::from_durations(
            &paper_like_durations(20_000, 1),
            [0.75, 0.90, 0.97],
            [12.0, 30.0, 60.0],
        )
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let m = model();
        let mut last = 0.0;
        let mut t = 0.0;
        while t < m.t_max() * 1.1 {
            let f = m.natural_cdf(t);
            assert!(f >= last - 1e-12, "CDF must be monotone");
            assert!((0.0..=1.0).contains(&f));
            last = f;
            t += m.t_max() / 100.0;
        }
        assert!((m.natural_cdf(m.t_max() * 1.05) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_calibration_matches_fig10_shape() {
        let m = model();
        let by10 = m.natural_cdf(10.0);
        let by300 = m.natural_cdf(300.0);
        assert!((0.5..0.72).contains(&by10), "P(heal ≤ 10 s) = {by10}");
        assert!(by300 > 0.8, "P(heal ≤ 300 s) = {by300}");
    }

    #[test]
    fn partial_moment_converges_to_mean() {
        let m = TimpModel::from_durations(&[1.0, 2.0, 3.0, 4.0], [0.5; 3], [1.0, 2.0, 3.0]);
        assert!((m.partial_moment(10.0) - 2.5).abs() < 1e-12);
        assert!((m.partial_moment(2.0) - 0.75).abs() < 1e-12);
        assert_eq!(m.partial_moment(0.5), 0.0);
    }

    #[test]
    fn ops_raise_recovery_probability() {
        let m = model();
        let t = 30.0;
        assert!(m.p_recovered(1, t) > m.p_recovered(0, t));
        assert!(m.p_recovered(2, t) > m.p_recovered(1, t));
        assert!(m.p_recovered(3, t) > m.p_recovered(2, t));
        assert!(m.p_recovered(3, t) <= 1.0);
    }

    #[test]
    fn shorter_probations_beat_vanilla() {
        // The paper's core claim: (21, 6, 16) yields a smaller expected
        // recovery time than (60, 60, 60).
        let m = model();
        let t_vanilla = m.expected_recovery_time([60.0, 60.0, 60.0]);
        let t_timp = m.expected_recovery_time([21.0, 6.0, 16.0]);
        assert!(
            t_timp < t_vanilla,
            "timp {t_timp:.1}s vs vanilla {t_vanilla:.1}s"
        );
        // Both land in the tens-of-seconds regime (the paper: 27.8 vs 38).
        assert!(t_timp > 1.0 && t_vanilla < 400.0);
    }

    #[test]
    fn absurdly_long_probations_are_worse() {
        let m = model();
        let t_ok = m.expected_recovery_time([30.0, 30.0, 30.0]);
        let t_lazy = m.expected_recovery_time([3000.0, 3000.0, 3000.0]);
        assert!(t_lazy > t_ok, "lazy {t_lazy:.1} vs ok {t_ok:.1}");
    }

    #[test]
    fn overly_eager_probations_pay_op_costs() {
        // Firing stage 1 after 1 s interrupts stalls that would have healed
        // by themselves in 2–3 s and pays O₁ for ~all of them — with cheap
        // ops, eager can still edge out moderate, so make ops expensive to
        // surface the trade-off the annealer balances.
        let samples = paper_like_durations(20_000, 2);
        let m = TimpModel::from_durations(&samples, [0.75, 0.90, 0.97], [20.0, 40.0, 80.0]);
        let t_eager = m.expected_recovery_time([1.0, 1.0, 1.0]);
        let t_moderate = m.expected_recovery_time([20.0, 10.0, 15.0]);
        assert!(
            t_eager > t_moderate,
            "eager {t_eager:.1} vs moderate {t_moderate:.1}"
        );
    }

    #[test]
    fn deterministic_durations_give_exact_expectation() {
        // All stalls heal at exactly 5 s; ops never succeed. Expected
        // recovery ≈ 5 s regardless of probations ≥ 5.
        let m = TimpModel::from_durations(&[5.0; 100], [0.0, 0.0, 0.0], [0.1, 0.2, 0.3]);
        let t = m.expected_recovery_time([10.0, 10.0, 10.0]);
        assert!((t - 5.0).abs() < 0.6, "expected ~5 s, got {t}");
    }

    #[test]
    fn perfect_first_op_caps_time_near_probation() {
        // Stalls never self-heal within the horizon (all heal at 1000 s),
        // but op 1 always fixes: expected ≈ Pro₀ + O₁.
        let m = TimpModel::from_durations(&[1000.0; 50], [1.0, 1.0, 1.0], [2.0, 4.0, 8.0]);
        let t = m.expected_recovery_time([15.0, 10.0, 10.0]);
        assert!((t - 17.0).abs() < 1.0, "expected ~17 s, got {t}");
    }

    #[test]
    fn evaluation_is_fast_enough_for_annealing() {
        let m = model();
        // 10k evaluations should be effectively instant with the
        // closed-form evaluator (this is what the annealer does).
        for i in 0..10_000u64 {
            let p0 = 1.0 + (i % 60) as f64;
            let _ = m.expected_recovery_time([p0, 10.0, 20.0]);
        }
    }

    #[test]
    #[should_panic(expected = "duration samples")]
    fn empty_samples_rejected() {
        TimpModel::from_durations(&[], [0.5; 3], [1.0, 2.0, 3.0]);
    }
}
