//! Simulated annealing over probation triples (§4.2).
//!
//! "We use the annealing algorithm to search for the global minimum" of the
//! expected recovery time over (Pro₀, Pro₁, Pro₂). The search space is
//! integer seconds in `[1, 120]³`; the annealer perturbs one coordinate at a
//! time with a geometric cooling schedule and is fully deterministic given a
//! seed.

use crate::model::TimpModel;
use cellrel_sim::SimRng;

/// Annealing parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealConfig {
    /// Iterations.
    pub iterations: u32,
    /// Initial temperature (in seconds of expected-time slack accepted).
    pub t_initial: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Probation bounds (seconds).
    pub min_probation: u64,
    /// Upper probation bound (seconds).
    pub max_probation: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 6000,
            t_initial: 8.0,
            cooling: 0.9988,
            min_probation: 1,
            max_probation: 120,
            seed: 0xA11EA1,
        }
    }
}

/// Result of the annealing search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealResult {
    /// The best probation triple found (seconds).
    pub probations: [u64; 3],
    /// Its expected recovery time (seconds).
    pub expected_time: f64,
    /// The vanilla (60/60/60) expected recovery time, for comparison.
    pub vanilla_time: f64,
    /// Accepted moves during the search (search diagnostics).
    pub accepted_moves: u32,
}

impl AnnealResult {
    /// Relative improvement of the optimised trigger over vanilla.
    pub fn improvement(&self) -> f64 {
        if self.vanilla_time <= 0.0 {
            0.0
        } else {
            1.0 - self.expected_time / self.vanilla_time
        }
    }
}

fn energy(model: &TimpModel, p: [u64; 3]) -> f64 {
    model.expected_recovery_time([p[0] as f64, p[1] as f64, p[2] as f64])
}

/// Run the annealing search against a fitted model.
pub fn anneal_probations(model: &TimpModel, cfg: &AnnealConfig) -> AnnealResult {
    assert!(cfg.min_probation >= 1 && cfg.min_probation < cfg.max_probation);
    let mut rng = SimRng::new(cfg.seed);

    let mut current = [30u64, 30, 30];
    let mut current_e = energy(model, current);
    let mut best = current;
    let mut best_e = current_e;
    let mut temp = cfg.t_initial;
    let mut accepted = 0u32;

    for _ in 0..cfg.iterations {
        // Neighbour: perturb one coordinate by ±1..=8 seconds.
        let mut cand = current;
        let coord = rng.index(3);
        let step = 1 + rng.range_u64(0, 8);
        let v = if rng.chance(0.5) {
            cand[coord].saturating_add(step)
        } else {
            cand[coord].saturating_sub(step)
        };
        cand[coord] = v.clamp(cfg.min_probation, cfg.max_probation);

        let cand_e = energy(model, cand);
        let delta = cand_e - current_e;
        if delta <= 0.0 || rng.chance((-delta / temp.max(1e-9)).exp()) {
            current = cand;
            current_e = cand_e;
            accepted += 1;
            if current_e < best_e {
                best = current;
                best_e = current_e;
            }
        }
        temp *= cfg.cooling;
    }

    AnnealResult {
        probations: best,
        expected_time: best_e,
        vanilla_time: energy(model, [60, 60, 60]),
        accepted_moves: accepted,
    }
}

/// Exhaustive coarse grid search (step 5 s) — a slow oracle the tests use to
/// validate the annealer's optimum.
pub fn grid_search(model: &TimpModel, max: u64) -> ([u64; 3], f64) {
    let mut best = [5u64, 5, 5];
    let mut best_e = f64::INFINITY;
    let mut p0 = 5;
    while p0 <= max {
        let mut p1 = 5;
        while p1 <= max {
            let mut p2 = 5;
            while p2 <= max {
                let e = energy(model, [p0, p1, p2]);
                if e < best_e {
                    best_e = e;
                    best = [p0, p1, p2];
                }
                p2 += 5;
            }
            p1 += 5;
        }
        p0 += 5;
    }
    (best, best_e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like_durations(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| {
                if rng.chance(0.9) {
                    rng.lognormal(1.9, 1.1)
                } else {
                    rng.pareto(30.0, 1.1).min(90_000.0)
                }
            })
            .collect()
    }

    fn model() -> TimpModel {
        TimpModel::from_durations(
            &paper_like_durations(8000, 3),
            [0.75, 0.90, 0.97],
            [12.0, 30.0, 60.0],
        )
    }

    #[test]
    fn annealing_beats_vanilla() {
        let m = model();
        let result = anneal_probations(&m, &AnnealConfig::default());
        assert!(
            result.expected_time < result.vanilla_time,
            "anneal {:.1}s vs vanilla {:.1}s",
            result.expected_time,
            result.vanilla_time
        );
        assert!(
            result.improvement() > 0.05,
            "improvement {}",
            result.improvement()
        );
        // The optimum uses much shorter probations than one minute, like the
        // paper's (21, 6, 16).
        assert!(
            result.probations.iter().all(|&p| p < 60),
            "{:?}",
            result.probations
        );
    }

    #[test]
    fn annealing_is_deterministic() {
        let m = model();
        let a = anneal_probations(&m, &AnnealConfig::default());
        let b = anneal_probations(&m, &AnnealConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn annealing_approaches_grid_oracle() {
        let m = model();
        let (grid_best, grid_e) = grid_search(&m, 60);
        let result = anneal_probations(&m, &AnnealConfig::default());
        assert!(
            result.expected_time <= grid_e * 1.05 + 0.5,
            "anneal {:.2} ({:?}) vs grid {:.2} ({:?})",
            result.expected_time,
            result.probations,
            grid_e,
            grid_best
        );
    }

    #[test]
    fn bounds_are_respected() {
        let m = model();
        let cfg = AnnealConfig {
            min_probation: 10,
            max_probation: 40,
            ..Default::default()
        };
        let result = anneal_probations(&m, &cfg);
        assert!(result.probations.iter().all(|&p| (10..=40).contains(&p)));
    }

    #[test]
    fn accepted_moves_are_counted() {
        let m = model();
        let result = anneal_probations(&m, &AnnealConfig::default());
        assert!(result.accepted_moves > 0);
    }
}
