//! # cellrel-timp
//!
//! The paper's second deployed enhancement (§4.2): replace Android's fixed
//! one-minute recovery probations with values derived from a
//! **time-inhomogeneous Markov process** (TIMP) model of the Data_Stall
//! recovery process (Fig. 18), optimised with simulated annealing.
//!
//! * [`model`] — [`TimpModel`]: the five-state recovery process
//!   (S₀…S₃, S_e) with time-dependent recovery probabilities built from
//!   measured stall-duration data, and the expected-recovery-time
//!   functional of Eq. 1.
//! * [`anneal`] — the simulated-annealing search over probation triples
//!   (the paper's result: Pro = (21 s, 6 s, 16 s), T ≈ 27.8 s, vs 38 s for
//!   the vanilla 60/60/60 trigger).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod model;

pub use anneal::{anneal_probations, AnnealConfig, AnnealResult};
pub use model::TimpModel;
