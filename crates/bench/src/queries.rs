//! The canonical mixed query workload, re-exported from its home in
//! `cellrel-store` (`store::workload`) — the store's differential
//! scan-equivalence suite, the bench bins, and CI all share the exact
//! same 11 queries.

pub use cellrel::store::workload::canonical;
