//! Shared fixtures for the benchmark / reproduction harness.
//!
//! Benches and the `repro` binary share dataset construction so that every
//! table/figure is regenerated from the *same* simulated study, exactly as
//! the paper derives all of §3 from one dataset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig, StudyDataset};
use std::sync::OnceLock;

pub mod queries;
pub mod snapshot;

pub use snapshot::{BenchSnapshot, SCHEMA_VERSION};

/// The standard macro study used by benches and `repro` (medium size:
/// large enough for stable statistics, small enough to regenerate in
/// seconds).
pub fn standard_study() -> &'static StudyDataset {
    static DATA: OnceLock<StudyDataset> = OnceLock::new();
    DATA.get_or_init(|| run_macro_study(&standard_config()))
}

/// The configuration behind [`standard_study`].
pub fn standard_config() -> StudyConfig {
    StudyConfig {
        population: PopulationConfig {
            devices: 20_000,
            ..Default::default()
        },
        bs_count: 20_000,
        seed: 2020,
        ..Default::default()
    }
}

/// A/B experiment configuration for the enhancement figures (Figs. 19–21):
/// paired fleets of fully simulated devices.
pub fn ab_config() -> cellrel::workload::AbConfig {
    cellrel::workload::AbConfig {
        devices: 24,
        days: 3,
        seed: 2021,
        stall_rate_per_hour: 2.0,
        suppress_user_reset: false,
        threads: 0,
    }
}

/// Recovery-focused A/B configuration (Fig. 21: user resets suppressed so
/// the recovery mechanism's effect is isolated).
pub fn recovery_ab_config() -> cellrel::workload::AbConfig {
    cellrel::workload::AbConfig {
        devices: 16,
        days: 4,
        seed: 2022,
        stall_rate_per_hour: 4.0,
        suppress_user_reset: true,
        threads: 0,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn standard_study_builds() {
        let d = super::standard_study();
        assert!(d.events.len() > 100_000);
    }
}
