//! Machine-readable benchmark snapshots.
//!
//! Every harness binary (`repro`, `ingest`, `query`, `chaos`) ends its run
//! by writing a `BENCH_<name>.json` file through this writer, so the perf
//! trajectory of the repo is tracked as reviewable artifacts rather than
//! scrollback. The format is deliberately tiny and dependency-free:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "ingest",
//!   "config": {"devices": "3000", "days": "14"},
//!   "metrics": {"records_per_sec": 1234567.0, "bytes_per_record": 11.2},
//!   "wall_seconds": 1.73
//! }
//! ```
//!
//! `config` values are strings (they echo CLI flags); `metrics` values are
//! finite numbers (non-finite values are clamped to 0 so the file is
//! always valid JSON). Files go to `CELLREL_BENCH_DIR` if set, else the
//! current directory. CI checks the files exist and carry the expected
//! schema version; humans diff them across commits.

use std::path::PathBuf;

/// Version of the snapshot schema; bump on any incompatible change.
pub const SCHEMA_VERSION: u32 = 1;

/// Environment variable overriding the output directory.
pub const BENCH_DIR_ENV: &str = "CELLREL_BENCH_DIR";

/// A benchmark snapshot under construction. Insertion order is preserved
/// in the output so diffs stay stable.
#[derive(Debug, Clone)]
pub struct BenchSnapshot {
    name: String,
    config: Vec<(String, String)>,
    metrics: Vec<(String, f64)>,
    wall_seconds: f64,
}

impl BenchSnapshot {
    /// Start a snapshot for the harness binary `name`.
    pub fn new(name: &str) -> Self {
        BenchSnapshot {
            name: name.to_string(),
            config: Vec::new(),
            metrics: Vec::new(),
            wall_seconds: 0.0,
        }
    }

    /// Record one configuration knob (echoed as a string).
    pub fn config(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Record one measured metric.
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() { value } else { 0.0 };
        self.metrics.push((key.to_string(), v));
        self
    }

    /// Record the run's total wall-clock seconds.
    pub fn wall_seconds(mut self, secs: f64) -> Self {
        self.wall_seconds = if secs.is_finite() { secs } else { 0.0 };
        self
    }

    /// Render the snapshot as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), json_string(v)));
        }
        if !self.config.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), json_number(*v)));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "}},\n  \"wall_seconds\": {}\n}}\n",
            json_number(self.wall_seconds)
        ));
        out
    }

    /// The file this snapshot writes to: `<dir>/BENCH_<name>.json` where
    /// `<dir>` is [`BENCH_DIR_ENV`] or the current directory.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var(BENCH_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("."));
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Write the snapshot and return its path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number formatting: always carries a decimal point or exponent so
/// consumers parse a float, never an overflow-prone integer.
fn json_number(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        if v.is_finite() {
            s
        } else {
            "0.0".to_string()
        }
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_json() {
        let snap = BenchSnapshot::new("demo")
            .config("devices", 3000)
            .config("mode", "event-driven")
            .metric("events_per_sec", 1_234_567.5)
            .metric("speedup", f64::NAN)
            .wall_seconds(1.25);
        let json = snap.to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 1,\n"));
        assert!(json.contains("\"name\": \"demo\""));
        assert!(json.contains("\"devices\": \"3000\""));
        assert!(json.contains("\"events_per_sec\": 1234567.5"));
        // Non-finite metrics are clamped, keeping the file valid JSON.
        assert!(json.contains("\"speedup\": 0.0"));
        assert!(json.contains("\"wall_seconds\": 1.25"));
        // Integral values still parse as floats downstream.
        let snap2 = BenchSnapshot::new("x").metric("n", 42.0);
        assert!(snap2.to_json().contains("\"n\": 42.0"));
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn empty_sections_render_as_empty_objects() {
        let json = BenchSnapshot::new("empty").to_json();
        assert!(json.contains("\"config\": {},"));
        assert!(json.contains("\"metrics\": {},"));
    }
}
