//! `query` — build the analytics cube from a synthetic fleet and replay a
//! mixed query workload against it: filters, group-bys, time windows,
//! quantiles, top-k cuts and device-directory metrics, plus the
//! store-served Table 1 / Table 2 adapters.
//!
//! ```sh
//! cargo run --release -p cellrel-bench --bin query -- --devices 50000
//! cargo run --release -p cellrel-bench --bin query -- --verify
//! ```
//!
//! Flags: `--devices N` (default 10,000), `--days D` (default 30),
//! `--seed S` (default 2021), `--threads T` (build threads, 0 = auto),
//! `--partitions P` (default 16), `--rounds R` (workload repetitions,
//! default 50), `--compact` (fold sealed buckets before querying),
//! `--render` (print each canonical query's result table once),
//! `--verify` (rebuild at 1, 2 and 8 threads and with compaction on, fail
//! unless every digest and every query answer matches, and require the
//! columnar scan path byte-identical to the row reference engine on every
//! layout), `--metrics` (print the metrics tables, including a store
//! persist round trip).
//!
//! The timed replay runs the workload twice: once through the row
//! reference engine on the store as built (`row_queries_per_sec`), then
//! through the columnar scan path on the sealed layout — the headline
//! `queries_per_sec` — with the ratio reported as `columnar_speedup`.
//!
//! The final `digest: <hex>` line is the store's canonical content digest.
//! It is bit-identical at any thread count, partition count, and with
//! compaction on or off — CI compares runs to catch nondeterminism.
//! Throughput lines (queries/s, cells scanned/query) go to stderr so the
//! deterministic stdout can be diffed across runs.

// Wall-clock is the *measurement* here (queries/s), not simulation state —
// benches are outside the workspace-wide Instant/SystemTime gate.
#![allow(clippy::disallowed_types)]

use cellrel::analysis::store_tables::{table1_from_store, table2_from_store};
use cellrel::analysis::{export::result_set_csv, render_metrics};
use cellrel::sim::Telemetry;
use cellrel::store::{build_sharded, restore_store, save_store, DeviceDirectory, StoreConfig};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};
use std::time::Instant;

fn parse_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let value = args
        .get(pos + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse::<T>()
        .unwrap_or_else(|_| panic!("{flag}: bad value"));
    args.drain(pos..pos + 2);
    Some(value)
}

fn parse_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let devices = parse_flag::<usize>(&mut args, "--devices").unwrap_or(10_000);
    let days = parse_flag::<u64>(&mut args, "--days").unwrap_or(30);
    let seed = parse_flag::<u64>(&mut args, "--seed").unwrap_or(2021);
    let threads = parse_flag::<usize>(&mut args, "--threads").unwrap_or(0);
    let partitions = parse_flag::<usize>(&mut args, "--partitions").unwrap_or(16);
    let rounds = parse_flag::<usize>(&mut args, "--rounds")
        .unwrap_or(50)
        .max(1);
    let compact = parse_switch(&mut args, "--compact");
    let render = parse_switch(&mut args, "--render");
    let verify = parse_switch(&mut args, "--verify");
    let metrics = parse_switch(&mut args, "--metrics");
    assert!(args.is_empty(), "unrecognised arguments: {args:?}");

    let cfg = StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        days,
        bs_count: 2_000,
        seed,
    };
    let store_cfg = StoreConfig {
        partitions,
        ..StoreConfig::default()
    };

    eprintln!("query: generating {devices} devices over {days} days (seed {seed}) ...");
    let t0 = Instant::now();
    let data = run_macro_study(&cfg);
    let dir = DeviceDirectory::from_population(&data.population);
    eprintln!(
        "query: {} events in {:.2} s",
        data.events.len(),
        t0.elapsed().as_secs_f64()
    );

    let t1 = Instant::now();
    let mut store = build_sharded(&store_cfg, &dir, &data.events, threads);
    let build_elapsed = t1.elapsed();
    if compact {
        store.compact();
    }
    let digest = store.digest();
    eprintln!(
        "query: built {} cells / {} devices in {:.2} s ({:.0} records/s); ~{:.1} bytes/cell",
        store.cells(),
        store.devices(),
        build_elapsed.as_secs_f64(),
        store.inserted() as f64 / build_elapsed.as_secs_f64().max(1e-9),
        store.approx_cell_bytes() as f64 / store.cells().max(1) as f64,
    );

    // The deterministic face of the run: per-query row/record totals on
    // stdout (CI diffs this), timings on stderr.
    let week_ms = u64::from(store.config().rollup_buckets) * store.config().bucket_ms;
    let queries = cellrel_bench::queries::canonical(week_ms);
    let tele = if metrics {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    for (name, q) in &queries {
        let rs = store
            .query_with(q, &tele)
            .expect("workload queries are legal");
        let matched: u64 = rs.rows.iter().map(|r| r.count).sum();
        // Rows and record totals are compaction-invariant, so they belong to
        // the diffable stdout; physical scan counts (which compaction *is
        // allowed* to shrink) go to stderr.
        println!("query {name}: {} rows, {} records", rs.rows.len(), matched);
        eprintln!("query {name}: {} cells scanned", rs.cells_scanned);
        if render {
            print!("{}", rs.render());
        }
    }

    // Table 1 / Table 2 served from the store (stdout: digest-stable).
    let t1_store = table1_from_store(&store).expect("table1 queries are legal");
    let t2_store = table2_from_store(&store, 10).expect("table2 queries are legal");
    println!(
        "table1: {} models, mean |dprev| {:.4}",
        t1_store.stats.len(),
        t1_store.mean_prevalence_error
    );
    println!(
        "table2: {} rows over {} setup errors, top10 share {:.4}",
        t2_store.rows.len(),
        t2_store.total_setup_errors,
        t2_store.top10_share
    );
    if render {
        print!("{}", t1_store.render());
        print!("{}", t2_store.render());
    }

    // Timed replay, `rounds` times over, on both layouts: the row tier as
    // built (the pre-columnar baseline shape) via the row reference
    // engine, then the sealed columnar layout via the segment scan path.
    // The columnar number is the headline `queries_per_sec`.
    let t2 = Instant::now();
    let mut executed = 0u64;
    for _ in 0..rounds {
        for (_, q) in &queries {
            store.query_row(q).expect("workload queries are legal");
            executed += 1;
        }
    }
    let row_elapsed = t2.elapsed();
    let row_qps = executed as f64 / row_elapsed.as_secs_f64().max(1e-9);

    let mut sealed = store.clone();
    sealed.seal_columnar();
    assert_eq!(sealed.digest(), digest, "sealing is a pure layout change");
    let t3 = Instant::now();
    let mut sealed_executed = 0u64;
    let mut scanned = 0u64;
    for _ in 0..rounds {
        for (_, q) in &queries {
            let rs = sealed
                .query_with(q, &tele)
                .expect("workload queries are legal");
            sealed_executed += 1;
            scanned += rs.cells_scanned;
        }
    }
    let elapsed = t3.elapsed();
    let columnar_qps = sealed_executed as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "query: row engine {executed} queries in {:.2} s ({row_qps:.0} queries/s)",
        row_elapsed.as_secs_f64(),
    );
    eprintln!(
        "query: columnar engine {sealed_executed} queries in {:.2} s \
         ({columnar_qps:.0} queries/s, {:.0} cells scanned/query, {:.2}x row)",
        elapsed.as_secs_f64(),
        scanned as f64 / sealed_executed.max(1) as f64,
        columnar_qps / row_qps.max(1e-9),
    );

    if verify {
        for t in [1usize, 2, 8] {
            let d = build_sharded(&store_cfg, &dir, &data.events, t).digest();
            if d != digest {
                eprintln!("query: FAIL — digest {d:016x} at {t} build threads != {digest:016x}");
                std::process::exit(1);
            }
            eprintln!("query: digest stable at {t} build thread(s)");
        }
        let mut compacted = build_sharded(&store_cfg, &dir, &data.events, 1);
        compacted.compact();
        if compacted.digest() != digest {
            eprintln!(
                "query: FAIL — compacted digest {:016x} != {digest:016x}",
                compacted.digest()
            );
            std::process::exit(1);
        }
        for (name, q) in &queries {
            let a = store.query(q).expect("legal").rows;
            let b = compacted.query(q).expect("legal").rows;
            if a != b {
                eprintln!("query: FAIL — '{name}' answers diverge under compaction");
                std::process::exit(1);
            }
        }
        eprintln!("query: digest and all answers stable under compaction");
        // Differential engine check: on every layout the columnar scan
        // must be byte-identical to the row reference (counters included).
        for (layout, s) in [
            ("hot", &store),
            ("compacted", &compacted),
            ("sealed", &sealed),
        ] {
            for (name, q) in &queries {
                let col = s.query(q).expect("legal");
                let row = s.query_row(q).expect("legal");
                if col != row {
                    eprintln!("query: FAIL — '{name}' row vs columnar diverge on {layout} layout");
                    std::process::exit(1);
                }
            }
        }
        eprintln!("query: row and columnar engines byte-identical on all layouts");
    }

    if metrics {
        // Exercise the persist path: save, restore, confirm the round trip
        // preserves the digest, then print the metrics tables (store state,
        // query counters/histograms).
        let bytes = save_store(&store);
        let restored = restore_store(&bytes).expect("store persist round trip");
        assert_eq!(
            restored.digest(),
            digest,
            "persist round trip changed the store digest"
        );
        eprintln!(
            "query: persisted {} bytes ({:.1} bytes/cell), restore digest ok",
            bytes.len(),
            bytes.len() as f64 / store.cells().max(1) as f64,
        );
        store.record_metrics(&tele);
        let snap = tele.snapshot();
        println!();
        print!("{}", render_metrics(&snap));
        // CSV export of a canonical result set rides the same path CI and
        // users consume for figures.
        let csv = result_set_csv(&store.query(&queries[1].1).expect("legal"));
        eprintln!("query: count_by_kind_isp CSV is {} bytes", csv.len());
    }

    println!("digest: {digest:016x}");

    let snap = cellrel_bench::BenchSnapshot::new("query")
        .config("devices", devices)
        .config("days", days)
        .config("seed", seed)
        .config("threads", threads)
        .config("partitions", partitions)
        .config("rounds", rounds)
        .config("compact", compact)
        .metric("queries", sealed_executed as f64)
        .metric("queries_per_sec", columnar_qps)
        .metric("row_queries_per_sec", row_qps)
        .metric("columnar_speedup", columnar_qps / row_qps.max(1e-9))
        .metric(
            "cells_scanned_per_query",
            scanned as f64 / sealed_executed.max(1) as f64,
        )
        .metric("cells", store.cells() as f64)
        .metric("sealed_cells", sealed.sealed_cells() as f64)
        .metric(
            "build_records_per_sec",
            store.inserted() as f64 / build_elapsed.as_secs_f64().max(1e-9),
        )
        .metric(
            "bytes_per_cell",
            store.approx_cell_bytes() as f64 / store.cells().max(1) as f64,
        )
        .wall_seconds(t0.elapsed().as_secs_f64());
    let path = snap.write().expect("write bench snapshot");
    eprintln!("query: wrote {}", path.display());
}
