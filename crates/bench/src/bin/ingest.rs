//! `ingest` — replay a synthetic fleet through the full ingestion pipeline:
//! encode every device's traces as wire batches, route them through the
//! sharded collector, and report throughput, compression, and the
//! deterministic aggregate digest.
//!
//! ```sh
//! cargo run --release -p cellrel-bench --bin ingest -- --devices 50000
//! cargo run --release -p cellrel-bench --bin ingest -- --verify
//! ```
//!
//! Flags: `--devices N` (default 10,000), `--days D` (default 30),
//! `--seed S` (default 2021), `--threads T` (0 = auto), `--batch B`
//! (max records per upload batch, default 64), `--verify` (re-run the
//! collector at 1, 2 and 8 workers and fail unless all digests match),
//! `--metrics` (print the metrics tables: pipeline counters, a checkpoint
//! save/restore round trip, fleet counters from the generated stream, and
//! the `registry digest:` line), `--trace-out FILE` (implies `--metrics`;
//! write each generated failure as a Chrome trace-event span).
//!
//! The final `digest: <hex>` line is a content digest of the complete
//! collector state. It is bit-identical at any worker count and across
//! re-runs — CI compares runs at different thread counts to catch
//! nondeterminism. The binary exits non-zero if any batch fails to decode
//! or (under `--verify`) any digest diverges.
//!
//! Replay is device-ordered (each device's whole trace, then the next), so
//! timestamps rewind at every device boundary — the collector's lateness
//! and out-of-order counters are *expected* to trip; late records are
//! counted, never dropped.

// Wall-clock is the *measurement* here (records/s), not simulation state —
// benches are outside the workspace-wide Instant/SystemTime gate.
#![allow(clippy::disallowed_types)]

use cellrel::analysis::render_metrics;
use cellrel::ingest::codec::{encode_batch, RAW_RECORD_BYTES};
use cellrel::ingest::{
    restore_checkpoint_with, run_ingest, save_checkpoint_with, Collector, CollectorConfig,
};
use cellrel::sim::{Merge, Telemetry};
use cellrel::types::{DeviceId, FailureEvent};
use cellrel::workload::study::EventSink;
use cellrel::workload::{run_macro_study_streaming, FleetMetrics, PopulationConfig, StudyConfig};
use std::time::Instant;

fn parse_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let value = args
        .get(pos + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse::<T>()
        .unwrap_or_else(|_| panic!("{flag}: bad value"));
    args.drain(pos..pos + 2);
    Some(value)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let devices = parse_flag::<usize>(&mut args, "--devices").unwrap_or(10_000);
    let days = parse_flag::<u64>(&mut args, "--days").unwrap_or(30);
    let seed = parse_flag::<u64>(&mut args, "--seed").unwrap_or(2021);
    let threads = parse_flag::<usize>(&mut args, "--threads").unwrap_or(0);
    let batch_cap = parse_flag::<usize>(&mut args, "--batch")
        .unwrap_or(64)
        .max(1);
    let verify = if let Some(pos) = args.iter().position(|a| a == "--verify") {
        args.remove(pos);
        true
    } else {
        false
    };
    let trace_out = parse_flag::<String>(&mut args, "--trace-out");
    let mut metrics = trace_out.is_some();
    if let Some(pos) = args.iter().position(|a| a == "--metrics") {
        args.remove(pos);
        metrics = true;
    }
    assert!(args.is_empty(), "unrecognised arguments: {args:?}");

    let cfg = StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        days,
        bs_count: 2_000,
        seed,
    };

    // Phase 1 — generate the fleet's traces and encode them into wire
    // batches, exactly as device uploaders would (≤ batch_cap records per
    // batch, per-device sequence numbers).
    eprintln!("ingest: encoding {devices} devices over {days} days (seed {seed}) ...");
    let t0 = Instant::now();
    let mut batches: Vec<Vec<u8>> = Vec::new();
    let mut records = 0u64;
    // Under `--metrics`, mirror the generated stream into a fleet sink so
    // the report also covers what was *offered* to the pipeline (and, with
    // `--trace-out`, each failure's sim-time span).
    let mut fleet = metrics.then(|| {
        if trace_out.is_some() {
            FleetMetrics::with_trace()
        } else {
            FleetMetrics::new()
        }
    });
    {
        let mut cur: Option<DeviceId> = None;
        let mut seq = 0u64;
        let mut buf: Vec<FailureEvent> = Vec::new();
        run_macro_study_streaming(&cfg, |e| {
            if let Some(f) = fleet.as_mut() {
                f.record(e);
            }
            if cur != Some(e.device) {
                if let Some(d) = cur {
                    if !buf.is_empty() {
                        batches.push(encode_batch(d, seq, &buf));
                        buf.clear();
                    }
                }
                cur = Some(e.device);
                seq = 0;
            }
            buf.push(*e);
            records += 1;
            if buf.len() >= batch_cap {
                batches.push(encode_batch(e.device, seq, &buf));
                seq += 1;
                buf.clear();
            }
        });
        if let (Some(d), false) = (cur, buf.is_empty()) {
            batches.push(encode_batch(d, seq, &buf));
        }
    }
    let encode_elapsed = t0.elapsed();
    let encoded_bytes: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let raw_bytes = records * RAW_RECORD_BYTES;
    println!(
        "encoded {} records into {} batches in {:.2} s ({:.0} records/s)",
        records,
        batches.len(),
        encode_elapsed.as_secs_f64(),
        records as f64 / encode_elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "bytes/record: {:.1} encoded vs {} raw ({:.0}% of raw)",
        encoded_bytes as f64 / records.max(1) as f64,
        RAW_RECORD_BYTES,
        encoded_bytes as f64 / raw_bytes.max(1) as f64 * 100.0,
    );

    // Phase 2 — drive the collector.
    let run = |workers: usize| -> Collector {
        let ccfg = CollectorConfig {
            workers,
            ..CollectorConfig::default()
        };
        run_ingest(&ccfg, |emit| {
            for b in &batches {
                emit(b.clone());
            }
        })
    };

    let t1 = Instant::now();
    let collector = run(threads);
    let ingest_elapsed = t1.elapsed();
    let report = collector.report();
    println!(
        "ingested {} batches in {:.2} s ({:.0} records/s)",
        report.counters.batches,
        ingest_elapsed.as_secs_f64(),
        report.counters.records as f64 / ingest_elapsed.as_secs_f64().max(1e-9),
    );
    print!("{}", report.render());

    if report.counters.decode_errors > 0 || report.unroutable > 0 {
        eprintln!(
            "ingest: FAIL — {} decode errors, {} unroutable batches",
            report.counters.decode_errors, report.unroutable
        );
        std::process::exit(1);
    }

    if verify {
        for workers in [1usize, 2, 8] {
            let d = run(workers).digest();
            if d != report.digest {
                eprintln!(
                    "ingest: FAIL — digest {d:016x} at {workers} workers != {:016x}",
                    report.digest
                );
                std::process::exit(1);
            }
            eprintln!("ingest: digest stable at {workers} worker(s)");
        }
    }

    if metrics {
        let tele = Telemetry::enabled();
        collector.record_metrics(&tele);
        // Exercise the instrumented checkpoint path: save, restore, and
        // confirm the round trip preserves the collector digest.
        let bytes = save_checkpoint_with(&collector, &tele);
        let restored = restore_checkpoint_with(&bytes, &tele).expect("checkpoint round trip");
        assert_eq!(
            restored.digest(),
            report.digest,
            "checkpoint round trip changed the collector digest"
        );
        let mut snap = tele.snapshot();
        if let Some(f) = &fleet {
            snap.merge(f.snapshot());
        }
        println!();
        print!("{}", render_metrics(&snap));
        if let Some(path) = &trace_out {
            std::fs::write(path, snap.trace_sink().to_chrome_json()).expect("write trace file");
            eprintln!(
                "ingest: wrote Chrome trace to {path} ({} events)",
                snap.trace().len()
            );
        }
    }

    println!("digest: {:016x}", report.digest);

    let snap = cellrel_bench::BenchSnapshot::new("ingest")
        .config("devices", devices)
        .config("days", days)
        .config("seed", seed)
        .config("threads", threads)
        .config("batch", batch_cap)
        .metric("records", records as f64)
        .metric("batches", batches.len() as f64)
        .metric(
            "encode_records_per_sec",
            records as f64 / encode_elapsed.as_secs_f64().max(1e-9),
        )
        .metric(
            "ingest_records_per_sec",
            report.counters.records as f64 / ingest_elapsed.as_secs_f64().max(1e-9),
        )
        .metric(
            "bytes_per_record",
            encoded_bytes as f64 / records.max(1) as f64,
        )
        .wall_seconds(t0.elapsed().as_secs_f64());
    let path = snap.write().expect("write bench snapshot");
    eprintln!("ingest: wrote {}", path.display());
}
