//! `repro` — regenerate every table and figure of the paper as text.
//!
//! ```sh
//! cargo run --release -p cellrel-bench --bin repro -- all
//! cargo run --release -p cellrel-bench --bin repro -- table1 fig15 timp
//! ```
//!
//! Experiment ids: headline, table1, table2, fig2 (= fig5), fig3, fig4,
//! fig6 (= fig7 fig8 fig9), fig10, fig11, fig12 (= fig13), fig14,
//! fig15 (= fig16), fig17, fig19 (= fig20), fig21, timp, overhead,
//! hardware, measurement.
//!
//! `repro export-csv <dir>` additionally writes the full event dataset and
//! per-device counts as CSV into `<dir>` for external plotting.
//!
//! Observability: `--metrics` appends the fleet metrics tables (counters
//! per kind/RAT/fault layer, per-kind duration histograms) and the
//! `registry digest:` line, which is bit-identical at any `--threads`
//! value; `--trace-out FILE` (implies `--metrics`) additionally writes
//! every failure as a Chrome trace-event span, loadable in Perfetto or
//! `chrome://tracing`.
//!
//! `--stream` runs the continuous windowed pipeline over a live-ordered
//! upload stream and asserts its merged view and Tables 1/2 are
//! byte-identical to the one-shot batch pipeline — the streaming identity
//! check, in-run. Combinable with experiment ids; alone it runs only the
//! streaming pass.
//!
//! `--cluster` runs the same upload stream through the sharded, replicated
//! serving tier (device-hash partitioning, segment-shipping replication,
//! scatter-gather federation) and asserts the merged store digest and the
//! federated Tables 1/2 are byte-identical to the one-shot batch pipeline
//! — the federation identity check, in-run.

// Wall-clock is the *measurement* in the fleet experiment (events/s), not
// simulation state — benches are outside the workspace-wide
// Instant/SystemTime gate.
#![allow(clippy::disallowed_types)]

use cellrel::analysis as an;
use cellrel::sim::SimRng;
use cellrel::telephony::RecoveryConfig;
use cellrel::timp::{anneal_probations, AnnealConfig, TimpModel};
use cellrel::types::SimDuration;
use cellrel::workload::durations::sample_auto_heal_secs;
use cellrel::workload::{
    run_fleet_event_driven, run_fleet_per_tick, run_rat_policy_ab, run_recovery_ab, FleetConfig,
    PopulationConfig,
};
use cellrel_bench::{
    ab_config, recovery_ab_config, standard_config, standard_study, BenchSnapshot,
};
use std::time::Instant;

const ALL: &[&str] = &[
    "headline",
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig10",
    "fig11",
    "fig12",
    "fig14",
    "fig15",
    "fig17",
    "fig19",
    "fig21",
    "fleet",
    "timp",
    "overhead",
    "hardware",
    "measurement",
];

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    // `--threads N` routes through the CELLREL_THREADS knob so every
    // driver below (macro study, A/B arms, sweeps) picks it up.
    if let Some(pos) = raw.iter().position(|w| w == "--threads") {
        let n = raw
            .get(pos + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .expect("--threads needs a number");
        std::env::set_var(cellrel::sim::par::THREADS_ENV, n.to_string());
        raw.drain(pos..pos + 2);
    }
    let mut metrics = false;
    if let Some(pos) = raw.iter().position(|w| w == "--metrics") {
        raw.remove(pos);
        metrics = true;
    }
    let mut stream = false;
    if let Some(pos) = raw.iter().position(|w| w == "--stream") {
        raw.remove(pos);
        stream = true;
    }
    let mut cluster = false;
    if let Some(pos) = raw.iter().position(|w| w == "--cluster") {
        raw.remove(pos);
        cluster = true;
    }
    let mut trace_out: Option<String> = None;
    if let Some(pos) = raw.iter().position(|w| w == "--trace-out") {
        let file = raw
            .get(pos + 1)
            .cloned()
            .expect("--trace-out needs a file path");
        raw.drain(pos..pos + 2);
        trace_out = Some(file);
        metrics = true;
    }
    let mut wanted = raw;
    if (wanted.is_empty() && !stream && !cluster) || wanted.iter().any(|w| w == "all") {
        wanted = ALL.iter().map(|s| s.to_string()).collect();
    }
    // Alias figure pairs that share one computation.
    fn canon(w: &str) -> &str {
        match w {
            "fig5" => "fig2",
            "fig7" | "fig8" | "fig9" => "fig6",
            "fig13" => "fig12",
            "fig16" => "fig15",
            "fig20" => "fig19",
            other => other,
        }
    }

    let cfg = standard_config();
    eprintln!(
        "repro: {} devices, {} BSes, {} days, seed {}, {} thread(s)",
        cfg.population.devices,
        cfg.bs_count,
        cfg.days,
        cfg.seed,
        cellrel::sim::auto_threads()
    );

    // Special form: `repro export-csv <dir>`.
    if let Some(pos) = wanted.iter().position(|w| w == "export-csv") {
        let dir = wanted
            .get(pos + 1)
            .cloned()
            .unwrap_or_else(|| "cellrel-export".to_string());
        std::fs::create_dir_all(&dir).expect("create export dir");
        let data = standard_study();
        let events_path = format!("{dir}/events.csv");
        let counts_path = format!("{dir}/device_counts.csv");
        std::fs::write(&events_path, an::export::dataset_csv(data)).expect("write events csv");
        std::fs::write(&counts_path, an::export::counts_csv(data)).expect("write counts csv");
        eprintln!(
            "wrote {} events to {events_path} and {} devices to {counts_path}",
            data.events.len(),
            data.population.len()
        );
        return;
    }

    let mut done = std::collections::BTreeSet::new();
    for w in &wanted {
        let id = canon(w);
        if !done.insert(id.to_string()) {
            continue;
        }
        match id {
            "headline" => println!("{}", an::headline::compute(standard_study()).render()),
            "table1" => println!("{}", an::table1::compute(standard_study()).render()),
            "table2" => println!("{}", an::table2::compute(standard_study(), 10).render()),
            "fig2" => println!(
                "{}",
                an::per_model::render(&an::per_model::compute(standard_study()))
            ),
            "fig3" => println!("{}", an::counts::compute(standard_study()).render()),
            "fig4" => println!("{}", an::duration_stats::compute(standard_study()).render()),
            "fig6" => println!("{}", an::groups::compute(standard_study()).render()),
            "fig10" => println!("{}", an::stall_recovery::compute(standard_study()).render()),
            "fig11" => println!("{}", an::zipf::compute(standard_study()).render()),
            "fig12" => println!("{}", an::isp::render(&an::isp::compute(standard_study()))),
            "fig14" => println!(
                "{}",
                an::per_rat::render(&an::per_rat::compute(standard_study()))
            ),
            "fig15" => println!("{}", an::signal::compute(standard_study()).render()),
            "hardware" => println!("{}", an::hardware::compute(standard_study()).render()),
            "measurement" => {
                let mut rng = SimRng::new(22);
                println!(
                    "{}",
                    an::measurement::compare_estimators(5_000, &mut rng).render()
                );
            }
            "fig17" => {
                let mut rng = SimRng::new(17);
                println!("{}", an::transitions::compute(4_000, &mut rng).render());
            }
            "fig19" => {
                eprintln!("running RAT-policy A/B fleets ...");
                let (v, p) = run_rat_policy_ab(&ab_config());
                println!("{}", an::ab::compare_rat_policy(v, p).render());
            }
            "fig21" => {
                eprintln!("running recovery A/B fleets ...");
                let (v, t) = run_recovery_ab(&recovery_ab_config());
                println!("{}", an::ab::compare_recovery(v, t).render());
            }
            "export-csv" => { /* handled below, needs the path argument */ }
            "fleet" => println!("{}", fleet_report()),
            "timp" => println!("{}", timp_report()),
            "overhead" => println!("{}", overhead_report()),
            other => eprintln!("unknown experiment id: {other}"),
        }
    }

    if stream {
        eprintln!("repro: running streaming identity pass ...");
        println!("{}", stream_report());
    }

    if cluster {
        eprintln!("repro: running cluster federation identity pass ...");
        println!("{}", cluster_report());
    }

    if metrics {
        eprintln!("repro: running fleet metrics pass ...");
        let (snap, devices) = cellrel::workload::run_fleet_metrics(&cfg, 0, trace_out.is_some());
        eprintln!("repro: fleet metrics over {devices} devices");
        print!("{}", an::metrics::render_metrics(&snap));
        if let Some(path) = trace_out {
            std::fs::write(&path, snap.trace_sink().to_chrome_json()).expect("write trace file");
            eprintln!(
                "repro: wrote Chrome trace to {path} ({} events)",
                snap.trace().len()
            );
        }
    }
}

/// The event-driven fleet experiment: run the same fleet twice — once with
/// the per-tick (1 s) scanner, once with the timer-wheel event-driven
/// driver — assert the reports are bit-identical, and record the measured
/// events/s of both in `BENCH_repro.json`. The speedup claim is only
/// meaningful because the baseline produces the *same bytes*.
fn fleet_report() -> String {
    let fcfg = FleetConfig {
        population: PopulationConfig {
            devices: 2_000,
            ..Default::default()
        },
        days: 2,
        bs_count: 2_000,
        ..FleetConfig::default()
    };
    let tick = SimDuration::from_secs(1);
    eprintln!(
        "fleet: per-tick baseline, {} devices x {} days at a {} tick ...",
        fcfg.population.devices, fcfg.days, tick
    );
    let t_scan = Instant::now();
    let scan = run_fleet_per_tick(&fcfg, tick, 0);
    let scan_wall = t_scan.elapsed().as_secs_f64();
    eprintln!("fleet: event-driven driver, same configuration ...");
    let t_ev = Instant::now();
    let ev = run_fleet_event_driven(&fcfg, 0);
    let ev_wall = t_ev.elapsed().as_secs_f64();

    assert_eq!(
        ev.digest, scan.digest,
        "event-driven and per-tick fleet drivers diverged"
    );
    assert_eq!(
        ev.metrics, scan.metrics,
        "fleet drivers produced different metrics"
    );

    let events = ev.events();
    let scan_eps = events as f64 / scan_wall.max(1e-9);
    let ev_eps = events as f64 / ev_wall.max(1e-9);
    let speedup = ev_eps / scan_eps.max(1e-9);
    eprintln!(
        "fleet: per-tick {scan_wall:.3} s ({scan_eps:.0} events/s), \
         event-driven {ev_wall:.3} s ({ev_eps:.0} events/s), {speedup:.1}x"
    );

    let snap = BenchSnapshot::new("repro")
        .config("devices", fcfg.population.devices)
        .config("days", fcfg.days)
        .config("seed", fcfg.seed)
        .config("tick_ms", tick.as_millis())
        .metric("events", events as f64)
        .metric("failures", ev.failures as f64)
        .metric("per_tick_events_per_sec", scan_eps)
        .metric("event_driven_events_per_sec", ev_eps)
        .metric("speedup", speedup)
        .metric("bytes_per_device", ev.bytes_per_device())
        .wall_seconds(scan_wall + ev_wall);
    let path = snap.write().expect("write bench snapshot");
    eprintln!("fleet: wrote {}", path.display());

    // Deterministic summary (stdout): counts and the shared digest only.
    format!(
        "== Event-driven fleet (scheduler tentpole) ==\n\
         devices: {}, days: {}\n\
         events: {events} ({} failure candidates, {} accepted failures, {} RAT jumps)\n\
         digest: {:016x} (identical for per-tick and event-driven drivers)\n\
         hot bytes/device (event-driven): {:.1}\n",
        ev.devices,
        ev.days,
        ev.candidates,
        ev.failures,
        ev.radio_events,
        ev.digest,
        ev.bytes_per_device(),
    )
}

/// The streaming identity experiment: run one fleet's upload stream both
/// ways — through the continuous windowed pipeline (watermark sealing,
/// tiered segments, late lane) and through the one-shot batch collector —
/// and assert the merged digest and Tables 1/2 are byte-identical. The
/// windowed decomposition must be invisible in every answer.
fn stream_report() -> String {
    use cellrel::analysis::store_tables::{table1_from_store, table2_from_store};
    use cellrel::ingest::{Collector, CollectorConfig};
    use cellrel::store::{DeviceDirectory, StoreConfig, StoreSink};
    use cellrel::stream::{batches_from_events, MemSegments, StreamConfig, StreamPipeline};
    use cellrel::workload::{run_macro_study, StudyConfig};

    let study = StudyConfig {
        population: PopulationConfig {
            devices: 1_500,
            ..Default::default()
        },
        days: 7,
        bs_count: 1_000,
        seed: 2021,
    };
    eprintln!(
        "stream: {} devices x {} days, daily windows, 2 h lateness ...",
        study.population.devices, study.days
    );
    let data = run_macro_study(&study);
    let dir = DeviceDirectory::from_population(&data.population);
    let batches = batches_from_events(&data.events, 48);

    let cfg = StreamConfig {
        window_ms: 86_400_000,
        lateness_ms: 2 * 3_600_000,
        hot_windows: 3,
        late_flush: 512,
        collector: CollectorConfig::default(),
        store: StoreConfig::default(),
    };
    let mut collector = Collector::new(&cfg.collector);
    let mut sink = StoreSink::new(&cfg.store, &dir);
    for b in &batches {
        collector.ingest_with(b, &mut sink);
    }
    let batch = sink.into_store();

    let mut segs = MemSegments::new();
    let mut p = StreamPipeline::new(&cfg, &dir).expect("valid config");
    for b in &batches {
        p.offer(b, &mut segs).expect("offer");
    }
    p.flush(&mut segs).expect("flush");

    assert_eq!(
        p.digest(),
        batch.digest(),
        "streamed merged view diverged from the batch store"
    );
    let (t1, t2) = p.tables(10).expect("valid queries");
    assert_eq!(
        t1.render(),
        table1_from_store(&batch).expect("valid query").render(),
        "incremental Table 1 diverged from the one-shot batch"
    );
    assert_eq!(
        t2.render(),
        table2_from_store(&batch, 10).expect("valid query").render(),
        "incremental Table 2 diverged from the one-shot batch"
    );

    let c = p.counters();
    format!(
        "== Continuous streaming (windowed pipeline) ==\n\
         batches: {} ({} records, {} routed late)\n\
         windows sealed: {} ({} late segments, {} segments persisted)\n\
         merged view == batch store: ok (tables 1/2 byte-identical)\n\
         digest: {:016x}\n",
        c.batches,
        c.records,
        c.late_records,
        c.windows_sealed,
        c.late_segments,
        c.segments_persisted,
        p.digest(),
    )
}

/// The cluster federation identity experiment: partition one fleet's
/// upload stream across shard leaders by device hash, replicate every
/// sealed segment to followers, and answer Tables 1/2 through the
/// scatter-gather router — asserting the merged store digest and both
/// federated tables are byte-identical to the one-shot batch pipeline.
/// The sharded decomposition must be invisible in every answer.
fn cluster_report() -> String {
    use cellrel::analysis::store_tables::{table1_from_store, table2_from_store};
    use cellrel::cluster::{shard_directories, Cluster, ClusterConfig};
    use cellrel::ingest::{Collector, CollectorConfig};
    use cellrel::store::{DeviceDirectory, StoreConfig, StoreSink};
    use cellrel::stream::{batches_from_events, StreamConfig};
    use cellrel::workload::{run_macro_study, StudyConfig};

    let study = StudyConfig {
        population: PopulationConfig {
            devices: 1_500,
            ..Default::default()
        },
        days: 7,
        bs_count: 1_000,
        seed: 2021,
    };
    let ccfg = ClusterConfig {
        shards: 2,
        replicas: 1,
        checkpoint_every: 8,
    };
    eprintln!(
        "cluster: {} devices x {} days across {} shards (+{} replica(s) each) ...",
        study.population.devices, study.days, ccfg.shards, ccfg.replicas
    );
    let data = run_macro_study(&study);
    let dir = DeviceDirectory::from_population(&data.population);
    let batches = batches_from_events(&data.events, 48);

    let cfg = StreamConfig {
        window_ms: 86_400_000,
        lateness_ms: 2 * 3_600_000,
        hot_windows: 3,
        late_flush: 512,
        collector: CollectorConfig::default(),
        store: StoreConfig::default(),
    };
    let mut collector = Collector::new(&cfg.collector);
    let mut sink = StoreSink::new(&cfg.store, &dir);
    for b in &batches {
        collector.ingest_with(b, &mut sink);
    }
    let batch = sink.into_store();

    let dirs = shard_directories(&dir, ccfg.shards);
    let mut cluster = Cluster::new(&cfg, &ccfg, &dirs).expect("valid config");
    for b in &batches {
        cluster.offer(b).expect("offer");
    }
    cluster.flush().expect("flush");
    cluster.publish();

    assert_eq!(
        cluster.digest(),
        batch.digest(),
        "sharded merged view diverged from the batch store"
    );
    let (t1, t2) = cluster.router().tables(10).expect("valid queries");
    assert_eq!(
        t1.render(),
        table1_from_store(&batch).expect("valid query").render(),
        "federated Table 1 diverged from the one-shot batch"
    );
    assert_eq!(
        t2.render(),
        table2_from_store(&batch, 10).expect("valid query").render(),
        "federated Table 2 diverged from the one-shot batch"
    );

    format!(
        "== Sharded serving tier (scatter-gather federation) ==\n\
         batches: {} across {} shards ({} replica(s) per shard)\n\
         merged view == batch store: ok (federated tables 1/2 byte-identical)\n\
         digest: {:016x}\n",
        batches.len(),
        cluster.shards(),
        ccfg.replicas,
        cluster.digest(),
    )
}

fn timp_report() -> String {
    let mut rng = SimRng::new(7);
    let samples: Vec<f64> = (0..50_000)
        .map(|_| sample_auto_heal_secs(&mut rng))
        .collect();
    let recovery = RecoveryConfig::vanilla();
    let model = TimpModel::from_durations(
        &samples,
        recovery.op_success,
        recovery.op_cost.map(|c| c.as_secs_f64()),
    );
    let t_vanilla = model.expected_recovery_time([60.0, 60.0, 60.0]);
    let t_paper = model.expected_recovery_time([21.0, 6.0, 16.0]);
    let result = anneal_probations(&model, &AnnealConfig::default());
    format!(
        "== TIMP optimisation (§4.2) ==\n\
         expected recovery time, vanilla (60,60,60): {t_vanilla:.1} s (paper: 38 s)\n\
         expected recovery time, paper (21,6,16):    {t_paper:.1} s (paper: 27.8 s)\n\
         annealed optimum {:?}: {:.1} s ({:.0}% better than vanilla)\n",
        result.probations,
        result.expected_time,
        result.improvement() * 100.0
    )
}

/// Encode a representative `n`-record batch with the real wire codec and
/// return its size in bytes — upload accounting uses measured encodings,
/// not a compression-factor estimate.
fn encoded_batch_bytes(n: u64, mean_gap_secs: u64, mean_duration_secs: u64) -> u64 {
    use cellrel::ingest::codec::encode_batch;
    use cellrel::types::{
        Apn, BsId, DataFailCause, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat,
        SignalLevel, SimDuration, SimTime,
    };
    let device = DeviceId(7);
    let events: Vec<FailureEvent> = (0..n)
        .map(|i| FailureEvent {
            device,
            kind: FailureKind::from_index((i % 3) as usize).expect("major kind"),
            start: SimTime::from_secs(i * mean_gap_secs + 13 * (i % 7)),
            duration: SimDuration::from_secs(mean_duration_secs + 17 * (i % 5)),
            cause: (i % 3 == 0).then(|| DataFailCause::from_code(2157 + (i % 4) as i32)),
            ctx: InSituInfo {
                rat: Rat::from_index((i % 4) as usize).expect("rat < 4"),
                signal: SignalLevel::new((i % 6) as u8),
                apn: Apn::Internet,
                bs: Some(BsId::gsm_cn(1, (i % 9) as u16, 40_000 + i as u32)),
                isp: Isp::A,
            },
        })
        .collect();
    encode_batch(device, 0, &events).len() as u64
}

fn overhead_report() -> String {
    use cellrel::monitor::OverheadAccounting;
    use cellrel::types::SimDuration;
    // Typical user: the paper's ~33 failures over 8 months.
    let mut typical = OverheadAccounting::new();
    for _ in 0..33 {
        typical.on_event();
        typical.on_probe(4, 1200);
        typical.on_record(35);
        typical.add_failure_window(SimDuration::from_secs(188));
    }
    // ~33 failures spread over 8 months ≈ one every 7 days.
    typical.on_upload(33, encoded_batch_bytes(33, 7 * 24 * 3600, 188));
    // Worst case: 40k failures/month with WiFi-batched uploads.
    let mut worst = OverheadAccounting::new();
    let batch_bytes = encoded_batch_bytes(1000, 65, 60); // ~40k/month ≈ one per 65 s
    let mut pending = 0u64;
    for i in 0..40_000u64 {
        worst.on_event();
        if i % 5 < 2 {
            worst.on_probe(3, 900);
        }
        worst.on_record(35);
        pending += 1;
        worst.add_failure_window(SimDuration::from_secs(60));
        if pending == 1000 {
            worst.on_upload(pending, batch_bytes);
            pending = 0;
        }
    }
    format!(
        "== Android-MOD overhead (§2.2) ==\n\
         typical user:    cpu {:.2}% (paper <2%), mem {} KB (paper <40 KB), \
         storage {} KB (paper <100 KB), network {} KB/mo (paper <100 KB)\n\
         worst-case user: cpu {:.2}% (paper <8%), mem {} KB (paper <2 MB), \
         storage {} KB (paper <20 MB), network {:.1} MB/mo (paper ~20 MB)\n\
         within budgets: typical={}, worst-case={}\n",
        typical.cpu_utilization() * 100.0,
        typical.peak_memory_bytes() / 1024,
        typical.storage_bytes() / 1024,
        typical.network_bytes() / 1024,
        worst.cpu_utilization() * 100.0,
        worst.peak_memory_bytes() / 1024,
        worst.storage_bytes() / 1024,
        worst.network_bytes() as f64 / (1024.0 * 1024.0),
        typical.within_typical_budget(),
        worst.within_worst_case_budget(),
    )
}
