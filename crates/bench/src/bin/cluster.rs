//! `cluster` — drive the sharded, replicated serving tier end to end:
//! partition a fleet's upload stream across shard leaders, replicate every
//! sealed segment to followers, federate the canonical query workload
//! through the scatter-gather router, and run the leader-kill failover
//! campaign — proving at every step that the sharded tier answers
//! byte-identically to one single-node store over the same records.
//!
//! ```sh
//! cargo run --release -p cellrel-bench --bin cluster
//! cargo run --release -p cellrel-bench --bin cluster -- --shards 4 --kills 8
//! ```
//!
//! Flags: `--devices N` (default 2,000), `--days D` (default 7), `--seed S`
//! (default 2021), `--shards P` (default 2), `--batch K` (records per
//! upload batch, default 48), `--rounds R` (workload repetitions for the
//! router throughput measurement, default 24), `--kills F` (failover
//! campaign size, default 8; 0 skips the campaign).
//!
//! Deterministic results (identity verdicts, the merged store digest, the
//! campaign digest) go to stdout; throughput and latency (router
//! queries/s, scatter fan-out p50/p99 µs, replication lag, failover
//! recovery ms) go to stderr and `BENCH_cluster.json`. Exits non-zero on
//! any divergence from the single-node ground truth.

// Wall-clock is the *measurement* here (scatter latency, replication lag,
// recovery time), not simulation state — benches are outside the
// Instant/SystemTime gate.
#![allow(clippy::disallowed_types)]

use cellrel::analysis::store_tables::{table1_from_store, table2_from_store};
use cellrel::cluster::{
    run_failover, shard_directories, Cluster, ClusterConfig, FailoverConfig, Follower, ShardLeader,
};
use cellrel::ingest::CollectorConfig;
use cellrel::sim::QuantileSketch;
use cellrel::store::{workload, DeviceDirectory, Store, StoreConfig};
use cellrel::stream::{batches_from_events, MemSegments, StreamConfig, StreamPipeline};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};
use std::time::Instant;

/// Rollup granularity of the default store config (one week).
const WEEK_MS: u64 = 7 * 86_400_000;

/// Table 2's top-k, matching the failover campaign's fixed value.
const TABLE2_K: usize = 8;

fn parse_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let value = args
        .get(pos + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse::<T>()
        .unwrap_or_else(|_| panic!("{flag}: bad value"));
    args.drain(pos..pos + 2);
    Some(value)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "MISMATCH"
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let devices = parse_flag::<usize>(&mut args, "--devices").unwrap_or(2_000);
    let days = parse_flag::<u64>(&mut args, "--days").unwrap_or(7);
    let seed = parse_flag::<u64>(&mut args, "--seed").unwrap_or(2021);
    let shards = parse_flag::<usize>(&mut args, "--shards")
        .unwrap_or(2)
        .max(1);
    let batch_cap = parse_flag::<usize>(&mut args, "--batch")
        .unwrap_or(48)
        .max(1);
    let rounds = parse_flag::<usize>(&mut args, "--rounds")
        .unwrap_or(24)
        .max(1);
    let kills = parse_flag::<usize>(&mut args, "--kills").unwrap_or(8);
    assert!(args.is_empty(), "unrecognised arguments: {args:?}");

    eprintln!("cluster: generating {devices} devices over {days} days (seed {seed}) ...");
    let t0 = Instant::now();
    let data = run_macro_study(&StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        days,
        bs_count: 1_000,
        seed,
    });
    let dir = DeviceDirectory::from_population(&data.population);
    let batches = batches_from_events(&data.events, batch_cap);
    eprintln!(
        "cluster: {} events -> {} upload batches in {:.2} s",
        data.events.len(),
        batches.len(),
        t0.elapsed().as_secs_f64()
    );

    let scfg = StreamConfig {
        window_ms: 86_400_000,
        lateness_ms: 2 * 3_600_000,
        hot_windows: 3,
        late_flush: 512,
        collector: CollectorConfig::default(),
        store: StoreConfig::default(),
    };
    let ccfg = ClusterConfig {
        shards,
        replicas: 1,
        checkpoint_every: 8,
    };
    let dirs = shard_directories(&dir, shards);

    // Single-node ground truth: one pipeline over the whole fleet.
    let mut single = StreamPipeline::new(&scfg, &dir).expect("single pipeline");
    let mut segs = MemSegments::new();
    for b in &batches {
        single.offer(b, &mut segs).expect("offer");
    }
    single.flush(&mut segs).expect("flush");
    let reference_digest = single.digest();
    let mut reference: Store = single.store();
    reference.seal_columnar();
    let ref_t1 = table1_from_store(&reference).expect("valid query");
    let ref_t2 = table2_from_store(&reference, TABLE2_K).expect("valid query");

    // The sharded run: every batch routed by device hash, every sealed
    // segment replicated to the shard's follower before the next offer.
    let t_ingest = Instant::now();
    let mut cluster = Cluster::new(&scfg, &ccfg, &dirs).expect("cluster");
    for b in &batches {
        cluster.offer(b).expect("offer");
    }
    cluster.flush().expect("flush");
    cluster.publish();
    let ingest_wall = t_ingest.elapsed().as_secs_f64();
    let batches_per_sec = batches.len() as f64 / ingest_wall.max(1e-9);
    eprintln!(
        "cluster: {} batches through {shards} shard(s) (+1 replica each) in {ingest_wall:.2} s \
         ({batches_per_sec:.0} batches/s, replication inline)",
        batches.len(),
    );

    let digest_ok = cluster.digest() == reference_digest;
    println!(
        "cluster: {shards}-shard merged store identical to single-node: {}",
        verdict(digest_ok)
    );

    // Scatter-gather: the canonical workload through the router, repeated
    // for a stable throughput figure; every answer checked against the
    // single-node store on the first round.
    let router = cluster.router();
    let canonical = workload::canonical(WEEK_MS);
    let mut scatter_lat = QuantileSketch::new();
    let mut rows_ok = true;
    let t_query = Instant::now();
    for round in 0..rounds {
        for (name, q) in &canonical {
            let t = Instant::now();
            let routed = router.query(q).expect("canonical queries are legal");
            scatter_lat.push(t.elapsed().as_micros() as u64);
            if round == 0 {
                let want = reference.query(q).expect("canonical queries are legal");
                if routed.result.rows != want.rows {
                    rows_ok = false;
                    eprintln!("cluster: federated rows diverged on workload query {name}");
                }
            }
        }
    }
    let query_wall = t_query.elapsed().as_secs_f64();
    let queries = (rounds * canonical.len()) as f64;
    let queries_per_sec = queries / query_wall.max(1e-9);
    let scatter_p50 = scatter_lat.quantile(0.5).unwrap_or(0);
    let scatter_p99 = scatter_lat.quantile(0.99).unwrap_or(0);
    eprintln!(
        "cluster: {queries:.0} federated queries in {query_wall:.2} s \
         ({queries_per_sec:.0} queries/s, scatter p50 {scatter_p50} us, p99 {scatter_p99} us)",
    );
    println!(
        "cluster: federated workload rows identical to single-node: {}",
        verdict(rows_ok)
    );

    // Federated Tables 1/2 versus the single-node renders.
    let (t1, t2) = router.tables(TABLE2_K).expect("valid queries");
    let tables_ok = t1.render() == ref_t1.render() && t2.render() == ref_t2.render();
    println!(
        "cluster: federated tables 1/2 identical to single-node: {}",
        verdict(tables_ok)
    );

    // Replication lag: a dedicated one-shard leader/follower pair over the
    // same stream, timing every frame's apply — ship-to-applied latency.
    let dirs1 = shard_directories(&dir, 1);
    let mut leader = ShardLeader::new(&scfg, &dirs1[0], 0, ccfg.checkpoint_every).expect("leader");
    let mut follower = Follower::new(&scfg, &dirs1[0], 0);
    let mut rep_lat = QuantileSketch::new();
    let mut rep_frames = 0u64;
    let mut rep_bytes = 0u64;
    let mut rep_wall = 0.0f64;
    for b in &batches {
        for frame in leader.offer(b).expect("offer") {
            rep_frames += 1;
            rep_bytes += frame.len() as u64;
            let t = Instant::now();
            follower.apply(&frame);
            let dt = t.elapsed();
            rep_wall += dt.as_secs_f64();
            rep_lat.push(dt.as_micros() as u64);
        }
    }
    for frame in leader.flush().expect("flush") {
        rep_frames += 1;
        rep_bytes += frame.len() as u64;
        let t = Instant::now();
        follower.apply(&frame);
        let dt = t.elapsed();
        rep_wall += dt.as_secs_f64();
        rep_lat.push(dt.as_micros() as u64);
    }
    let replica_ok = follower.sealed_store().digest() == leader.digest();
    let rep_p50 = rep_lat.quantile(0.5).unwrap_or(0);
    let rep_p99 = rep_lat.quantile(0.99).unwrap_or(0);
    let rep_lag_ms = rep_wall * 1e3 / (rep_frames.max(1) as f64);
    eprintln!(
        "cluster: replicated {rep_frames} frames ({} KB) — apply lag mean {rep_lag_ms:.3} ms, \
         p50 {rep_p50} us, p99 {rep_p99} us",
        rep_bytes / 1024,
    );
    println!(
        "cluster: follower sealed view identical to leader: {}",
        verdict(replica_ok)
    );

    // Failover recovery: run a fresh cluster to mid-stream, kill shard 0's
    // leader and time the promotion (checkpoint restore + segment replay +
    // replacement-follower backfill over the wire).
    let mut victim = Cluster::new(&scfg, &ccfg, &dirs).expect("cluster");
    for b in &batches[..batches.len() / 2] {
        victim.offer(b).expect("offer");
    }
    let t_promote = Instant::now();
    victim.promote(0).expect("promote");
    let recovery_ms = t_promote.elapsed().as_secs_f64() * 1e3;
    eprintln!("cluster: leader kill at mid-stream -> follower promoted in {recovery_ms:.1} ms");

    // The full campaign: every kill must converge to the baseline bytes.
    let mut campaign_failures = 0u64;
    let mut campaign_digest = 0u64;
    if kills > 0 {
        let fcfg = FailoverConfig { kills, seed };
        let t_campaign = Instant::now();
        let report = run_failover(&scfg, &ccfg, &fcfg, &dirs, &batches).expect("campaign");
        eprintln!(
            "cluster: failover campaign ({kills} kills) in {:.2} s",
            t_campaign.elapsed().as_secs_f64()
        );
        campaign_failures = report.failures;
        campaign_digest = report.digest;
        println!(
            "cluster: failover campaign: {} kills, {} failures, {} mid-window",
            report.outcomes.len(),
            report.failures,
            report.mid_window_kills
        );
        println!("campaign digest: {:016x}", report.digest);
    }
    println!("digest: {:016x}", cluster.digest());

    let converged = digest_ok && rows_ok && tables_ok && replica_ok && campaign_failures == 0;
    if !converged {
        eprintln!("cluster: FAIL — sharded tier diverged from the single-node ground truth");
        std::process::exit(1);
    }

    let snap = cellrel_bench::BenchSnapshot::new("cluster")
        .config("devices", devices)
        .config("days", days)
        .config("seed", seed)
        .config("shards", shards)
        .config("batch", batch_cap)
        .config("rounds", rounds)
        .config("kills", kills)
        .metric("batches", batches.len() as f64)
        .metric("ingest_batches_per_sec", batches_per_sec)
        .metric("router_queries_per_sec", queries_per_sec)
        .metric("scatter_p50_us", scatter_p50 as f64)
        .metric("scatter_p99_us", scatter_p99 as f64)
        .metric("replication_frames", rep_frames as f64)
        .metric("replication_lag_ms", rep_lag_ms)
        .metric("replication_lag_p50_us", rep_p50 as f64)
        .metric("replication_lag_p99_us", rep_p99 as f64)
        .metric("failover_recovery_ms", recovery_ms)
        .metric("campaign_kills", kills as f64)
        .metric("campaign_failures", campaign_failures as f64)
        .metric(
            "campaign_digest_low32",
            (campaign_digest & 0xffff_ffff) as f64,
        )
        .wall_seconds(t0.elapsed().as_secs_f64());
    let path = snap.write().expect("write bench snapshot");
    eprintln!("cluster: wrote {}", path.display());
}
