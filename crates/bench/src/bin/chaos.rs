//! `chaos` — run a deterministic fault campaign with cross-stack invariant
//! checking, or replay one scenario from a violation report.
//!
//! ```sh
//! cargo run --release -p cellrel-bench --bin chaos -- --scenarios 256
//! cargo run --release -p cellrel-bench --bin chaos -- --replay 41
//! cargo run --release -p cellrel-bench --bin chaos -- --scenarios 64 \
//!     --threads 2 --fail-on-violation --csv out/
//! ```
//!
//! Flags: `--scenarios N` (default 256), `--seed S` (default 2021),
//! `--threads N` (0 = auto), `--hours H` (fault horizon, default 6),
//! `--replay ID` (run one scenario and print its violations),
//! `--csv DIR` (write summary + violations CSV into DIR),
//! `--fail-on-violation` (exit 1 if any invariant fails),
//! `--metrics` (run with telemetry attached and print the metrics tables
//! plus a thread-count-invariant `registry digest:` line),
//! `--trace-out FILE` (implies `--metrics`; write device spans — stall
//! recoveries, OOS outages — as Chrome trace-event JSON for Perfetto).
//!
//! `--kill-restart` switches to the streaming-pipeline kill/restart
//! campaign instead: `--kills N` (default 32) random kill points over a
//! live-ordered upload stream (`--devices`, `--days`, `--batch` size the
//! fleet; `--seed` seeds both the fleet and the kill points), each
//! restored from its last durable checkpoint and replayed to the end —
//! any divergence from the uninterrupted run (store digest, manifest,
//! Tables 1/2, counters) exits non-zero. The final `digest:` line is the
//! campaign content digest, identical across reruns.
//!
//! The final `digest: <hex>` line is the campaign's content digest: it is
//! identical at any thread count and across re-runs — CI compares it to
//! catch nondeterminism.

// Wall-clock is the *measurement* here (scenarios/s, events/s), not
// simulation state — benches are outside the workspace-wide
// Instant/SystemTime gate.
#![allow(clippy::disallowed_types)]

use cellrel::analysis::export::{
    campaign_coverage_table, campaign_summary_csv, campaign_summary_table, campaign_violations_csv,
    campaign_violations_table,
};
use cellrel::analysis::render_metrics;
use cellrel::ingest::CollectorConfig;
use cellrel::store::{DeviceDirectory, StoreConfig};
use cellrel::stream::{batches_from_events, run_kill_restart, KillRestartConfig, StreamConfig};
use cellrel::types::SimDuration;
use cellrel::workload::{
    replay_scenario, run_chaos_campaign, run_chaos_campaign_metrics, run_macro_study, ChaosConfig,
    ChaosScenario, PopulationConfig, StudyConfig,
};
use std::time::Instant;

fn parse_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let value = args
        .get(pos + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse::<T>()
        .unwrap_or_else(|_| panic!("{flag}: bad value"));
    args.drain(pos..pos + 2);
    Some(value)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ChaosConfig::default();
    if let Some(n) = parse_flag::<u64>(&mut args, "--scenarios") {
        cfg.scenarios = n;
    }
    if let Some(s) = parse_flag::<u64>(&mut args, "--seed") {
        cfg.root_seed = s;
    }
    if let Some(t) = parse_flag::<usize>(&mut args, "--threads") {
        cfg.threads = t;
    }
    if let Some(h) = parse_flag::<u64>(&mut args, "--hours") {
        cfg.horizon = SimDuration::from_hours(h);
    }
    let replay = parse_flag::<u64>(&mut args, "--replay");
    let csv_dir = parse_flag::<String>(&mut args, "--csv");
    let trace_out = parse_flag::<String>(&mut args, "--trace-out");
    let mut metrics = trace_out.is_some();
    if let Some(pos) = args.iter().position(|a| a == "--metrics") {
        args.remove(pos);
        metrics = true;
    }
    let fail_on_violation = if let Some(pos) = args.iter().position(|a| a == "--fail-on-violation")
    {
        args.remove(pos);
        true
    } else {
        false
    };
    let kill_restart = if let Some(pos) = args.iter().position(|a| a == "--kill-restart") {
        args.remove(pos);
        true
    } else {
        false
    };
    let kills = parse_flag::<usize>(&mut args, "--kills").unwrap_or(32);
    let kr_devices = parse_flag::<usize>(&mut args, "--devices").unwrap_or(1_200);
    let kr_days = parse_flag::<u64>(&mut args, "--days").unwrap_or(10);
    let batch_cap = parse_flag::<usize>(&mut args, "--batch")
        .unwrap_or(48)
        .max(1);
    assert!(args.is_empty(), "unrecognised arguments: {args:?}");

    if kill_restart {
        stream_kill_restart(cfg.root_seed, kills, kr_devices, kr_days, batch_cap);
        return;
    }

    if let Some(id) = replay {
        // Replay one scenario: same seed derivation as the campaign run,
        // so the outcome (and any violation's event index) is identical.
        let scenario = ChaosScenario::decode(id);
        eprintln!(
            "chaos: replaying scenario {id} (seed {}): {}",
            cfg.root_seed,
            scenario.describe()
        );
        let outcome = replay_scenario(&cfg, id);
        println!(
            "scenario {id}: {} events, {} violation(s)",
            outcome.events,
            outcome.violations.len()
        );
        for v in &outcome.violations {
            println!("  {v}");
        }
        if fail_on_violation && !outcome.violations.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    eprintln!(
        "chaos: {} scenarios (grid {}), seed {}, horizon {} + grace {}, threads {}",
        cfg.scenarios,
        ChaosScenario::GRID,
        cfg.root_seed,
        cfg.horizon,
        cfg.grace,
        if cfg.threads == 0 {
            "auto".to_string()
        } else {
            cfg.threads.to_string()
        },
    );
    let t0 = Instant::now();
    let (report, metrics_snap) = if metrics {
        let (report, snap) = run_chaos_campaign_metrics(&cfg, trace_out.is_some());
        (report, Some(snap))
    } else {
        (run_chaos_campaign(&cfg), None)
    };

    print!("{}", campaign_summary_table(&report).render());
    println!();
    print!("{}", campaign_coverage_table(&report).render());
    if !report.violations.is_empty() {
        println!();
        print!("{}", campaign_violations_table(&report).render());
        println!();
        println!(
            "replay any violation with: chaos --seed {} --replay <scenario>",
            cfg.root_seed
        );
    }

    if let Some(dir) = csv_dir {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create csv dir");
        std::fs::write(
            dir.join("campaign_summary.csv"),
            campaign_summary_csv(&report),
        )
        .expect("write summary csv");
        std::fs::write(
            dir.join("campaign_violations.csv"),
            campaign_violations_csv(&report),
        )
        .expect("write violations csv");
        eprintln!("chaos: CSV written to {}", dir.display());
    }

    if let Some(snap) = &metrics_snap {
        println!();
        print!("{}", render_metrics(snap));
        if let Some(path) = &trace_out {
            std::fs::write(path, snap.trace_sink().to_chrome_json()).expect("write trace file");
            eprintln!(
                "chaos: wrote Chrome trace to {path} ({} events)",
                snap.trace().len()
            );
        }
    }

    println!("digest: {:016x}", report.digest());

    let wall = t0.elapsed().as_secs_f64();
    let snap = cellrel_bench::BenchSnapshot::new("chaos")
        .config("scenarios", cfg.scenarios)
        .config("seed", cfg.root_seed)
        .config("threads", cfg.threads)
        .config("horizon", cfg.horizon)
        .metric("events", report.events as f64)
        .metric("events_per_sec", report.events as f64 / wall.max(1e-9))
        .metric(
            "scenarios_per_sec",
            report.scenarios as f64 / wall.max(1e-9),
        )
        .metric("violations", report.violations.len() as f64)
        .wall_seconds(wall);
    let path = snap.write().expect("write bench snapshot");
    eprintln!("chaos: wrote {}", path.display());

    if fail_on_violation && !report.violations.is_empty() {
        std::process::exit(1);
    }
}

/// The streaming-pipeline kill/restart campaign: `kills` random crash
/// points over one live-ordered upload stream, each restored from its
/// last durable checkpoint and required to reproduce the uninterrupted
/// run byte for byte. Exits non-zero on any divergence.
fn stream_kill_restart(seed: u64, kills: usize, devices: usize, days: u64, batch_cap: usize) {
    eprintln!(
        "chaos: kill/restart campaign — {kills} kills over {devices} devices x {days} days \
         (seed {seed}, batch cap {batch_cap})"
    );
    let t0 = Instant::now();
    let data = run_macro_study(&StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        days,
        bs_count: 2_000,
        seed,
    });
    let dir = DeviceDirectory::from_population(&data.population);
    let batches = batches_from_events(&data.events, batch_cap);
    let cfg = StreamConfig {
        window_ms: 86_400_000,
        lateness_ms: 2 * 3_600_000,
        hot_windows: 3,
        late_flush: 512,
        collector: CollectorConfig::default(),
        store: StoreConfig::default(),
    };
    let kcfg = KillRestartConfig {
        kills,
        seed,
        checkpoint_every: 5,
    };
    let report = run_kill_restart(&cfg, &kcfg, &dir, &batches).expect("campaign runs");
    for o in report.outcomes.iter().filter(|o| !o.ok) {
        println!(
            "kill at batch {} (restored cursor {}): {}",
            o.kill_at, o.restored_cursor, o.detail
        );
    }
    println!(
        "kill/restart: {} kills over {} batches, {} mid-window, {} diverged \
         (baseline: {} segments, digest {:016x})",
        report.outcomes.len(),
        batches.len(),
        report.mid_window_kills,
        report.failures,
        report.baseline_segments,
        report.baseline_digest,
    );
    println!("digest: {:016x}", report.digest);
    eprintln!(
        "chaos: kill/restart campaign finished in {:.2} s",
        t0.elapsed().as_secs_f64()
    );
    if report.failures > 0 {
        eprintln!(
            "chaos: FAIL — {} kill(s) diverged from the uninterrupted run",
            report.failures
        );
        std::process::exit(1);
    }
}
