//! `queryd` — stand up the query daemon on a local TCP port, hammer it
//! with N concurrent clients while a live ingest feed publishes snapshots,
//! and prove the served Table 1 / Table 2 are byte-identical to the batch
//! analysis of the same fleet.
//!
//! ```sh
//! cargo run --release -p cellrel-bench --bin queryd -- --clients 4
//! cargo run --release -p cellrel-bench --bin queryd -- --clients 2 --rounds 5
//! ```
//!
//! Flags: `--devices N` (default 3,000), `--days D` (default 14), `--seed S`
//! (default 2021), `--clients C` (concurrent TCP clients, default 4),
//! `--rounds R` (workload repetitions per client, default 20), `--chunk K`
//! (publish a snapshot every K ingested events; 0 = events/16),
//! `--metrics` (print the server's request-metrics tables).
//!
//! While the feed is appending, a probe client repeatedly fetches the four
//! table queries pinned to a single epoch — snapshot isolation means every
//! pinned set is internally consistent mid-ingest. After the final publish
//! the served tables must render byte-for-byte equal to
//! `analysis::table1/table2::compute` on the raw dataset; the process
//! exits non-zero otherwise. Deterministic results (identity verdicts,
//! error counts, the final store digest) go to stdout; throughput and
//! latency (queries/s, p50/p99 µs) go to stderr and `BENCH_queryd.json`.

// Wall-clock is the *measurement* here (queries/s, latency), not
// simulation state — benches are outside the Instant/SystemTime gate.
#![allow(clippy::disallowed_types)]

use cellrel::analysis::store_tables::{
    table1_from_results, table1_queries, table2_from_result, table2_query,
};
use cellrel::analysis::table1::Table1;
use cellrel::analysis::table2::Table2;
use cellrel::analysis::{render_metrics, table1, table2};
use cellrel::queryd::{feed_events, serve, QuerydCore, TcpClient, WallClock};
use cellrel::sim::{Merge, QuantileSketch};
use cellrel::store::{DeviceDirectory, Store, StoreConfig};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn parse_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let value = args
        .get(pos + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse::<T>()
        .unwrap_or_else(|_| panic!("{flag}: bad value"));
    args.drain(pos..pos + 2);
    Some(value)
}

fn parse_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Fetch the four table queries pinned to one snapshot epoch. Returns
/// `None` if a publish landed between queries (callers retry) or a query
/// failed.
fn fetch_tables(client: &mut TcpClient) -> Option<(Table1, Table2, u64)> {
    let [qd, qf, qc] = table1_queries();
    let (e1, devices) = client.query(&qd).ok()?;
    let (e2, failing) = client.query(&qf).ok()?;
    let (e3, counts) = client.query(&qc).ok()?;
    let (e4, causes) = client.query(&table2_query()).ok()?;
    (e1 == e2 && e2 == e3 && e3 == e4).then(|| {
        (
            table1_from_results(&[devices, failing, counts]),
            table2_from_result(&causes, 10),
            e1,
        )
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let devices = parse_flag::<usize>(&mut args, "--devices").unwrap_or(3_000);
    let days = parse_flag::<u64>(&mut args, "--days").unwrap_or(14);
    let seed = parse_flag::<u64>(&mut args, "--seed").unwrap_or(2021);
    let clients = parse_flag::<usize>(&mut args, "--clients")
        .unwrap_or(4)
        .max(1);
    let rounds = parse_flag::<usize>(&mut args, "--rounds")
        .unwrap_or(20)
        .max(1);
    let chunk = parse_flag::<usize>(&mut args, "--chunk").unwrap_or(0);
    let metrics = parse_switch(&mut args, "--metrics");
    assert!(args.is_empty(), "unrecognised arguments: {args:?}");

    let cfg = StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        days,
        bs_count: 2_000,
        seed,
    };
    eprintln!("queryd: generating {devices} devices over {days} days (seed {seed}) ...");
    let t0 = Instant::now();
    let data = run_macro_study(&cfg);
    let dir = DeviceDirectory::from_population(&data.population);
    let chunk = if chunk == 0 {
        (data.events.len() / 16).max(1)
    } else {
        chunk
    };
    eprintln!(
        "queryd: {} events in {:.2} s; publishing every {chunk} events",
        data.events.len(),
        t0.elapsed().as_secs_f64()
    );

    // The batch ground truth the served tables must reproduce exactly.
    let batch_t1 = table1::compute(&data);
    let batch_t2 = table2::compute(&data, 10);

    // The server starts on an *empty* store; everything it ever serves
    // arrives through the live feed.
    let store_cfg = StoreConfig::default();
    let clock: WallClock = {
        let base = Instant::now();
        Arc::new(move || base.elapsed().as_micros() as u64)
    };
    let core = QuerydCore::with_clock(Store::new(&store_cfg), clock);
    let server = serve(core.clone(), "127.0.0.1:0").expect("bind queryd");
    let addr = server.addr();
    eprintln!("queryd: serving on {addr} with {clients} clients x {rounds} rounds");

    let week_ms = u64::from(store_cfg.rollup_buckets) * store_cfg.bucket_ms;
    let queries = cellrel_bench::queries::canonical(week_ms);

    let feeding = AtomicBool::new(true);
    let t_serve = Instant::now();
    let mut latency = QuantileSketch::new();
    let mut executed = 0u64;
    let mut errors = 0u64;
    let mut final_epoch = 0u64;
    let mut mid_feed_sets = 0u64;
    std::thread::scope(|s| {
        let feed = s.spawn(|| {
            let epoch = feed_events(&core, &store_cfg, &dir, &data.events, chunk, |_| {});
            feeding.store(false, Ordering::Release);
            epoch
        });
        // Probe: epoch-pinned table sets while ingest is appending.
        let probe = s.spawn(|| {
            let mut client = TcpClient::connect(addr).expect("probe connect");
            let mut consistent = 0u64;
            while feeding.load(Ordering::Acquire) {
                if fetch_tables(&mut client).is_some() {
                    consistent += 1;
                }
            }
            consistent
        });
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let queries = &queries;
                s.spawn(move || {
                    let mut client = TcpClient::connect(addr).expect("client connect");
                    let mut lat = QuantileSketch::new();
                    let mut n = 0u64;
                    let mut errs = 0u64;
                    for _ in 0..rounds {
                        for (name, q) in queries {
                            let t = Instant::now();
                            match client.query(q) {
                                Ok(_) => {}
                                Err(e) => {
                                    errs += 1;
                                    eprintln!("queryd: client error on {name}: {e}");
                                }
                            }
                            lat.push(t.elapsed().as_micros() as u64);
                            n += 1;
                        }
                    }
                    (lat, n, errs)
                })
            })
            .collect();
        for w in workers {
            let (lat, n, errs) = w.join().expect("client thread");
            latency.merge(lat);
            executed += n;
            errors += errs;
        }
        final_epoch = feed.join().expect("feed thread");
        mid_feed_sets = probe.join().expect("probe thread");
    });
    let serve_elapsed = t_serve.elapsed();

    // Final identity check over the wire, pinned to the final epoch.
    let mut client = TcpClient::connect(addr).expect("verify connect");
    let (t1_wire, t2_wire, epoch) = fetch_tables(&mut client).expect("post-feed tables");
    assert_eq!(epoch, final_epoch, "no publishes after the feed finished");
    let t1_ok = t1_wire.render() == batch_t1.render();
    let t2_ok = t2_wire.render() == batch_t2.render();
    println!(
        "queryd: served table1 identical to batch: {}",
        verdict(t1_ok)
    );
    println!(
        "queryd: served table2 identical to batch: {}",
        verdict(t2_ok)
    );
    println!("queryd: client errors: {errors}");

    let stats = client.stats().expect("server stats");
    let snap = core.snapshot();
    eprintln!(
        "queryd: epoch {} serving {} cells / {} devices / {} records; {} requests ({} mid-feed pinned table sets)",
        stats.epoch, stats.cells, stats.devices, stats.inserted, stats.requests_served, mid_feed_sets,
    );
    let qps = executed as f64 / serve_elapsed.as_secs_f64().max(1e-9);
    let p50 = latency.quantile(0.5).unwrap_or(0);
    let p99 = latency.quantile(0.99).unwrap_or(0);
    eprintln!(
        "queryd: {executed} queries from {clients} clients in {:.2} s ({qps:.0} queries/s, p50 {p50} us, p99 {p99} us)",
        serve_elapsed.as_secs_f64(),
    );

    if metrics {
        println!();
        print!("{}", render_metrics(&core.metrics().snapshot()));
    }
    println!("digest: {:016x}", snap.store.digest());
    server.shutdown();

    if !(t1_ok && t2_ok) || errors > 0 {
        eprintln!("queryd: FAIL — served tables diverged from batch or clients saw errors");
        std::process::exit(1);
    }

    let snap = cellrel_bench::BenchSnapshot::new("queryd")
        .config("devices", devices)
        .config("days", days)
        .config("seed", seed)
        .config("clients", clients)
        .config("rounds", rounds)
        .config("chunk", chunk)
        .metric("queries", executed as f64)
        .metric("queries_per_sec", qps)
        .metric("p50_latency_us", p50 as f64)
        .metric("p99_latency_us", p99 as f64)
        .metric("errors", errors as f64)
        .metric("final_epoch", final_epoch as f64)
        .metric("mid_feed_table_sets", mid_feed_sets as f64)
        .wall_seconds(t0.elapsed().as_secs_f64());
    let path = snap.write().expect("write bench snapshot");
    eprintln!("queryd: wrote {}", path.display());
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "MISMATCH"
    }
}
