//! `stream` — drive the continuous windowed pipeline over a live-ordered
//! upload stream, measure sealing throughput and latency plus restart
//! recovery time, and prove the merged view and Tables 1/2 are
//! byte-identical to the one-shot batch pipeline over the same batches.
//!
//! ```sh
//! cargo run --release -p cellrel-bench --bin stream
//! cargo run --release -p cellrel-bench --bin stream -- --devices 1000 --days 7
//! ```
//!
//! Flags: `--devices N` (default 3,000), `--days D` (default 14), `--seed S`
//! (default 2021), `--batch K` (records per upload batch, default 48),
//! `--checkpoint-every C` (durable checkpoint every C offers in addition
//! to every seal, default 16).
//!
//! Deterministic results (identity verdicts, the final store digest) go to
//! stdout; throughput and latency (windows/s, seal p50/p99 µs, recovery
//! ms) go to stderr and `BENCH_stream.json`. Exits non-zero if the
//! streamed view or either table diverges from the batch ground truth.

// Wall-clock is the *measurement* here (seal latency, recovery time), not
// simulation state — benches are outside the Instant/SystemTime gate.
#![allow(clippy::disallowed_types)]

use cellrel::analysis::store_tables::{table1_from_store, table2_from_store};
use cellrel::ingest::{Collector, CollectorConfig};
use cellrel::sim::QuantileSketch;
use cellrel::store::{DeviceDirectory, Store, StoreConfig, StoreSink};
use cellrel::stream::{batches_from_events, MemSegments, StreamConfig, StreamPipeline};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};
use std::time::Instant;

fn parse_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let value = args
        .get(pos + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse::<T>()
        .unwrap_or_else(|_| panic!("{flag}: bad value"));
    args.drain(pos..pos + 2);
    Some(value)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "MISMATCH"
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let devices = parse_flag::<usize>(&mut args, "--devices").unwrap_or(3_000);
    let days = parse_flag::<u64>(&mut args, "--days").unwrap_or(14);
    let seed = parse_flag::<u64>(&mut args, "--seed").unwrap_or(2021);
    let batch_cap = parse_flag::<usize>(&mut args, "--batch")
        .unwrap_or(48)
        .max(1);
    let checkpoint_every = parse_flag::<u64>(&mut args, "--checkpoint-every").unwrap_or(16);
    assert!(args.is_empty(), "unrecognised arguments: {args:?}");

    eprintln!("stream: generating {devices} devices over {days} days (seed {seed}) ...");
    let t0 = Instant::now();
    let data = run_macro_study(&StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        days,
        bs_count: 2_000,
        seed,
    });
    let dir = DeviceDirectory::from_population(&data.population);
    let batches = batches_from_events(&data.events, batch_cap);
    eprintln!(
        "stream: {} events -> {} upload batches in {:.2} s",
        data.events.len(),
        batches.len(),
        t0.elapsed().as_secs_f64()
    );

    let cfg = StreamConfig {
        window_ms: 86_400_000,
        lateness_ms: 2 * 3_600_000,
        hot_windows: 3,
        late_flush: 512,
        collector: CollectorConfig::default(),
        store: StoreConfig::default(),
    };

    // The one-shot batch ground truth: the same batches through the same
    // collector into one store, no windows in between.
    let mut collector = Collector::new(&cfg.collector);
    let mut sink = StoreSink::new(&cfg.store, &dir);
    for b in &batches {
        collector.ingest_with(b, &mut sink);
    }
    let batch_store: Store = sink.into_store();
    let batch_t1 = table1_from_store(&batch_store).expect("valid query");
    let batch_t2 = table2_from_store(&batch_store, 10).expect("valid query");

    // The streamed run: every offer timed, sealing offers feed the
    // seal-latency sketch, durable checkpoints at every seal plus a fixed
    // cadence (the crash-survivable state a restart would see).
    let mut segs = MemSegments::new();
    let mut p = StreamPipeline::new(&cfg, &dir).expect("valid config");
    let mut seal_lat = QuantileSketch::new();
    let mut durable = p.checkpoint();
    let mut ckpts = 1u64;
    let mut ckpt_bytes = durable.len() as u64;
    let t_stream = Instant::now();
    for (i, b) in batches.iter().enumerate() {
        let t = Instant::now();
        let sealed = p.offer(b, &mut segs).expect("offer");
        if !sealed.is_empty() {
            seal_lat.push(t.elapsed().as_micros() as u64);
        }
        if !sealed.is_empty() || (checkpoint_every > 0 && (i as u64 + 1) % checkpoint_every == 0) {
            durable = p.checkpoint();
            ckpts += 1;
            ckpt_bytes += durable.len() as u64;
        }
    }
    p.flush(&mut segs).expect("flush");
    durable = p.checkpoint();
    ckpts += 1;
    ckpt_bytes += durable.len() as u64;
    let stream_wall = t_stream.elapsed().as_secs_f64();

    // Recovery: restore the final durable checkpoint against the persisted
    // segments — the full restart path, including reloading and verifying
    // every manifest segment and rebuilding the tiers.
    let t_rec = Instant::now();
    let restored = StreamPipeline::restore(&durable, &dir, &segs).expect("restore");
    let recovery_ms = t_rec.elapsed().as_secs_f64() * 1e3;
    let restore_ok = restored.digest() == p.digest();

    let c = *p.counters();
    let windows_per_sec = c.windows_sealed as f64 / stream_wall.max(1e-9);
    let seal_p50 = seal_lat.quantile(0.5).unwrap_or(0);
    let seal_p99 = seal_lat.quantile(0.99).unwrap_or(0);
    eprintln!(
        "stream: {} batches in {stream_wall:.2} s; {} windows + {} late segments sealed \
         ({windows_per_sec:.1} windows/s, seal p50 {seal_p50} us, p99 {seal_p99} us)",
        c.batches, c.windows_sealed, c.late_segments,
    );
    eprintln!(
        "stream: recovery from {}-byte checkpoint + {} segments ({} KB) in {recovery_ms:.1} ms \
         ({ckpts} durable checkpoints, {} KB written over the run)",
        durable.len(),
        segs.len(),
        segs.bytes() / 1024,
        ckpt_bytes / 1024,
    );

    // The identity the whole design hangs on: streamed == batch, in-run.
    let (t1, t2) = p.tables(10).expect("valid queries");
    let digest_ok = p.digest() == batch_store.digest();
    let t1_ok = t1.render() == batch_t1.render();
    let t2_ok = t2.render() == batch_t2.render();
    println!(
        "stream: merged view identical to batch store: {}",
        verdict(digest_ok)
    );
    println!(
        "stream: incremental table1 identical to batch: {}",
        verdict(t1_ok)
    );
    println!(
        "stream: incremental table2 identical to batch: {}",
        verdict(t2_ok)
    );
    println!(
        "stream: restore reproduces the live pipeline: {}",
        verdict(restore_ok)
    );
    println!(
        "stream: {} records ({} late), {} segments persisted, {} base folds",
        c.records, c.late_records, c.segments_persisted, c.base_folds,
    );
    println!("digest: {:016x}", p.digest());

    if !(digest_ok && t1_ok && t2_ok && restore_ok) {
        eprintln!("stream: FAIL — streamed state diverged from the batch ground truth");
        std::process::exit(1);
    }

    let snap = cellrel_bench::BenchSnapshot::new("stream")
        .config("devices", devices)
        .config("days", days)
        .config("seed", seed)
        .config("batch", batch_cap)
        .config("checkpoint_every", checkpoint_every)
        .metric("batches", c.batches as f64)
        .metric("records", c.records as f64)
        .metric("late_records", c.late_records as f64)
        .metric("windows_sealed", c.windows_sealed as f64)
        .metric("segments_persisted", c.segments_persisted as f64)
        .metric("windows_per_sec", windows_per_sec)
        .metric("seal_p50_us", seal_p50 as f64)
        .metric("seal_p99_us", seal_p99 as f64)
        .metric("recovery_ms", recovery_ms)
        .metric("checkpoint_bytes", durable.len() as f64)
        .metric("checkpoints", ckpts as f64)
        .metric("checkpoint_bytes_total", ckpt_bytes as f64)
        .wall_seconds(t0.elapsed().as_secs_f64());
    let path = snap.write().expect("write bench snapshot");
    eprintln!("stream: wrote {}", path.display());
}
