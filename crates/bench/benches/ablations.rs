//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the recovery probation trigger (grid over probation triples, and the
//!   sensitivity of the TIMP optimum to the operation-cost model);
//! * the stability-compatible policy's pieces (usable-level threshold, and
//!   dual connectivity on/off);
//! * the §4.1 guideline sweeps (hub density, cross-ISP carrier gap,
//!   idle-3G offload).
//!
//! Each group prints its ablation table before timing the underlying
//! computation, so `cargo bench` output records the ablation results.

use cellrel::sim::SimRng;
use cellrel::telephony::RecoveryConfig;
use cellrel::timp::{anneal_probations, AnnealConfig, TimpModel};
use cellrel::types::SignalLevel;
use cellrel::workload::durations::sample_auto_heal_secs;
use cellrel::workload::guidelines::{cross_isp_gap_sweep, density_sweep, idle_3g_offload_sweep};
use cellrel::workload::{run_rat_policy_ab, AbConfig};
use cellrel_bench::ab_config;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn heal_samples(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| sample_auto_heal_secs(&mut rng)).collect()
}

fn bench_probation_grid(c: &mut Criterion) {
    let samples = heal_samples(30_000, 7);
    let rec = RecoveryConfig::vanilla();
    let model = TimpModel::from_durations(
        &samples,
        rec.op_success,
        rec.op_cost.map(|d| d.as_secs_f64()),
    );
    println!("== ablation: expected recovery time over probation triples ==");
    for p0 in [5u64, 15, 21, 30, 60, 120] {
        let mut line = format!("Pro0={p0:>3}s:");
        for p1 in [6u64, 20, 60] {
            let t = model.expected_recovery_time([p0 as f64, p1 as f64, 16.0]);
            line.push_str(&format!("  (Pro1={p1:>2},Pro2=16) {t:5.1}s"));
        }
        println!("{line}");
    }
    c.bench_function("ablation_probation_grid_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p0 in [5u64, 15, 21, 30, 60, 120] {
                for p1 in [6u64, 20, 60] {
                    acc += model.expected_recovery_time([p0 as f64, p1 as f64, 16.0]);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_op_cost_sensitivity(c: &mut Criterion) {
    let samples = heal_samples(30_000, 8);
    println!("== ablation: TIMP optimum vs operation-cost model ==");
    for (label, costs) in [
        ("cheap ops (1.5/4/9 s)", [1.5, 4.0, 9.0]),
        ("default ops (12/30/60 s)", [12.0, 30.0, 60.0]),
        ("heavy ops (30/60/120 s)", [30.0, 60.0, 120.0]),
    ] {
        let model = TimpModel::from_durations(&samples, [0.75, 0.90, 0.97], costs);
        let r = anneal_probations(&model, &AnnealConfig::default());
        println!(
            "{label:>26}: optimum {:?} → {:.1}s ({:+.0}% vs vanilla {:.1}s)",
            r.probations,
            r.expected_time,
            -r.improvement() * 100.0,
            r.vanilla_time
        );
    }
    let model = TimpModel::from_durations(&samples, [0.75, 0.90, 0.97], [12.0, 30.0, 60.0]);
    c.bench_function("ablation_anneal_default_costs", |b| {
        b.iter(|| black_box(anneal_probations(&model, &AnnealConfig::default())))
    });
}

fn bench_policy_pieces(c: &mut Criterion) {
    use cellrel::telephony::RatPolicyKind;
    let cfg = AbConfig {
        devices: 12,
        days: 2,
        ..ab_config()
    };
    println!("== ablation: stability-compatible policy pieces ==");
    // Baseline and full fix.
    let (vanilla, full) = run_rat_policy_ab(&cfg);
    println!(
        "{:>28}: {:.1} failures/device",
        "vanilla android 10", vanilla.frequency
    );
    println!(
        "{:>28}: {:.1} failures/device",
        "full fix (threshold+DC)", full.frequency
    );
    // Pieces, via custom arms.
    for (label, kind) in [
        (
            "no dual connectivity",
            RatPolicyKind::StabilityNoDualConnectivity,
        ),
        (
            "threshold L2 (stricter)",
            RatPolicyKind::StabilityThreshold(SignalLevel::L2),
        ),
        (
            "threshold L3 (strictest)",
            RatPolicyKind::StabilityThreshold(SignalLevel::L3),
        ),
    ] {
        let outcome = cellrel::workload::ab::run_custom_arm(kind, &cfg);
        println!("{label:>28}: {:.1} failures/device", outcome.frequency);
    }
    let tiny = AbConfig {
        devices: 3,
        days: 1,
        ..cfg
    };
    c.bench_function("ablation_policy_arm_small", |b| {
        b.iter(|| {
            black_box(cellrel::workload::ab::run_custom_arm(
                RatPolicyKind::StabilityNoDualConnectivity,
                &tiny,
            ))
        })
    });
}

fn bench_probe_timeout_sweep(c: &mut Criterion) {
    use cellrel::monitor::{ProbeConfig, ProbeSession};
    use cellrel::netstack::LinkCondition;
    use cellrel::types::SimDuration;
    println!("== ablation: probe round length (DNS timeout) vs accuracy/overhead ==");
    let mut rng = SimRng::new(9);
    for dns_secs in [2u64, 5, 10, 20] {
        let cfg = ProbeConfig {
            dns_timeout: SimDuration::from_secs(dns_secs),
            ..ProbeConfig::default()
        };
        let mut rounds = 0u64;
        let mut err = 0.0;
        let n = 300;
        for _ in 0..n {
            let truth = rng.range_f64(60.0, 300.0);
            let m = ProbeSession.measure_with(
                SimDuration::from_secs_f64(truth),
                LinkCondition::NetworkBlackhole,
                &cfg,
                &mut rng,
            );
            rounds += m.rounds as u64;
            err += (m.measured.expect("measured").as_secs_f64() - truth).abs();
        }
        println!(
            "dns timeout {dns_secs:>2}s: {:.1} rounds/stall, mean |error| {:.1}s{}",
            rounds as f64 / n as f64,
            err / n as f64,
            if dns_secs == 5 {
                "   <- the paper's design point"
            } else {
                ""
            }
        );
    }
    let cfg = ProbeConfig::default();
    c.bench_function("ablation_probe_session_120s", |b| {
        b.iter(|| {
            black_box(ProbeSession.measure_with(
                SimDuration::from_secs(120),
                LinkCondition::NetworkBlackhole,
                &cfg,
                &mut rng,
            ))
        })
    });
}

fn bench_guideline_sweeps(c: &mut Criterion) {
    println!("== ablation: §4.1 guideline sweeps ==");
    let density = density_sweep(60, 10);
    println!(
        "hub density 0→60 neighbours: P(fail|L5) {:.3} → {:.3}",
        density.first().expect("non-empty").l5_failure_prob,
        density.last().expect("non-empty").l5_failure_prob
    );
    let gaps = cross_isp_gap_sweep(&[0.0, 5.0, 15.0, 40.0, 100.0, 300.0]);
    println!(
        "cross-ISP gap 0→300 MHz:     P(fail|L5) {:.3} → {:.3}",
        gaps.first().expect("non-empty").l5_failure_prob,
        gaps.last().expect("non-empty").l5_failure_prob
    );
    let offload = idle_3g_offload_sweep(0.95, 20);
    let best = offload
        .iter()
        .min_by(|a, b| {
            a.total_rejection
                .partial_cmp(&b.total_rejection)
                .expect("finite")
        })
        .expect("non-empty");
    println!(
        "idle-3G offload optimum:     {:.0}% of 4G demand (rejections {:.3} → {:.3})",
        best.offload_fraction * 100.0,
        offload[0].total_rejection,
        best.total_rejection
    );
    c.bench_function("ablation_guideline_sweeps", |b| {
        b.iter(|| {
            black_box((
                density_sweep(60, 10).len(),
                cross_isp_gap_sweep(&[0.0, 100.0]).len(),
                idle_3g_offload_sweep(0.95, 20).len(),
            ))
        })
    });
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_probation_grid,
        bench_op_cost_sensitivity,
        bench_policy_pieces,
        bench_probe_timeout_sweep,
        bench_guideline_sweeps
);
criterion_main!(ablations);
