//! Criterion bench for the sharded macro-study driver, parameterized over
//! thread counts {1, 2, 4, max}. Before timing, each configuration prints
//! its measured events/s so `cargo bench` output doubles as the speedup
//! record. Device count is tunable via `CELLREL_BENCH_DEVICES`
//! (default 100,000).
//!
//! The generated output is bit-identical across all thread counts (the
//! bench asserts the event totals agree), so the only thing varying here
//! is wall-clock.

// Wall-clock is the measurement itself in this bench (speedup vs threads).
#![allow(clippy::disallowed_types)]

use cellrel::analysis::streaming::FleetAccumulator;
use cellrel::sim::auto_threads;
use cellrel::workload::{run_macro_study_parallel, PopulationConfig, StudyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench_cfg() -> StudyConfig {
    let devices = std::env::var("CELLREL_BENCH_DEVICES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    StudyConfig {
        population: PopulationConfig {
            devices,
            ..Default::default()
        },
        bs_count: 20_000,
        seed: 2020,
        ..Default::default()
    }
}

fn bench_par_macro_study(c: &mut Criterion) {
    let cfg = bench_cfg();
    let max = auto_threads();
    let mut counts: Vec<(usize, u64)> = Vec::new();
    let mut thread_list = vec![1usize, 2, 4, max];
    thread_list.sort_unstable();
    thread_list.dedup();

    for &threads in &thread_list {
        // One measured pass up front: events/s at this thread count.
        let t0 = Instant::now();
        let (_, _, _, acc) = run_macro_study_parallel(&cfg, threads, FleetAccumulator::new);
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "par_macro_study: {} devices, {} threads -> {} events in {:.2} s ({:.0} events/s)",
            cfg.population.devices,
            threads,
            acc.total,
            secs,
            acc.total as f64 / secs.max(1e-9)
        );
        counts.push((threads, acc.total));

        c.bench_function(&format!("par_macro_study_{threads}t"), |b| {
            b.iter(|| {
                let (_, _, _, acc) =
                    run_macro_study_parallel(black_box(&cfg), threads, FleetAccumulator::new);
                black_box(acc.total)
            })
        });
    }

    // Invariance cross-check: every thread count generated the same fleet.
    for w in counts.windows(2) {
        assert_eq!(w[0].1, w[1].1, "event totals differ across thread counts");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(3)
        .measurement_time(std::time::Duration::from_secs(30));
    targets = bench_par_macro_study
}
criterion_main!(benches);
