//! Criterion benches for the enhancement pipeline: the TIMP model fit and
//! annealing search (§4.2) and the A/B fleets behind Figures 19–21. Each
//! group prints its regenerated results before timing.

use cellrel::analysis::ab::{compare_rat_policy, compare_recovery};
use cellrel::sim::SimRng;
use cellrel::telephony::RecoveryConfig;
use cellrel::timp::{anneal_probations, AnnealConfig, TimpModel};
use cellrel::workload::durations::sample_auto_heal_secs;
use cellrel::workload::{run_rat_policy_ab, run_recovery_ab};
use cellrel_bench::{ab_config, recovery_ab_config};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fitted_model() -> TimpModel {
    let mut rng = SimRng::new(7);
    let samples: Vec<f64> = (0..30_000)
        .map(|_| sample_auto_heal_secs(&mut rng))
        .collect();
    let recovery = RecoveryConfig::vanilla();
    TimpModel::from_durations(
        &samples,
        recovery.op_success,
        recovery.op_cost.map(|c| c.as_secs_f64()),
    )
}

fn bench_timp_eval(c: &mut Criterion) {
    let model = fitted_model();
    println!(
        "TIMP expected recovery: vanilla(60,60,60) = {:.1} s (paper 38 s), paper(21,6,16) = {:.1} s (paper 27.8 s)",
        model.expected_recovery_time([60.0, 60.0, 60.0]),
        model.expected_recovery_time([21.0, 6.0, 16.0])
    );
    c.bench_function("timp_expected_recovery_eval", |b| {
        b.iter(|| black_box(model.expected_recovery_time(black_box([21.0, 6.0, 16.0]))))
    });
}

fn bench_timp_anneal(c: &mut Criterion) {
    let model = fitted_model();
    let result = anneal_probations(&model, &AnnealConfig::default());
    println!(
        "TIMP annealed optimum {:?}: {:.1} s ({:.0}% better than vanilla)",
        result.probations,
        result.expected_time,
        result.improvement() * 100.0
    );
    c.bench_function("timp_anneal_full_search", |b| {
        b.iter(|| black_box(anneal_probations(&model, &AnnealConfig::default())))
    });
}

fn bench_fig19_20(c: &mut Criterion) {
    let (v, p) = run_rat_policy_ab(&ab_config());
    println!("{}", compare_rat_policy(v, p).render());
    let small = cellrel::workload::AbConfig {
        devices: 4,
        days: 1,
        ..ab_config()
    };
    c.bench_function("fig19_20_rat_policy_ab_small", |b| {
        b.iter(|| black_box(run_rat_policy_ab(black_box(&small))))
    });
}

fn bench_fig21(c: &mut Criterion) {
    let (v, t) = run_recovery_ab(&recovery_ab_config());
    println!("{}", compare_recovery(v, t).render());
    let small = cellrel::workload::AbConfig {
        devices: 3,
        days: 1,
        ..recovery_ab_config()
    };
    c.bench_function("fig21_recovery_ab_small", |b| {
        b.iter(|| black_box(run_recovery_ab(black_box(&small))))
    });
}

criterion_group!(
    name = enhancements;
    config = Criterion::default().sample_size(10);
    targets = bench_timp_eval, bench_timp_anneal, bench_fig19_20, bench_fig21
);
criterion_main!(enhancements);
