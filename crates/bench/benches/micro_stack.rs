//! Criterion benches for the micro stack: the hot paths of the simulated
//! Android telephony pipeline — radio scans, modem setups, stall probing,
//! and a full simulated device-day.

use cellrel::modem::{FaultProfile, Modem};
use cellrel::monitor::ProbeSession;
use cellrel::netstack::LinkCondition;
use cellrel::radio::{DeploymentConfig, EmmStateMachine, RadioEnvironment};
use cellrel::sim::{EventQueue, SimRng};
use cellrel::telephony::{DeviceConfig, DeviceSim, NullListener, RatPolicyKind};
use cellrel::types::{Apn, DeviceId, Isp, Rat, RatSet, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_deployment_generation(c: &mut Criterion) {
    c.bench_function("radio_deployment_600_sites", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            black_box(RadioEnvironment::generate(
                DeploymentConfig::small(),
                &mut rng,
            ))
            .bs_count()
        })
    });
}

fn bench_scan(c: &mut Criterion) {
    let mut rng = SimRng::new(2);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);
    let city = env.city_centers()[0];
    c.bench_function("radio_scan_city_center", |b| {
        b.iter(|| {
            black_box(env.scan_salted(black_box(city), Isp::A, RatSet::up_to(Rat::G5), 7, &mut rng))
        })
    });
}

fn bench_modem_setup(c: &mut Criterion) {
    let mut rng = SimRng::new(3);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);
    let city = env.city_centers()[0];
    let views = env.scan_salted(city, Isp::A, RatSet::up_to(Rat::G4), 7, &mut rng);
    let view = views[0];
    let risk = env.risk(&view);
    c.bench_function("modem_data_call_setup", |b| {
        b.iter(|| {
            let mut modem = Modem::new();
            modem.set_fault(FaultProfile::none());
            modem.camp_on(view);
            black_box(modem.setup_data_call(Apn::Internet, &risk, SimTime::ZERO, &mut rng)).ok()
        })
    });
}

fn bench_emm_attach(c: &mut Criterion) {
    let mut rng = SimRng::new(4);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);
    let city = env.city_centers()[0];
    let views = env.scan_salted(city, Isp::A, RatSet::up_to(Rat::G4), 7, &mut rng);
    let risk = env.risk(&views[0]);
    c.bench_function("emm_attach_service_cycle", |b| {
        b.iter(|| {
            let mut emm = EmmStateMachine::new();
            let _ = emm.attach(Rat::G4, &risk, &mut rng);
            let _ = emm.service_request(&risk, &mut rng);
            black_box(emm.state())
        })
    });
}

fn bench_probe_session(c: &mut Criterion) {
    let mut rng = SimRng::new(5);
    c.bench_function("monitor_probe_40s_stall", |b| {
        b.iter(|| {
            black_box(ProbeSession.measure(
                SimDuration::from_secs(40),
                LinkCondition::NetworkBlackhole,
                &mut rng,
            ))
        })
    });
}

fn bench_device_day(c: &mut Criterion) {
    let mut world_rng = SimRng::new(6);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut world_rng);
    let home = env.city_centers()[0];
    c.bench_function("device_sim_one_day", |b| {
        b.iter(|| {
            let mut cfg = DeviceConfig::new(DeviceId(0), Isp::A, home);
            cfg.policy = RatPolicyKind::Android9;
            cfg.stall_rate_per_hour = 2.0;
            let mut queue = EventQueue::new();
            let mut dev = DeviceSim::new(cfg, &env, NullListener, SimRng::new(9), &mut queue);
            queue.run_until(&mut dev, SimTime::from_secs(86_400));
            black_box(*dev.stats())
        })
    });
}

criterion_group!(
    name = micro_stack;
    config = Criterion::default().sample_size(10);
    targets = bench_deployment_generation,
        bench_scan,
        bench_modem_setup,
        bench_emm_attach,
        bench_probe_session,
        bench_device_day
);
criterion_main!(micro_stack);
