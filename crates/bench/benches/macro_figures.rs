//! Criterion benches for the macro-study pipeline — one benchmark per
//! fleet-level table/figure. Before timing, each group prints the
//! regenerated rows/series so `cargo bench` output doubles as the paper
//! reproduction record (see EXPERIMENTS.md).

use cellrel::analysis as an;
use cellrel::sim::SimRng;
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};
use cellrel_bench::standard_study;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_study_generation(c: &mut Criterion) {
    let cfg = StudyConfig {
        population: PopulationConfig {
            devices: 2_000,
            ..Default::default()
        },
        bs_count: 2_000,
        seed: 1,
        ..Default::default()
    };
    c.bench_function("macro_study_generate_2k_devices", |b| {
        b.iter(|| black_box(run_macro_study(black_box(&cfg))).events.len())
    });
}

fn bench_headline(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::headline::compute(data).render());
    c.bench_function("headline_stats", |b| {
        b.iter(|| black_box(an::headline::compute(black_box(data))))
    });
}

fn bench_table1(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::table1::compute(data).render());
    c.bench_function("table1_per_model", |b| {
        b.iter(|| black_box(an::table1::compute(black_box(data))))
    });
}

fn bench_table2(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::table2::compute(data, 10).render());
    c.bench_function("table2_cause_decomposition", |b| {
        b.iter(|| black_box(an::table2::compute(black_box(data), 10)))
    });
}

fn bench_fig2_fig5(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::per_model::render(&an::per_model::compute(data)));
    c.bench_function("fig02_fig05_per_model", |b| {
        b.iter(|| black_box(an::per_model::compute(black_box(data))))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::counts::compute(data).render());
    c.bench_function("fig03_failure_counts_cdf", |b| {
        b.iter(|| black_box(an::counts::compute(black_box(data))))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::duration_stats::compute(data).render());
    c.bench_function("fig04_duration_cdf", |b| {
        b.iter(|| black_box(an::duration_stats::compute(black_box(data))))
    });
}

fn bench_fig6_to_9(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::groups::compute(data).render());
    c.bench_function("fig06_09_group_stats", |b| {
        b.iter(|| black_box(an::groups::compute(black_box(data))))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::stall_recovery::compute(data).render());
    c.bench_function("fig10_stall_recovery_cdf", |b| {
        b.iter(|| black_box(an::stall_recovery::compute(black_box(data))))
    });
}

fn bench_fig11(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::zipf::compute(data).render());
    c.bench_function("fig11_bs_zipf_ranking", |b| {
        b.iter(|| black_box(an::zipf::compute(black_box(data))))
    });
}

fn bench_fig12_13(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::isp::render(&an::isp::compute(data)));
    c.bench_function("fig12_13_isp_stats", |b| {
        b.iter(|| black_box(an::isp::compute(black_box(data))))
    });
}

fn bench_fig14(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::per_rat::render(&an::per_rat::compute(data)));
    c.bench_function("fig14_per_rat_prevalence", |b| {
        b.iter(|| black_box(an::per_rat::compute(black_box(data))))
    });
}

fn bench_fig15_16(c: &mut Criterion) {
    let data = standard_study();
    println!("{}", an::signal::compute(data).render());
    c.bench_function("fig15_16_signal_levels", |b| {
        b.iter(|| black_box(an::signal::compute(black_box(data))))
    });
}

fn bench_fig17(c: &mut Criterion) {
    let mut rng = SimRng::new(17);
    println!("{}", an::transitions::compute(2_000, &mut rng).render());
    c.bench_function("fig17_transition_matrices", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(17);
            black_box(an::transitions::compute(black_box(500), &mut rng))
        })
    });
}

criterion_group!(
    name = macro_figures;
    config = Criterion::default().sample_size(20);
    targets = bench_study_generation,
        bench_headline,
        bench_table1,
        bench_table2,
        bench_fig2_fig5,
        bench_fig3,
        bench_fig4,
        bench_fig6_to_9,
        bench_fig10,
        bench_fig11,
        bench_fig12_13,
        bench_fig14,
        bench_fig15_16,
        bench_fig17
);
criterion_main!(macro_figures);
