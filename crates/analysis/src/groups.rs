//! Figures 6–9 — prevalence and frequency by device group: 5G vs non-5G
//! models (Figs. 6/7) and Android 9 vs Android 10 (Figs. 8/9).
//!
//! Per the paper's footnote 4, the Android-version comparison uses only
//! non-5G models (5G models can only run Android 10), which is what makes
//! the two effects separable.

use crate::render::{pct, Table};
use cellrel_types::AndroidVersion;
use cellrel_workload::StudyDataset;

/// Prevalence/frequency of one device group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStats {
    /// Devices in the group.
    pub devices: u32,
    /// Prevalence.
    pub prevalence: f64,
    /// Frequency.
    pub frequency: f64,
}

/// Figures 6–9 result.
#[derive(Debug, Clone, Copy)]
pub struct GroupFigures {
    /// 5G-modem models.
    pub with_5g: GroupStats,
    /// Non-5G models.
    pub without_5g: GroupStats,
    /// Android 9 models (all are non-5G).
    pub android9: GroupStats,
    /// Android 10, non-5G models only (fair comparison).
    pub android10_non5g: GroupStats,
}

fn group_stats(data: &StudyDataset, filter: impl Fn(usize) -> bool) -> GroupStats {
    let mut devices = 0u32;
    let mut failing = 0u32;
    let mut failures = 0u64;
    for d in data.population.devices() {
        if !filter(d.id.0 as usize) {
            continue;
        }
        devices += 1;
        let c = data.per_device_counts[d.id.0 as usize];
        if c > 0 {
            failing += 1;
            failures += c as u64;
        }
    }
    let n = devices.max(1) as f64;
    GroupStats {
        devices,
        prevalence: failing as f64 / n,
        frequency: failures as f64 / n,
    }
}

/// Compute Figures 6–9.
pub fn compute(data: &StudyDataset) -> GroupFigures {
    let devs = data.population.devices();
    let spec_of = |i: usize| devs[i].spec();
    GroupFigures {
        with_5g: group_stats(data, |i| spec_of(i).hw.has_5g_modem),
        without_5g: group_stats(data, |i| !spec_of(i).hw.has_5g_modem),
        android9: group_stats(data, |i| spec_of(i).hw.android == AndroidVersion::V9),
        android10_non5g: group_stats(data, |i| {
            spec_of(i).hw.android == AndroidVersion::V10 && !spec_of(i).hw.has_5g_modem
        }),
    }
}

impl GroupFigures {
    /// Render all four figures as one comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 6–9 — prevalence / frequency by group",
            &["group", "devices", "prevalence", "frequency"],
        );
        for (name, g) in [
            ("5G models (Fig.6/7)", self.with_5g),
            ("non-5G models", self.without_5g),
            ("Android 9 (Fig.8/9)", self.android9),
            ("Android 10 (non-5G)", self.android10_non5g),
        ] {
            t.row(vec![
                name.into(),
                g.devices.to_string(),
                pct(g.prevalence),
                format!("{:.1}", g.frequency),
            ]);
        }
        format!(
            "{}\npaper: 5G > non-5G and Android 10 > Android 9 on both axes\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_orderings_match_paper() {
        let data = crate::testutil::dataset();
        let g = compute(data);
        // Fig. 6/7: 5G above non-5G on both axes.
        assert!(g.with_5g.prevalence > g.without_5g.prevalence);
        assert!(g.with_5g.frequency > g.without_5g.frequency);
        // Fig. 8/9: Android 10 above Android 9 (non-5G only).
        assert!(g.android10_non5g.prevalence > g.android9.prevalence);
        assert!(g.android10_non5g.frequency > g.android9.frequency);
        // Sanity: groups partition sensibly.
        assert_eq!(
            g.with_5g.devices + g.without_5g.devices,
            data.population.len() as u32
        );
        assert!(g.render().contains("Fig. 6–9"));
    }
}
