//! Rendering a [`MetricsSnapshot`] as the repro harness's text tables.
//!
//! The observability layer keeps metrics as plain mergeable data
//! (`cellrel_sim::telemetry`); this module is the human-facing view the
//! bench bins print under `--metrics`: one table per metric class plus the
//! registry digest line CI greps to compare runs and thread counts.

use cellrel_sim::MetricsSnapshot;
use std::fmt::Write as _;

use crate::render::Table;

/// Render a snapshot's counters, gauges and duration histograms as aligned
/// text tables, ending with the `registry digest:` line. Output is a pure
/// function of the snapshot (names are `BTreeMap`-ordered), so two
/// deterministic runs render byte-identical reports.
pub fn render_metrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut counters = Table::new("Counters", &["name", "value"]);
    for (name, value) in snap.counters() {
        counters.row(vec![name.to_string(), value.to_string()]);
    }
    if !counters.is_empty() {
        out.push_str(&counters.render());
        out.push('\n');
    }
    let mut gauges = Table::new("Gauges", &["name", "value"]);
    for (name, value) in snap.gauges() {
        gauges.row(vec![name.to_string(), value.to_string()]);
    }
    if !gauges.is_empty() {
        out.push_str(&gauges.render());
        out.push('\n');
    }
    let mut hist = Table::new(
        "Duration histograms (ms)",
        &["name", "count", "p50", "p90", "p99", "max"],
    );
    for (name, sketch) in snap.histograms() {
        let q = |p: f64| {
            sketch
                .quantile(p)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into())
        };
        hist.row(vec![
            name.to_string(),
            sketch.count().to_string(),
            q(0.5),
            q(0.9),
            q(0.99),
            sketch
                .max()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    if !hist.is_empty() {
        out.push_str(&hist.render());
        out.push('\n');
    }
    if !snap.trace().is_empty() {
        let _ = writeln!(out, "trace events: {}", snap.trace().len());
    }
    let _ = writeln!(out, "registry digest: {:016x}", snap.digest());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_sim::Telemetry;
    use cellrel_types::SimDuration;

    #[test]
    fn renders_all_sections_and_digest() {
        let tele = Telemetry::enabled();
        tele.inc("setup.ok");
        tele.add("setup.ok", 4);
        tele.gauge_add("open", 2);
        for ms in [10u64, 50, 90, 1000] {
            tele.observe_duration("lat", SimDuration::from_millis(ms));
        }
        let snap = tele.snapshot();
        let s = render_metrics(&snap);
        assert!(s.contains("== Counters =="));
        assert!(s.contains("setup.ok"));
        assert!(s.contains("== Gauges =="));
        assert!(s.contains("== Duration histograms (ms) =="));
        assert!(s.contains(&format!("registry digest: {:016x}", snap.digest())));
    }

    #[test]
    fn empty_snapshot_still_prints_a_digest() {
        let snap = Telemetry::disabled().snapshot();
        let s = render_metrics(&snap);
        assert!(!s.contains("== Counters =="));
        assert!(s.contains("registry digest:"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let tele = Telemetry::enabled();
        tele.inc("a");
        tele.observe("h", 42);
        assert_eq!(
            render_metrics(&tele.snapshot()),
            render_metrics(&tele.snapshot())
        );
    }
}
