//! Plain-text table and series rendering for the repro harness.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are pre-formatted strings).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} vs {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to an aligned string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Render an `(x, y)` series as a compact text block (one point per line).
pub fn series(title: &str, points: &[(f64, f64)], x_label: &str, y_label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(out, "{x_label:>12}  {y_label}");
    for (x, y) in points {
        let _ = writeln!(out, "{x:>12.2}  {y:.4}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.234), "23.4%");
        assert_eq!(f2(1.005), "1.00");
        let s = series("S", &[(1.0, 0.5)], "x", "y");
        assert!(s.contains("== S =="));
        assert!(s.contains("0.5000"));
    }
}
