//! CSV export of datasets and figure series — for downstream plotting.
//!
//! The paper's figures are plots; this repository renders text tables, and
//! this module emits the same data as CSV so users can regenerate the plots
//! with their tool of choice. No external dependencies: the columns are all
//! numeric or controlled identifiers, so quoting rules are trivial.

use cellrel_types::FailureEvent;
use cellrel_workload::StudyDataset;
use std::fmt::Write as _;

/// Serialize failure events as CSV (one row per failure).
pub fn events_csv(events: &[FailureEvent]) -> String {
    let mut out =
        String::from("device,kind,start_ms,duration_ms,cause,rat,signal_level,apn,bs,isp\n");
    for e in events {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            e.device.0,
            e.kind.label(),
            e.start.as_millis(),
            e.duration.as_millis(),
            e.cause.map(|c| c.name()).unwrap_or(""),
            e.ctx.rat.label(),
            e.ctx.signal.value(),
            e.ctx.apn.name(),
            e.ctx.bs.map(|b| b.as_u64().to_string()).unwrap_or_default(),
            e.ctx.isp.label(),
        );
    }
    out
}

/// Serialize a whole study's events.
pub fn dataset_csv(data: &StudyDataset) -> String {
    events_csv(&data.events)
}

/// Serialize an `(x, y)` series (one figure line) as CSV.
pub fn series_csv(x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("{x_label},{y_label}\n");
    for (x, y) in points {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Serialize per-device failure counts.
pub fn counts_csv(data: &StudyDataset) -> String {
    let mut out = String::from("device,model,isp,failures\n");
    for d in data.population.devices() {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            d.id.0,
            d.model.0,
            d.isp.label(),
            data.per_device_counts[d.id.0 as usize]
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_csv_round_trips_row_count() {
        let data = crate::testutil::dataset();
        let csv = dataset_csv(data);
        let rows = csv.lines().count();
        assert_eq!(rows, data.events.len() + 1, "header + one row per event");
        let header = csv.lines().next().expect("header");
        assert_eq!(header.split(',').count(), 10);
        // Every data row has the full column count.
        for line in csv.lines().skip(1).take(100) {
            assert_eq!(line.split(',').count(), 10, "bad row: {line}");
        }
    }

    #[test]
    fn counts_csv_covers_population() {
        let data = crate::testutil::dataset();
        let csv = counts_csv(data);
        assert_eq!(csv.lines().count(), data.population.len() + 1);
    }

    #[test]
    fn series_csv_format() {
        let csv = series_csv("seconds", "cdf", &[(1.0, 0.5), (2.0, 1.0)]);
        assert_eq!(csv, "seconds,cdf\n1,0.5\n2,1\n");
    }

    #[test]
    fn setup_errors_carry_cause_column() {
        let data = crate::testutil::dataset();
        let csv = dataset_csv(data);
        assert!(csv.contains("GprsRegistrationFail"));
        assert!(csv.contains("Data_Setup_Error"));
        assert!(csv.contains("Data_Stall"));
    }
}
