//! CSV export of datasets and figure series — for downstream plotting.
//!
//! The paper's figures are plots; this repository renders text tables, and
//! this module emits the same data as CSV so users can regenerate the plots
//! with their tool of choice. No external dependencies: the columns are all
//! numeric or controlled identifiers, so quoting rules are trivial.

use crate::render::Table;
use cellrel_sim::campaign::CampaignReport;
use cellrel_store::ResultSet;
use cellrel_types::FailureEvent;
use cellrel_workload::{ChaosScenario, StudyDataset};
use std::fmt::Write as _;

/// Serialize failure events as CSV (one row per failure).
pub fn events_csv(events: &[FailureEvent]) -> String {
    let mut out =
        String::from("device,kind,start_ms,duration_ms,cause,rat,signal_level,apn,bs,isp\n");
    for e in events {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            e.device.0,
            e.kind.label(),
            e.start.as_millis(),
            e.duration.as_millis(),
            e.cause.map(|c| c.name()).unwrap_or(""),
            e.ctx.rat.label(),
            e.ctx.signal.value(),
            e.ctx.apn.name(),
            e.ctx.bs.map(|b| b.as_u64().to_string()).unwrap_or_default(),
            e.ctx.isp.label(),
        );
    }
    out
}

/// Serialize a whole study's events.
pub fn dataset_csv(data: &StudyDataset) -> String {
    events_csv(&data.events)
}

/// Serialize an `(x, y)` series (one figure line) as CSV.
pub fn series_csv(x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("{x_label},{y_label}\n");
    for (x, y) in points {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Serialize a store query's [`ResultSet`] as CSV: one column per group-by
/// dimension, then the metric value (formatted exactly as the text
/// rendering formats it) and the contributing record count. Labels are
/// controlled identifiers (no commas), so quoting rules stay trivial.
pub fn result_set_csv(rs: &ResultSet) -> String {
    let mut out = String::new();
    for d in &rs.group_by {
        let _ = write!(out, "{},", d.label());
    }
    let _ = writeln!(out, "{},records", rs.metric.label());
    for row in &rs.rows {
        for label in &row.labels {
            let _ = write!(out, "{label},");
        }
        let _ = writeln!(out, "{},{}", rs.metric.format(row.value), row.count);
    }
    out
}

/// Serialize per-device failure counts.
pub fn counts_csv(data: &StudyDataset) -> String {
    let mut out = String::from("device,model,isp,failures\n");
    for d in data.population.devices() {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            d.id.0,
            d.model.0,
            d.isp.label(),
            data.per_device_counts[d.id.0 as usize]
        );
    }
    out
}

/// Serialize a fault campaign's violations as CSV — each row is a minimal
/// repro record: together with the campaign's root seed, `(scenario,
/// event_index)` replays the failure byte-identically (`chaos --replay`).
pub fn campaign_violations_csv(report: &CampaignReport) -> String {
    let mut out = String::from("scenario,invariant,event_index,at_ms,detail\n");
    for v in &report.violations {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            v.scenario,
            v.invariant,
            v.event_index,
            v.at_ms,
            v.detail.replace(',', ";").replace('\n', " "),
        );
    }
    out
}

/// Serialize a campaign's summary plus per-label coverage counts as CSV.
pub fn campaign_summary_csv(report: &CampaignReport) -> String {
    let mut out = String::from("metric,value\n");
    let _ = writeln!(out, "scenarios,{}", report.scenarios);
    let _ = writeln!(out, "events,{}", report.events);
    let _ = writeln!(out, "violations,{}", report.violations.len());
    let _ = writeln!(out, "digest,{:016x}", report.digest());
    for (label, count) in &report.coverage {
        let _ = writeln!(out, "coverage:{label},{count}");
    }
    out
}

/// Render a campaign's headline numbers as a text table.
pub fn campaign_summary_table(report: &CampaignReport) -> Table {
    let mut t = Table::new("Fault campaign summary", &["metric", "value"]);
    t.row(vec!["scenarios run".into(), report.scenarios.to_string()]);
    t.row(vec!["events dispatched".into(), report.events.to_string()]);
    t.row(vec![
        "invariant violations".into(),
        report.violations.len().to_string(),
    ]);
    t.row(vec![
        "scenario grid size".into(),
        ChaosScenario::GRID.to_string(),
    ]);
    t.row(vec![
        "report digest".into(),
        format!("{:016x}", report.digest()),
    ]);
    t
}

/// Render a campaign's per-label coverage (how many scenarios exercised
/// each fault / schedule / policy / recovery / mobility / user label).
pub fn campaign_coverage_table(report: &CampaignReport) -> Table {
    let mut t = Table::new("Fault campaign coverage", &["label", "scenarios"]);
    for (label, count) in &report.coverage {
        t.row(vec![label.clone(), count.to_string()]);
    }
    t
}

/// Render a campaign's violations (empty table when the campaign is clean).
pub fn campaign_violations_table(report: &CampaignReport) -> Table {
    let mut t = Table::new(
        "Invariant violations",
        &["scenario", "invariant", "event#", "at_ms", "detail"],
    );
    for v in &report.violations {
        t.row(vec![
            v.scenario.to_string(),
            v.invariant.to_string(),
            v.event_index.to_string(),
            v.at_ms.to_string(),
            v.detail.clone(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_sim::campaign::Violation;

    #[test]
    fn dataset_csv_round_trips_row_count() {
        let data = crate::testutil::dataset();
        let csv = dataset_csv(data);
        let rows = csv.lines().count();
        assert_eq!(rows, data.events.len() + 1, "header + one row per event");
        let header = csv.lines().next().expect("header");
        assert_eq!(header.split(',').count(), 10);
        // Every data row has the full column count.
        for line in csv.lines().skip(1).take(100) {
            assert_eq!(line.split(',').count(), 10, "bad row: {line}");
        }
    }

    #[test]
    fn counts_csv_covers_population() {
        let data = crate::testutil::dataset();
        let csv = counts_csv(data);
        assert_eq!(csv.lines().count(), data.population.len() + 1);
    }

    #[test]
    fn series_csv_format() {
        let csv = series_csv("seconds", "cdf", &[(1.0, 0.5), (2.0, 1.0)]);
        assert_eq!(csv, "seconds,cdf\n1,0.5\n2,1\n");
    }

    #[test]
    fn result_set_csv_matches_the_rendered_grid() {
        use cellrel_store::{build_sharded, DeviceDirectory, Dim, Query, StoreConfig};
        let data = crate::testutil::dataset();
        let dir = DeviceDirectory::from_population(&data.population);
        let store = build_sharded(&StoreConfig::default(), &dir, &data.events, 1);
        let rs = store
            .query(&Query::count_by(vec![Dim::Kind, Dim::Isp]))
            .expect("valid query");
        let csv = result_set_csv(&rs);
        assert_eq!(csv.lines().count(), rs.rows.len() + 1);
        let header = csv.lines().next().expect("header");
        assert_eq!(header, "kind,isp,count,records");
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), 4, "bad row: {line}");
        }
        assert!(csv.contains("Data_Setup_Error,ISP-A,"));
    }

    #[test]
    fn setup_errors_carry_cause_column() {
        let data = crate::testutil::dataset();
        let csv = dataset_csv(data);
        assert!(csv.contains("GprsRegistrationFail"));
        assert!(csv.contains("Data_Setup_Error"));
        assert!(csv.contains("Data_Stall"));
    }

    fn sample_report() -> CampaignReport {
        let mut r = CampaignReport {
            scenarios: 3,
            events: 1234,
            ..CampaignReport::default()
        };
        r.violations.push(Violation {
            scenario: 2,
            invariant: "probation-respected",
            event_index: 77,
            at_ms: 90_000,
            detail: "stage 1 after 12s, probation is 60s".into(),
        });
        r.coverage.insert("fault:blackhole".into(), 2);
        r.coverage.insert("fault:mixed".into(), 1);
        r
    }

    #[test]
    fn campaign_violations_csv_is_one_row_per_violation() {
        let csv = campaign_violations_csv(&sample_report());
        assert_eq!(csv.lines().count(), 2);
        let row = csv.lines().nth(1).expect("row");
        assert_eq!(row.split(',').count(), 5, "bad row: {row}");
        assert!(row.starts_with("2,probation-respected,77,90000,"));
    }

    #[test]
    fn campaign_violation_details_never_break_the_csv_grid() {
        let mut r = sample_report();
        r.violations[0].detail = "a, detail\nwith separators".into();
        let csv = campaign_violations_csv(&r);
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), 5, "bad row: {line}");
        }
    }

    #[test]
    fn campaign_summary_csv_carries_digest_and_coverage() {
        let r = sample_report();
        let csv = campaign_summary_csv(&r);
        assert!(csv.contains(&format!("digest,{:016x}\n", r.digest())));
        assert!(csv.contains("coverage:fault:blackhole,2"));
        assert!(csv.contains("scenarios,3"));
    }

    #[test]
    fn campaign_tables_render() {
        let r = sample_report();
        let summary = campaign_summary_table(&r).render();
        assert!(summary.contains("scenarios run"));
        assert!(summary.contains(&format!("{:016x}", r.digest())));
        let coverage = campaign_coverage_table(&r);
        assert_eq!(coverage.len(), 2);
        let violations = campaign_violations_table(&r);
        assert_eq!(violations.len(), 1);
        assert!(violations.render().contains("probation-respected"));
    }
}
