//! Streaming, mergeable fleet statistics.
//!
//! [`FleetAccumulator`] is an [`EventSink`] fed directly by the macro
//! study's streaming/parallel drivers: it folds every failure event into
//! the §3.1 headline counters (totals by kind / ISP / RAT, duration
//! moments, the under-30 s share, the Out_of_Service device set) without
//! materialising the event list — fleets of 10⁶+ devices run in constant
//! memory. Because it implements [`Merge`], per-shard accumulators from
//! [`cellrel_workload::run_macro_study_parallel`] fold into exactly the
//! sequential result: every field is an integer counter, a set union, a
//! Welford summary, or a bucket-count [`QuantileSketch`] merged in shard
//! order. The sketches supply streaming duration percentiles (Fig. 4 and
//! the per-kind CDm figures) within 1 % rank error of the exact order
//! statistics, with bitwise thread-count-invariant state.

use cellrel_sim::QuantileSketch;
use cellrel_sim::{Merge, Summary};
use cellrel_types::{DeviceId, FailureEvent, FailureKind};
use cellrel_workload::EventSink;
use std::collections::HashSet;

/// Online fleet statistics over a stream of failure events.
#[derive(Debug, Clone, Default)]
pub struct FleetAccumulator {
    /// Total recorded failures.
    pub total: u64,
    /// Counts by kind (index = `FailureKind::index`).
    pub by_kind: [u64; 5],
    /// Counts by ISP (index = `Isp::index`).
    pub by_isp: [u64; 3],
    /// Counts by RAT (index = `Rat::index`).
    pub by_rat: [u64; 4],
    /// Exact total failure duration, integer milliseconds.
    pub duration_ms_total: u64,
    /// Exact per-kind duration totals, integer milliseconds.
    pub duration_ms_by_kind: [u64; 5],
    /// Failures shorter than 30 s.
    pub under_30s: u64,
    /// Longest single failure, milliseconds.
    pub max_duration_ms: u64,
    /// Welford moments of the duration distribution (seconds).
    pub duration: Summary,
    /// Streaming quantile sketch over all failure durations (milliseconds)
    /// — the Fig. 4 CDF without materialising the sample list.
    pub duration_sketch: QuantileSketch,
    /// Per-kind duration sketches (Figs. 6–7 inputs).
    pub duration_sketch_by_kind: [QuantileSketch; 5],
    /// Devices that saw ≥1 Out_of_Service event.
    pub oos_devices: HashSet<DeviceId>,
}

impl FleetAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean failure duration in seconds (0 when empty).
    pub fn mean_duration_secs(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.duration_ms_total as f64 / 1000.0 / self.total as f64
        }
    }

    /// Share of failures of `kind` (0 when empty).
    pub fn kind_share(&self, kind: FailureKind) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.by_kind[kind.index()] as f64 / self.total as f64
        }
    }

    /// Share of *total duration* contributed by `kind` (0 when empty).
    pub fn kind_duration_share(&self, kind: FailureKind) -> f64 {
        if self.duration_ms_total == 0 {
            0.0
        } else {
            self.duration_ms_by_kind[kind.index()] as f64 / self.duration_ms_total as f64
        }
    }

    /// Fraction of failures shorter than 30 s (0 when empty).
    pub fn under_30s_share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.under_30s as f64 / self.total as f64
        }
    }

    /// Sketched duration quantile in seconds over all kinds (`None` when
    /// empty). Within 1 % rank error of the exact order statistic.
    pub fn duration_quantile_secs(&self, q: f64) -> Option<f64> {
        self.duration_sketch
            .quantile(q)
            .map(|ms| ms as f64 / 1000.0)
    }

    /// Sketched duration quantile in seconds for one failure kind.
    pub fn kind_duration_quantile_secs(&self, kind: FailureKind, q: f64) -> Option<f64> {
        self.duration_sketch_by_kind[kind.index()]
            .quantile(q)
            .map(|ms| ms as f64 / 1000.0)
    }
}

impl EventSink for FleetAccumulator {
    fn record(&mut self, e: &FailureEvent) {
        let ms = e.duration.as_millis();
        self.total += 1;
        self.by_kind[e.kind.index()] += 1;
        self.by_isp[e.ctx.isp.index()] += 1;
        self.by_rat[e.ctx.rat.index()] += 1;
        self.duration_ms_total += ms;
        self.duration_ms_by_kind[e.kind.index()] += ms;
        if ms < 30_000 {
            self.under_30s += 1;
        }
        self.max_duration_ms = self.max_duration_ms.max(ms);
        self.duration.push(e.duration.as_secs_f64());
        self.duration_sketch.push(ms);
        self.duration_sketch_by_kind[e.kind.index()].push(ms);
        if e.kind == FailureKind::OutOfService {
            self.oos_devices.insert(e.device);
        }
    }
}

impl Merge for FleetAccumulator {
    fn merge(&mut self, other: Self) {
        self.total.merge(other.total);
        self.by_kind.merge(other.by_kind);
        self.by_isp.merge(other.by_isp);
        self.by_rat.merge(other.by_rat);
        self.duration_ms_total.merge(other.duration_ms_total);
        self.duration_ms_by_kind.merge(other.duration_ms_by_kind);
        self.under_30s.merge(other.under_30s);
        self.max_duration_ms = self.max_duration_ms.max(other.max_duration_ms);
        self.duration.merge(&other.duration);
        self.duration_sketch.merge(other.duration_sketch);
        let [a, b, c, d, e] = other.duration_sketch_by_kind;
        self.duration_sketch_by_kind[0].merge(a);
        self.duration_sketch_by_kind[1].merge(b);
        self.duration_sketch_by_kind[2].merge(c);
        self.duration_sketch_by_kind[3].merge(d);
        self.duration_sketch_by_kind[4].merge(e);
        self.oos_devices.merge(other.oos_devices);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headline;
    use crate::testutil::dataset;
    use cellrel_workload::{run_macro_study_parallel, StudyConfig};

    #[test]
    fn accumulator_matches_materialised_headline() {
        let d = dataset();
        let mut acc = FleetAccumulator::new();
        for e in &d.events {
            acc.record(e);
        }
        let h = headline::compute(d);
        assert_eq!(acc.total, h.total_failures);
        for kind in FailureKind::ALL {
            assert!((acc.kind_share(kind) - h.kind_share[kind.index()]).abs() < 1e-12);
        }
        assert!((acc.mean_duration_secs() - h.mean_duration_secs).abs() < 1e-6);
        assert!((acc.under_30s_share() - h.under_30s).abs() < 1e-12);
        assert!((acc.max_duration_ms as f64 / 1000.0 - h.max_duration_secs).abs() < 1e-9);
    }

    #[test]
    fn parallel_accumulators_are_thread_count_invariant() {
        let cfg = StudyConfig::small();
        let (_, _, _, base) = run_macro_study_parallel(&cfg, 1, FleetAccumulator::new);
        assert!(base.total > 0);
        for threads in [2usize, 8] {
            let (_, _, _, acc) = run_macro_study_parallel(&cfg, threads, FleetAccumulator::new);
            assert_eq!(acc.total, base.total, "threads={threads}");
            assert_eq!(acc.by_kind, base.by_kind, "threads={threads}");
            assert_eq!(acc.by_isp, base.by_isp, "threads={threads}");
            assert_eq!(acc.by_rat, base.by_rat, "threads={threads}");
            assert_eq!(
                acc.duration_ms_total, base.duration_ms_total,
                "threads={threads}"
            );
            assert_eq!(acc.under_30s, base.under_30s, "threads={threads}");
            assert_eq!(
                acc.max_duration_ms, base.max_duration_ms,
                "threads={threads}"
            );
            assert_eq!(acc.oos_devices, base.oos_devices, "threads={threads}");
            // Sketch merges are exactly commutative/associative, so the
            // sketch state is bitwise thread-count invariant too.
            assert_eq!(
                acc.duration_sketch, base.duration_sketch,
                "threads={threads}"
            );
            assert_eq!(
                acc.duration_sketch_by_kind, base.duration_sketch_by_kind,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sketched_percentiles_within_one_percent_rank_of_exact() {
        use cellrel_workload::{run_macro_study_streaming, PopulationConfig};
        // The fixed acceptance fleet: 10 k devices, seed 2021.
        let cfg = StudyConfig {
            population: PopulationConfig {
                devices: 10_000,
                ..Default::default()
            },
            days: 30,
            bs_count: 2_000,
            seed: 2021,
        };
        let mut acc = FleetAccumulator::new();
        let mut exact: Vec<u64> = Vec::new();
        run_macro_study_streaming(&cfg, |e| {
            acc.record(e);
            exact.push(e.duration.as_millis());
        });
        exact.sort_unstable();
        let n = exact.len();
        assert!(n > 100_000, "fleet produced only {n} events");
        assert_eq!(acc.duration_sketch.count(), n as u64);
        for q in [0.50, 0.90, 0.99] {
            let v = acc.duration_sketch.quantile(q).expect("non-empty sketch");
            // Rank error: how far the target rank q·n falls outside the
            // rank interval the sketched value actually occupies.
            let lo = exact.partition_point(|&x| x < v) as f64;
            let hi = exact.partition_point(|&x| x <= v) as f64;
            let target = q * n as f64;
            let err = if target < lo {
                (lo - target) / n as f64
            } else if target > hi {
                (target - hi) / n as f64
            } else {
                0.0
            };
            assert!(err <= 0.01, "q={q}: sketched {v} ms, rank error {err:.4}");
        }
        // The per-kind sketches partition the overall stream.
        let per_kind: u64 = FailureKind::ALL
            .iter()
            .map(|k| acc.duration_sketch_by_kind[k.index()].count())
            .sum();
        assert_eq!(per_kind, acc.duration_sketch.count());
    }
}
