//! §3.1 general statistics.
//!
//! Paper values at full scale: 2,315,314,213 failures across 16,183,145
//! affected devices; >99 % of failures are the three major kinds; average
//! failure duration 188 s with 70.8 % under 30 s; Data_Stall contributes
//! 94 % of total failure duration; 95 % of phones see no Out_of_Service.

use crate::render::{pct, Table};
use cellrel_types::FailureKind;
use cellrel_workload::StudyDataset;

/// The §3.1 headline numbers recovered from a dataset.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Devices in the study.
    pub devices: usize,
    /// Total recorded failures.
    pub total_failures: u64,
    /// Devices with ≥1 failure.
    pub affected_devices: u64,
    /// Overall prevalence.
    pub prevalence: f64,
    /// Mean failures per device.
    pub frequency: f64,
    /// Share of failures by kind (index = `FailureKind::index`).
    pub kind_share: [f64; 5],
    /// Share of *total duration* by kind.
    pub kind_duration_share: [f64; 5],
    /// Mean failure duration, seconds.
    pub mean_duration_secs: f64,
    /// Fraction of failures shorter than 30 s.
    pub under_30s: f64,
    /// Maximum duration, seconds.
    pub max_duration_secs: f64,
    /// Fraction of devices with zero Out_of_Service events.
    pub no_oos_share: f64,
}

/// Compute the headline statistics.
pub fn compute(data: &StudyDataset) -> Headline {
    let devices = data.population.len();
    let total = data.events.len() as u64;
    let affected = data.per_device_counts.iter().filter(|&&c| c > 0).count() as u64;

    let mut kind_counts = [0u64; 5];
    let mut kind_durations = [0f64; 5];
    let mut total_duration = 0f64;
    let mut under_30 = 0u64;
    let mut max_d = 0f64;
    let mut oos_devices = std::collections::HashSet::new();
    for e in &data.events {
        let d = e.duration.as_secs_f64();
        kind_counts[e.kind.index()] += 1;
        kind_durations[e.kind.index()] += d;
        total_duration += d;
        if d < 30.0 {
            under_30 += 1;
        }
        if d > max_d {
            max_d = d;
        }
        if e.kind == FailureKind::OutOfService {
            oos_devices.insert(e.device);
        }
    }

    let kind_share = kind_counts.map(|c| c as f64 / total.max(1) as f64);
    let kind_duration_share = kind_durations.map(|d| d / total_duration.max(1e-12));

    Headline {
        devices,
        total_failures: total,
        affected_devices: affected,
        prevalence: affected as f64 / devices as f64,
        frequency: total as f64 / devices as f64,
        kind_share,
        kind_duration_share,
        mean_duration_secs: total_duration / total.max(1) as f64,
        under_30s: under_30 as f64 / total.max(1) as f64,
        max_duration_secs: max_d,
        no_oos_share: 1.0 - oos_devices.len() as f64 / devices as f64,
    }
}

impl Headline {
    /// Render alongside the paper's values.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "§3.1 general statistics (measured vs paper)",
            &["statistic", "measured", "paper"],
        );
        t.row(vec![
            "prevalence (≥1 failure)".into(),
            pct(self.prevalence),
            "23%".into(),
        ]);
        t.row(vec![
            "failures per device".into(),
            format!("{:.1}", self.frequency),
            "33".into(),
        ]);
        t.row(vec![
            "major-kind share".into(),
            pct(self.kind_share[..3].iter().sum()),
            ">99%".into(),
        ]);
        t.row(vec![
            "Data_Stall count share".into(),
            pct(self.kind_share[FailureKind::DataStall.index()]),
            "~40%".into(),
        ]);
        t.row(vec![
            "Data_Stall duration share".into(),
            pct(self.kind_duration_share[FailureKind::DataStall.index()]),
            "94%".into(),
        ]);
        t.row(vec![
            "mean failure duration".into(),
            format!("{:.0} s", self.mean_duration_secs),
            "188 s".into(),
        ]);
        t.row(vec![
            "failures < 30 s".into(),
            pct(self.under_30s),
            "70.8%".into(),
        ]);
        t.row(vec![
            "max duration".into(),
            format!("{:.0} s", self.max_duration_secs),
            "91,770 s".into(),
        ]);
        t.row(vec![
            "devices with no Out_of_Service".into(),
            pct(self.no_oos_share),
            "95%".into(),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_matches_paper_shapes() {
        let data = crate::testutil::dataset();
        let h = compute(data);
        assert!(
            (0.15..0.30).contains(&h.prevalence),
            "prevalence {}",
            h.prevalence
        );
        assert!(
            (20.0..48.0).contains(&h.frequency),
            "frequency {}",
            h.frequency
        );
        assert!(h.kind_share[..3].iter().sum::<f64>() > 0.98);
        let stall_dur = h.kind_duration_share[FailureKind::DataStall.index()];
        assert!(stall_dur > 0.8, "stall duration share {stall_dur}");
        assert!(
            (0.60..0.85).contains(&h.under_30s),
            "under-30s {}",
            h.under_30s
        );
        assert!((80.0..400.0).contains(&h.mean_duration_secs));
        // §3.1: "most (95 %) phones do not experience Out_of_Service events".
        assert!(
            (0.90..0.99).contains(&h.no_oos_share),
            "no-OOS share {}",
            h.no_oos_share
        );
        let s = h.render();
        assert!(s.contains("Data_Stall duration share"));
    }
}
