//! Per-model prevalence and frequency (Figures 2 and 5, and the measured
//! columns of Table 1).

use cellrel_types::PhoneModelId;
use cellrel_workload::StudyDataset;

/// Measured per-model statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelStats {
    /// The model.
    pub model: PhoneModelId,
    /// Devices of this model in the population.
    pub devices: u32,
    /// Measured prevalence.
    pub prevalence: f64,
    /// Measured frequency (failures per device).
    pub frequency: f64,
}

/// Compute per-model stats (index = model index, 34 entries).
pub fn compute(data: &StudyDataset) -> Vec<ModelStats> {
    let mut devices = [0u32; 34];
    let mut failing = [0u32; 34];
    let mut failures = [0u64; 34];
    for d in data.population.devices() {
        let m = d.model.index();
        devices[m] += 1;
        let c = data.per_device_counts[d.id.0 as usize];
        if c > 0 {
            failing[m] += 1;
            failures[m] += c as u64;
        }
    }
    PhoneModelId::all()
        .map(|id| {
            let m = id.index();
            let n = devices[m].max(1) as f64;
            ModelStats {
                model: id,
                devices: devices[m],
                prevalence: failing[m] as f64 / n,
                frequency: failures[m] as f64 / n,
            }
        })
        .collect()
}

/// Render Figures 2 & 5 as one table with the paper's targets.
pub fn render(stats: &[ModelStats]) -> String {
    let mut t = crate::Table::new(
        "Fig. 2 & 5 — prevalence / frequency per model (measured vs paper)",
        &["model", "devices", "prev", "paper", "freq", "paper"],
    );
    for s in stats {
        let spec = cellrel_workload::models::model(s.model);
        t.row(vec![
            format!("{}", s.model),
            s.devices.to_string(),
            crate::render::pct(s.prevalence),
            crate::render::pct(spec.prevalence),
            format!("{:.1}", s.frequency),
            format!("{:.1}", spec.frequency),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovered_stats_track_table1() {
        let data = crate::testutil::dataset();
        let stats = compute(data);
        assert_eq!(stats.len(), 34);
        // For models with a decent sample, prevalence is within a few points
        // of the calibration target.
        let mut checked = 0;
        for s in &stats {
            if s.devices >= 150 {
                let target = cellrel_workload::models::model(s.model).prevalence;
                assert!(
                    (s.prevalence - target).abs() < 0.08,
                    "{}: measured {} vs target {}",
                    s.model,
                    s.prevalence,
                    target
                );
                checked += 1;
            }
        }
        assert!(checked >= 5, "not enough well-sampled models ({checked})");
    }

    #[test]
    fn ordering_signal_survives() {
        // Model 8 (prevalence 0.15 %) must come out far below model 23 (44 %).
        let data = crate::testutil::dataset();
        let stats = compute(data);
        let m8 = stats[PhoneModelId(8).index()];
        let m23 = stats[PhoneModelId(23).index()];
        if m8.devices > 30 && m23.devices > 30 {
            assert!(m8.prevalence < m23.prevalence);
        }
        let rendered = render(&stats);
        assert!(rendered.contains("Model 34"));
    }
}
