//! Figure 10 — how fast Data_Stall failures fix themselves.
//!
//! Paper: "60 % Data_Stall failures are automatically fixed in just 10
//! seconds" and more than 80 % within 300 s — the evidence that one-minute
//! probations are too conservative, and the empirical input to the TIMP fit.

use cellrel_sim::Ecdf;
use cellrel_types::FailureKind;
use cellrel_workload::StudyDataset;

/// Figure 10 result.
#[derive(Debug, Clone)]
pub struct StallRecoveryFigure {
    /// ECDF of Data_Stall durations (seconds).
    pub ecdf: Ecdf,
    /// Fraction fixed within 10 s (paper: ~60 %).
    pub within_10s: f64,
    /// Fraction fixed within 300 s (paper: >80 %).
    pub within_300s: f64,
    /// Fraction fixed within 1200 s (paper: >90 % — the probing-backoff
    /// threshold rationale).
    pub within_1200s: f64,
}

/// Compute Figure 10 from macro-study stall durations.
pub fn compute(data: &StudyDataset) -> StallRecoveryFigure {
    let stalls: Vec<f64> = data
        .events
        .iter()
        .filter(|e| e.kind == FailureKind::DataStall)
        .map(|e| e.duration.as_secs_f64())
        .collect();
    from_durations(stalls)
}

/// Compute Figure 10 from raw stall durations (micro experiments use this).
pub fn from_durations(stalls: Vec<f64>) -> StallRecoveryFigure {
    assert!(!stalls.is_empty(), "no stalls to analyse");
    let ecdf = Ecdf::new(stalls);
    StallRecoveryFigure {
        within_10s: ecdf.at(10.0),
        within_300s: ecdf.at(300.0),
        within_1200s: ecdf.at(1200.0),
        ecdf,
    }
}

impl StallRecoveryFigure {
    /// Render the recovery-time CDF.
    pub fn render(&self) -> String {
        let qs: Vec<(f64, f64)> = [1.0, 5.0, 10.0, 30.0, 60.0, 300.0, 1200.0]
            .iter()
            .map(|&t| (t, self.ecdf.at(t)))
            .collect();
        let mut out = crate::render::series(
            "Fig. 10 — Data_Stall auto-recovery time CDF",
            &qs,
            "seconds",
            "fixed",
        );
        out.push_str(&format!(
            "≤10 s: {:.0}% (paper 60%) | <300 s: {:.0}% (paper >80%) | <1200 s: {:.0}% (paper >90%)\n",
            self.within_10s * 100.0,
            self.within_300s * 100.0,
            self.within_1200s * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_shape_from_macro_study() {
        let data = crate::testutil::dataset();
        let f = compute(data);
        assert!(
            (0.45..0.75).contains(&f.within_10s),
            "≤10 s {}",
            f.within_10s
        );
        assert!(f.within_300s > 0.78, "<300 s {}", f.within_300s);
        assert!(f.within_1200s >= f.within_300s);
        assert!(f.render().contains("Fig. 10"));
    }

    #[test]
    fn from_raw_durations() {
        let f = from_durations(vec![1.0, 5.0, 8.0, 20.0, 500.0]);
        assert!((f.within_10s - 0.6).abs() < 1e-9);
        assert!((f.within_300s - 0.8).abs() < 1e-9);
    }
}
