//! Figures 19–21 — evaluating the deployed enhancements.
//!
//! Paper results (§4.3): the Stability-Compatible RAT transition cut 5G-phone
//! failure prevalence by 10 % and frequency by 40.3 %; the TIMP recovery cut
//! Data_Stall duration by 38 % (36 % of total failure duration) and the
//! median failure duration from 6 s to 2 s.

use crate::render::{pct, Table};
use cellrel_types::FailureKind;
use cellrel_workload::AbOutcome;

/// Relative change between two arms for one metric (negative = reduction).
fn rel_change(vanilla: f64, patched: f64) -> f64 {
    if vanilla <= 0.0 {
        0.0
    } else {
        (patched - vanilla) / vanilla
    }
}

/// Figures 19–20 comparison result.
#[derive(Debug, Clone)]
pub struct RatPolicyComparison {
    /// Vanilla arm.
    pub vanilla: AbOutcome,
    /// Patched arm.
    pub patched: AbOutcome,
    /// Relative prevalence change (paper: −10 %).
    pub prevalence_change: f64,
    /// Relative frequency change (paper: −40.3 %).
    pub frequency_change: f64,
    /// Per-kind frequency changes (major kinds).
    pub by_kind_change: [f64; 3],
}

/// Compare the two RAT-policy arms.
pub fn compare_rat_policy(vanilla: AbOutcome, patched: AbOutcome) -> RatPolicyComparison {
    let mut by_kind_change = [0f64; 3];
    for (slot, kind) in FailureKind::MAJOR.iter().enumerate() {
        by_kind_change[slot] = rel_change(
            vanilla.by_kind[kind.index()] as f64,
            patched.by_kind[kind.index()] as f64,
        );
    }
    RatPolicyComparison {
        prevalence_change: rel_change(vanilla.prevalence, patched.prevalence),
        frequency_change: rel_change(vanilla.frequency, patched.frequency),
        by_kind_change,
        vanilla,
        patched,
    }
}

impl RatPolicyComparison {
    /// Render Figures 19–20.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 19–20 — RAT policy A/B on 5G phones",
            &[
                "metric",
                "vanilla-10",
                "stability-compatible",
                "change",
                "paper",
            ],
        );
        t.row(vec![
            "prevalence (device-day)".into(),
            pct(self.vanilla.prevalence),
            pct(self.patched.prevalence),
            pct(self.prevalence_change),
            "-10%".into(),
        ]);
        t.row(vec![
            "frequency (fails/device)".into(),
            format!("{:.1}", self.vanilla.frequency),
            format!("{:.1}", self.patched.frequency),
            pct(self.frequency_change),
            "-40.3%".into(),
        ]);
        for (slot, kind) in FailureKind::MAJOR.iter().enumerate() {
            t.row(vec![
                format!("{kind} count"),
                self.vanilla.by_kind[kind.index()].to_string(),
                self.patched.by_kind[kind.index()].to_string(),
                pct(self.by_kind_change[slot]),
                match kind {
                    FailureKind::DataSetupError => "-25.7%",
                    FailureKind::DataStall => "-42.4%",
                    _ => "-50.3%",
                }
                .into(),
            ]);
        }
        t.render()
    }
}

/// Figure 21 comparison result.
#[derive(Debug, Clone)]
pub struct RecoveryComparison {
    /// Vanilla arm.
    pub vanilla: AbOutcome,
    /// TIMP arm.
    pub timp: AbOutcome,
    /// Relative change in mean Data_Stall duration (paper: −38 %).
    pub stall_duration_change: f64,
    /// Relative change in median Data_Stall duration (paper: −67 % for the
    /// all-failure median, 6 s → 2 s).
    pub median_change: f64,
    /// Relative change in total failure duration (paper: −36 %).
    pub total_duration_change: f64,
}

/// Compare the two recovery arms.
pub fn compare_recovery(vanilla: AbOutcome, timp: AbOutcome) -> RecoveryComparison {
    RecoveryComparison {
        stall_duration_change: rel_change(vanilla.mean_stall_secs(), timp.mean_stall_secs()),
        median_change: rel_change(vanilla.median_stall_secs(), timp.median_stall_secs()),
        total_duration_change: rel_change(vanilla.total_duration_secs, timp.total_duration_secs),
        vanilla,
        timp,
    }
}

impl RecoveryComparison {
    /// Render Figure 21.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 21 — Data_Stall recovery A/B (vanilla vs TIMP probations)",
            &["metric", "vanilla", "timp", "change", "paper"],
        );
        t.row(vec![
            "mean stall duration".into(),
            format!("{:.1} s", self.vanilla.mean_stall_secs()),
            format!("{:.1} s", self.timp.mean_stall_secs()),
            pct(self.stall_duration_change),
            "-38%".into(),
        ]);
        t.row(vec![
            "median stall duration".into(),
            format!("{:.1} s", self.vanilla.median_stall_secs()),
            format!("{:.1} s", self.timp.median_stall_secs()),
            pct(self.median_change),
            "-67% (6s→2s)".into(),
        ]);
        t.row(vec![
            "total failure duration".into(),
            format!("{:.0} s", self.vanilla.total_duration_secs),
            format!("{:.0} s", self.timp.total_duration_secs),
            pct(self.total_duration_change),
            "-36%".into(),
        ]);
        t.row(vec![
            "stalls observed".into(),
            self.vanilla.stall_durations.len().to_string(),
            self.timp.stall_durations.len().to_string(),
            "-".into(),
            "-".into(),
        ]);
        // Bootstrap CIs qualify the mean-duration comparison: the claim
        // stands when the intervals separate.
        let mut rng = cellrel_sim::SimRng::new(0xC1);
        let ci = |xs: &[f64], rng: &mut cellrel_sim::SimRng| {
            if xs.len() < 5 {
                return "n/a".to_string();
            }
            let (lo, hi) = cellrel_sim::bootstrap_mean_ci(xs, 500, 0.95, rng);
            format!("[{lo:.1}, {hi:.1}] s")
        };
        t.row(vec![
            "mean stall 95% CI (bootstrap)".into(),
            ci(&self.vanilla.stall_durations, &mut rng),
            ci(&self.timp.stall_durations, &mut rng),
            "-".into(),
            "-".into(),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_workload::{run_rat_policy_ab, run_recovery_ab, AbConfig};

    #[test]
    fn rat_policy_comparison_shows_reduction() {
        let cfg = AbConfig {
            devices: 10,
            days: 2,
            seed: 21,
            stall_rate_per_hour: 2.0,
            suppress_user_reset: false,
            threads: 0,
        };
        let (v, p) = run_rat_policy_ab(&cfg);
        let cmp = compare_rat_policy(v, p);
        assert!(
            cmp.frequency_change < 0.0,
            "frequency change {}",
            cmp.frequency_change
        );
        assert!(cmp.render().contains("Fig. 19–20"));
    }

    #[test]
    fn recovery_comparison_shows_shorter_stalls() {
        let cfg = AbConfig {
            devices: 8,
            days: 3,
            seed: 22,
            stall_rate_per_hour: 4.0,
            suppress_user_reset: true,
            threads: 0,
        };
        let (v, t) = run_recovery_ab(&cfg);
        let cmp = compare_recovery(v, t);
        assert!(
            cmp.stall_duration_change < 0.0,
            "stall duration change {}",
            cmp.stall_duration_change
        );
        assert!(cmp.render().contains("Fig. 21"));
    }
}
