//! §2.2's measurement-accuracy argument, quantified.
//!
//! Vanilla Android estimates a stall's duration at the one-minute
//! granularity of its detection loop; "in most (>80 %) cases a Data_Stall
//! failure lasts for <300 seconds, so the incurred measurement error is
//! non-trivial relative to the Data_Stall duration". Android-MOD's probing
//! measures with at most one probing round (≤5 s) of error. This experiment
//! runs both estimators over the same stall population and reports the
//! error distributions — the quantitative case for building the probing
//! component at all.

use crate::render::Table;
use cellrel_monitor::ProbeSession;
use cellrel_netstack::LinkCondition;
use cellrel_sim::SimRng;
use cellrel_types::SimDuration;
use cellrel_workload::durations::sample_auto_heal_secs;

/// Result of the estimator comparison.
#[derive(Debug, Clone)]
pub struct MeasurementComparison {
    /// Stalls evaluated.
    pub samples: usize,
    /// Mean absolute error of the vanilla minute-granular estimator, seconds.
    pub vanilla_mae_secs: f64,
    /// Mean absolute error of the probing estimator, seconds.
    pub probing_mae_secs: f64,
    /// Worst-case probing error observed, seconds (paper: ≤5 s outside the
    /// backoff regime).
    pub probing_max_error_secs: f64,
    /// Mean relative error of vanilla on sub-minute stalls (the regime the
    /// paper highlights: most stalls are short, so minute rounding is huge).
    pub vanilla_rel_error_short: f64,
    /// Mean relative error of probing on the same sub-minute stalls.
    pub probing_rel_error_short: f64,
}

/// Vanilla Android's estimate: the stall is observed by a one-minute
/// detection loop, so durations are rounded up to whole minutes.
fn vanilla_estimate_secs(true_secs: f64) -> f64 {
    (true_secs / 60.0).ceil().max(1.0) * 60.0
}

/// Run the comparison over `n` stalls drawn from the Fig. 10 distribution.
pub fn compare_estimators(n: usize, rng: &mut SimRng) -> MeasurementComparison {
    assert!(n > 0);
    let probe = ProbeSession;
    let mut v_abs = 0.0;
    let mut p_abs = 0.0;
    let mut p_max: f64 = 0.0;
    let mut v_rel_short = 0.0;
    let mut p_rel_short = 0.0;
    let mut short = 0usize;

    for _ in 0..n {
        let true_secs = sample_auto_heal_secs(rng).min(1100.0); // stay below backoff
        let vanilla = vanilla_estimate_secs(true_secs);
        let measured = probe
            .measure(
                SimDuration::from_secs_f64(true_secs),
                LinkCondition::NetworkBlackhole,
                rng,
            )
            .measured
            .expect("network stalls are measured")
            .as_secs_f64();

        let v_err = (vanilla - true_secs).abs();
        let p_err = (measured - true_secs).abs();
        v_abs += v_err;
        p_abs += p_err;
        p_max = p_max.max(p_err);
        if true_secs < 60.0 {
            short += 1;
            v_rel_short += v_err / true_secs;
            p_rel_short += p_err / true_secs;
        }
    }

    MeasurementComparison {
        samples: n,
        vanilla_mae_secs: v_abs / n as f64,
        probing_mae_secs: p_abs / n as f64,
        probing_max_error_secs: p_max,
        vanilla_rel_error_short: v_rel_short / short.max(1) as f64,
        probing_rel_error_short: p_rel_short / short.max(1) as f64,
    }
}

impl MeasurementComparison {
    /// Render the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "§2.2 — stall-duration estimator accuracy (vanilla vs Android-MOD probing)",
            &["metric", "vanilla (1-min loop)", "probing"],
        );
        t.row(vec![
            "mean |error|".into(),
            format!("{:.1} s", self.vanilla_mae_secs),
            format!("{:.1} s", self.probing_mae_secs),
        ]);
        t.row(vec![
            "mean relative error, stalls < 60 s".into(),
            format!("{:.0}%", self.vanilla_rel_error_short * 100.0),
            format!("{:.0}%", self.probing_rel_error_short * 100.0),
        ]);
        t.row(vec![
            "max |error| observed".into(),
            "≤ 60 s by construction".into(),
            format!("{:.1} s (paper: ≤5 s)", self.probing_max_error_secs),
        ]);
        format!(
            "{}\n({} stalls from the Fig. 10 distribution; probing error is one\n\
             round ≤5 s, vanilla rounds every stall up to whole minutes)\n",
            t.render(),
            self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probing_beats_vanilla_by_an_order_of_magnitude() {
        let mut rng = SimRng::new(22);
        let c = compare_estimators(3_000, &mut rng);
        assert!(
            c.probing_mae_secs * 5.0 < c.vanilla_mae_secs,
            "probing {} vs vanilla {}",
            c.probing_mae_secs,
            c.vanilla_mae_secs
        );
        // The paper's ≤5 s bound (plus sub-second probe latency jitter).
        assert!(
            c.probing_max_error_secs <= 5.6,
            "probing max error {}",
            c.probing_max_error_secs
        );
        // Sub-minute stalls: vanilla's relative error is enormous.
        assert!(c.vanilla_rel_error_short > 2.0);
        assert!(c.probing_rel_error_short < 1.0);
        assert!(c.render().contains("estimator accuracy"));
    }

    #[test]
    fn vanilla_estimate_rounds_up_to_minutes() {
        assert_eq!(vanilla_estimate_secs(1.0), 60.0);
        assert_eq!(vanilla_estimate_secs(59.9), 60.0);
        assert_eq!(vanilla_estimate_secs(60.1), 120.0);
        assert_eq!(vanilla_estimate_secs(299.0), 300.0);
    }
}
