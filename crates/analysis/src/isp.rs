//! Figures 12–13 — prevalence and frequency by ISP.
//!
//! Paper: ISP-B worst (27.1 % prevalence, inferior coverage from its higher
//! carrier frequency), then ISP-A (20.1 %), then ISP-C (14.7 %); frequency
//! follows the same ordering.

use crate::render::{pct, Table};
use cellrel_types::Isp;
use cellrel_workload::population::ISP_PREVALENCE;
use cellrel_workload::StudyDataset;

/// Per-ISP measured stats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IspStats {
    /// The ISP.
    pub isp: Isp,
    /// Subscribers in the population.
    pub devices: u32,
    /// Measured prevalence.
    pub prevalence: f64,
    /// Measured frequency.
    pub frequency: f64,
}

/// Compute Figures 12–13.
pub fn compute(data: &StudyDataset) -> [IspStats; 3] {
    let mut devices = [0u32; 3];
    let mut failing = [0u32; 3];
    let mut failures = [0u64; 3];
    for d in data.population.devices() {
        let i = d.isp.index();
        devices[i] += 1;
        let c = data.per_device_counts[d.id.0 as usize];
        if c > 0 {
            failing[i] += 1;
            failures[i] += c as u64;
        }
    }
    Isp::ALL.map(|isp| {
        let i = isp.index();
        let n = devices[i].max(1) as f64;
        IspStats {
            isp,
            devices: devices[i],
            prevalence: failing[i] as f64 / n,
            frequency: failures[i] as f64 / n,
        }
    })
}

/// Render with the paper's targets.
pub fn render(stats: &[IspStats; 3]) -> String {
    let mut t = Table::new(
        "Fig. 12–13 — prevalence / frequency by ISP (measured vs paper)",
        &["isp", "devices", "prevalence", "paper", "frequency"],
    );
    for s in stats {
        t.row(vec![
            s.isp.to_string(),
            s.devices.to_string(),
            pct(s.prevalence),
            pct(ISP_PREVALENCE[s.isp.index()]),
            format!("{:.1}", s.frequency),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isp_ordering_and_levels_match_fig12() {
        let data = crate::testutil::dataset();
        let stats = compute(data);
        let by = |isp: Isp| stats[isp.index()];
        assert!(by(Isp::B).prevalence > by(Isp::A).prevalence);
        assert!(by(Isp::A).prevalence > by(Isp::C).prevalence);
        // Levels near the paper's values.
        for isp in Isp::ALL {
            let target = ISP_PREVALENCE[isp.index()];
            let got = by(isp).prevalence;
            assert!(
                (got - target).abs() < 0.05,
                "{isp}: {got} vs target {target}"
            );
        }
        // Fig. 13 ordering follows.
        assert!(by(Isp::B).frequency > by(Isp::C).frequency);
        assert!(render(&stats).contains("ISP-B"));
    }
}
