//! Figure 3 — the distribution of per-device failure counts.
//!
//! Paper facts: 77 % of phones report no failures; the average phone sees 33
//! (16 `Data_Setup_Error` + 14 `Data_Stall` + 3 `Out_of_Service`); the worst
//! single phone saw 198,228.

use cellrel_sim::Ecdf;
use cellrel_types::FailureKind;
use cellrel_workload::StudyDataset;

/// Figure 3 result.
#[derive(Debug, Clone)]
pub struct CountsFigure {
    /// ECDF over per-device counts (all devices, zeros included).
    pub ecdf: Ecdf,
    /// Fraction of devices with zero failures.
    pub zero_share: f64,
    /// Mean failures per device.
    pub mean: f64,
    /// Maximum per-device count.
    pub max: u32,
    /// Mean per-device count by kind (major kinds).
    pub mean_by_kind: [f64; 5],
}

/// Compute Figure 3.
pub fn compute(data: &StudyDataset) -> CountsFigure {
    let n = data.per_device_counts.len() as f64;
    let zero = data.per_device_counts.iter().filter(|&&c| c == 0).count() as f64;
    let max = data.per_device_counts.iter().copied().max().unwrap_or(0);
    let mut kind_totals = [0u64; 5];
    for e in &data.events {
        kind_totals[e.kind.index()] += 1;
    }
    CountsFigure {
        ecdf: Ecdf::new(data.per_device_counts.iter().map(|&c| c as f64).collect()),
        zero_share: zero / n,
        mean: data.events.len() as f64 / n,
        max,
        mean_by_kind: kind_totals.map(|t| t as f64 / n),
    }
}

impl CountsFigure {
    /// Render the CDF series plus the summary facts.
    pub fn render(&self) -> String {
        let mut out = crate::render::series(
            "Fig. 3 — CDF of failures per phone",
            &self.ecdf.series(12),
            "failures",
            "CDF",
        );
        out.push_str(&format!(
            "zero-failure devices: {:.1}% (paper 77%)\nmean: {:.1} (paper 33) \
             [setup {:.1} vs 16, stall {:.1} vs 14, oos {:.1} vs 3]\nmax: {} \n",
            self.zero_share * 100.0,
            self.mean,
            self.mean_by_kind[FailureKind::DataSetupError.index()],
            self.mean_by_kind[FailureKind::DataStall.index()],
            self.mean_by_kind[FailureKind::OutOfService.index()],
            self.max
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shapes_match() {
        let data = crate::testutil::dataset();
        let f = compute(data);
        assert!(
            (0.70..0.85).contains(&f.zero_share),
            "zero share {}",
            f.zero_share
        );
        assert!((20.0..48.0).contains(&f.mean), "mean {}", f.mean);
        // Kind decomposition ≈ 16 / 14 / 3.
        let dse = f.mean_by_kind[FailureKind::DataSetupError.index()];
        let stall = f.mean_by_kind[FailureKind::DataStall.index()];
        let oos = f.mean_by_kind[FailureKind::OutOfService.index()];
        assert!(dse > stall && stall > oos, "{dse} {stall} {oos}");
        // Heavy skew: max far above the mean.
        assert!(
            f.max as f64 > f.mean * 20.0,
            "max {} mean {}",
            f.max,
            f.mean
        );
        assert!(f.render().contains("zero-failure"));
    }
}
