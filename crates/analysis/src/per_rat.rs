//! Figure 14 — failure prevalence on 2G / 3G / 4G / 5G base stations.
//!
//! The counter-intuitive finding: although 3G BSes are fewer with worse
//! coverage, their failure prevalence is *lower* than 2G's or 4G's — the
//! idle-3G effect. 5G tops the chart (immature modules + blind preference).

use crate::render::{pct, Table};
use cellrel_types::Rat;
use cellrel_workload::StudyDataset;
use std::collections::HashSet;

/// Per-RAT prevalence: fraction of devices that experienced ≥1 failure
/// while attached over each RAT, among devices whose hardware supports it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatPrevalence {
    /// The RAT.
    pub rat: Rat,
    /// Devices capable of this RAT.
    pub capable_devices: u32,
    /// Prevalence among capable devices.
    pub prevalence: f64,
}

/// Compute Figure 14.
pub fn compute(data: &StudyDataset) -> [RatPrevalence; 4] {
    let mut failed_on: [HashSet<u32>; 4] = Default::default();
    for e in &data.events {
        failed_on[e.ctx.rat.index()].insert(e.device.0);
    }
    let mut capable = [0u32; 4];
    for d in data.population.devices() {
        for rat in d.spec().hw.supported_rats().iter() {
            capable[rat.index()] += 1;
        }
    }
    Rat::ALL.map(|rat| {
        let i = rat.index();
        RatPrevalence {
            rat,
            capable_devices: capable[i],
            prevalence: failed_on[i].len() as f64 / capable[i].max(1) as f64,
        }
    })
}

/// Render Figure 14.
pub fn render(stats: &[RatPrevalence; 4]) -> String {
    let mut t = Table::new(
        "Fig. 14 — failure prevalence by RAT",
        &["RAT", "capable devices", "prevalence"],
    );
    for s in stats {
        t.row(vec![
            s.rat.to_string(),
            s.capable_devices.to_string(),
            pct(s.prevalence),
        ]);
    }
    format!(
        "{}\npaper: 3G lowest of the legacy RATs (the idle-3G effect)\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_3g_effect_recovered() {
        let data = crate::testutil::dataset();
        let stats = compute(data);
        let by = |rat: Rat| stats[rat.index()].prevalence;
        // Fig. 14: 3G below both 2G and 4G.
        assert!(
            by(Rat::G3) < by(Rat::G2),
            "3G {} vs 2G {}",
            by(Rat::G3),
            by(Rat::G2)
        );
        assert!(
            by(Rat::G3) < by(Rat::G4),
            "3G {} vs 4G {}",
            by(Rat::G3),
            by(Rat::G4)
        );
        // 5G prevalence among 5G-capable devices is the highest.
        assert!(by(Rat::G5) > by(Rat::G3));
        assert!(render(&stats).contains("Fig. 14"));
    }
}
