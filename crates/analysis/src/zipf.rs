//! Figure 11 — ranking base stations by experienced failures.
//!
//! Paper: a Zipf-like distribution with a = 0.82, b = 17.12; median 1,
//! mean 444, maximum 8,941,860; the top-ranked BSes sit in crowded urban
//! areas.

use cellrel_sim::fit_zipf;
use cellrel_workload::StudyDataset;
use std::collections::HashMap;

/// Figure 11 result.
#[derive(Debug, Clone)]
pub struct ZipfFigure {
    /// Descending failure counts per BS (only BSes with ≥1 failure).
    pub counts_desc: Vec<u64>,
    /// Fitted Zipf exponent `a` (paper: 0.82).
    pub a: f64,
    /// Fitted intercept `b` in `ln(count) = b − a·ln(rank)`.
    pub b: f64,
    /// Fit quality.
    pub r2: f64,
    /// Median failures per failing BS (paper: 1).
    pub median: u64,
    /// Mean failures per failing BS (paper: 444 at full scale).
    pub mean: f64,
    /// Maximum (paper: 8,941,860 at full scale).
    pub max: u64,
    /// Among the top 1 % of BSes, the fraction tagged urban (paper: the top
    /// 10,000 are "mostly located in crowded urban areas").
    pub top_urban_share: f64,
}

/// Compute Figure 11.
pub fn compute(data: &StudyDataset) -> ZipfFigure {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for e in &data.events {
        if let Some(bs) = e.ctx.bs {
            *counts.entry(bs.as_u64()).or_default() += 1;
        }
    }
    // Urban tagging for the top ranks.
    let urban: HashMap<u64, bool> = data
        .bs
        .directory()
        .iter()
        .map(|b| (b.id.as_u64(), b.urban))
        .collect();

    let mut ranked: Vec<(u64, u64)> = counts.into_iter().collect();
    ranked.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    let counts_desc: Vec<u64> = ranked.iter().map(|&(_, c)| c).collect();
    assert!(!counts_desc.is_empty(), "no BS-attributed failures");

    // Fit the head of the ranking (the paper's log-log line is dominated by
    // the head; the tail of 1-count BSes flattens any empirical ranking).
    let head_len = (counts_desc.len() / 10).clamp(50.min(counts_desc.len()), 2_000);
    let (a, b, r2) = fit_zipf(&counts_desc[..head_len]);

    let top_n = (ranked.len() / 100).max(10).min(ranked.len());
    let top_urban = ranked[..top_n]
        .iter()
        .filter(|(id, _)| urban.get(id).copied().unwrap_or(false))
        .count() as f64
        / top_n as f64;

    ZipfFigure {
        median: counts_desc[counts_desc.len() / 2],
        mean: counts_desc.iter().sum::<u64>() as f64 / counts_desc.len() as f64,
        max: counts_desc[0],
        a,
        b,
        r2,
        counts_desc,
        top_urban_share: top_urban,
    }
}

impl ZipfFigure {
    /// Render the fit and the skew facts.
    pub fn render(&self) -> String {
        format!(
            "== Fig. 11 — BS failure ranking ==\n\
             zipf fit: a = {:.2} (paper 0.82), b = {:.2} (paper 17.12 at full scale), r² = {:.3}\n\
             failing BSes: {} | median {} (paper 1) | mean {:.1} | max {}\n\
             top-1% urban share: {:.0}% (paper: top BSes mostly urban)\n",
            self.a,
            self.b,
            self.r2,
            self.counts_desc.len(),
            self.median,
            self.mean,
            self.max,
            self.top_urban_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_workload::{run_macro_study, StudyConfig};

    #[test]
    fn fig11_zipf_and_skew() {
        // A BS directory large relative to the failure count, so the
        // median failing BS sits near 1 as in the paper (5.3 M BSes).
        let mut cfg = StudyConfig::small();
        cfg.bs_count = 40_000;
        let data = run_macro_study(&cfg);
        let f = compute(&data);
        assert!((0.5..1.2).contains(&f.a), "zipf a = {}", f.a);
        assert!(f.r2 > 0.75, "fit r² {}", f.r2);
        // Skew: median tiny, max enormous.
        assert!(f.median <= 5, "median {}", f.median);
        assert!(
            f.max as f64 > f.mean * 10.0,
            "max {} mean {}",
            f.max,
            f.mean
        );
        // Crowded-urban finding.
        assert!(f.top_urban_share > 0.6, "urban share {}", f.top_urban_share);
        assert!(f.render().contains("zipf fit"));
    }
}
