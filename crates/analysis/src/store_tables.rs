//! Table 1 and Table 2 served from the analytics cube.
//!
//! The batch modules ([`crate::table1`], [`crate::table2`]) scan the raw
//! dataset; these adapters answer the same questions with `cellrel-store`
//! queries — three device-directory queries and one cell query for Table 1,
//! one filtered group-by for Table 2 — and then feed the shared constructors
//! ([`table1::from_stats`], [`table2::from_cause_counts`]), so the rendered
//! tables are **byte-identical** to the batch output on the same fleet.
//! That identity is the end-to-end correctness check for the store: it holds
//! only if routing, directory registration, merge, compaction, and query
//! grouping all preserve the exact per-model and per-cause totals.

use crate::per_model::ModelStats;
use crate::table1::{self, Table1};
use crate::table2::{self, Table2};
use cellrel_ingest::codec::unzigzag;
use cellrel_store::{Dim, Filter, Metric, Query, QueryError, ResultSet, Store};
use cellrel_types::{DataFailCause, FailureKind, PhoneModelId};

/// The three per-model queries behind Table 1, in the order
/// [`model_stats_from_results`] consumes them: devices, failing devices,
/// failure counts — all grouped by [`Dim::Model`]. Any query path (the
/// in-process adapters here, or a queryd wire client) that evaluates these
/// and feeds the shared constructors renders byte-identical tables.
pub fn table1_queries() -> [Query; 3] {
    [Metric::Devices, Metric::FailingDevices, Metric::Count].map(|metric| Query {
        filters: Vec::new(),
        group_by: vec![Dim::Model],
        window_ms: 0,
        metric,
        top_k: 0,
    })
}

/// The one query behind Table 2: `Data_Setup_Error` records that carried a
/// cause, grouped by cause code. Feed the answer to
/// [`table2_from_result`].
pub fn table2_query() -> Query {
    Query {
        filters: vec![Filter::Kind(FailureKind::DataSetupError), Filter::HasCause],
        group_by: vec![Dim::Cause],
        window_ms: 0,
        metric: Metric::Count,
        top_k: 0,
    }
}

/// Per-model stats ([`ModelStats`]) assembled from the answers to
/// [`table1_queries`] (same order): devices and failing devices from the
/// device directory, failure totals from the cube cells — the same
/// numerators and denominators the batch [`crate::per_model::compute`]
/// derives from the raw dataset.
pub fn model_stats_from_results(results: &[ResultSet; 3]) -> Vec<ModelStats> {
    // Model keys are `PhoneModelId.0` (1-based; 0 = unknown). Index by key.
    let mut tallies = [[0u64; 35]; 3];
    for (tally, rs) in tallies.iter_mut().zip(results) {
        for r in &rs.rows {
            if let Some(slot) = r.key.first().and_then(|k| tally.get_mut(*k as usize)) {
                *slot = r.count;
            }
        }
    }
    let [devices, failing, failures] = tallies;
    PhoneModelId::all()
        .map(|id| {
            let m = id.0 as usize;
            let n = devices[m].max(1) as f64;
            ModelStats {
                model: id,
                devices: devices[m] as u32,
                prevalence: failing[m] as f64 / n,
                frequency: failures[m] as f64 / n,
            }
        })
        .collect()
}

/// Table 1 assembled from the answers to [`table1_queries`].
pub fn table1_from_results(results: &[ResultSet; 3]) -> Table1 {
    table1::from_stats(model_stats_from_results(results))
}

/// Table 2 assembled from the answer to [`table2_query`].
pub fn table2_from_result(rs: &ResultSet, k: usize) -> Table2 {
    let mut total = 0u64;
    let counts: Vec<(DataFailCause, u64)> = rs
        .rows
        .iter()
        .map(|r| {
            total += r.count;
            // `Dim::Cause` keys use the wire encoding: `1 + zigzag(code)`.
            let key = r.key.first().copied().unwrap_or(1);
            let code = unzigzag(key.max(1) - 1) as i32;
            (DataFailCause::from_code(code), r.count)
        })
        .collect();
    table2::from_cause_counts(counts, total, k)
}

/// [`model_stats_from_results`] over in-process queries.
pub fn model_stats_from_store(store: &Store) -> Result<Vec<ModelStats>, QueryError> {
    let [d, f, c] = table1_queries();
    let results = [store.query(&d)?, store.query(&f)?, store.query(&c)?];
    Ok(model_stats_from_results(&results))
}

/// Table 1 served from store queries; byte-identical to
/// [`table1::compute`] on the same fleet.
pub fn table1_from_store(store: &Store) -> Result<Table1, QueryError> {
    Ok(table1::from_stats(model_stats_from_store(store)?))
}

/// Table 2 served from one store query; byte-identical to
/// [`table2::compute`] on the same fleet.
pub fn table2_from_store(store: &Store, k: usize) -> Result<Table2, QueryError> {
    Ok(table2_from_result(&store.query(&table2_query())?, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_store::{build_sharded, DeviceDirectory, Store, StoreConfig};
    use std::sync::OnceLock;

    /// One store over the shared test dataset (building it is the expensive
    /// part of every test here).
    fn store() -> &'static Store {
        static STORE: OnceLock<Store> = OnceLock::new();
        STORE.get_or_init(|| {
            let data = crate::testutil::dataset();
            let dir = DeviceDirectory::from_population(&data.population);
            build_sharded(&StoreConfig::default(), &dir, &data.events, 1)
        })
    }

    #[test]
    fn table1_via_store_is_byte_identical_to_batch() {
        let data = crate::testutil::dataset();
        let batch = crate::table1::compute(data);
        let via_store = table1_from_store(store()).expect("valid query");
        assert_eq!(via_store.render(), batch.render());
        assert_eq!(via_store.stats, batch.stats);
    }

    #[test]
    fn table2_via_store_is_byte_identical_to_batch() {
        let data = crate::testutil::dataset();
        for k in [10usize, 14] {
            let batch = crate::table2::compute(data, k);
            let via_store = table2_from_store(store(), k).expect("valid query");
            assert_eq!(via_store.render(), batch.render(), "k={k}");
            assert_eq!(via_store.rows, batch.rows, "k={k}");
            assert_eq!(via_store.total_setup_errors, batch.total_setup_errors);
        }
    }

    #[test]
    fn identity_survives_compaction_and_threading() {
        let data = crate::testutil::dataset();
        let dir = DeviceDirectory::from_population(&data.population);
        let mut s = build_sharded(&StoreConfig::default(), &dir, &data.events, 2);
        s.compact();
        let batch = crate::table2::compute(data, 10);
        let via_store = table2_from_store(&s, 10).expect("valid query");
        assert_eq!(via_store.render(), batch.render());
        assert_eq!(
            table1_from_store(&s).expect("valid query").render(),
            crate::table1::compute(data).render()
        );
    }
}
