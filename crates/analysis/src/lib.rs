//! # cellrel-analysis
//!
//! The analysis pipeline: everything §3 and §4.3 of the paper compute,
//! recovered from simulated datasets. One module per experiment family,
//! each producing a typed result plus a rendered text table/series — the
//! rows the `cellrel-bench` repro harness prints next to the paper's
//! published values.
//!
//! | module | reproduces |
//! |---|---|
//! | [`headline`] | §3.1 general statistics |
//! | [`table1`] | Table 1 (per-model prevalence/frequency) |
//! | [`table2`] | Table 2 (top-10 `Data_Setup_Error` causes) |
//! | [`per_model`] | Figures 2 and 5 |
//! | [`counts`] | Figure 3 |
//! | [`duration_stats`] | Figure 4 |
//! | [`groups`] | Figures 6–9 |
//! | [`stall_recovery`] | Figure 10 |
//! | [`zipf`] | Figure 11 |
//! | [`isp`] | Figures 12–13 |
//! | [`per_rat`] | Figure 14 |
//! | [`signal`] | Figures 15–16 |
//! | [`transitions`] | Figure 17 (a–f) |
//! | [`ab`] | Figures 19–21 |
//! | [`store_tables`] | Tables 1–2 served from `cellrel-store` queries |
//! | [`streaming`] | §3.1 counters as a mergeable streaming sink |
//! | [`metrics`] | observability metrics tables (`--metrics`) |
//! | [`render`] | text table / series rendering |
//! | [`export`] | CSV export for downstream plotting |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ab;
pub mod counts;
pub mod duration_stats;
pub mod export;
pub mod groups;
pub mod hardware;
pub mod headline;
pub mod isp;
pub mod measurement;
pub mod metrics;
pub mod per_model;
pub mod per_rat;
pub mod render;
pub mod signal;
pub mod stall_recovery;
pub mod store_tables;
pub mod streaming;
pub mod table1;
pub mod table2;
pub mod transitions;
pub mod zipf;

pub use metrics::render_metrics;
pub use render::Table;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: generating a macro dataset is the expensive part of
    //! every analysis test, so the test binary builds it once.
    use cellrel_workload::{run_macro_study, StudyConfig, StudyDataset};
    use std::sync::OnceLock;

    /// The shared small macro dataset. The seed is a calibration
    /// expectation: at 3 000 devices the low-share models carry ~10²
    /// devices, so tolerance tests need a typical draw, and the seed was
    /// re-picked once when event generation moved to per-device substreams.
    pub fn dataset() -> &'static StudyDataset {
        static DATA: OnceLock<StudyDataset> = OnceLock::new();
        DATA.get_or_init(|| {
            run_macro_study(&StudyConfig {
                seed: 2024,
                ..StudyConfig::small()
            })
        })
    }
}
