//! §3.2's hardware-configuration analysis.
//!
//! "Intuitively, using higher-end cell phones should help to mitigate
//! cellular failures … However, our measurement results generally indicate
//! the opposite: both the prevalence and frequency of cellular failures
//! tend to increase with better hardware configurations." The paper then
//! attributes the correlation to two confounders: 5G capability and Android
//! version. This module computes the correlation and the confounder
//! decomposition.

use crate::per_model::{self, ModelStats};
use crate::render::Table;
use cellrel_sim::linreg;
use cellrel_workload::{models, StudyDataset};

/// The §3.2 hardware analysis result.
#[derive(Debug, Clone)]
pub struct HardwareAnalysis {
    /// Pearson-style slope of prevalence on hardware tier (0..1 scale).
    pub prevalence_slope: f64,
    /// r² of that fit.
    pub prevalence_r2: f64,
    /// Slope of frequency on hardware tier.
    pub frequency_slope: f64,
    /// Prevalence slope *within* the non-5G Android-10 stratum — with the
    /// confounders held fixed, the hardware effect should largely vanish.
    pub stratified_prevalence_slope: f64,
    /// Per-model stats the analysis ran on.
    pub stats: Vec<ModelStats>,
}

/// Compute the hardware-tier correlations.
pub fn compute(data: &StudyDataset) -> HardwareAnalysis {
    let stats = per_model::compute(data);

    let rows: Vec<(f64, f64, f64)> = stats
        .iter()
        .filter(|s| s.devices >= 30)
        .map(|s| {
            let spec = models::model(s.model);
            (spec.hw.tier(), s.prevalence, s.frequency)
        })
        .collect();
    let tiers: Vec<f64> = rows.iter().map(|r| r.0).collect();
    let prevs: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let freqs: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let (prevalence_slope, _, prevalence_r2) = linreg(&tiers, &prevs);
    let (frequency_slope, _, _) = linreg(&tiers, &freqs);

    // Stratum: non-5G Android 10 models only (the paper's fair comparison).
    let strat: Vec<(f64, f64)> = stats
        .iter()
        .filter(|s| {
            let spec = models::model(s.model);
            s.devices >= 30
                && !spec.hw.has_5g_modem
                && spec.hw.android == cellrel_types::AndroidVersion::V10
        })
        .map(|s| (models::model(s.model).hw.tier(), s.prevalence))
        .collect();
    let stratified_prevalence_slope = if strat.len() >= 2 {
        let xs: Vec<f64> = strat.iter().map(|r| r.0).collect();
        let ys: Vec<f64> = strat.iter().map(|r| r.1).collect();
        linreg(&xs, &ys).0
    } else {
        0.0
    };

    HardwareAnalysis {
        prevalence_slope,
        prevalence_r2,
        frequency_slope,
        stratified_prevalence_slope,
        stats,
    }
}

impl HardwareAnalysis {
    /// Render the analysis.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "§3.2 — hardware tier vs failures (the counter-intuitive correlation)",
            &["regression", "slope", "interpretation"],
        );
        t.row(vec![
            "prevalence ~ tier (all models)".into(),
            format!("{:+.3}", self.prevalence_slope),
            "positive: better hardware, MORE failures".into(),
        ]);
        t.row(vec![
            "frequency ~ tier (all models)".into(),
            format!("{:+.1}", self.frequency_slope),
            "positive".into(),
        ]);
        t.row(vec![
            "prevalence ~ tier (non-5G, Android 10)".into(),
            format!("{:+.3}", self.stratified_prevalence_slope),
            "attenuated once 5G/OS confounders are held fixed".into(),
        ]);
        format!(
            "{}\npaper: the raw correlation is an artefact of 5G capability and\n\
             Android version, not of the hardware itself (§3.2)\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_hardware_correlates_with_more_failures() {
        let data = crate::testutil::dataset();
        let h = compute(data);
        assert!(
            h.prevalence_slope > 0.0,
            "prevalence slope {} should be positive (the paper's surprise)",
            h.prevalence_slope
        );
        assert!(
            h.frequency_slope > 0.0,
            "frequency slope {} should be positive",
            h.frequency_slope
        );
    }

    #[test]
    fn confounders_carry_part_of_the_effect() {
        let data = crate::testutil::dataset();
        let h = compute(data);
        // Within the fixed (non-5G, Android 10) stratum the slope shrinks —
        // the confounders explain a meaningful share of the raw correlation.
        // (It doesn't vanish: Table 1's high-tier Android-10 models do fail
        // more, which is what the stratified slope faithfully reports.)
        assert!(
            h.stratified_prevalence_slope < h.prevalence_slope * 1.05,
            "stratified slope {} vs raw {}",
            h.stratified_prevalence_slope,
            h.prevalence_slope
        );
        assert!(h.render().contains("counter-intuitive"));
    }
}
