//! Figure 17 (a–f) — the increase in normalized failure prevalence caused
//! by RAT transitions.
//!
//! Six heat maps, one per ordered RAT pair (2G→3G, 2G→4G, 2G→5G, 3G→4G,
//! 3G→5G, 4G→5G), each a 6×6 grid over (source level i, target level j).
//! The paper's headline cell: 4G level-4 → 5G level-0 increases normalized
//! prevalence by +0.37, and all four 4G level-1..4 → 5G level-0 transitions
//! are "undesirable".

use cellrel_sim::SimRng;
use cellrel_types::{Rat, SignalLevel};
use cellrel_workload::exposure;

/// The six RAT pairs of Fig. 17, in the paper's panel order (a–f).
pub const PAIRS: [(Rat, Rat); 6] = [
    (Rat::G2, Rat::G3),
    (Rat::G2, Rat::G4),
    (Rat::G2, Rat::G5),
    (Rat::G3, Rat::G4),
    (Rat::G3, Rat::G5),
    (Rat::G4, Rat::G5),
];

/// One 6×6 transition matrix: `delta[i][j]` is the measured increase in
/// normalized prevalence for the transition `from level-i` → `to level-j`.
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    /// Source RAT.
    pub from: Rat,
    /// Target RAT.
    pub to: Rat,
    /// The measured increases.
    pub delta: [[f64; 6]; 6],
}

/// Figure 17 result: the six matrices.
#[derive(Debug, Clone)]
pub struct TransitionFigure {
    /// The panels, ordered per [`PAIRS`].
    pub matrices: Vec<TransitionMatrix>,
}

/// Estimate the six matrices by Monte-Carlo over the calibrated transition
/// model: for each cell, observe `samples` synthetic transitions, measure
/// post-transition failure frequency, and subtract the no-transition
/// baseline at the same target state.
pub fn compute(samples: u32, rng: &mut SimRng) -> TransitionFigure {
    let mut matrices = Vec::with_capacity(6);
    for (from, to) in PAIRS {
        let mut delta = [[0f64; 6]; 6];
        for (i, &li) in SignalLevel::ALL.iter().enumerate() {
            for (j, &lj) in SignalLevel::ALL.iter().enumerate() {
                let mut failures = 0u32;
                for _ in 0..samples {
                    if exposure::sample_transition_failure(from, li, to, lj, rng) {
                        failures += 1;
                    }
                }
                let observed = failures as f64 / samples as f64;
                // Baseline: failure likelihood at the target state without a
                // transition (the same baseline the sampler uses).
                let baseline = exposure::normalized_prevalence_by_rat(to, lj) * 0.5;
                delta[i][j] = observed - baseline;
            }
        }
        matrices.push(TransitionMatrix { from, to, delta });
    }
    TransitionFigure { matrices }
}

impl TransitionFigure {
    /// The panel for a RAT pair.
    pub fn panel(&self, from: Rat, to: Rat) -> Option<&TransitionMatrix> {
        self.matrices.iter().find(|m| m.from == from && m.to == to)
    }

    /// Render all six panels as text heat maps.
    pub fn render(&self) -> String {
        let mut out = String::from("== Fig. 17 — ΔnormPrev for RAT transitions ==\n");
        for m in &self.matrices {
            out.push_str(&format!(
                "-- {} → {} (rows: from-level, cols: to-level) --\n",
                m.from, m.to
            ));
            out.push_str("      j=0     j=1     j=2     j=3     j=4     j=5\n");
            for (i, row) in m.delta.iter().enumerate() {
                out.push_str(&format!("i={i} "));
                for v in row {
                    out.push_str(&format!(" {v:+.3} "));
                }
                out.push('\n');
            }
        }
        out.push_str("paper: level-0 landings are the dark column; 4G L4→5G L0 ≈ +0.37\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> TransitionFigure {
        let mut rng = SimRng::new(17);
        compute(4000, &mut rng)
    }

    #[test]
    fn six_panels_in_paper_order() {
        let f = figure();
        assert_eq!(f.matrices.len(), 6);
        assert!(f.panel(Rat::G4, Rat::G5).is_some());
        assert!(f.panel(Rat::G5, Rat::G4).is_none());
    }

    #[test]
    fn fig17f_dark_cells_recovered() {
        let f = figure();
        let m = f.panel(Rat::G4, Rat::G5).expect("panel f");
        // The four undesirable transitions: 4G L1..=L4 → 5G L0.
        for i in 1..=4 {
            let v = m.delta[i][0];
            assert!(v > 0.12, "4G L{i} → 5G L0 increase {v} too small");
        }
        // The headline cell is the worst and near +0.37.
        let worst = m.delta[4][0];
        assert!((0.2..0.5).contains(&worst), "L4→L0 = {worst}");
        for i in 0..6 {
            for j in 1..6 {
                assert!(
                    m.delta[i][j] < worst,
                    "cell ({i},{j}) = {} exceeds the L4→L0 cell {worst}",
                    m.delta[i][j]
                );
            }
        }
    }

    #[test]
    fn level0_column_is_dark_in_every_panel() {
        let f = figure();
        for m in &f.matrices {
            // Average over source levels: the j=0 column exceeds the j=3 one.
            let col = |j: usize| m.delta.iter().map(|r| r[j]).sum::<f64>() / 6.0;
            assert!(
                col(0) > col(3) + 0.05,
                "{} → {}: col0 {} vs col3 {}",
                m.from,
                m.to,
                col(0),
                col(3)
            );
        }
    }

    #[test]
    fn render_contains_all_panels() {
        let s = figure().render();
        assert!(s.contains("4G → 5G"));
        assert!(s.contains("2G → 3G"));
    }
}
