//! Table 1 — the full per-model table with measured columns.

use crate::per_model::{self, ModelStats};
use crate::render::{pct, Table};
use cellrel_workload::{models, StudyDataset};

/// Table 1 result: per-model measured stats plus fidelity summary.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Per-model measured stats.
    pub stats: Vec<ModelStats>,
    /// Mean absolute prevalence error vs the paper (well-sampled models).
    pub mean_prevalence_error: f64,
    /// Mean relative frequency error vs the paper (well-sampled models).
    pub mean_frequency_rel_error: f64,
}

/// Compute Table 1 from a dataset.
pub fn compute(data: &StudyDataset) -> Table1 {
    from_stats(per_model::compute(data))
}

/// Build Table 1 from already-computed per-model stats — the shared tail of
/// the batch path above and the store-query path
/// ([`crate::store_tables::table1_from_store`]), so both produce
/// byte-identical tables from equal stats.
pub fn from_stats(stats: Vec<ModelStats>) -> Table1 {
    let mut p_err = 0.0;
    let mut f_err = 0.0;
    let mut n = 0usize;
    for s in &stats {
        if s.devices >= 100 {
            let spec = models::model(s.model);
            p_err += (s.prevalence - spec.prevalence).abs();
            if spec.frequency > 0.0 {
                f_err += ((s.frequency - spec.frequency) / spec.frequency).abs();
            }
            n += 1;
        }
    }
    let n = n.max(1) as f64;
    Table1 {
        stats,
        mean_prevalence_error: p_err / n,
        mean_frequency_rel_error: f_err / n,
    }
}

impl Table1 {
    /// Render the full table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 1 — 34 phone models (measured vs paper)",
            &[
                "model",
                "cpu",
                "mem",
                "sto",
                "5G",
                "ver",
                "users",
                "prev",
                "prev(paper)",
                "freq",
                "freq(paper)",
            ],
        );
        for s in &self.stats {
            let spec = models::model(s.model);
            t.row(vec![
                s.model.0.to_string(),
                format!("{:.2}GHz", spec.hw.cpu_ghz),
                format!("{}GB", spec.hw.memory_gb),
                format!("{}GB", spec.hw.storage_gb),
                if spec.hw.has_5g_modem { "YES" } else { "-" }.into(),
                format!("{}", spec.hw.android.number()),
                pct(spec.user_share),
                pct(s.prevalence),
                pct(spec.prevalence),
                format!("{:.1}", s.frequency),
                format!("{:.1}", spec.frequency),
            ]);
        }
        format!(
            "{}\nfidelity: mean |Δprevalence| = {:.2} pp, mean |Δfrequency| = {:.1}%\n",
            t.render(),
            self.mean_prevalence_error * 100.0,
            self.mean_frequency_rel_error * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_fidelity_is_tight() {
        let data = crate::testutil::dataset();
        let t1 = compute(data);
        assert_eq!(t1.stats.len(), 34);
        assert!(
            t1.mean_prevalence_error < 0.05,
            "prevalence error {}",
            t1.mean_prevalence_error
        );
        assert!(
            t1.mean_frequency_rel_error < 0.5,
            "frequency error {}",
            t1.mean_frequency_rel_error
        );
        let s = t1.render();
        assert!(s.contains("Table 1"));
        assert!(s.contains("fidelity"));
    }
}
