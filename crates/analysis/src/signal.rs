//! Figures 15–16 — normalized failure prevalence by signal level.
//!
//! The analysis divides per-level failure counts by per-level *exposure*
//! (time spent camped at that level) — the paper's normalization — and must
//! recover the counter-intuitive level-5 spike.

use crate::render::Table;
use cellrel_types::{Rat, SignalLevel};
use cellrel_workload::exposure;
use cellrel_workload::StudyDataset;

/// Normalized prevalence by level, overall and per RAT.
#[derive(Debug, Clone)]
pub struct SignalFigures {
    /// Fig. 15: overall normalized prevalence per level (arbitrary units,
    /// normalized so the series sums to 1).
    pub overall: [f64; 6],
    /// Fig. 16: per-RAT normalized prevalence for 4G and 5G.
    pub g4: [f64; 6],
    /// 5G series.
    pub g5: [f64; 6],
}

fn normalize(series: [f64; 6]) -> [f64; 6] {
    let total: f64 = series.iter().sum();
    if total <= 0.0 {
        return series;
    }
    series.map(|x| x / total)
}

/// Compute Figures 15–16 from the dataset, using the exposure table the
/// study used (in the paper the exposure data came from Xiaomi's nationwide
/// measurement).
pub fn compute(data: &StudyDataset) -> SignalFigures {
    let mut overall = [0f64; 6];
    let mut g4 = [0f64; 6];
    let mut g5 = [0f64; 6];
    for e in &data.events {
        let l = e.ctx.signal.index();
        overall[l] += 1.0;
        match e.ctx.rat {
            Rat::G4 => g4[l] += 1.0,
            Rat::G5 => g5[l] += 1.0,
            _ => {}
        }
    }
    let norm = |counts: [f64; 6]| {
        let mut out = [0f64; 6];
        for (i, &level) in SignalLevel::ALL.iter().enumerate() {
            out[i] = counts[i] / exposure::level_exposure(level).max(1e-12);
        }
        normalize(out)
    };
    SignalFigures {
        overall: norm(overall),
        g4: norm(g4),
        g5: norm(g5),
    }
}

impl SignalFigures {
    /// The Fig. 15 assertions: strictly decreasing levels 0→4, spike at 5
    /// above levels 1–4 but below level 0.
    pub fn fig15_shape_holds(&self) -> bool {
        let s = &self.overall;
        let decreasing = s[..5].windows(2).all(|w| w[0] > w[1]);
        let spike = s[5] > s[1] && s[5] > s[2] && s[5] > s[3] && s[5] > s[4] && s[5] < s[0];
        decreasing && spike
    }

    /// Render both figures.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 15–16 — normalized prevalence by signal level",
            &["level", "overall", "4G", "5G"],
        );
        for level in SignalLevel::ALL {
            let i = level.index();
            t.row(vec![
                level.to_string(),
                format!("{:.3}", self.overall[i]),
                format!("{:.3}", self.g4[i]),
                format!("{:.3}", self.g5[i]),
            ]);
        }
        format!(
            "{}\npaper: monotone decrease levels 0–4, spike at level 5 (dense hubs)\nshape holds: {}\n",
            t.render(),
            self.fig15_shape_holds()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_spike_is_recovered() {
        let data = crate::testutil::dataset();
        let f = compute(data);
        assert!(
            f.fig15_shape_holds(),
            "Fig. 15 shape violated: {:?}",
            f.overall
        );
    }

    #[test]
    fn fig16_5g_failure_mass_shifts_to_weak_levels() {
        let data = crate::testutil::dataset();
        let f = compute(data);
        // Each series is normalized to sum 1, so compare shapes: 5G's
        // normalized prevalence concentrates more mass at the weak end
        // (levels 0–1, the coverage-edge disaster zone) than 4G's.
        let low_g5: f64 = f.g5[..2].iter().sum();
        let low_g4: f64 = f.g4[..2].iter().sum();
        assert!(
            low_g5 > low_g4 + 0.02,
            "5G weak-level mass {low_g5} vs 4G {low_g4}"
        );
        assert!(f.render().contains("Fig. 15–16"));
    }
}
