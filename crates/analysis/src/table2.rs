//! Table 2 — decomposition of `Data_Setup_Error` failures by cause code.

use crate::render::{pct, Table};
use cellrel_types::{DataFailCause, FailureKind};
use cellrel_workload::StudyDataset;
use std::collections::HashMap;

/// One row of the recovered Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CauseRow {
    /// The cause.
    pub cause: DataFailCause,
    /// Share among all `Data_Setup_Error` events.
    pub share: f64,
    /// The paper's share if the cause is in the paper's top-10.
    pub paper_share: Option<f64>,
}

/// Recovered Table 2.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Top causes, descending by share.
    pub rows: Vec<CauseRow>,
    /// Total setup errors analysed.
    pub total_setup_errors: u64,
    /// Combined share of the top 10.
    pub top10_share: f64,
}

/// Compute the cause decomposition (top `k` causes).
pub fn compute(data: &StudyDataset, k: usize) -> Table2 {
    let mut counts: HashMap<DataFailCause, u64> = HashMap::new();
    let mut total = 0u64;
    for e in &data.events {
        if e.kind == FailureKind::DataSetupError {
            if let Some(c) = e.cause {
                *counts.entry(c).or_default() += 1;
                total += 1;
            }
        }
    }
    from_cause_counts(counts.into_iter().collect(), total, k)
}

/// Build Table 2 from per-cause counts — the shared tail of the batch path
/// above and the store-query path
/// ([`crate::store_tables::table2_from_store`]). Ranking is fully
/// deterministic: descending by share, ties broken by ascending cause code,
/// so equal counts yield byte-identical tables regardless of input order.
pub fn from_cause_counts(counts: Vec<(DataFailCause, u64)>, total: u64, k: usize) -> Table2 {
    let mut rows: Vec<CauseRow> = counts
        .into_iter()
        .map(|(cause, n)| CauseRow {
            cause,
            share: n as f64 / total.max(1) as f64,
            paper_share: DataFailCause::TABLE2_TOP10
                .iter()
                .find(|(c, _)| *c == cause)
                .map(|(_, s)| *s),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.share
            .partial_cmp(&a.share)
            .expect("finite shares")
            .then_with(|| a.cause.code().cmp(&b.cause.code()))
    });
    let top10_share: f64 = rows.iter().take(10).map(|r| r.share).sum();
    rows.truncate(k);
    Table2 {
        rows,
        total_setup_errors: total,
        top10_share,
    }
}

impl Table2 {
    /// Render with descriptions and paper shares.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 2 — top Data_Setup_Error causes (measured vs paper)",
            &["error code", "share", "paper", "description"],
        );
        for r in &self.rows {
            t.row(vec![
                r.cause.name().to_string(),
                pct(r.share),
                r.paper_share.map(pct).unwrap_or_else(|| "-".into()),
                r.cause.description().to_string(),
            ]);
        }
        format!(
            "{}\ntop-10 combined share: {} (paper: 46.7%)\n",
            t.render(),
            pct(self.top10_share)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_recovers_paper_ranking() {
        let data = crate::testutil::dataset();
        let t2 = compute(data, 10);
        assert!(t2.total_setup_errors > 5_000);
        // Rank 1 must be GPRS_REGISTRATION_FAIL at ~12.8 %.
        assert_eq!(t2.rows[0].cause, DataFailCause::GprsRegistrationFail);
        assert!(
            (t2.rows[0].share - 0.128).abs() < 0.02,
            "rank-1 share {}",
            t2.rows[0].share
        );
        // Top-10 combined ≈ 46.7 %.
        assert!(
            (t2.top10_share - 0.467).abs() < 0.04,
            "top-10 share {}",
            t2.top10_share
        );
        // All of the paper's top 10 appear in our top ~14.
        let t2_wide = compute(data, 14);
        for (cause, _) in DataFailCause::TABLE2_TOP10 {
            assert!(
                t2_wide.rows.iter().any(|r| r.cause == cause),
                "{cause} missing from recovered top causes"
            );
        }
        let s = t2.render();
        assert!(s.contains("GprsRegistrationFail"));
    }
}
