//! Figure 4 — the distribution of failure durations.

use cellrel_sim::Ecdf;
use cellrel_workload::StudyDataset;

/// Figure 4 result.
#[derive(Debug, Clone)]
pub struct DurationFigure {
    /// ECDF over all failure durations (seconds).
    pub ecdf: Ecdf,
    /// Mean duration, seconds (paper: 188 s).
    pub mean_secs: f64,
    /// Fraction under 30 s (paper: 70.8 %).
    pub under_30s: f64,
    /// Maximum (paper: 91,770 s).
    pub max_secs: f64,
}

/// Compute Figure 4.
pub fn compute(data: &StudyDataset) -> DurationFigure {
    let durations: Vec<f64> = data
        .events
        .iter()
        .map(|e| e.duration.as_secs_f64())
        .collect();
    assert!(!durations.is_empty(), "dataset has no failures");
    let ecdf = Ecdf::new(durations);
    DurationFigure {
        mean_secs: ecdf.mean(),
        under_30s: ecdf.at(29.999),
        max_secs: ecdf.max(),
        ecdf,
    }
}

impl DurationFigure {
    /// Render the quantile series plus the summary facts.
    pub fn render(&self) -> String {
        let qs = [0.1, 0.25, 0.5, 0.708, 0.9, 0.99, 1.0];
        let points: Vec<(f64, f64)> = qs.iter().map(|&q| (self.ecdf.quantile(q), q)).collect();
        let mut out = crate::render::series(
            "Fig. 4 — failure duration CDF (seconds)",
            &points,
            "duration(s)",
            "CDF",
        );
        out.push_str(&format!(
            "mean {:.0} s (paper 188 s) | <30 s: {:.1}% (paper 70.8%) | max {:.0} s (paper 91,770 s)\n",
            self.mean_secs,
            self.under_30s * 100.0,
            self.max_secs
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes_match() {
        let data = crate::testutil::dataset();
        let f = compute(data);
        assert!((80.0..400.0).contains(&f.mean_secs), "mean {}", f.mean_secs);
        assert!(
            (0.60..0.85).contains(&f.under_30s),
            "under-30 {}",
            f.under_30s
        );
        assert!(f.max_secs <= 91_770.0 + 1.0);
        assert!(f.max_secs > 2_000.0, "tail too light: max {}", f.max_secs);
        assert!(f.render().contains("Fig. 4"));
    }
}
