//! # cellrel-monitor
//!
//! Android-MOD — the paper's measurement artifact (§2.2), reimplemented in
//! full. Vanilla Android reports failure events without context and mixed
//! with noise; Android-MOD instruments the system services, filters false
//! positives, measures stall durations by active probing, and ships compact
//! traces to the backend:
//!
//! * [`filter`] — instrumentation-level false-positive filtering: overload
//!   rejections, voice-call disruptions, balance suspensions, manual
//!   disconnections, all 344-code classification driven.
//! * [`probing`] — the stall-duration probe session: 1 s ICMP / 5 s DNS
//!   rounds, ≤5 s measurement error, ×2 timeout backoff past 1200 s, revert
//!   to vanilla minute-granularity once a timeout exceeds one minute.
//! * [`trace`] — the per-failure [`TraceRecord`] with in-situ context.
//! * [`service`] — [`MonitoringService`]: the `TelephonyListener` that ties
//!   it all together and accumulates the dataset plus a filter confusion
//!   matrix.
//! * [`overhead`] — CPU/memory/storage/network overhead accounting against
//!   the paper's budgets.
//! * [`uploader`] — WiFi-gated trace upload batching. Flushes encode real
//!   `cellrel-ingest` wire batches, so network accounting reflects actual
//!   encoded bytes and the [`Backend`] can ingest straight off the wire
//!   (`Backend::ingest_encoded`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod filter;
pub mod overhead;
pub mod probing;
pub mod service;
pub mod trace;
pub mod uploader;

pub use backend::{Backend, FleetSummary};
pub use filter::{FilterDecision, FpFilter};
pub use overhead::OverheadAccounting;
pub use probing::{ProbeConfig, ProbeSession, StallMeasurement};
pub use service::MonitoringService;
pub use trace::TraceRecord;
pub use uploader::{EncodedUpload, Uploader};
