//! Trace records — the rows of the study's dataset.

use cellrel_types::{
    DataFailCause, DeviceId, FailureEvent, FailureKind, InSituInfo, SimDuration, SimTime,
};

/// One recorded true failure with its in-situ context — what Android-MOD
/// uploads (§2.2): failure kind and timing plus RAT, RSS level, APN and BS
/// identity, and the protocol error code for setup errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// The device that experienced the failure.
    pub device: DeviceId,
    /// Failure kind.
    pub kind: FailureKind,
    /// Failure start (detection-adjusted for stalls).
    pub start: SimTime,
    /// Measured duration.
    pub duration: SimDuration,
    /// Protocol error code (setup errors only).
    pub cause: Option<DataFailCause>,
    /// Radio context.
    pub ctx: InSituInfo,
}

impl TraceRecord {
    /// Convert to the analysis-layer event type.
    pub fn to_failure_event(&self) -> FailureEvent {
        FailureEvent {
            device: self.device,
            kind: self.kind,
            start: self.start,
            duration: self.duration,
            cause: self.cause,
            ctx: self.ctx,
        }
    }

    /// Inverse of [`TraceRecord::to_failure_event`] — the backend rebuilds
    /// records from decoded wire batches through this.
    pub fn from_failure_event(e: &FailureEvent) -> TraceRecord {
        TraceRecord {
            device: e.device,
            kind: e.kind,
            start: e.start,
            duration: e.duration,
            cause: e.cause,
            ctx: e.ctx,
        }
    }

    /// Raw (pre-codec) size of one record in bytes: the fixed-width row the
    /// monitor budgets on-device storage with, and the baseline the wire
    /// codec's bytes/record is measured against.
    pub fn encoded_size(&self) -> u64 {
        // device(4) + kind(1) + start(8) + duration(8) + cause(2, optional
        // flag folded in) + ctx: rat(1)+level(1)+apn(1)+bs(8)+isp(1) = 35.
        35
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_types::{Apn, BsId, Isp, Rat, SignalLevel};

    fn record() -> TraceRecord {
        TraceRecord {
            device: DeviceId(7),
            kind: FailureKind::DataSetupError,
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(12),
            cause: Some(DataFailCause::PppTimeout),
            ctx: InSituInfo {
                rat: Rat::G4,
                signal: SignalLevel::L2,
                apn: Apn::Internet,
                bs: Some(BsId::gsm_cn(0, 5, 9)),
                isp: Isp::C,
            },
        }
    }

    #[test]
    fn converts_to_failure_event() {
        let r = record();
        let e = r.to_failure_event();
        assert_eq!(e.device, r.device);
        assert_eq!(e.kind, r.kind);
        assert_eq!(e.duration, r.duration);
        assert_eq!(e.cause, r.cause);
        assert_eq!(e.ctx.isp, Isp::C);
    }

    #[test]
    fn encoded_size_is_compact() {
        assert!(record().encoded_size() < 64);
    }
}
