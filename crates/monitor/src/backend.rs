//! The backend: centralized trace collection (§2.3).
//!
//! "All data are compressed and uploaded to our backend server for
//! centralized analysis." The [`Backend`] ingests per-device trace batches
//! and produces the fleet-level aggregates the analysis layer consumes —
//! the same statistics the macro study computes, but derived bottom-up from
//! fully simulated devices.

use crate::trace::TraceRecord;
use cellrel_ingest::codec::{decode_batch, DecodeError};
use cellrel_types::{DeviceId, FailureEvent, FailureKind, SimDuration};
use std::collections::HashMap;

/// The central trace store.
#[derive(Debug, Default)]
pub struct Backend {
    records: Vec<TraceRecord>,
    per_device: HashMap<DeviceId, u32>,
    /// Devices registered (including those that never failed — needed for
    /// prevalence denominators).
    enrolled: u32,
    uploads: u64,
    uploaded_bytes: u64,
}

/// Fleet-level aggregates computed by the backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSummary {
    /// Enrolled devices.
    pub devices: u32,
    /// Devices with ≥1 recorded failure.
    pub failing_devices: u32,
    /// Total recorded failures.
    pub failures: u64,
    /// Prevalence (failing / enrolled).
    pub prevalence: f64,
    /// Frequency (failures / enrolled).
    pub frequency: f64,
    /// Failure counts by kind.
    pub by_kind: [u64; 5],
    /// Total failure duration, seconds.
    pub total_duration_secs: f64,
    /// Data_Stall share of total duration.
    pub stall_duration_share: f64,
}

impl Backend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a device (called at opt-in; zero-failure devices matter for
    /// prevalence).
    pub fn enroll(&mut self, _device: DeviceId) {
        self.enrolled += 1;
    }

    /// Ingest one upload batch from a device (in-process path; byte
    /// accounting uses the raw row size since nothing crossed a wire).
    pub fn ingest(&mut self, device: DeviceId, batch: Vec<TraceRecord>) {
        self.uploads += 1;
        for r in &batch {
            debug_assert_eq!(r.device, device, "record attributed to wrong device");
            self.uploaded_bytes += r.encoded_size();
        }
        *self.per_device.entry(device).or_default() += batch.len() as u32;
        self.records.extend(batch);
    }

    /// Ingest one encoded wire batch — the path real uploads take. Byte
    /// accounting uses the actual encoded length. Returns the record count,
    /// or the decode error for corrupt/truncated uploads (which leave the
    /// backend state untouched).
    pub fn ingest_encoded(&mut self, bytes: &[u8]) -> Result<u64, DecodeError> {
        let batch = decode_batch(bytes)?;
        self.uploads += 1;
        self.uploaded_bytes += bytes.len() as u64;
        *self.per_device.entry(batch.device).or_default() += batch.records.len() as u32;
        let n = batch.records.len() as u64;
        self.records
            .extend(batch.records.iter().map(TraceRecord::from_failure_event));
        Ok(n)
    }

    /// All ingested records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Enrolled device count.
    pub fn enrolled(&self) -> u32 {
        self.enrolled
    }

    /// Upload batches received.
    pub fn uploads(&self) -> u64 {
        self.uploads
    }

    /// Raw bytes received.
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded_bytes
    }

    /// Convert to analysis-layer failure events.
    pub fn failure_events(&self) -> Vec<FailureEvent> {
        self.records.iter().map(|r| r.to_failure_event()).collect()
    }

    /// Data_Stall durations in seconds (Fig. 10 / Fig. 21 inputs).
    pub fn stall_durations_secs(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.kind == FailureKind::DataStall)
            .map(|r| r.duration.as_secs_f64())
            .collect()
    }

    /// Compute the fleet summary.
    pub fn summary(&self) -> FleetSummary {
        let mut by_kind = [0u64; 5];
        let mut total_duration = SimDuration::ZERO;
        let mut stall_duration = SimDuration::ZERO;
        for r in &self.records {
            by_kind[r.kind.index()] += 1;
            total_duration += r.duration;
            if r.kind == FailureKind::DataStall {
                stall_duration += r.duration;
            }
        }
        let devices = self.enrolled.max(self.per_device.len() as u32);
        let failing = self.per_device.values().filter(|&&c| c > 0).count() as u32;
        let failures = self.records.len() as u64;
        FleetSummary {
            devices,
            failing_devices: failing,
            failures,
            prevalence: failing as f64 / devices.max(1) as f64,
            frequency: failures as f64 / devices.max(1) as f64,
            by_kind,
            total_duration_secs: total_duration.as_secs_f64(),
            stall_duration_share: if total_duration.is_zero() {
                0.0
            } else {
                stall_duration.as_secs_f64() / total_duration.as_secs_f64()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_types::{Apn, BsId, InSituInfo, Isp, Rat, SignalLevel, SimTime};

    fn record(device: u32, kind: FailureKind, secs: u64) -> TraceRecord {
        TraceRecord {
            device: DeviceId(device),
            kind,
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(secs),
            cause: None,
            ctx: InSituInfo {
                rat: Rat::G4,
                signal: SignalLevel::L3,
                apn: Apn::Internet,
                bs: Some(BsId::gsm_cn(0, 1, 1)),
                isp: Isp::A,
            },
        }
    }

    #[test]
    fn summary_aggregates_across_devices() {
        let mut b = Backend::new();
        for i in 0..10 {
            b.enroll(DeviceId(i));
        }
        b.ingest(
            DeviceId(0),
            vec![
                record(0, FailureKind::DataStall, 100),
                record(0, FailureKind::DataSetupError, 10),
            ],
        );
        b.ingest(DeviceId(1), vec![record(1, FailureKind::DataStall, 50)]);

        let s = b.summary();
        assert_eq!(s.devices, 10);
        assert_eq!(s.failing_devices, 2);
        assert_eq!(s.failures, 3);
        assert!((s.prevalence - 0.2).abs() < 1e-12);
        assert!((s.frequency - 0.3).abs() < 1e-12);
        assert_eq!(s.by_kind[FailureKind::DataStall.index()], 2);
        assert!((s.total_duration_secs - 160.0).abs() < 1e-9);
        assert!((s.stall_duration_share - 150.0 / 160.0).abs() < 1e-9);
    }

    #[test]
    fn stall_durations_filter_by_kind() {
        let mut b = Backend::new();
        b.enroll(DeviceId(0));
        b.ingest(
            DeviceId(0),
            vec![
                record(0, FailureKind::DataStall, 30),
                record(0, FailureKind::OutOfService, 99),
            ],
        );
        assert_eq!(b.stall_durations_secs(), vec![30.0]);
        assert_eq!(b.failure_events().len(), 2);
    }

    #[test]
    fn empty_backend_is_sane() {
        let b = Backend::new();
        let s = b.summary();
        assert_eq!(s.failures, 0);
        assert_eq!(s.prevalence, 0.0);
        assert_eq!(s.stall_duration_share, 0.0);
    }

    #[test]
    fn byte_accounting() {
        let mut b = Backend::new();
        b.enroll(DeviceId(0));
        b.ingest(DeviceId(0), vec![record(0, FailureKind::DataStall, 1)]);
        assert_eq!(b.uploads(), 1);
        assert_eq!(b.uploaded_bytes(), 35);
    }

    #[test]
    fn encoded_ingest_counts_wire_bytes() {
        let mut b = Backend::new();
        b.enroll(DeviceId(0));
        let records = [
            record(0, FailureKind::DataStall, 30),
            record(0, FailureKind::OutOfService, 99),
        ];
        let events: Vec<_> = records.iter().map(|r| r.to_failure_event()).collect();
        let bytes = cellrel_ingest::codec::encode_batch(DeviceId(0), 0, &events);
        assert_eq!(b.ingest_encoded(&bytes).unwrap(), 2);
        assert_eq!(b.uploaded_bytes(), bytes.len() as u64);
        assert_eq!(b.records().len(), 2);
        assert_eq!(b.summary().failing_devices, 1);

        // A corrupt upload errors out and leaves the state untouched.
        let mut bad = bytes.clone();
        bad[5] ^= 0xff;
        assert!(b.ingest_encoded(&bad).is_err());
        assert_eq!(b.records().len(), 2);
        assert_eq!(b.uploaded_bytes(), bytes.len() as u64);
    }
}
