//! The stall-duration probe session (§2.2).
//!
//! Once a Data_Stall is suspected, Android-MOD runs probing rounds until the
//! stall clears:
//!
//! * each round: ICMP to loopback (1 s timeout) concurrent with ICMP + DNS
//!   to the assigned DNS servers (5 s timeout) — at most 5 s per round;
//! * the measured duration is the sum of round durations, so the error is
//!   at most one round (≤5 s ≪ the 1-minute error of vanilla Android);
//! * past 1200 s of stall, the timeouts double each round to bound network
//!   overhead;
//! * once either timeout exceeds one minute, the component reverts to the
//!   vanilla detection mechanism (minute-granularity estimate).
//!
//! The first round also classifies the episode: system-side and
//! DNS-outage verdicts are false positives and the episode is dropped.

use cellrel_netstack::{run_probe, LinkCondition, ProbeVerdict};
use cellrel_sim::SimRng;
use cellrel_types::SimDuration;

/// Initial ICMP timeout (1 s).
const ICMP_TIMEOUT: SimDuration = SimDuration::from_secs(1);
/// Initial DNS timeout (5 s).
const DNS_TIMEOUT: SimDuration = SimDuration::from_secs(5);
/// Stall length past which timeouts start doubling.
const BACKOFF_THRESHOLD: SimDuration = SimDuration::from_secs(1200);
/// Timeout ceiling: beyond one minute, revert to vanilla estimation.
const REVERT_TIMEOUT: SimDuration = SimDuration::from_secs(60);

/// Result of measuring one stall episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallMeasurement {
    /// The first round's classification of the episode.
    pub verdict: ProbeVerdict,
    /// The measured stall duration (None when the episode was classified a
    /// false positive and therefore discarded).
    pub measured: Option<SimDuration>,
    /// Probe rounds executed.
    pub rounds: u32,
    /// Whether the session fell back to vanilla minute-granularity
    /// estimation.
    pub reverted_to_vanilla: bool,
    /// Approximate probe bytes sent on the network (for overhead accounting;
    /// one round ≈ 2 ICMP echoes + a DNS query per server ≈ 300 B).
    pub probe_bytes: u64,
}

/// Probe-session timing configuration. The defaults are the paper's; the
/// ablation benches sweep them to show the accuracy/overhead trade-off the
/// paper's choices sit on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeConfig {
    /// ICMP echo timeout per round.
    pub icmp_timeout: SimDuration,
    /// DNS query timeout per round (also the round-length bound).
    pub dns_timeout: SimDuration,
    /// Stall length past which timeouts start doubling.
    pub backoff_threshold: SimDuration,
    /// Timeout ceiling: beyond this, revert to vanilla estimation.
    pub revert_timeout: SimDuration,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            icmp_timeout: ICMP_TIMEOUT,
            dns_timeout: DNS_TIMEOUT,
            backoff_threshold: BACKOFF_THRESHOLD,
            revert_timeout: REVERT_TIMEOUT,
        }
    }
}

/// A probe session measuring one stall episode of known ground-truth
/// duration (from stall detection to heal).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeSession;

/// Bytes per probing round (2 DNS servers: 2 ICMP + 2 DNS + loopback ICMP).
const BYTES_PER_ROUND: u64 = 300;

impl ProbeSession {
    /// Run the session with the paper's timing configuration.
    pub fn measure(
        &self,
        true_duration: SimDuration,
        condition: LinkCondition,
        rng: &mut SimRng,
    ) -> StallMeasurement {
        self.measure_with(true_duration, condition, &ProbeConfig::default(), rng)
    }

    /// Run the session with explicit timing parameters: the stall's
    /// ground-truth remaining duration after detection is `true_duration`;
    /// `condition` is the underlying link condition while stalled.
    pub fn measure_with(
        &self,
        true_duration: SimDuration,
        condition: LinkCondition,
        cfg: &ProbeConfig,
        rng: &mut SimRng,
    ) -> StallMeasurement {
        // First round classifies the episode.
        let first = run_probe(condition, cfg.icmp_timeout, cfg.dns_timeout, rng);
        if first.verdict.is_false_positive() {
            return StallMeasurement {
                verdict: first.verdict,
                measured: None,
                rounds: 1,
                reverted_to_vanilla: false,
                probe_bytes: BYTES_PER_ROUND,
            };
        }
        // A condition that immediately probes healthy: stall already over;
        // measured duration is one round's elapsed time.
        if first.verdict == ProbeVerdict::Healthy {
            return StallMeasurement {
                verdict: ProbeVerdict::Healthy,
                measured: Some(first.elapsed.min(true_duration)),
                rounds: 1,
                reverted_to_vanilla: false,
                probe_bytes: BYTES_PER_ROUND,
            };
        }

        let mut elapsed = first.elapsed;
        let mut rounds = 1u32;
        let mut icmp_t = cfg.icmp_timeout;
        let mut dns_t = cfg.dns_timeout;

        loop {
            if elapsed >= true_duration {
                // The previous round straddled the heal: this round answers.
                let healthy = run_probe(LinkCondition::Healthy, icmp_t, dns_t, rng);
                rounds += 1;
                elapsed += healthy.elapsed;
                return StallMeasurement {
                    verdict: ProbeVerdict::NetworkStall,
                    measured: Some(elapsed),
                    rounds,
                    reverted_to_vanilla: false,
                    probe_bytes: rounds as u64 * BYTES_PER_ROUND,
                };
            }

            // Backoff once the stall exceeds the threshold.
            if elapsed > cfg.backoff_threshold {
                icmp_t = icmp_t.saturating_mul(2);
                dns_t = dns_t.saturating_mul(2);
                if icmp_t > cfg.revert_timeout || dns_t > cfg.revert_timeout {
                    // Revert to vanilla: minute-granularity estimate of the
                    // ground truth, rounding up like the 1-minute detector.
                    let minutes = true_duration.as_millis().div_ceil(60_000);
                    return StallMeasurement {
                        verdict: ProbeVerdict::NetworkStall,
                        measured: Some(SimDuration::from_secs(minutes * 60)),
                        rounds,
                        reverted_to_vanilla: true,
                        probe_bytes: rounds as u64 * BYTES_PER_ROUND,
                    };
                }
            }

            let round = run_probe(condition, icmp_t, dns_t, rng);
            rounds += 1;
            elapsed += round.elapsed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(secs: u64, condition: LinkCondition, seed: u64) -> StallMeasurement {
        let mut rng = SimRng::new(seed);
        ProbeSession.measure(SimDuration::from_secs(secs), condition, &mut rng)
    }

    #[test]
    fn short_stall_measured_within_five_seconds_error() {
        // §2.2: "our measurement error is at most five seconds".
        for secs in [3u64, 17, 42, 130, 299] {
            let m = measure(secs, LinkCondition::NetworkBlackhole, secs);
            let measured = m.measured.expect("network stall must be measured");
            let err = measured.as_secs_f64() - secs as f64;
            assert!(
                (0.0..=5.5).contains(&err),
                "{secs}s stall measured as {measured} (err {err})"
            );
            assert!(!m.reverted_to_vanilla);
            assert_eq!(m.verdict, ProbeVerdict::NetworkStall);
        }
    }

    #[test]
    fn system_side_stall_is_discarded() {
        for cond in [
            LinkCondition::FirewallMisconfig,
            LinkCondition::BrokenProxy,
            LinkCondition::ModemDriverFault,
        ] {
            let m = measure(100, cond, 1);
            assert_eq!(m.verdict, ProbeVerdict::SystemSide);
            assert_eq!(m.measured, None);
            assert_eq!(m.rounds, 1);
        }
    }

    #[test]
    fn dns_outage_is_discarded() {
        let m = measure(100, LinkCondition::DnsOutage, 2);
        assert_eq!(m.verdict, ProbeVerdict::DnsServiceDown);
        assert_eq!(m.measured, None);
    }

    #[test]
    fn already_healed_stall_is_near_zero() {
        let m = measure(0, LinkCondition::Healthy, 3);
        assert_eq!(m.verdict, ProbeVerdict::Healthy);
        assert_eq!(m.measured, Some(SimDuration::ZERO));
    }

    #[test]
    fn long_stall_triggers_backoff_then_revert() {
        // 4000 s stall: rounds at 5 s reach 1200 s, then double 10/20/40/80 —
        // the 80 s DNS timeout exceeds 60 s and the session reverts.
        let m = measure(4000, LinkCondition::NetworkBlackhole, 4);
        assert!(m.reverted_to_vanilla, "long stall must revert: {m:?}");
        let measured = m.measured.expect("still measured");
        // Vanilla estimate is minute-granular and ≥ the true duration.
        assert_eq!(measured.as_secs() % 60, 0);
        assert!(measured >= SimDuration::from_secs(4000));
        assert!(measured <= SimDuration::from_secs(4060));
    }

    #[test]
    fn backoff_reduces_round_count_for_long_stalls() {
        let m_short = measure(1000, LinkCondition::NetworkBlackhole, 5);
        // ~1000 s at ~5 s/round ≈ 200 rounds, no backoff yet.
        assert!(!m_short.reverted_to_vanilla);
        assert!(
            m_short.rounds > 150 && m_short.rounds < 260,
            "{}",
            m_short.rounds
        );

        let m_long = measure(4000, LinkCondition::NetworkBlackhole, 6);
        // Reverting caps the round count near the 1200 s mark.
        assert!(
            m_long.rounds < 300,
            "backoff failed to bound rounds: {}",
            m_long.rounds
        );
    }

    #[test]
    fn longer_dns_timeouts_trade_accuracy_for_overhead() {
        // The paper's 5 s round bound is a design point: longer rounds cut
        // probe traffic but widen the measurement error, shorter rounds do
        // the reverse. Sweep and check both monotonicities.
        let mut rng = SimRng::new(77);
        let mut last_rounds = u32::MAX;
        let mut last_err = 0.0;
        for dns_secs in [2u64, 5, 15] {
            let cfg = ProbeConfig {
                dns_timeout: SimDuration::from_secs(dns_secs),
                ..ProbeConfig::default()
            };
            let mut rounds = 0u32;
            let mut err = 0.0;
            for _ in 0..200 {
                let truth = rng.range_f64(60.0, 300.0);
                let m = ProbeSession.measure_with(
                    SimDuration::from_secs_f64(truth),
                    LinkCondition::NetworkBlackhole,
                    &cfg,
                    &mut rng,
                );
                rounds += m.rounds;
                err += (m.measured.expect("measured").as_secs_f64() - truth).abs();
            }
            assert!(rounds < last_rounds, "rounds must fall as timeouts grow");
            assert!(err >= last_err, "error must grow as timeouts grow");
            last_rounds = rounds;
            last_err = err;
        }
    }

    #[test]
    fn probe_bytes_scale_with_rounds() {
        let m = measure(50, LinkCondition::NetworkBlackhole, 7);
        assert_eq!(m.probe_bytes, m.rounds as u64 * 300);
    }

    #[test]
    fn monthly_network_budget_holds_for_typical_user() {
        // §2.2: network usage per month < 100 KB for typical users. A
        // typical user sees a handful of stalls per month (~33 failures
        // over 8 months, ~40 % stalls → ~2 stalls/month, mostly short).
        let mut rng = SimRng::new(8);
        let mut bytes = 0;
        for _ in 0..3 {
            let secs = rng.lognormal(1.9, 1.1).max(0.5);
            let m = ProbeSession.measure(
                SimDuration::from_secs_f64(secs),
                LinkCondition::NetworkBlackhole,
                &mut rng,
            );
            bytes += m.probe_bytes;
        }
        assert!(bytes < 100_000, "monthly probe bytes {bytes}");
    }
}
