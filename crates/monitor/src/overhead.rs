//! Overhead accounting for the monitoring infrastructure.
//!
//! §2.2 reports Android-MOD's client-side footprint and the paper §4.3
//! repeats the exercise for the patched system. The monitor is dormant
//! outside failures, so CPU utilisation is measured as monitoring CPU time
//! divided by the *failure window* time, not the whole measurement period.
//!
//! Paper budgets (typical / worst-case users):
//!
//! | resource      | typical   | worst case (40 000+ failures/month) |
//! |---------------|-----------|--------------------------------------|
//! | CPU           | < 2 %     | < 8 %                                |
//! | memory        | < 40 KB   | < 2 MB                               |
//! | storage       | < 100 KB  | < 20 MB                              |
//! | network/month | < 100 KB  | ~20 MB                               |

use cellrel_types::SimDuration;

/// Per-operation cost model (milliseconds of CPU, bytes of memory).
const CPU_MS_PER_EVENT: f64 = 1.2;
const CPU_MS_PER_PROBE_ROUND: f64 = 0.6;
const CPU_MS_PER_RECORD: f64 = 0.8;
const MEM_BYTES_PER_PENDING: u64 = 160;
const MEM_BASE_BYTES: u64 = 18 * 1024;

/// Accumulates the monitor's resource usage.
#[derive(Debug, Clone, Default)]
pub struct OverheadAccounting {
    cpu_ms: f64,
    /// Total time spent inside failure windows (the CPU denominator).
    failure_window: SimDuration,
    storage_bytes: u64,
    network_bytes: u64,
    peak_pending: u64,
    pending: u64,
}

impl OverheadAccounting {
    /// Fresh accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// An instrumentation event was inspected.
    pub fn on_event(&mut self) {
        self.cpu_ms += CPU_MS_PER_EVENT;
    }

    /// `rounds` probe rounds ran, sending `bytes` on the network.
    pub fn on_probe(&mut self, rounds: u32, bytes: u64) {
        self.cpu_ms += rounds as f64 * CPU_MS_PER_PROBE_ROUND;
        self.network_bytes += bytes;
    }

    /// A trace record was persisted (`bytes` on storage).
    pub fn on_record(&mut self, bytes: u64) {
        self.cpu_ms += CPU_MS_PER_RECORD;
        self.storage_bytes += bytes;
        self.pending += 1;
        self.peak_pending = self.peak_pending.max(self.pending);
    }

    /// Records were uploaded (`bytes` over the network) and dropped from the
    /// pending set.
    pub fn on_upload(&mut self, records: u64, bytes: u64) {
        self.network_bytes += bytes;
        self.pending = self.pending.saturating_sub(records);
    }

    /// A failure window of the given span elapsed (the CPU denominator).
    pub fn add_failure_window(&mut self, d: SimDuration) {
        self.failure_window += d;
    }

    /// CPU utilisation within failure windows (0..1); zero when no failure
    /// time has accrued.
    pub fn cpu_utilization(&self) -> f64 {
        let denom = self.failure_window.as_millis() as f64;
        if denom <= 0.0 {
            0.0
        } else {
            (self.cpu_ms / denom).min(1.0)
        }
    }

    /// Peak memory estimate: base footprint + pending-record buffers.
    pub fn peak_memory_bytes(&self) -> u64 {
        MEM_BASE_BYTES + self.peak_pending * MEM_BYTES_PER_PENDING
    }

    /// Total storage consumed by persisted records.
    pub fn storage_bytes(&self) -> u64 {
        self.storage_bytes
    }

    /// Total network bytes (probes + uploads).
    pub fn network_bytes(&self) -> u64 {
        self.network_bytes
    }

    /// Check against the paper's *typical-user* budgets.
    pub fn within_typical_budget(&self) -> bool {
        self.cpu_utilization() < 0.02
            && self.peak_memory_bytes() < 40 * 1024
            && self.storage_bytes < 100 * 1024
            && self.network_bytes < 100 * 1024
    }

    /// Check against the paper's *worst-case-user* budgets.
    pub fn within_worst_case_budget(&self) -> bool {
        self.cpu_utilization() < 0.08
            && self.peak_memory_bytes() < 2 * 1024 * 1024
            && self.storage_bytes < 20 * 1024 * 1024
            && self.network_bytes < 21 * 1024 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_user_fits_budget() {
        // ~33 failures over 8 months (§3.1), a few probe rounds each.
        let mut o = OverheadAccounting::new();
        for _ in 0..33 {
            o.on_event();
            o.on_probe(4, 4 * 300);
            o.on_record(35);
            o.add_failure_window(SimDuration::from_secs(188));
        }
        // ~23 B/record on the wire (measured codec output vs the 35 B row).
        o.on_upload(33, 33 * 23);
        assert!(
            o.within_typical_budget(),
            "cpu {:.4} mem {} sto {} net {}",
            o.cpu_utilization(),
            o.peak_memory_bytes(),
            o.storage_bytes(),
            o.network_bytes()
        );
    }

    #[test]
    fn worst_case_user_fits_worst_case_budget_only() {
        // 40 000 failures in a month (§2.2's extreme users): ~40 % are
        // stalls that run probe sessions; traces upload in WiFi batches,
        // which is what keeps the pending-record memory bounded.
        let mut o = OverheadAccounting::new();
        let mut pending = 0u64;
        for i in 0..40_000u64 {
            o.on_event();
            if i % 5 < 2 {
                o.on_probe(3, 3 * 300);
            }
            o.on_record(35);
            pending += 1;
            o.add_failure_window(SimDuration::from_secs(60));
            if pending == 1000 {
                // ~23 B/record of actual wire bytes per flushed batch.
                o.on_upload(pending, pending * 23);
                pending = 0;
            }
        }
        assert!(!o.within_typical_budget());
        assert!(
            o.within_worst_case_budget(),
            "cpu {:.4} mem {} sto {} net {}",
            o.cpu_utilization(),
            o.peak_memory_bytes(),
            o.storage_bytes(),
            o.network_bytes()
        );
        // The paper's worst-case network figure is ~20 MB/month.
        assert!(o.network_bytes() < 21 * 1024 * 1024);
        assert!(o.network_bytes() > 5 * 1024 * 1024);
    }

    #[test]
    fn cpu_is_zero_without_failure_windows() {
        let mut o = OverheadAccounting::new();
        o.on_event();
        assert_eq!(o.cpu_utilization(), 0.0);
    }

    #[test]
    fn upload_shrinks_pending_but_not_peak() {
        let mut o = OverheadAccounting::new();
        for _ in 0..10 {
            o.on_record(35);
        }
        let peak = o.peak_memory_bytes();
        o.on_upload(10, 200);
        assert_eq!(
            o.peak_memory_bytes(),
            peak,
            "peak memory is a high-water mark"
        );
    }
}
