//! The monitoring service — Android-MOD's brain.
//!
//! [`MonitoringService`] registers as the telephony event listener (§2.2's
//! "system service instrumentation"), applies the false-positive filter,
//! measures stall durations with probe sessions, assembles
//! [`TraceRecord`]s, and keeps the overhead/upload machinery fed.

use crate::filter::{FilterDecision, FpFilter};
use crate::overhead::OverheadAccounting;
use crate::probing::ProbeSession;
use crate::trace::TraceRecord;
use crate::uploader::{EncodedUpload, Uploader};
use cellrel_netstack::LinkCondition;
use cellrel_sim::SimRng;
use cellrel_telephony::{TelephonyEvent, TelephonyListener};
use cellrel_types::{DeviceId, FailureKind, FalsePositiveClass, InSituInfo, SimDuration, SimTime};

/// Counters of filtered false positives by class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FpCounters {
    counts: [u64; 7],
}

impl FpCounters {
    fn index(class: FalsePositiveClass) -> usize {
        match class {
            FalsePositiveClass::BsOverload => 0,
            FalsePositiveClass::NormalTeardown => 1,
            FalsePositiveClass::UserInitiated => 2,
            FalsePositiveClass::AccountSuspended => 3,
            FalsePositiveClass::VoiceCallInterruption => 4,
            FalsePositiveClass::SystemSide => 5,
            FalsePositiveClass::DnsServiceDown => 6,
        }
    }

    fn bump(&mut self, class: FalsePositiveClass) {
        self.counts[Self::index(class)] += 1;
    }

    /// Count for one class.
    pub fn get(&self, class: FalsePositiveClass) -> u64 {
        self.counts[Self::index(class)]
    }

    /// Total filtered events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A pending setup-error episode: records whose duration closes at the next
/// successful setup.
#[derive(Debug, Default)]
struct SetupEpisode {
    open_record_indices: Vec<usize>,
}

/// The per-device monitoring service.
#[derive(Debug)]
pub struct MonitoringService {
    device: DeviceId,
    filter: FpFilter,
    probe: ProbeSession,
    rng: SimRng,
    records: Vec<TraceRecord>,
    fp: FpCounters,
    setup_episode: SetupEpisode,
    pending_stall: Option<(SimTime, InSituInfo, LinkCondition)>,
    overhead: OverheadAccounting,
    uploader: Uploader,
    events_seen: u64,
}

impl MonitoringService {
    /// Service for one device with its own random stream (probe latencies).
    pub fn new(device: DeviceId, rng: SimRng) -> Self {
        MonitoringService {
            device,
            filter: FpFilter,
            probe: ProbeSession,
            rng,
            records: Vec::new(),
            fp: FpCounters::default(),
            setup_episode: SetupEpisode::default(),
            pending_stall: None,
            overhead: OverheadAccounting::new(),
            uploader: Uploader::new(device),
            events_seen: 0,
        }
    }

    /// The recorded true failures.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consume the service, returning its records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// False-positive counters.
    pub fn fp_counters(&self) -> &FpCounters {
        &self.fp
    }

    /// Overhead accounting.
    pub fn overhead(&self) -> &OverheadAccounting {
        &self.overhead
    }

    /// Uploader state.
    pub fn uploader(&self) -> &Uploader {
        &self.uploader
    }

    /// Raw events observed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// An upload opportunity (the workload layer calls this periodically).
    /// Returns the encoded wire batch that was shipped, if any, so the
    /// caller can deliver it to a backend.
    pub fn upload_opportunity(&mut self, now: SimTime, wifi: bool) -> Option<EncodedUpload> {
        let up = self.uploader.try_upload(now, wifi)?;
        self.overhead.on_upload(up.records, up.payload.len() as u64);
        Some(up)
    }

    fn push_record(&mut self, record: TraceRecord) -> usize {
        self.overhead.on_record(record.encoded_size());
        self.uploader.enqueue(&record);
        self.overhead.add_failure_window(record.duration);
        self.records.push(record);
        self.records.len() - 1
    }

    fn handle_setup_error(
        &mut self,
        at: SimTime,
        cause: cellrel_types::DataFailCause,
        ctx: InSituInfo,
    ) {
        let idx = self.push_record(TraceRecord {
            device: self.device,
            kind: FailureKind::DataSetupError,
            start: at,
            duration: SimDuration::ZERO, // closed on the next success
            cause: Some(cause),
            ctx,
        });
        self.setup_episode.open_record_indices.push(idx);
    }

    fn close_setup_episode(&mut self, at: SimTime) {
        let mut window = SimDuration::ZERO;
        for idx in self.setup_episode.open_record_indices.drain(..) {
            let rec = &mut self.records[idx];
            rec.duration = at.since(rec.start);
            window += rec.duration;
        }
        self.overhead.add_failure_window(window);
    }

    fn handle_stall_cleared(
        &mut self,
        duration: SimDuration,
        ctx: InSituInfo,
        condition: LinkCondition,
    ) {
        let Some((detected_at, _sus_ctx, sus_condition)) = self.pending_stall.take() else {
            return; // cleared without a matching suspicion: ignore
        };
        // Probe the episode: classification + measured duration.
        let m = self.probe.measure(
            duration,
            sus_condition.min_verdict_condition(condition),
            &mut self.rng,
        );
        self.overhead.on_probe(m.rounds, m.probe_bytes);
        match m.measured {
            None => {
                // Probing classified the episode a false positive.
                let class = if sus_condition.is_system_side() {
                    FalsePositiveClass::SystemSide
                } else {
                    FalsePositiveClass::DnsServiceDown
                };
                self.fp.bump(class);
            }
            Some(measured) => {
                self.push_record(TraceRecord {
                    device: self.device,
                    kind: FailureKind::DataStall,
                    start: detected_at,
                    duration: measured,
                    cause: None,
                    ctx,
                });
            }
        }
    }
}

/// Tiny helper: the probing condition for a stall episode. The condition at
/// suspicion time is what the probe sees; the clear-time condition is only
/// used as a fallback when the suspicion condition was already healthy.
trait MinVerdict {
    fn min_verdict_condition(self, other: LinkCondition) -> LinkCondition;
}

impl MinVerdict for LinkCondition {
    fn min_verdict_condition(self, other: LinkCondition) -> LinkCondition {
        if self == LinkCondition::Healthy {
            other
        } else {
            self
        }
    }
}

impl TelephonyListener for MonitoringService {
    fn on_event(&mut self, at: SimTime, event: &TelephonyEvent) {
        self.events_seen += 1;
        self.overhead.on_event();

        match self.filter.classify(event) {
            FilterDecision::Reject(class) => {
                self.fp.bump(class);
                return;
            }
            FilterDecision::NotAFailure => {
                // Context events still drive bookkeeping below.
            }
            FilterDecision::Record => {}
        }

        match *event {
            TelephonyEvent::DataSetupError { cause, ctx } => {
                self.handle_setup_error(at, cause, ctx);
            }
            TelephonyEvent::DataSetupSuccess { .. } => {
                self.close_setup_episode(at);
            }
            TelephonyEvent::DataStallSuspected { ctx, condition } => {
                self.pending_stall = Some((at, ctx, condition));
            }
            TelephonyEvent::DataStallCleared {
                duration,
                ctx,
                condition,
            } => {
                self.handle_stall_cleared(duration, ctx, condition);
            }
            TelephonyEvent::OutOfServiceBegan { .. } => {
                // Recorded at episode end, when the duration is known.
            }
            TelephonyEvent::OutOfServiceEnded { duration, ctx } => {
                let start = SimTime::ZERO + at.since(SimTime::ZERO).saturating_sub(duration);
                self.push_record(TraceRecord {
                    device: self.device,
                    kind: FailureKind::OutOfService,
                    start,
                    duration,
                    cause: None,
                    ctx,
                });
            }
            TelephonyEvent::SmsSendFailed | TelephonyEvent::VoiceSetupFailed => {
                let kind = if matches!(event, TelephonyEvent::SmsSendFailed) {
                    FailureKind::SmsSendFail
                } else {
                    FailureKind::VoiceSetupFail
                };
                self.push_record(TraceRecord {
                    device: self.device,
                    kind,
                    start: at,
                    duration: SimDuration::ZERO,
                    cause: None,
                    ctx: InSituInfo {
                        rat: cellrel_types::Rat::G2,
                        signal: cellrel_types::SignalLevel::L2,
                        apn: cellrel_types::Apn::Internet,
                        bs: None,
                        isp: cellrel_types::Isp::A,
                    },
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_types::{Apn, BsId, DataFailCause, Isp, Rat, SignalLevel};

    fn ctx() -> InSituInfo {
        InSituInfo {
            rat: Rat::G4,
            signal: SignalLevel::L3,
            apn: Apn::Internet,
            bs: Some(BsId::gsm_cn(0, 9, 9)),
            isp: Isp::A,
        }
    }

    fn svc() -> MonitoringService {
        MonitoringService::new(DeviceId(1), SimRng::new(7))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn true_setup_errors_become_records_with_episode_durations() {
        let mut s = svc();
        s.on_event(
            t(10),
            &TelephonyEvent::DataSetupError {
                cause: DataFailCause::SignalLost,
                ctx: ctx(),
            },
        );
        s.on_event(
            t(15),
            &TelephonyEvent::DataSetupError {
                cause: DataFailCause::GprsRegistrationFail,
                ctx: ctx(),
            },
        );
        s.on_event(t(25), &TelephonyEvent::DataSetupSuccess { ctx: ctx() });
        assert_eq!(s.records().len(), 2);
        assert_eq!(s.records()[0].duration, SimDuration::from_secs(15));
        assert_eq!(s.records()[1].duration, SimDuration::from_secs(10));
    }

    #[test]
    fn overload_rejections_are_filtered_not_recorded() {
        let mut s = svc();
        s.on_event(
            t(1),
            &TelephonyEvent::DataSetupError {
                cause: DataFailCause::InsufficientResources,
                ctx: ctx(),
            },
        );
        assert!(s.records().is_empty());
        assert_eq!(s.fp_counters().get(FalsePositiveClass::BsOverload), 1);
    }

    #[test]
    fn network_stall_is_measured_and_recorded() {
        let mut s = svc();
        s.on_event(
            t(100),
            &TelephonyEvent::DataStallSuspected {
                ctx: ctx(),
                condition: LinkCondition::NetworkBlackhole,
            },
        );
        s.on_event(
            t(140),
            &TelephonyEvent::DataStallCleared {
                duration: SimDuration::from_secs(40),
                ctx: ctx(),
                condition: LinkCondition::NetworkBlackhole,
            },
        );
        assert_eq!(s.records().len(), 1);
        let r = &s.records()[0];
        assert_eq!(r.kind, FailureKind::DataStall);
        assert_eq!(r.start, t(100));
        // Probing error ≤ 5 s.
        let err = r.duration.as_secs_f64() - 40.0;
        assert!(
            (0.0..=5.5).contains(&err),
            "measured {} for 40s",
            r.duration
        );
    }

    #[test]
    fn system_side_stall_is_a_false_positive() {
        let mut s = svc();
        s.on_event(
            t(100),
            &TelephonyEvent::DataStallSuspected {
                ctx: ctx(),
                condition: LinkCondition::FirewallMisconfig,
            },
        );
        s.on_event(
            t(400),
            &TelephonyEvent::DataStallCleared {
                duration: SimDuration::from_secs(300),
                ctx: ctx(),
                condition: LinkCondition::FirewallMisconfig,
            },
        );
        assert!(s.records().is_empty());
        assert_eq!(s.fp_counters().get(FalsePositiveClass::SystemSide), 1);
    }

    #[test]
    fn dns_outage_stall_is_a_false_positive() {
        let mut s = svc();
        s.on_event(
            t(100),
            &TelephonyEvent::DataStallSuspected {
                ctx: ctx(),
                condition: LinkCondition::DnsOutage,
            },
        );
        s.on_event(
            t(130),
            &TelephonyEvent::DataStallCleared {
                duration: SimDuration::from_secs(30),
                ctx: ctx(),
                condition: LinkCondition::DnsOutage,
            },
        );
        assert!(s.records().is_empty());
        assert_eq!(s.fp_counters().get(FalsePositiveClass::DnsServiceDown), 1);
    }

    #[test]
    fn cleared_without_suspicion_is_ignored() {
        let mut s = svc();
        s.on_event(
            t(10),
            &TelephonyEvent::DataStallCleared {
                duration: SimDuration::from_secs(5),
                ctx: ctx(),
                condition: LinkCondition::NetworkBlackhole,
            },
        );
        assert!(s.records().is_empty());
    }

    #[test]
    fn oos_episode_recorded_at_end() {
        let mut s = svc();
        s.on_event(t(50), &TelephonyEvent::OutOfServiceBegan { ctx: ctx() });
        assert!(s.records().is_empty());
        s.on_event(
            t(110),
            &TelephonyEvent::OutOfServiceEnded {
                duration: SimDuration::from_secs(60),
                ctx: ctx(),
            },
        );
        assert_eq!(s.records().len(), 1);
        let r = &s.records()[0];
        assert_eq!(r.kind, FailureKind::OutOfService);
        assert_eq!(r.start, t(50));
        assert_eq!(r.duration, SimDuration::from_secs(60));
    }

    #[test]
    fn voice_and_manual_events_counted_as_fp() {
        let mut s = svc();
        s.on_event(t(1), &TelephonyEvent::VoiceCallInterruption);
        s.on_event(t(2), &TelephonyEvent::ManualReset);
        assert_eq!(s.fp_counters().total(), 2);
        assert!(s.records().is_empty());
    }

    #[test]
    fn very_long_stall_reverts_to_vanilla_estimation() {
        // §2.2: past 1200 s the probe timeouts double; once a timeout would
        // exceed one minute the monitor reverts to minute-granular
        // estimation. The recorded duration is therefore minute-aligned.
        let mut s = svc();
        s.on_event(
            t(100),
            &TelephonyEvent::DataStallSuspected {
                ctx: ctx(),
                condition: LinkCondition::NetworkBlackhole,
            },
        );
        let long = SimDuration::from_secs(5000);
        s.on_event(
            t(5100),
            &TelephonyEvent::DataStallCleared {
                duration: long,
                ctx: ctx(),
                condition: LinkCondition::NetworkBlackhole,
            },
        );
        assert_eq!(s.records().len(), 1);
        let r = &s.records()[0];
        assert_eq!(
            r.duration.as_secs() % 60,
            0,
            "vanilla estimate is minute-aligned"
        );
        assert!(r.duration >= long);
        assert!(r.duration <= long + SimDuration::from_secs(60));
    }

    #[test]
    fn uploads_flow_through_overhead() {
        let mut s = svc();
        s.on_event(
            t(10),
            &TelephonyEvent::DataSetupError {
                cause: DataFailCause::SignalLost,
                ctx: ctx(),
            },
        );
        assert_eq!(s.uploader().pending_records(), 1);
        s.upload_opportunity(t(20), true);
        assert_eq!(s.uploader().pending_records(), 0);
        assert!(s.overhead().network_bytes() > 0);
    }
}
