//! WiFi-gated trace upload (§2.2).
//!
//! Traces are compressed and uploaded to the backend; for heavy users
//! ("recorded data are uploaded to our backend server only when there is
//! WiFi connectivity") the uploader defers until WiFi is available.

use cellrel_types::SimTime;

/// Compression ratio for trace batches (compact binary rows compress well).
const COMPRESSION: f64 = 0.45;

/// Pending bytes above which an upload is forced even without WiFi (safety
/// valve so traces aren't lost; mirrors the "typical users upload over
/// cellular because volumes are tiny" behaviour).
const CELLULAR_OK_THRESHOLD: u64 = 64 * 1024;

/// The trace uploader: batches records and flushes opportunistically.
#[derive(Debug, Clone, Default)]
pub struct Uploader {
    pending_records: u64,
    pending_bytes: u64,
    uploaded_records: u64,
    uploaded_bytes_compressed: u64,
    uploads: u32,
    last_upload: Option<SimTime>,
}

impl Uploader {
    /// Fresh uploader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue one record of `bytes` raw size.
    pub fn enqueue(&mut self, bytes: u64) {
        self.pending_records += 1;
        self.pending_bytes += bytes;
    }

    /// Records waiting for upload.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Raw bytes waiting for upload.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Compressed bytes shipped so far.
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded_bytes_compressed
    }

    /// Records shipped so far.
    pub fn uploaded_records(&self) -> u64 {
        self.uploaded_records
    }

    /// Number of upload batches.
    pub fn uploads(&self) -> u32 {
        self.uploads
    }

    /// An upload opportunity: flush if WiFi is available, or if the pending
    /// volume is small enough that cellular upload is fine. Returns the
    /// compressed bytes shipped (the caller feeds this to overhead
    /// accounting), or `None` if nothing was shipped.
    pub fn try_upload(&mut self, now: SimTime, wifi_available: bool) -> Option<(u64, u64)> {
        if self.pending_records == 0 {
            return None;
        }
        let small = self.pending_bytes <= CELLULAR_OK_THRESHOLD;
        if !wifi_available && !small {
            return None;
        }
        let records = self.pending_records;
        let compressed = (self.pending_bytes as f64 * COMPRESSION).ceil() as u64;
        self.uploaded_records += records;
        self.uploaded_bytes_compressed += compressed;
        self.uploads += 1;
        self.pending_records = 0;
        self.pending_bytes = 0;
        self.last_upload = Some(now);
        Some((records, compressed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batches_upload_over_cellular() {
        let mut u = Uploader::new();
        u.enqueue(35);
        u.enqueue(35);
        let (records, bytes) = u
            .try_upload(SimTime::from_secs(10), false)
            .expect("small batch uploads without wifi");
        assert_eq!(records, 2);
        assert!(bytes < 70, "compression must shrink the batch: {bytes}");
        assert_eq!(u.pending_records(), 0);
    }

    #[test]
    fn large_batches_wait_for_wifi() {
        let mut u = Uploader::new();
        for _ in 0..3000 {
            u.enqueue(35); // 105 KB > threshold
        }
        assert!(u.try_upload(SimTime::from_secs(1), false).is_none());
        assert_eq!(u.pending_records(), 3000);
        let (records, _) = u
            .try_upload(SimTime::from_secs(2), true)
            .expect("wifi flushes");
        assert_eq!(records, 3000);
    }

    #[test]
    fn empty_uploader_is_quiet() {
        let mut u = Uploader::new();
        assert!(u.try_upload(SimTime::ZERO, true).is_none());
        assert_eq!(u.uploads(), 0);
    }

    #[test]
    fn totals_accumulate() {
        let mut u = Uploader::new();
        u.enqueue(100);
        u.try_upload(SimTime::from_secs(1), true);
        u.enqueue(100);
        u.try_upload(SimTime::from_secs(2), true);
        assert_eq!(u.uploaded_records(), 2);
        assert_eq!(u.uploads(), 2);
        assert!(u.uploaded_bytes() >= 90);
    }
}
