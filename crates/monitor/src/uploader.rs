//! WiFi-gated trace upload (§2.2).
//!
//! Traces are compressed and uploaded to the backend; for heavy users
//! ("recorded data are uploaded to our backend server only when there is
//! WiFi connectivity") the uploader defers until WiFi is available.
//!
//! Batches ship as real `cellrel-ingest` wire bytes: each flush encodes the
//! pending records with [`encode_batch`] under a per-device upload sequence
//! number, so the network byte counts fed to overhead accounting are the
//! actual encoded sizes (varint + delta-of-timestamp + CRC framing), not an
//! assumed compression ratio, and the backend can deduplicate re-delivered
//! batches by `(device, seq)`.

use crate::trace::TraceRecord;
use cellrel_ingest::codec::encode_batch;
use cellrel_types::{DeviceId, FailureEvent, SimTime};

/// Pending raw bytes above which an upload is forced to wait for WiFi
/// (typical users' volumes are tiny, so cellular upload is fine; heavy
/// users batch until WiFi).
const CELLULAR_OK_THRESHOLD: u64 = 64 * 1024;

/// One flushed upload: the encoded wire batch plus its bookkeeping.
#[derive(Debug, Clone)]
pub struct EncodedUpload {
    /// The upload sequence number the batch was framed with.
    pub seq: u64,
    /// Records in the batch.
    pub records: u64,
    /// The encoded wire bytes (what actually crosses the network).
    pub payload: Vec<u8>,
}

/// The trace uploader: batches records and flushes opportunistically.
#[derive(Debug, Clone)]
pub struct Uploader {
    device: DeviceId,
    pending: Vec<TraceRecord>,
    pending_raw_bytes: u64,
    next_seq: u64,
    uploaded_records: u64,
    uploaded_bytes_encoded: u64,
    uploads: u32,
    last_upload: Option<SimTime>,
}

impl Uploader {
    /// Fresh uploader for one device.
    pub fn new(device: DeviceId) -> Self {
        Uploader {
            device,
            pending: Vec::new(),
            pending_raw_bytes: 0,
            next_seq: 0,
            uploaded_records: 0,
            uploaded_bytes_encoded: 0,
            uploads: 0,
            last_upload: None,
        }
    }

    /// Queue one record for upload.
    pub fn enqueue(&mut self, record: &TraceRecord) {
        self.pending_raw_bytes += record.encoded_size();
        self.pending.push(*record);
    }

    /// Records waiting for upload.
    pub fn pending_records(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Raw (pre-codec) bytes waiting for upload — the gating metric.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_raw_bytes
    }

    /// Encoded wire bytes shipped so far.
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded_bytes_encoded
    }

    /// Records shipped so far.
    pub fn uploaded_records(&self) -> u64 {
        self.uploaded_records
    }

    /// Number of upload batches.
    pub fn uploads(&self) -> u32 {
        self.uploads
    }

    /// An upload opportunity: flush if WiFi is available, or if the pending
    /// volume is small enough that cellular upload is fine. Returns the
    /// encoded batch that was shipped (the caller feeds `payload.len()` to
    /// overhead accounting and the bytes to the backend), or `None` if
    /// nothing was shipped.
    pub fn try_upload(&mut self, now: SimTime, wifi_available: bool) -> Option<EncodedUpload> {
        if self.pending.is_empty() {
            return None;
        }
        let small = self.pending_raw_bytes <= CELLULAR_OK_THRESHOLD;
        if !wifi_available && !small {
            return None;
        }
        let events: Vec<FailureEvent> = self.pending.iter().map(|r| r.to_failure_event()).collect();
        let seq = self.next_seq;
        let payload = encode_batch(self.device, seq, &events);
        let records = self.pending.len() as u64;

        self.next_seq += 1;
        self.uploaded_records += records;
        self.uploaded_bytes_encoded += payload.len() as u64;
        self.uploads += 1;
        self.pending.clear();
        self.pending_raw_bytes = 0;
        self.last_upload = Some(now);
        Some(EncodedUpload {
            seq,
            records,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_ingest::codec::{decode_batch, RAW_RECORD_BYTES};
    use cellrel_types::{Apn, BsId, FailureKind, InSituInfo, Isp, Rat, SignalLevel, SimDuration};

    fn record(start_s: u64) -> TraceRecord {
        TraceRecord {
            device: DeviceId(9),
            kind: FailureKind::DataStall,
            start: SimTime::from_secs(start_s),
            duration: SimDuration::from_secs(14),
            cause: None,
            ctx: InSituInfo {
                rat: Rat::G4,
                signal: SignalLevel::L3,
                apn: Apn::Internet,
                bs: Some(BsId::gsm_cn(0, 40, 1200)),
                isp: Isp::A,
            },
        }
    }

    #[test]
    fn small_batches_upload_over_cellular() {
        let mut u = Uploader::new(DeviceId(9));
        u.enqueue(&record(10));
        u.enqueue(&record(20));
        let up = u
            .try_upload(SimTime::from_secs(30), false)
            .expect("small batch uploads without wifi");
        assert_eq!(up.records, 2);
        assert!(
            (up.payload.len() as u64) < 2 * RAW_RECORD_BYTES,
            "codec must beat the raw rows: {} bytes",
            up.payload.len()
        );
        assert_eq!(u.pending_records(), 0);
    }

    #[test]
    fn large_batches_wait_for_wifi() {
        let mut u = Uploader::new(DeviceId(9));
        for i in 0..3000 {
            u.enqueue(&record(i * 30)); // 105 KB raw > threshold
        }
        assert!(u.try_upload(SimTime::from_secs(1), false).is_none());
        assert_eq!(u.pending_records(), 3000);
        let up = u
            .try_upload(SimTime::from_secs(2), true)
            .expect("wifi flushes");
        assert_eq!(up.records, 3000);
    }

    #[test]
    fn payload_is_a_decodable_wire_batch() {
        let mut u = Uploader::new(DeviceId(9));
        u.enqueue(&record(5));
        u.enqueue(&record(65));
        let up = u.try_upload(SimTime::from_secs(100), true).unwrap();
        let batch = decode_batch(&up.payload).expect("uploader ships valid batches");
        assert_eq!(batch.device, DeviceId(9));
        assert_eq!(batch.seq, up.seq);
        assert_eq!(batch.records.len(), 2);
        assert_eq!(batch.records[0].start, SimTime::from_secs(5));
    }

    #[test]
    fn sequence_numbers_increase_per_flush() {
        let mut u = Uploader::new(DeviceId(9));
        u.enqueue(&record(1));
        let first = u.try_upload(SimTime::from_secs(1), true).unwrap();
        u.enqueue(&record(2));
        let second = u.try_upload(SimTime::from_secs(2), true).unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(second.seq, 1);
    }

    #[test]
    fn empty_uploader_is_quiet() {
        let mut u = Uploader::new(DeviceId(9));
        assert!(u.try_upload(SimTime::ZERO, true).is_none());
        assert_eq!(u.uploads(), 0);
    }

    #[test]
    fn totals_accumulate_encoded_bytes() {
        let mut u = Uploader::new(DeviceId(9));
        u.enqueue(&record(1));
        let a = u.try_upload(SimTime::from_secs(1), true).unwrap();
        u.enqueue(&record(2));
        let b = u.try_upload(SimTime::from_secs(2), true).unwrap();
        assert_eq!(u.uploaded_records(), 2);
        assert_eq!(u.uploads(), 2);
        assert_eq!(
            u.uploaded_bytes(),
            (a.payload.len() + b.payload.len()) as u64
        );
    }
}
