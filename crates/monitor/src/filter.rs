//! Instrumentation-level false-positive filtering.
//!
//! §2.2: "when instrumenting the service, we carefully rule out a variety of
//! false failure events (a.k.a., false positives), such as connection
//! disruption by incoming voice calls, service suspension due to
//! insufficient account balance, and manual disconnection of the network",
//! plus setup rejections whose error code marks a rational BS-overload
//! rejection (the 344-code classification).

use cellrel_telephony::TelephonyEvent;
use cellrel_types::FalsePositiveClass;

/// Outcome of filtering one telephony event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// A true failure: record it.
    Record,
    /// A false positive of the given class: count it, don't record it.
    Reject(FalsePositiveClass),
    /// Not a failure-shaped event at all (context events the monitor uses
    /// for its own bookkeeping).
    NotAFailure,
}

/// The stateless part of the false-positive filter. (Stall classification is
/// stateful — it needs probing — and lives in the probing module; this
/// filter handles everything decidable from the event alone.)
#[derive(Debug, Clone, Copy, Default)]
pub struct FpFilter;

impl FpFilter {
    /// Classify one event.
    pub fn classify(&self, event: &TelephonyEvent) -> FilterDecision {
        match event {
            TelephonyEvent::DataSetupError { cause, .. } => match cause.false_positive() {
                Some(class) => FilterDecision::Reject(class),
                None => FilterDecision::Record,
            },
            TelephonyEvent::OutOfServiceBegan { .. } | TelephonyEvent::OutOfServiceEnded { .. } => {
                FilterDecision::Record
            }
            // Stall events are recorded provisionally; the probe session
            // decides whether they survive.
            TelephonyEvent::DataStallSuspected { .. } | TelephonyEvent::DataStallCleared { .. } => {
                FilterDecision::Record
            }
            TelephonyEvent::SmsSendFailed | TelephonyEvent::VoiceSetupFailed => {
                FilterDecision::Record
            }
            TelephonyEvent::VoiceCallInterruption => {
                FilterDecision::Reject(FalsePositiveClass::VoiceCallInterruption)
            }
            TelephonyEvent::ManualReset => {
                FilterDecision::Reject(FalsePositiveClass::UserInitiated)
            }
            TelephonyEvent::DataSetupSuccess { .. }
            | TelephonyEvent::RecoveryActionExecuted { .. }
            | TelephonyEvent::RatChanged { .. } => FilterDecision::NotAFailure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_netstack::LinkCondition;
    use cellrel_types::{Apn, BsId, DataFailCause, InSituInfo, Isp, Rat, SignalLevel};

    fn ctx() -> InSituInfo {
        InSituInfo {
            rat: Rat::G4,
            signal: SignalLevel::L2,
            apn: Apn::Internet,
            bs: Some(BsId::gsm_cn(0, 1, 2)),
            isp: Isp::B,
        }
    }

    #[test]
    fn true_setup_error_is_recorded() {
        let f = FpFilter;
        let ev = TelephonyEvent::DataSetupError {
            cause: DataFailCause::SignalLost,
            ctx: ctx(),
        };
        assert_eq!(f.classify(&ev), FilterDecision::Record);
    }

    #[test]
    fn overload_rejection_is_filtered() {
        let f = FpFilter;
        let ev = TelephonyEvent::DataSetupError {
            cause: DataFailCause::InsufficientResources,
            ctx: ctx(),
        };
        assert_eq!(
            f.classify(&ev),
            FilterDecision::Reject(FalsePositiveClass::BsOverload)
        );
    }

    #[test]
    fn balance_suspension_is_filtered() {
        let f = FpFilter;
        let ev = TelephonyEvent::DataSetupError {
            cause: DataFailCause::AccountBalanceExhausted,
            ctx: ctx(),
        };
        assert_eq!(
            f.classify(&ev),
            FilterDecision::Reject(FalsePositiveClass::AccountSuspended)
        );
    }

    #[test]
    fn voice_and_manual_events_are_filtered() {
        let f = FpFilter;
        assert_eq!(
            f.classify(&TelephonyEvent::VoiceCallInterruption),
            FilterDecision::Reject(FalsePositiveClass::VoiceCallInterruption)
        );
        assert_eq!(
            f.classify(&TelephonyEvent::ManualReset),
            FilterDecision::Reject(FalsePositiveClass::UserInitiated)
        );
    }

    #[test]
    fn stall_events_are_provisionally_recorded() {
        let f = FpFilter;
        let ev = TelephonyEvent::DataStallSuspected {
            ctx: ctx(),
            condition: LinkCondition::FirewallMisconfig,
        };
        // Even a system-side stall passes this filter — only probing can
        // tell, and probing lives downstream.
        assert_eq!(f.classify(&ev), FilterDecision::Record);
    }

    #[test]
    fn non_failures_pass_through() {
        let f = FpFilter;
        assert_eq!(
            f.classify(&TelephonyEvent::DataSetupSuccess { ctx: ctx() }),
            FilterDecision::NotAFailure
        );
        assert_eq!(
            f.classify(&TelephonyEvent::RatChanged {
                from: Some(Rat::G4),
                to: Rat::G5
            }),
            FilterDecision::NotAFailure
        );
    }
}
