//! Link conditions — the fault-injection surface of the network stack.
//!
//! A suspected Data_Stall can have five underlying conditions (§2.2); the
//! probing component's job is to tell them apart. Each condition determines
//! which probes succeed:
//!
//! | condition         | ICMP lo | ICMP→DNS | DNS query | verdict |
//! |-------------------|---------|----------|-----------|---------|
//! | Healthy           | ok      | ok       | ok        | healthy (stall over / FP) |
//! | NetworkBlackhole  | ok      | timeout  | timeout   | network-side true stall |
//! | FirewallMisconfig | timeout | —        | —         | system-side FP |
//! | BrokenProxy       | timeout | —        | —         | system-side FP |
//! | ModemDriverFault  | timeout | —        | —         | system-side FP |
//! | DnsOutage         | ok      | ok       | timeout   | DNS-service FP |

use std::fmt;

/// The true condition of the device's data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkCondition {
    /// Normal operation: traffic flows both ways.
    #[default]
    Healthy,
    /// The cellular data path silently drops everything — the true
    /// Data_Stall condition.
    NetworkBlackhole,
    /// Local firewall misconfiguration blocks even loopback.
    FirewallMisconfig,
    /// A broken proxy setting swallows traffic on-device.
    BrokenProxy,
    /// The modem driver wedged; the kernel can't even reach loopback
    /// reliably through the affected netfilter hooks.
    ModemDriverFault,
    /// Upstream DNS resolution is down but the IP path works.
    DnsOutage,
}

impl LinkCondition {
    /// All conditions.
    pub const ALL: [LinkCondition; 6] = [
        LinkCondition::Healthy,
        LinkCondition::NetworkBlackhole,
        LinkCondition::FirewallMisconfig,
        LinkCondition::BrokenProxy,
        LinkCondition::ModemDriverFault,
        LinkCondition::DnsOutage,
    ];

    /// Does inbound TCP traffic arrive under this condition?
    pub const fn delivers_inbound(self) -> bool {
        matches!(self, LinkCondition::Healthy | LinkCondition::DnsOutage)
    }

    /// Does an ICMP echo to 127.0.0.1 come back?
    pub const fn loopback_ok(self) -> bool {
        !matches!(
            self,
            LinkCondition::FirewallMisconfig
                | LinkCondition::BrokenProxy
                | LinkCondition::ModemDriverFault
        )
    }

    /// Does an ICMP echo to the DNS server come back?
    pub const fn icmp_to_dns_ok(self) -> bool {
        matches!(self, LinkCondition::Healthy | LinkCondition::DnsOutage)
    }

    /// Does a DNS query resolve?
    pub const fn dns_ok(self) -> bool {
        matches!(self, LinkCondition::Healthy)
    }

    /// Is this a condition the study counts as a *system-side* problem
    /// (device misconfiguration rather than the cellular network)?
    pub const fn is_system_side(self) -> bool {
        matches!(
            self,
            LinkCondition::FirewallMisconfig
                | LinkCondition::BrokenProxy
                | LinkCondition::ModemDriverFault
        )
    }
}

impl fmt::Display for LinkCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LinkCondition::Healthy => "healthy",
            LinkCondition::NetworkBlackhole => "network-blackhole",
            LinkCondition::FirewallMisconfig => "firewall-misconfig",
            LinkCondition::BrokenProxy => "broken-proxy",
            LinkCondition::ModemDriverFault => "modem-driver-fault",
            LinkCondition::DnsOutage => "dns-outage",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_passes_everything() {
        let l = LinkCondition::Healthy;
        assert!(l.delivers_inbound() && l.loopback_ok() && l.icmp_to_dns_ok() && l.dns_ok());
    }

    #[test]
    fn blackhole_blocks_remote_but_not_loopback() {
        let l = LinkCondition::NetworkBlackhole;
        assert!(l.loopback_ok());
        assert!(!l.icmp_to_dns_ok());
        assert!(!l.dns_ok());
        assert!(!l.delivers_inbound());
        assert!(!l.is_system_side());
    }

    #[test]
    fn system_side_conditions_fail_loopback() {
        for l in [
            LinkCondition::FirewallMisconfig,
            LinkCondition::BrokenProxy,
            LinkCondition::ModemDriverFault,
        ] {
            assert!(!l.loopback_ok(), "{l}");
            assert!(l.is_system_side(), "{l}");
        }
    }

    #[test]
    fn dns_outage_is_distinguishable() {
        let l = LinkCondition::DnsOutage;
        assert!(l.loopback_ok());
        assert!(l.icmp_to_dns_ok());
        assert!(!l.dns_ok());
        assert!(!l.is_system_side());
    }
}
