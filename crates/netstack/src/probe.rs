//! The network-state probing primitive (§2.2).
//!
//! One probing round sends, simultaneously:
//!
//! * an ICMP echo to 127.0.0.1 (timeout: 1 s per the ICMP RFC guidance);
//! * an ICMP echo to each assigned DNS server;
//! * a DNS query for the dedicated test server's name (timeout: 5 s per the
//!   DNS RFC guidance).
//!
//! The outcome pattern yields a [`ProbeVerdict`]. The whole round costs at
//! most the DNS timeout; the monitor layer loops rounds to measure stall
//! durations with ≤ one-round error.

use crate::link::LinkCondition;
use cellrel_sim::SimRng;
use cellrel_types::SimDuration;

/// Default ICMP echo timeout (1 second, §2.2).
pub const DEFAULT_ICMP_TIMEOUT: SimDuration = SimDuration::from_secs(1);

/// Default DNS query timeout (5 seconds, §2.2).
pub const DEFAULT_DNS_TIMEOUT: SimDuration = SimDuration::from_secs(5);

/// Classification of one probing round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeVerdict {
    /// Everything answered: the data path works (stall over, or it never
    /// was a network problem).
    Healthy,
    /// Loopback fine, remote ICMP and DNS dead: genuine network-side stall.
    NetworkStall,
    /// Loopback timed out: the problem is on the device (firewall, proxy,
    /// modem driver) — a false positive for the study.
    SystemSide,
    /// IP path fine but DNS queries time out: resolution-service outage —
    /// also a false positive.
    DnsServiceDown,
}

impl ProbeVerdict {
    /// Whether this verdict marks the suspected stall a false positive.
    pub const fn is_false_positive(self) -> bool {
        matches!(
            self,
            ProbeVerdict::SystemSide | ProbeVerdict::DnsServiceDown
        )
    }
}

/// Result of one probing round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOutcome {
    /// The classification.
    pub verdict: ProbeVerdict,
    /// Wall time the round consumed (bounded by the DNS timeout).
    pub elapsed: SimDuration,
}

/// Execute one probing round against the given link condition.
///
/// `icmp_timeout` / `dns_timeout` support the monitor's multiplicative
/// backoff for long stalls; `rng` supplies realistic sub-timeout latencies
/// for the probes that do answer.
pub fn run_probe(
    link: LinkCondition,
    icmp_timeout: SimDuration,
    dns_timeout: SimDuration,
    rng: &mut SimRng,
) -> ProbeOutcome {
    // Sub-timeout response latencies: loopback is microseconds; remote
    // probes take tens of milliseconds.
    let lo_rtt = SimDuration::from_millis(rng.range_u64(1, 5));
    let remote_rtt = SimDuration::from_millis(rng.range_u64(20, 180));

    if !link.loopback_ok() {
        // The loopback echo must run to its timeout to conclude anything.
        return ProbeOutcome {
            verdict: ProbeVerdict::SystemSide,
            elapsed: icmp_timeout,
        };
    }

    let dns_answers = link.dns_ok();
    let icmp_dns_answers = link.icmp_to_dns_ok();

    if dns_answers {
        // All probes answer: the round ends when the slowest answer lands.
        return ProbeOutcome {
            verdict: ProbeVerdict::Healthy,
            elapsed: lo_rtt.max(remote_rtt),
        };
    }

    if icmp_dns_answers {
        // DNS timed out but the server pings: resolution-service outage.
        return ProbeOutcome {
            verdict: ProbeVerdict::DnsServiceDown,
            elapsed: dns_timeout,
        };
    }

    // Neither DNS nor ICMP-to-DNS answered: network-side stall. The round
    // runs until the DNS timeout (the longest timer).
    ProbeOutcome {
        verdict: ProbeVerdict::NetworkStall,
        elapsed: dns_timeout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(link: LinkCondition, seed: u64) -> ProbeOutcome {
        let mut rng = SimRng::new(seed);
        run_probe(link, DEFAULT_ICMP_TIMEOUT, DEFAULT_DNS_TIMEOUT, &mut rng)
    }

    #[test]
    fn healthy_link_is_fast_and_healthy() {
        let o = probe(LinkCondition::Healthy, 1);
        assert_eq!(o.verdict, ProbeVerdict::Healthy);
        assert!(o.elapsed < SimDuration::from_secs(1));
    }

    #[test]
    fn blackhole_is_network_stall_at_dns_timeout() {
        let o = probe(LinkCondition::NetworkBlackhole, 2);
        assert_eq!(o.verdict, ProbeVerdict::NetworkStall);
        assert_eq!(o.elapsed, DEFAULT_DNS_TIMEOUT);
        assert!(!o.verdict.is_false_positive());
    }

    #[test]
    fn system_side_classes_resolve_at_icmp_timeout() {
        for link in [
            LinkCondition::FirewallMisconfig,
            LinkCondition::BrokenProxy,
            LinkCondition::ModemDriverFault,
        ] {
            let o = probe(link, 3);
            assert_eq!(o.verdict, ProbeVerdict::SystemSide, "{link}");
            assert_eq!(o.elapsed, DEFAULT_ICMP_TIMEOUT);
            assert!(o.verdict.is_false_positive());
        }
    }

    #[test]
    fn dns_outage_detected() {
        let o = probe(LinkCondition::DnsOutage, 4);
        assert_eq!(o.verdict, ProbeVerdict::DnsServiceDown);
        assert_eq!(o.elapsed, DEFAULT_DNS_TIMEOUT);
        assert!(o.verdict.is_false_positive());
    }

    #[test]
    fn backed_off_timeouts_are_respected() {
        let mut rng = SimRng::new(5);
        let o = run_probe(
            LinkCondition::NetworkBlackhole,
            SimDuration::from_secs(4),
            SimDuration::from_secs(20),
            &mut rng,
        );
        assert_eq!(o.elapsed, SimDuration::from_secs(20));
        let o = run_probe(
            LinkCondition::FirewallMisconfig,
            SimDuration::from_secs(4),
            SimDuration::from_secs(20),
            &mut rng,
        );
        assert_eq!(o.elapsed, SimDuration::from_secs(4));
    }

    #[test]
    fn round_is_bounded_by_dns_timeout() {
        // "The above probing process needs at most five seconds" (§2.2).
        for link in LinkCondition::ALL {
            let o = probe(link, 6);
            assert!(o.elapsed <= DEFAULT_DNS_TIMEOUT, "{link}: {}", o.elapsed);
        }
    }
}
