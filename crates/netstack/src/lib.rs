//! # cellrel-netstack
//!
//! The device-side network stack substrate. Two of the paper's mechanisms
//! are defined *entirely* in terms of this layer:
//!
//! * **Data_Stall detection** (§2.1): the Linux kernel's TCP accounting —
//!   "over 10 outbound TCP segments but not a single inbound TCP segment
//!   during the last minute" — reproduced by [`TcpAccounting`].
//! * **Android-MOD's probing component** (§2.2): concurrent ICMP-to-loopback
//!   (1 s timeout), ICMP-to-DNS-servers and DNS queries (5 s timeout), whose
//!   outcome pattern classifies a suspected stall as a network-side true
//!   failure, a system-side false positive, or a DNS-outage false positive —
//!   reproduced by [`probe::run_probe`].
//!
//! [`LinkCondition`] is the fault-injection surface: the telephony layer
//! flips it to blackhole when a simulated stall begins; tests flip it to the
//! system-side classes to exercise the filters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod link;
pub mod probe;
pub mod stack;

pub use counters::{TcpAccounting, STALL_MIN_SENT, STALL_WINDOW};
pub use link::LinkCondition;
pub use probe::{run_probe, ProbeOutcome, ProbeVerdict};
pub use stack::NetStack;
