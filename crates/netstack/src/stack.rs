//! The [`NetStack`] facade: per-device network state.

use crate::counters::TcpAccounting;
use crate::link::LinkCondition;
use crate::probe::{run_probe, ProbeOutcome};
use cellrel_sim::SimRng;
use cellrel_types::{SimDuration, SimTime};

/// A device's network stack: TCP accounting plus the current link condition.
#[derive(Debug, Clone, Default)]
pub struct NetStack {
    tcp: TcpAccounting,
    link: LinkCondition,
    /// Number of configured DNS servers (Android typically carries 2).
    dns_servers: u8,
}

impl NetStack {
    /// A healthy stack with two DNS servers.
    pub fn new() -> Self {
        NetStack {
            tcp: TcpAccounting::new(),
            link: LinkCondition::Healthy,
            dns_servers: 2,
        }
    }

    /// Current link condition.
    pub fn link(&self) -> LinkCondition {
        self.link
    }

    /// Set the link condition (telephony flips this when the simulated
    /// world injects a stall; recovery flips it back).
    pub fn set_link(&mut self, link: LinkCondition) {
        self.link = link;
    }

    /// Number of configured DNS servers.
    pub fn dns_server_count(&self) -> u8 {
        self.dns_servers
    }

    /// Mutable access to the raw TCP counters (tests).
    pub fn tcp_mut(&mut self) -> &mut TcpAccounting {
        &mut self.tcp
    }

    /// Application traffic: `out` outbound segments at `now`. Whether the
    /// matching inbound segments arrive depends on the link condition.
    pub fn app_exchange(&mut self, now: SimTime, out: usize) {
        self.tcp.record_sent(now, out);
        if self.link.delivers_inbound() {
            // Responses land within the same accounting window.
            self.tcp
                .record_received(now + SimDuration::from_millis(60), out);
        }
    }

    /// The kernel's Data_Stall predicate right now.
    pub fn stall_detected(&mut self, now: SimTime) -> bool {
        self.tcp.stall_detected(now)
    }

    /// `(sent, received)` within the window ending at `now`, without
    /// mutating the accounting (campaign invariants audit through this).
    pub fn counts_in_window(&self, now: SimTime) -> (usize, usize) {
        self.tcp.counts_in_window(now)
    }

    /// Run one probing round with the given timeouts.
    pub fn probe(
        &self,
        icmp_timeout: SimDuration,
        dns_timeout: SimDuration,
        rng: &mut SimRng,
    ) -> ProbeOutcome {
        run_probe(self.link, icmp_timeout, dns_timeout, rng)
    }

    /// Reset TCP accounting (connection cleanup).
    pub fn reset_counters(&mut self) {
        self.tcp.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeVerdict, DEFAULT_DNS_TIMEOUT, DEFAULT_ICMP_TIMEOUT};

    #[test]
    fn healthy_traffic_no_stall() {
        let mut s = NetStack::new();
        let t = SimTime::from_secs(10);
        s.app_exchange(t, 50);
        assert!(!s.stall_detected(t + SimDuration::from_secs(1)));
    }

    #[test]
    fn blackhole_produces_stall_and_probe_confirms() {
        let mut s = NetStack::new();
        s.set_link(LinkCondition::NetworkBlackhole);
        let t = SimTime::from_secs(10);
        s.app_exchange(t, 50);
        assert!(s.stall_detected(t + SimDuration::from_secs(5)));
        let mut rng = SimRng::new(1);
        let o = s.probe(DEFAULT_ICMP_TIMEOUT, DEFAULT_DNS_TIMEOUT, &mut rng);
        assert_eq!(o.verdict, ProbeVerdict::NetworkStall);
    }

    #[test]
    fn recovery_clears_stall_after_window() {
        let mut s = NetStack::new();
        s.set_link(LinkCondition::NetworkBlackhole);
        let t = SimTime::from_secs(10);
        s.app_exchange(t, 50);
        assert!(s.stall_detected(t));
        // Link recovers; new exchange delivers inbound, clearing the stall.
        s.set_link(LinkCondition::Healthy);
        let t2 = t + SimDuration::from_secs(10);
        s.app_exchange(t2, 5);
        assert!(!s.stall_detected(t2 + SimDuration::from_secs(1)));
    }

    #[test]
    fn reset_counters_clears_predicate() {
        let mut s = NetStack::new();
        s.set_link(LinkCondition::NetworkBlackhole);
        let t = SimTime::from_secs(10);
        s.app_exchange(t, 50);
        s.reset_counters();
        assert!(!s.stall_detected(t));
    }

    #[test]
    fn stack_reports_dns_servers() {
        assert_eq!(NetStack::new().dns_server_count(), 2);
    }
}
