//! Kernel-style TCP segment accounting and the Data_Stall predicate.

use cellrel_types::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Android's Data_Stall thresholds (§2.1): more than 10 outbound TCP
/// segments with zero inbound segments within the last minute.
pub const STALL_MIN_SENT: usize = 10;

/// The detection window.
pub const STALL_WINDOW: SimDuration = SimDuration::from_secs(60);

/// Sliding-window TCP segment accounting, as the kernel network stack keeps
/// it. Timestamps outside the window are pruned on every operation, so
/// memory stays bounded by the per-window traffic volume.
#[derive(Debug, Clone, Default)]
pub struct TcpAccounting {
    sent: VecDeque<SimTime>,
    received: VecDeque<SimTime>,
}

impl TcpAccounting {
    /// Fresh, empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn prune(&mut self, now: SimTime) {
        let cutoff = now.since(SimTime::ZERO).saturating_sub(STALL_WINDOW);
        let cutoff = SimTime::ZERO + cutoff;
        while self.sent.front().is_some_and(|&t| t < cutoff) {
            self.sent.pop_front();
        }
        while self.received.front().is_some_and(|&t| t < cutoff) {
            self.received.pop_front();
        }
    }

    /// Record `n` outbound segments at `now`.
    pub fn record_sent(&mut self, now: SimTime, n: usize) {
        self.prune(now);
        // Only the count within the window matters; cap retained timestamps
        // at a comfortable multiple of the threshold.
        for _ in 0..n.min(4 * STALL_MIN_SENT) {
            self.sent.push_back(now);
        }
    }

    /// Record `n` inbound segments at `now`.
    pub fn record_received(&mut self, now: SimTime, n: usize) {
        self.prune(now);
        for _ in 0..n.min(4 * STALL_MIN_SENT) {
            self.received.push_back(now);
        }
    }

    /// Outbound segments within the last window.
    pub fn sent_in_window(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.sent.len()
    }

    /// Inbound segments within the last window.
    pub fn received_in_window(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.received.len()
    }

    /// Android's Data_Stall predicate over the current window.
    pub fn stall_detected(&mut self, now: SimTime) -> bool {
        self.prune(now);
        self.sent.len() > STALL_MIN_SENT && self.received.is_empty()
    }

    /// `(sent, received)` within the window ending at `now`, without
    /// mutating the queues — the read-only view campaign invariants use to
    /// audit the stack without perturbing its pruning behaviour.
    pub fn counts_in_window(&self, now: SimTime) -> (usize, usize) {
        let cutoff = now.since(SimTime::ZERO).saturating_sub(STALL_WINDOW);
        let cutoff = SimTime::ZERO + cutoff;
        let sent = self.sent.iter().filter(|&&t| t >= cutoff).count();
        let received = self.received.iter().filter(|&&t| t >= cutoff).count();
        (sent, received)
    }

    /// Reset all counters (connection cleanup does this).
    pub fn reset(&mut self) {
        self.sent.clear();
        self.received.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_stack_never_stalls() {
        let mut tcp = TcpAccounting::new();
        assert!(!tcp.stall_detected(SimTime::from_secs(100)));
    }

    #[test]
    fn healthy_traffic_is_not_a_stall() {
        let mut tcp = TcpAccounting::new();
        let t = SimTime::from_secs(10);
        tcp.record_sent(t, 20);
        tcp.record_received(t + SimDuration::from_millis(50), 20);
        assert!(!tcp.stall_detected(t + SimDuration::from_secs(1)));
    }

    #[test]
    fn blackhole_traffic_trips_the_predicate() {
        let mut tcp = TcpAccounting::new();
        let t = SimTime::from_secs(10);
        tcp.record_sent(t, 11);
        assert!(tcp.stall_detected(t + SimDuration::from_secs(30)));
    }

    #[test]
    fn exactly_ten_sent_is_not_enough() {
        // The rule is *over* 10 outbound segments.
        let mut tcp = TcpAccounting::new();
        let t = SimTime::from_secs(10);
        tcp.record_sent(t, 10);
        assert!(!tcp.stall_detected(t));
        tcp.record_sent(t, 1);
        assert!(tcp.stall_detected(t));
    }

    #[test]
    fn a_single_inbound_segment_clears_the_stall() {
        let mut tcp = TcpAccounting::new();
        let t = SimTime::from_secs(10);
        tcp.record_sent(t, 30);
        assert!(tcp.stall_detected(t));
        tcp.record_received(t + SimDuration::from_secs(1), 1);
        assert!(!tcp.stall_detected(t + SimDuration::from_secs(1)));
    }

    #[test]
    fn window_expiry_forgets_old_traffic() {
        let mut tcp = TcpAccounting::new();
        let t = SimTime::from_secs(10);
        tcp.record_sent(t, 30);
        assert!(tcp.stall_detected(t + SimDuration::from_secs(59)));
        // 61 s later the sends fell out of the window.
        assert!(!tcp.stall_detected(t + SimDuration::from_secs(61)));
        assert_eq!(tcp.sent_in_window(t + SimDuration::from_secs(61)), 0);
    }

    #[test]
    fn old_inbound_does_not_mask_a_new_stall() {
        let mut tcp = TcpAccounting::new();
        tcp.record_received(SimTime::from_secs(0), 5);
        let t = SimTime::from_secs(120);
        tcp.record_sent(t, 15);
        assert!(tcp.stall_detected(t + SimDuration::from_secs(5)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut tcp = TcpAccounting::new();
        let t = SimTime::from_secs(5);
        tcp.record_sent(t, 15);
        tcp.reset();
        assert!(!tcp.stall_detected(t));
        assert_eq!(tcp.sent_in_window(t), 0);
    }

    #[test]
    fn counts_in_window_matches_mutating_queries() {
        let mut tcp = TcpAccounting::new();
        let t = SimTime::from_secs(10);
        tcp.record_sent(t, 12);
        tcp.record_received(t + SimDuration::from_secs(2), 3);
        let later = t + SimDuration::from_secs(30);
        assert_eq!(tcp.counts_in_window(later), (12, 3));
        assert_eq!(tcp.sent_in_window(later), 12);
        assert_eq!(tcp.received_in_window(later), 3);
        // Past the window the read-only view agrees it all expired — and
        // must not have pruned anything itself.
        let expired = t + SimDuration::from_secs(120);
        assert_eq!(tcp.counts_in_window(expired), (0, 0));
        assert_eq!(tcp.counts_in_window(later), (12, 3));
    }

    #[test]
    fn memory_is_bounded() {
        let mut tcp = TcpAccounting::new();
        let t = SimTime::from_secs(5);
        tcp.record_sent(t, 1_000_000);
        assert!(tcp.sent_in_window(t) <= 4 * STALL_MIN_SENT);
        assert!(tcp.stall_detected(t));
    }
}
