//! Table 1 — the 34 studied phone models, verbatim.
//!
//! These numbers are the paper's published measurements and serve as the
//! calibration ground truth of the macro study: the generator *targets*
//! them, and the analysis pipeline must *recover* them through the full
//! monitor/analysis machinery (which validates the pipeline).

use cellrel_sim::{SimRng, WeightedIndex};
use cellrel_types::{AndroidVersion, HardwareSpec, PhoneModelId};

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhoneModelSpec {
    /// Model index (1..=34, low-end to high-end).
    pub id: PhoneModelId,
    /// Hardware configuration.
    pub hw: HardwareSpec,
    /// Share of the user population on this model (fraction, sums to 1).
    pub user_share: f64,
    /// Fraction of devices with ≥1 cellular failure over the 8-month study.
    pub prevalence: f64,
    /// Average number of cellular failures per device over the study.
    pub frequency: f64,
}

macro_rules! model {
    ($id:literal, $cpu:literal, $mem:literal, $sto:literal, $g5:literal, $ver:ident,
     $users:literal, $prev:literal, $freq:literal) => {
        PhoneModelSpec {
            id: PhoneModelId($id),
            hw: HardwareSpec {
                cpu_ghz: $cpu,
                memory_gb: $mem,
                storage_gb: $sto,
                has_5g_modem: $g5,
                android: AndroidVersion::$ver,
            },
            user_share: $users / 100.0,
            prevalence: $prev / 100.0,
            frequency: $freq,
        }
    };
}

/// Table 1, all 34 models.
pub const MODELS: [PhoneModelSpec; 34] = [
    model!(1, 1.8, 2, 16, false, V10, 2.71, 28.0, 35.9),
    model!(2, 1.95, 2, 16, false, V9, 3.02, 13.0, 23.8),
    model!(3, 2.0, 2, 16, false, V9, 7.31, 10.0, 13.8),
    model!(4, 2.0, 3, 32, false, V9, 3.90, 19.0, 22.4),
    model!(5, 2.0, 3, 32, false, V9, 2.85, 21.0, 28.2),
    model!(6, 2.0, 3, 32, false, V10, 4.33, 4.0, 5.3),
    model!(7, 2.0, 3, 32, false, V10, 1.44, 5.0, 6.4),
    model!(8, 2.0, 3, 32, false, V9, 4.07, 0.15, 2.3),
    model!(9, 2.0, 3, 32, false, V10, 5.47, 2.0, 2.6),
    model!(10, 2.2, 4, 32, false, V9, 5.78, 27.0, 36.8),
    model!(11, 1.8, 4, 64, false, V10, 1.18, 25.0, 28.5),
    model!(12, 2.0, 4, 64, false, V10, 1.44, 33.0, 43.5),
    model!(13, 2.05, 6, 64, false, V10, 5.39, 26.0, 18.7),
    model!(14, 2.2, 6, 64, false, V9, 2.98, 15.0, 17.9),
    model!(15, 2.2, 4, 128, false, V10, 3.98, 25.0, 26.7),
    model!(16, 2.2, 4, 128, false, V10, 3.02, 19.0, 28.0),
    model!(17, 2.2, 6, 64, false, V10, 1.09, 28.0, 48.4),
    model!(18, 2.2, 6, 64, false, V10, 0.26, 13.0, 38.8),
    model!(19, 2.2, 6, 64, false, V10, 1.31, 24.0, 44.8),
    model!(20, 2.2, 6, 64, false, V10, 0.57, 21.0, 33.0),
    model!(21, 2.2, 6, 64, false, V10, 2.80, 36.0, 46.6),
    model!(22, 2.2, 6, 128, false, V9, 0.44, 38.0, 61.1),
    model!(23, 2.4, 6, 64, true, V10, 0.84, 44.0, 49.6),
    model!(24, 2.4, 6, 128, true, V10, 3.25, 37.0, 38.0),
    model!(25, 2.45, 6, 64, false, V9, 4.99, 14.0, 19.6),
    model!(26, 2.45, 6, 64, false, V9, 2.15, 17.0, 24.6),
    model!(27, 2.8, 6, 64, false, V10, 1.84, 22.0, 54.2),
    model!(28, 2.8, 6, 64, false, V10, 7.14, 28.0, 58.1),
    model!(29, 2.8, 6, 64, false, V10, 1.31, 30.0, 65.1),
    model!(30, 2.8, 6, 128, false, V10, 1.01, 30.0, 90.2),
    model!(31, 2.84, 6, 64, false, V10, 1.88, 28.0, 61.7),
    model!(32, 2.84, 6, 64, false, V10, 3.63, 29.0, 57.8),
    model!(33, 2.84, 8, 128, true, V10, 4.78, 32.0, 70.9),
    model!(34, 2.84, 8, 256, true, V10, 1.84, 25.0, 79.3),
];

/// Look up a model by id.
pub fn model(id: PhoneModelId) -> &'static PhoneModelSpec {
    &MODELS[id.index()]
}

/// A sampler over models weighted by user share.
pub fn model_sampler() -> WeightedIndex {
    WeightedIndex::new(&MODELS.map(|m| m.user_share))
}

/// Draw a model per user share.
pub fn sample_model(sampler: &WeightedIndex, rng: &mut SimRng) -> &'static PhoneModelSpec {
    &MODELS[sampler.sample(rng)]
}

/// The population-weighted mean prevalence (the paper's "averaging at 23 %").
pub fn weighted_mean_prevalence() -> f64 {
    MODELS.iter().map(|m| m.user_share * m.prevalence).sum()
}

/// The population-weighted mean frequency (the paper's "as many as 33
/// failures ... on average").
pub fn weighted_mean_frequency() -> f64 {
    MODELS.iter().map(|m| m.user_share * m.frequency).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_types::Rat;

    #[test]
    fn thirty_four_models_with_unit_share() {
        assert_eq!(MODELS.len(), 34);
        let total: f64 = MODELS.iter().map(|m| m.user_share).sum();
        assert!((total - 1.0).abs() < 1e-6, "user shares sum to {total}");
    }

    #[test]
    fn ids_are_sequential() {
        for (i, m) in MODELS.iter().enumerate() {
            assert_eq!(m.id.index(), i);
        }
    }

    #[test]
    fn exactly_four_5g_models() {
        let ids: Vec<u8> = MODELS
            .iter()
            .filter(|m| m.hw.has_5g_modem)
            .map(|m| m.id.0)
            .collect();
        assert_eq!(ids, vec![23, 24, 33, 34]);
    }

    #[test]
    fn five_g_models_run_android_10() {
        for m in MODELS.iter().filter(|m| m.hw.has_5g_modem) {
            assert_eq!(m.hw.android, AndroidVersion::V10);
            assert!(m.hw.supported_rats().contains(Rat::G5));
        }
    }

    #[test]
    fn prevalence_range_matches_paper() {
        // §3.1: prevalence varies from 0.15 % to 45 % (our table: 44 %),
        // averaging at 23 %.
        let min = MODELS.iter().map(|m| m.prevalence).fold(1.0, f64::min);
        let max = MODELS.iter().map(|m| m.prevalence).fold(0.0, f64::max);
        assert!((min - 0.0015).abs() < 1e-9);
        assert!((max - 0.44).abs() < 1e-9);
        let mean = weighted_mean_prevalence();
        assert!((0.18..0.26).contains(&mean), "weighted prevalence {mean}");
    }

    #[test]
    fn frequency_range_matches_paper() {
        // §3.1: 2.3 to 90.2, averaging "as many as 33".
        let min = MODELS.iter().map(|m| m.frequency).fold(f64::MAX, f64::min);
        let max = MODELS.iter().map(|m| m.frequency).fold(0.0, f64::max);
        assert_eq!(min, 2.3);
        assert_eq!(max, 90.2);
        let mean = weighted_mean_frequency();
        assert!((25.0..40.0).contains(&mean), "weighted frequency {mean}");
    }

    #[test]
    fn five_g_models_fail_more() {
        // Fig. 6/7: 5G models above non-5G in both prevalence and frequency.
        let (g5_p, g5_f, g5_n) = MODELS
            .iter()
            .filter(|m| m.hw.has_5g_modem)
            .fold((0.0, 0.0, 0.0), |(p, f, n), m| {
                (p + m.prevalence, f + m.frequency, n + 1.0)
            });
        let (o_p, o_f, o_n) = MODELS
            .iter()
            .filter(|m| !m.hw.has_5g_modem)
            .fold((0.0, 0.0, 0.0), |(p, f, n), m| {
                (p + m.prevalence, f + m.frequency, n + 1.0)
            });
        assert!(g5_p / g5_n > o_p / o_n);
        assert!(g5_f / g5_n > o_f / o_n);
    }

    #[test]
    fn android10_fails_more_than_android9() {
        // Fig. 8/9 (non-5G models only, per the paper's footnote 4).
        let avg = |ver: AndroidVersion| {
            let rows: Vec<_> = MODELS
                .iter()
                .filter(|m| m.hw.android == ver && !m.hw.has_5g_modem)
                .collect();
            let p: f64 = rows.iter().map(|m| m.prevalence).sum::<f64>() / rows.len() as f64;
            let f: f64 = rows.iter().map(|m| m.frequency).sum::<f64>() / rows.len() as f64;
            (p, f)
        };
        let (p9, f9) = avg(AndroidVersion::V9);
        let (p10, f10) = avg(AndroidVersion::V10);
        assert!(p10 > p9, "prevalence 10 {p10} vs 9 {p9}");
        assert!(f10 > f9, "frequency 10 {f10} vs 9 {f9}");
    }

    #[test]
    fn sampler_tracks_user_share() {
        let sampler = model_sampler();
        let mut rng = SimRng::new(1);
        let mut count3 = 0;
        let n = 50_000;
        for _ in 0..n {
            if sample_model(&sampler, &mut rng).id == PhoneModelId(3) {
                count3 += 1;
            }
        }
        let share = count3 as f64 / n as f64;
        assert!((share - 0.0731).abs() < 0.01, "model 3 share {share}");
    }
}
