//! Event-driven fleet simulation over struct-of-arrays device state.
//!
//! The macro [`study`](crate::study) answers *"what happened over eight
//! months"* statistically; the micro [`ab`](crate::ab) fleets run tens of
//! full device stacks. This module fills the gap between them: **10⁶
//! devices with live per-device state on a simulated time axis**, cheap
//! enough for a 30-day horizon on one core because the driver does work
//! proportional to *events*, not device-ticks.
//!
//! # The two processes per device
//!
//! * **Failure arrivals** — a non-homogeneous Poisson process: the
//!   device's base hazard (its calibrated per-study failure mean, scaled
//!   to the fleet window) modulated by the diurnal load curve
//!   ([`diurnal_factor`]). Sampled by *thinning*: candidates arrive at the
//!   constant envelope rate `base × DIURNAL_PEAK` and are accepted with
//!   probability `diurnal(t) / DIURNAL_PEAK`. Each accepted candidate is
//!   attributed exactly like a macro-study failure (kind, signal level,
//!   BS, cause, duration) — except the RAT comes from the device's *live*
//!   radio state below, not an i.i.d. draw.
//! * **RAT occupancy** — the semi-Markov jump process of
//!   [`RatTransitionModel`]: exponential dwell, jump ∝ the device's usage
//!   mix. The fleet only does work at transitions, yet the time share on
//!   each RAT matches the §3.3 marginals exactly.
//!
//! # Determinism: per-(device, source, occurrence) substreams
//!
//! Every random draw belongs to one *occurrence* of one *source* on one
//! *device*, and its RNG is derived as a **pure function**
//! `SimRng::for_substream(root, device ≪ 34 | source ≪ 32 | occurrence)`.
//! No RNG state is stored between events — streams are re-derived on
//! demand — so the bytes produced are independent of scheduling order.
//! That is what lets three very different drivers produce **bit-identical
//! digests**: the per-tick scanner (any tick size), the timer-wheel
//! event-driven driver, and any shard layout of either under
//! [`run_sharded`].
//!
//! # Struct-of-arrays state
//!
//! Fleet-resident state is packed by device id into parallel arrays
//! ([`ShardState`]): current RAT (1 B), the two next-event deadlines
//! (8 B each), two occurrence counters (4 B each), the running event
//! digest (8 B) and one flag byte — 34 hot bytes per device, with the
//! cold [`DeviceProfile`] out-of-line in the shared [`Population`]. The
//! event-driven driver adds one timer-wheel alarm per device (the wheel
//! reports its own footprint via `approx_bytes`).

use crate::durations;
use crate::exposure::FailureLevelSampler;
use crate::fleet_metrics::FleetMetrics;
use crate::population::{DeviceProfile, Population, PopulationConfig};
use crate::study::{kind_weights_for, rat_mix, EventSink, OOS_PRONE_SHARE};
use crate::BsAssigner;
use cellrel_modem::cause_mix::CauseMix;
use cellrel_radio::load::diurnal_factor;
use cellrel_radio::RatTransitionModel;
use cellrel_sim::{resolve_threads, run_sharded, Merge, MetricsSnapshot, SimRng, TimerWheel};
use cellrel_types::{
    Apn, DeviceId, FailureEvent, FailureKind, InSituInfo, Rat, SimDuration, SimTime,
};

/// Upper envelope of [`diurnal_factor`] used by the thinning sampler; a
/// unit test scans the curve to prove it dominates.
pub const DIURNAL_PEAK: f64 = 1.45;

/// Fleet-run parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Population parameters (shared with the macro study).
    pub population: PopulationConfig,
    /// Horizon in days.
    pub days: u64,
    /// Base stations in the attribution directory.
    pub bs_count: usize,
    /// Root seed.
    pub seed: u64,
    /// Mean dwell between RAT jump opportunities, in ms.
    pub mean_rat_dwell_ms: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            population: PopulationConfig::default(),
            days: 30,
            bs_count: 20_000,
            seed: 2021,
            mean_rat_dwell_ms: 4 * 3_600_000,
        }
    }
}

impl FleetConfig {
    /// A small configuration for unit tests.
    pub fn small() -> Self {
        FleetConfig {
            population: PopulationConfig {
                devices: 1_500,
                ..Default::default()
            },
            days: 7,
            bs_count: 1_000,
            ..Default::default()
        }
    }

    /// The simulated window in ms.
    pub fn horizon_ms(&self) -> u64 {
        self.days * 86_400_000
    }
}

/// Aggregated outcome of a fleet run. [`Merge`]-folded across shards; all
/// integer fields are exact, so the fold is bit-identical at any thread
/// count.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Devices simulated.
    pub devices: u64,
    /// Horizon in days.
    pub days: u64,
    /// Failure candidates processed (accepted + thinned).
    pub candidates: u64,
    /// Accepted (recorded) failures.
    pub failures: u64,
    /// RAT jump opportunities processed.
    pub radio_events: u64,
    /// Jump opportunities that actually changed the serving RAT.
    pub rat_changes: u64,
    /// Order-invariant fleet digest: per-device FNV-1a chains over the
    /// device's event sequence, summed (wrapping) across devices.
    pub digest: u64,
    /// Total hot bytes: SoA arrays plus (event-driven) the timer wheel.
    pub hot_bytes: u64,
    /// Folded failure metrics (same registry names as the macro study).
    pub metrics: MetricsSnapshot,
}

impl FleetReport {
    /// All source events processed (candidates + radio jumps).
    pub fn events(&self) -> u64 {
        self.candidates + self.radio_events
    }

    /// Hot fleet-resident footprint per device, in bytes.
    pub fn bytes_per_device(&self) -> f64 {
        if self.devices == 0 {
            return 0.0;
        }
        self.hot_bytes as f64 / self.devices as f64
    }
}

/// Event sources, in canonical processing order for simultaneous events.
const SRC_INIT: u64 = 0;
const SRC_FAIL: u64 = 1;
const SRC_RADIO: u64 = 2;

/// "Never fires": a deadline past every horizon.
const NEVER: u64 = u64::MAX;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

#[inline]
fn fnv_word(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// Derive the RNG for one occurrence of one source on one device. Pure:
/// independent of driver, shard layout and call order. The key packs
/// `device` into bits 34.., `source` into 32..34 and `occurrence` into
/// 0..32, so keys never collide for fleets under 2³⁰ devices.
#[inline]
fn occ_rng(root: u64, device: usize, source: u64, occurrence: u32) -> SimRng {
    let key = ((device as u64) << 34) | (source << 32) | occurrence as u64;
    SimRng::for_substream(root, key)
}

/// Read-only per-run context shared by every shard.
struct FleetCtx {
    bs: BsAssigner,
    level_sampler: FailureLevelSampler,
    cause_mix: CauseMix,
    rat_model: [RatTransitionModel; 2],
    horizon_ms: u64,
    /// Calibration rescale: the population's failure means are per 243-day
    /// study window.
    day_scale: f64,
    root: u64,
}

impl FleetCtx {
    fn rat_model(&self, dev: &DeviceProfile) -> &RatTransitionModel {
        &self.rat_model[usize::from(dev.spec().hw.has_5g_modem)]
    }

    /// Mean gap between failure *candidates* for `dev`, in ms (envelope
    /// rate `base × DIURNAL_PEAK`), or `None` if the device never fails.
    fn candidate_gap_ms(&self, dev: &DeviceProfile) -> f64 {
        let mean_failures = dev.conditional_mean_failures() * self.day_scale;
        self.horizon_ms as f64 / (mean_failures.max(1e-9) * DIURNAL_PEAK)
    }
}

fn fleet_ctx(cfg: &FleetConfig) -> (Population, FleetCtx) {
    let mut rng = SimRng::new(cfg.seed);
    let population = Population::generate(&cfg.population, &mut rng);
    let bs = BsAssigner::new(cfg.bs_count, &mut rng);
    let root = rng.fork(0xF1EE7).seed();
    let dwell = cfg.mean_rat_dwell_ms.max(1) as f64;
    let model = |has_5g: bool| {
        let (rats, weights) = rat_mix(has_5g);
        RatTransitionModel::new(rats, weights, dwell)
    };
    let ctx = FleetCtx {
        bs,
        level_sampler: FailureLevelSampler::new(),
        cause_mix: CauseMix::table2(),
        rat_model: [model(false), model(true)],
        horizon_ms: cfg.horizon_ms(),
        day_scale: cfg.days as f64 / 243.0,
        root,
    };
    (population, ctx)
}

/// Hot per-device state for one shard, struct-of-arrays: every field is a
/// dense array indexed by shard-local device index, so the per-tick
/// scanner touches two cache-friendly deadline arrays and nothing else
/// for idle devices.
struct ShardState {
    rat: Vec<u8>,
    next_fail: Vec<u64>,
    next_radio: Vec<u64>,
    fail_occ: Vec<u32>,
    radio_occ: Vec<u32>,
    digest: Vec<u64>,
    oos_prone: Vec<bool>,
}

impl ShardState {
    fn new(n: usize) -> Self {
        ShardState {
            rat: vec![0; n],
            next_fail: vec![NEVER; n],
            next_radio: vec![NEVER; n],
            fail_occ: vec![0; n],
            radio_occ: vec![0; n],
            digest: vec![FNV_OFFSET; n],
            oos_prone: vec![false; n],
        }
    }

    /// SoA bytes per device (the advertised hot footprint).
    const BYTES_PER_DEVICE: u64 = (1 + 8 + 8 + 4 + 4 + 8 + 1) as u64;

    fn soa_bytes(&self) -> u64 {
        self.rat.len() as u64 * Self::BYTES_PER_DEVICE
    }

    /// The device's earliest pending deadline and its source, breaking
    /// ties by source order — the canonical event order.
    #[inline]
    fn min_due(&self, i: usize) -> (u64, u64) {
        let f = self.next_fail[i];
        let r = self.next_radio[i];
        if f <= r {
            (f, SRC_FAIL)
        } else {
            (r, SRC_RADIO)
        }
    }
}

/// Per-shard accumulator; [`Merge`] makes the shard fold exact.
struct ShardPartial {
    candidates: u64,
    failures: u64,
    radio_events: u64,
    rat_changes: u64,
    digest: u64,
    hot_bytes: u64,
    sink: FleetMetrics,
}

impl ShardPartial {
    fn new() -> Self {
        ShardPartial {
            candidates: 0,
            failures: 0,
            radio_events: 0,
            rat_changes: 0,
            digest: 0,
            hot_bytes: 0,
            sink: FleetMetrics::new(),
        }
    }
}

impl Merge for ShardPartial {
    fn merge(&mut self, other: Self) {
        self.candidates += other.candidates;
        self.failures += other.failures;
        self.radio_events += other.radio_events;
        self.rat_changes += other.rat_changes;
        self.digest = self.digest.wrapping_add(other.digest);
        self.hot_bytes += other.hot_bytes;
        self.sink.merge(other.sink);
    }
}

/// Initialise one device: the gate draw (most devices never fail), the
/// OOS-proneness flag, the stationary initial RAT, and the first deadline
/// of each source from its occurrence-0 stream.
fn init_device(
    local: usize,
    global: usize,
    dev: &DeviceProfile,
    ctx: &FleetCtx,
    st: &mut ShardState,
) {
    let mut rng = occ_rng(ctx.root, global, SRC_INIT, 0);
    let failing = rng.chance(dev.failure_prevalence());
    st.oos_prone[local] = dev.remote_region || rng.chance(OOS_PRONE_SHARE - 0.03);
    st.rat[local] = ctx.rat_model(dev).initial(&mut rng).index() as u8;
    if failing {
        let mut f0 = occ_rng(ctx.root, global, SRC_FAIL, 0);
        let gap = (f0.exp(ctx.candidate_gap_ms(dev)).round() as u64).max(1);
        st.next_fail[local] = gap;
    }
    let mut r0 = occ_rng(ctx.root, global, SRC_RADIO, 0);
    st.next_radio[local] = ctx.rat_model(dev).exp_dwell(&mut r0);
}

/// Process one failure candidate at its due time `t` (occurrence `k`):
/// re-derive the occurrence stream, skip its gap draw (already consumed
/// as the stored deadline), thin against the diurnal curve, attribute the
/// failure if accepted, then arm occurrence `k + 1`.
fn process_failure(
    local: usize,
    global: usize,
    t: u64,
    dev: &DeviceProfile,
    ctx: &FleetCtx,
    st: &mut ShardState,
    out: &mut ShardPartial,
) {
    let occ = st.fail_occ[local];
    let gap_ms = ctx.candidate_gap_ms(dev);
    let mut rng = occ_rng(ctx.root, global, SRC_FAIL, occ);
    let _ = rng.exp(gap_ms);
    out.candidates += 1;

    let hour = t as f64 / 3_600_000.0 % 24.0;
    let accepted = rng.chance(diurnal_factor(hour) / DIURNAL_PEAK);
    let mut h = fnv_word(st.digest[local], t);
    h = fnv_word(h, SRC_FAIL);
    h = fnv_word(h, u64::from(accepted));

    if accepted {
        out.failures += 1;
        let kind = match rng.weighted_index(&kind_weights_for(st.oos_prone[local])) {
            0 => FailureKind::DataSetupError,
            1 => FailureKind::DataStall,
            2 => FailureKind::OutOfService,
            3 => FailureKind::SmsSendFail,
            _ => FailureKind::VoiceSetupFail,
        };
        // In-situ RAT: the live radio state, not an i.i.d. draw.
        let rat = Rat::from_index(st.rat[local] as usize).expect("rat state < 4");
        let level = ctx.level_sampler.sample(rat, &mut rng);
        let site = ctx.bs.assign(dev.isp, rat, &mut rng);
        let cause = (kind == FailureKind::DataSetupError).then(|| ctx.cause_mix.sample(&mut rng));
        let duration = durations::sample_duration(kind, &mut rng, dev.remote_region);
        h = fnv_word(h, kind.index() as u64);
        h = fnv_word(h, rat.index() as u64);
        h = fnv_word(h, duration.as_millis());
        out.sink.record(&FailureEvent {
            device: DeviceId(global as u32),
            kind,
            start: SimTime::from_millis(t),
            duration,
            cause,
            ctx: InSituInfo {
                rat,
                signal: level,
                apn: Apn::Internet,
                bs: Some(site.id),
                isp: dev.isp,
            },
        });
    }
    st.digest[local] = h;

    st.fail_occ[local] = occ + 1;
    let mut next = occ_rng(ctx.root, global, SRC_FAIL, occ + 1);
    st.next_fail[local] = t + (next.exp(gap_ms).round() as u64).max(1);
}

/// Process one RAT jump opportunity at `t` (occurrence `k`): re-derive
/// the stream, skip the dwell draw, take the jump, arm occurrence `k+1`.
fn process_radio(
    local: usize,
    global: usize,
    t: u64,
    dev: &DeviceProfile,
    ctx: &FleetCtx,
    st: &mut ShardState,
    out: &mut ShardPartial,
) {
    let occ = st.radio_occ[local];
    let model = ctx.rat_model(dev);
    let mut rng = occ_rng(ctx.root, global, SRC_RADIO, occ);
    let (_, rat) = model.next(&mut rng);
    out.radio_events += 1;
    if rat.index() as u8 != st.rat[local] {
        out.rat_changes += 1;
    }
    st.rat[local] = rat.index() as u8;
    let mut h = fnv_word(st.digest[local], t);
    h = fnv_word(h, SRC_RADIO);
    st.digest[local] = fnv_word(h, rat.index() as u64);

    st.radio_occ[local] = occ + 1;
    let mut next = occ_rng(ctx.root, global, SRC_RADIO, occ + 1);
    st.next_radio[local] = t + model.exp_dwell(&mut next);
}

/// Process every pending source event of one device with deadline
/// `< until`, in canonical `(time, source)` order. Both drivers funnel
/// through this one function — the proof obligation for bit-identity is
/// that they call it with the same per-device sequence of cut-offs, which
/// any monotone sequence ending at the horizon satisfies.
fn catch_up(
    local: usize,
    global: usize,
    until: u64,
    dev: &DeviceProfile,
    ctx: &FleetCtx,
    st: &mut ShardState,
    out: &mut ShardPartial,
) {
    loop {
        let (due, src) = st.min_due(local);
        if due >= until {
            return;
        }
        match src {
            SRC_FAIL => process_failure(local, global, due, dev, ctx, st, out),
            _ => process_radio(local, global, due, dev, ctx, st, out),
        }
    }
}

/// Run the fleet with the **event-driven** driver: one timer-wheel alarm
/// per device at its earliest deadline; work is O(events), devices idle
/// between their own events cost nothing. Sharded over `threads` (0 =
/// auto); the report is bit-identical at any thread count and to
/// [`run_fleet_per_tick`] at any tick size.
pub fn run_fleet_event_driven(cfg: &FleetConfig, threads: usize) -> FleetReport {
    run_fleet_with(cfg, threads, |range, devices, ctx| {
        let n = range.len();
        let mut st = ShardState::new(n);
        let mut out = ShardPartial::new();
        let mut wheel: TimerWheel<u32> = TimerWheel::with_capacity(n);
        for (local, global) in range.clone().enumerate() {
            init_device(local, global, &devices[global], ctx, &mut st);
            let (due, _) = st.min_due(local);
            if due < ctx.horizon_ms {
                wheel.schedule_at(SimTime::from_millis(due), local as u32);
            }
        }
        out.hot_bytes = st.soa_bytes() + wheel.approx_bytes() as u64;
        while let Some((at, local)) = wheel.pop() {
            let local = local as usize;
            let global = range.start + local;
            let t = at.as_millis();
            catch_up(
                local,
                global,
                t + 1,
                &devices[global],
                ctx,
                &mut st,
                &mut out,
            );
            let (due, _) = st.min_due(local);
            if due < ctx.horizon_ms {
                wheel.schedule_at(SimTime::from_millis(due), local as u32);
            }
        }
        collect_digest(&st, &mut out);
        out
    })
}

/// Run the fleet with the **per-tick baseline** driver: every `tick`, scan
/// every device and process its due events. O(devices × ticks) scanning —
/// the cost model the event-driven driver exists to beat — but byte-for-
/// byte the same report, which is what makes the speedup claim testable.
pub fn run_fleet_per_tick(cfg: &FleetConfig, tick: SimDuration, threads: usize) -> FleetReport {
    let tick_ms = tick.as_millis().max(1);
    run_fleet_with(cfg, threads, move |range, devices, ctx| {
        let n = range.len();
        let mut st = ShardState::new(n);
        let mut out = ShardPartial::new();
        for (local, global) in range.clone().enumerate() {
            init_device(local, global, &devices[global], ctx, &mut st);
        }
        out.hot_bytes = st.soa_bytes();
        let mut t = 0u64;
        while t < ctx.horizon_ms {
            let until = t.saturating_add(tick_ms).min(ctx.horizon_ms);
            for local in 0..n {
                let global = range.start + local;
                catch_up(
                    local,
                    global,
                    until,
                    &devices[global],
                    ctx,
                    &mut st,
                    &mut out,
                );
            }
            t = until;
        }
        collect_digest(&st, &mut out);
        out
    })
}

fn collect_digest(st: &ShardState, out: &mut ShardPartial) {
    for &d in &st.digest {
        out.digest = out.digest.wrapping_add(d);
    }
}

fn run_fleet_with<W>(cfg: &FleetConfig, threads: usize, worker: W) -> FleetReport
where
    W: Fn(std::ops::Range<usize>, &[DeviceProfile], &FleetCtx) -> ShardPartial + Sync,
{
    let (population, ctx) = fleet_ctx(cfg);
    let threads = resolve_threads(threads);
    let devices = population.devices();
    let shards = run_sharded(devices.len(), threads, |range| worker(range, devices, &ctx));
    let mut folded = ShardPartial::new();
    for shard in shards {
        folded.merge(shard);
    }
    FleetReport {
        devices: devices.len() as u64,
        days: cfg.days,
        candidates: folded.candidates,
        failures: folded.failures,
        radio_events: folded.radio_events,
        rat_changes: folded.rat_changes,
        digest: folded.digest,
        hot_bytes: folded.hot_bytes,
        metrics: folded.sink.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet_metrics::{kind_counter, rat_counter};

    #[test]
    fn diurnal_peak_is_a_true_envelope() {
        let mut max = 0.0f64;
        for i in 0..24_000 {
            max = max.max(diurnal_factor(i as f64 / 1_000.0));
        }
        assert!(
            max < DIURNAL_PEAK,
            "diurnal max {max} exceeds envelope {DIURNAL_PEAK}"
        );
        // And the envelope is tight enough that thinning isn't wasteful.
        assert!(max > 0.8 * DIURNAL_PEAK, "envelope too loose: max {max}");
    }

    #[test]
    fn event_driven_matches_per_tick_at_any_tick_size() {
        let cfg = FleetConfig::small();
        let base = run_fleet_event_driven(&cfg, 1);
        assert!(base.failures > 0, "no failures in the small fleet");
        assert!(base.radio_events > 0);
        for tick in [
            SimDuration::from_hours(1),
            SimDuration::from_mins(13),
            SimDuration::from_hours(25),
        ] {
            let scan = run_fleet_per_tick(&cfg, tick, 1);
            assert_eq!(scan.digest, base.digest, "tick {tick}");
            assert_eq!(scan.candidates, base.candidates, "tick {tick}");
            assert_eq!(scan.failures, base.failures, "tick {tick}");
            assert_eq!(scan.radio_events, base.radio_events, "tick {tick}");
            assert_eq!(scan.rat_changes, base.rat_changes, "tick {tick}");
            assert_eq!(scan.metrics, base.metrics, "tick {tick}");
            assert_eq!(scan.metrics.digest(), base.metrics.digest());
        }
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let cfg = FleetConfig::small();
        let base = run_fleet_event_driven(&cfg, 1);
        for threads in [2usize, 3, 8] {
            let r = run_fleet_event_driven(&cfg, threads);
            assert_eq!(r.digest, base.digest, "threads={threads}");
            assert_eq!(r.failures, base.failures, "threads={threads}");
            assert_eq!(r.metrics, base.metrics, "threads={threads}");
            assert_eq!(r.metrics.digest(), base.metrics.digest());
        }
    }

    #[test]
    fn fleet_statistics_land_in_the_calibrated_bands() {
        let cfg = FleetConfig {
            population: PopulationConfig {
                devices: 8_000,
                ..Default::default()
            },
            bs_count: 2_000,
            ..FleetConfig::default()
        };
        let r = run_fleet_event_driven(&cfg, 0);
        assert_eq!(r.devices, 8_000);
        let failures = r.metrics.counter("fleet.failures");
        assert_eq!(failures, r.failures);
        // 30-day window: roughly 30/243 of the study's ~33 failures/device,
        // further thinned by the diurnal duty cycle — a broad sanity band.
        let per_device = r.failures as f64 / r.devices as f64;
        assert!(
            (0.5..8.0).contains(&per_device),
            "failures/device {per_device}"
        );
        // Kind mix: stalls ≈ 42 % of failures.
        let stalls = r.metrics.counter(kind_counter(FailureKind::DataStall)) as f64;
        let share = stalls / failures as f64;
        assert!((0.32..0.52).contains(&share), "stall share {share}");
        // In-situ RAT mix: 4G dominates, 3G is the idle middle child.
        let on = |rat| r.metrics.counter(rat_counter(rat));
        assert!(on(Rat::G4) > on(Rat::G2));
        assert!(on(Rat::G2) > on(Rat::G3));
        // The radio process actually moves devices around.
        assert!(r.rat_changes > 0 && r.rat_changes < r.radio_events);
    }

    #[test]
    fn hot_footprint_is_a_few_dozen_bytes_per_device() {
        let cfg = FleetConfig::small();
        let r = run_fleet_event_driven(&cfg, 1);
        let soa = ShardState::BYTES_PER_DEVICE as f64;
        let per_device = r.bytes_per_device();
        assert!(per_device >= soa, "reported {per_device} < SoA floor {soa}");
        assert!(
            per_device < 200.0,
            "hot bytes/device {per_device} too large"
        );
        // The per-tick driver carries no wheel, only the SoA arrays.
        let scan = run_fleet_per_tick(&cfg, SimDuration::from_hours(1), 1);
        assert_eq!(scan.hot_bytes, cfg.population.devices as u64 * soa as u64);
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let cfg = FleetConfig::small();
        let a = run_fleet_event_driven(&cfg, 2);
        let b = run_fleet_event_driven(&cfg, 2);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.events(), b.events());
    }
}
