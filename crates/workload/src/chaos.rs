//! Deterministic fault-campaign driver over the full micro-DES stack.
//!
//! Each scenario id decodes (mixed-radix) into one point of the fault grid —
//! fault mix × injection schedule × RAT policy × recovery trigger × mobility
//! profile × user patience — and runs a full [`DeviceSim`] agent through it,
//! stepping the event queue *manually* so a registry of cross-stack
//! invariants ([`cellrel_sim::campaign`]) can audit the stack after every
//! single event. Scenarios derive all randomness from
//! `SimRng::for_substream(root_seed, scenario_id)`, so a campaign's report
//! is bit-identical at any thread count and any single scenario replays
//! byte-identically from `(root_seed, id)` alone — which is all a
//! [`cellrel_sim::Violation`] needs to be a complete repro recipe.
//!
//! The invariants encode the paper's cross-layer contracts:
//!
//! * recovery stages never regress within one episode (§3.2's progressive
//!   three-stage mechanism);
//! * recovery actions respect the configured probation triple — vanilla
//!   60/60/60 s or TIMP 21/6/16 s (§4.2);
//! * a suspected Data_Stall implies >10 tx and 0 rx segments in the last
//!   minute (§2.1's kernel predicate);
//! * monitor-measured stall durations stay within probing's error bounds of
//!   DES ground truth (§2.2: ≤5 s, minute-granular after long-stall revert);
//! * once faults stop, no device stays wedged out of service.

use cellrel_monitor::{MonitoringService, TraceRecord};
use cellrel_netstack::{LinkCondition, STALL_MIN_SENT};
use cellrel_radio::{DeploymentConfig, RadioEnvironment};
use cellrel_sim::campaign::{
    run_campaign, CampaignReport, Invariant, InvariantRegistry, ScenarioOutcome,
};
use cellrel_sim::{
    resolve_threads, run_sharded, EventHandler, Merge, MetricsSnapshot, SimRng, Telemetry,
    TimerWheel,
};
use cellrel_telephony::{
    DeviceConfig, DeviceSim, DeviceStats, MobilityProfile, RatPolicyKind, RecordingBoth,
    RecoveryConfig, TelephonyEvent,
};
use cellrel_types::{DeviceId, FailureKind, Isp, Rat, RatSet, ServiceState, SimDuration, SimTime};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Root seed; scenario `i` draws from substream `(root_seed, i)`.
    pub root_seed: u64,
    /// Number of scenarios to enumerate (ids `0..scenarios`; the grid wraps
    /// modulo [`ChaosScenario::GRID`], so any count is valid).
    pub scenarios: u64,
    /// Worker threads (0 = auto via `CELLREL_THREADS`).
    pub threads: usize,
    /// Fault-injection horizon per scenario.
    pub horizon: SimDuration,
    /// Fault-free grace period after the horizon, during which every live
    /// fault is healed and the device must drain back to healthy service.
    pub grace: SimDuration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            root_seed: 2021,
            scenarios: 256,
            threads: 0,
            horizon: SimDuration::from_hours(6),
            grace: SimDuration::from_hours(1),
        }
    }
}

/// The fault-mix axis: how likely an injected condition is a device-side
/// false-positive class rather than a network blackhole.
const FAULT_MIXES: [(&str, f64); 3] = [("blackhole", 0.0), ("mixed", 0.3), ("system-heavy", 0.9)];

/// The schedule axis: `(name, stalls/hour, oos scale)`.
const SCHEDULES: [(&str, f64, f64); 3] = [
    ("calm", 0.5, 1.0),
    ("moderate", 4.0, 4.0),
    ("storm", 10.0, 20.0),
];

/// The RAT-policy axis (Android 10/11 carry the blind-5G-preference defect
/// the paper dissects, so 5G hardware rides along for those and for the
/// stability-compatible fix).
const POLICIES: [(&str, RatPolicyKind); 4] = [
    ("android9", RatPolicyKind::Android9),
    ("android10", RatPolicyKind::Android10),
    ("android11", RatPolicyKind::Android11),
    ("stability", RatPolicyKind::StabilityCompatible),
];

/// The recovery-trigger axis.
const RECOVERIES: [&str; 2] = ["vanilla", "timp"];

/// The mobility axis.
const MOBILITY: [&str; 3] = ["stationary", "commuter", "roamer"];

/// The user-patience axis: the impatient user resets after ~30 s (§3.2);
/// the patient one never does, leaving recovery to run all three stages.
const USERS: [(&str, f64); 2] = [("impatient", 30.0), ("patient", 1e9)];

/// One decoded scenario: a point in the fault grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosScenario {
    /// Scenario id (the encoder input).
    pub id: u64,
    /// Index into [`FAULT_MIXES`].
    pub fault_mix: usize,
    /// Index into [`SCHEDULES`].
    pub schedule: usize,
    /// Index into [`POLICIES`].
    pub policy: usize,
    /// Index into [`RECOVERIES`].
    pub recovery: usize,
    /// Index into [`MOBILITY`].
    pub mobility: usize,
    /// Index into [`USERS`].
    pub user: usize,
}

impl ChaosScenario {
    /// Grid size: ids decode modulo this, so larger campaigns revisit the
    /// grid with fresh random substreams.
    pub const GRID: u64 = 3 * 3 * 4 * 2 * 3 * 2;

    /// Mixed-radix decode of a scenario id.
    pub fn decode(id: u64) -> Self {
        let mut x = id % Self::GRID;
        let fault_mix = (x % 3) as usize;
        x /= 3;
        let schedule = (x % 3) as usize;
        x /= 3;
        let policy = (x % 4) as usize;
        x /= 4;
        let recovery = (x % 2) as usize;
        x /= 2;
        let mobility = (x % 3) as usize;
        x /= 3;
        let user = (x % 2) as usize;
        ChaosScenario {
            id,
            fault_mix,
            schedule,
            policy,
            recovery,
            mobility,
            user,
        }
    }

    /// Coverage labels for the campaign report (one per axis).
    pub fn coverage_labels(&self) -> Vec<String> {
        vec![
            format!("fault:{}", FAULT_MIXES[self.fault_mix].0),
            format!("schedule:{}", SCHEDULES[self.schedule].0),
            format!("policy:{}", POLICIES[self.policy].0),
            format!("recovery:{}", RECOVERIES[self.recovery]),
            format!("mobility:{}", MOBILITY[self.mobility]),
            format!("user:{}", USERS[self.user].0),
        ]
    }

    /// Human-readable one-line description.
    pub fn describe(&self) -> String {
        self.coverage_labels().join(" ")
    }

    /// Build the device configuration for this scenario. `env` supplies the
    /// map positions; `rng` jitters them.
    fn device_config(&self, env: &RadioEnvironment, rng: &mut SimRng) -> DeviceConfig {
        let centers = env.city_centers();
        let home = centers[self.id as usize % centers.len()]
            .offset(rng.normal(0.0, 0.5), rng.normal(0.0, 0.5));
        let mut cfg = DeviceConfig::new(DeviceId(self.id as u32), Isp::A, home);
        cfg.fp_condition_prob = FAULT_MIXES[self.fault_mix].1;
        cfg.stall_rate_per_hour = SCHEDULES[self.schedule].1;
        cfg.oos_scale = SCHEDULES[self.schedule].2;
        cfg.policy = POLICIES[self.policy].1;
        cfg.rats = if self.policy == 0 {
            RatSet::up_to(Rat::G4)
        } else {
            RatSet::up_to(Rat::G5)
        };
        cfg.recovery = if self.recovery == 0 {
            RecoveryConfig::vanilla()
        } else {
            RecoveryConfig::timp_optimized()
        };
        cfg.mobility = match self.mobility {
            0 => MobilityProfile::Stationary,
            1 => MobilityProfile::Commuter {
                work: centers[(self.id as usize + 1) % centers.len()],
            },
            _ => MobilityProfile::Roamer { radius_km: 2.0 },
        };
        cfg.user_reset_median_secs = USERS[self.user].1;
        cfg
    }
}

/// What the invariants see after each event step: the events and monitor
/// records that step produced, plus a snapshot of cross-stack state. Owned
/// data (the element types are `Copy`), so invariants stay lifetime-free.
#[derive(Debug, Clone)]
pub struct StepView {
    /// Queue clock after the step.
    pub now: SimTime,
    /// Telephony events emitted during this step.
    pub new_events: Vec<(SimTime, TelephonyEvent)>,
    /// Monitor trace records appended during this step.
    pub new_records: Vec<TraceRecord>,
    /// `(sent, received)` TCP segments in the kernel's detection window.
    pub window_counts: (usize, usize),
    /// Whether the recovery engine is mid-episode after the step.
    pub recovery_active: bool,
    /// The configured probation triple.
    pub probations: [SimDuration; 3],
    /// Whether the vanilla detector currently believes the link stalled.
    pub detector_stalled: bool,
    /// The device's aggregate counters.
    pub stats: DeviceStats,
    /// Service state after the step.
    pub service_state: ServiceState,
    /// Whether the scenario has entered its fault-free grace period.
    pub quiesced: bool,
    /// Set only on the finish-phase view: why the device is still wedged,
    /// if it is.
    pub wedged: Option<String>,
}

// ---- the invariant registry ---------------------------------------------

/// Recovery stages execute in order 1 → 2 → 3 within an episode and restart
/// from 1 in the next — never regress, never skip, never fire after
/// exhaustion.
#[derive(Default)]
struct StageMonotonic {
    /// Next legal stage; `None` after stage 3 failed (exhausted: nothing
    /// may run until the engine goes idle).
    expected: Option<u8>,
    started: bool,
}

impl Invariant<StepView> for StageMonotonic {
    fn name(&self) -> &'static str {
        "recovery-stage-monotonic"
    }

    fn check(&mut self, view: &StepView) -> Result<(), String> {
        if !self.started {
            self.expected = Some(1);
            self.started = true;
        }
        let mut result = Ok(());
        for (_, ev) in &view.new_events {
            if let TelephonyEvent::RecoveryActionExecuted { stage, fixed } = ev {
                match self.expected {
                    None => {
                        result = Err(format!("stage {stage} executed after exhaustion"));
                    }
                    Some(e) if *stage != e => {
                        result = Err(format!("stage {stage} executed, expected stage {e}"));
                    }
                    Some(_) => {}
                }
                self.expected = if *fixed {
                    Some(1)
                } else if *stage < 3 {
                    Some(stage + 1)
                } else {
                    None // exhausted
                };
            }
        }
        if !view.recovery_active {
            // Engine idle: the next episode starts over at stage 1.
            self.expected = Some(1);
        }
        result
    }
}

/// Every recovery action waits out its full configured probation window:
/// stage `n` fires no earlier than `probations[n-1]` after the window
/// opened (stall detection for stage 1, the previous failed stage
/// otherwise). A stale probation timer leaking across episodes fires
/// *early* — exactly what this catches.
#[derive(Default)]
struct ProbationRespected {
    anchor: Option<SimTime>,
    prev_active: bool,
}

impl Invariant<StepView> for ProbationRespected {
    fn name(&self) -> &'static str {
        "probation-respected"
    }

    fn check(&mut self, view: &StepView) -> Result<(), String> {
        let mut result = Ok(());
        for (t, ev) in &view.new_events {
            match ev {
                // A probation window opens only when detection *starts*
                // the engine; re-detections mid-episode don't restart it.
                TelephonyEvent::DataStallSuspected { .. }
                    if !self.prev_active && self.anchor.is_none() =>
                {
                    self.anchor = Some(*t);
                }
                TelephonyEvent::RecoveryActionExecuted { stage, fixed } => {
                    let idx = (*stage as usize - 1).min(2);
                    if let Some(a) = self.anchor {
                        let waited = t.since(a);
                        let required = view.probations[idx];
                        if waited < required {
                            result = Err(format!(
                                "stage {stage} after {waited}, probation is {required}"
                            ));
                        }
                    }
                    self.anchor = if !fixed && *stage < 3 { Some(*t) } else { None };
                }
                TelephonyEvent::DataStallCleared { .. } => {
                    self.anchor = None;
                }
                _ => {}
            }
        }
        if !view.recovery_active {
            self.anchor = None;
        }
        self.prev_active = view.recovery_active;
        result
    }
}

/// A suspected Data_Stall implies the kernel predicate actually held: more
/// than 10 outbound and zero inbound TCP segments in the last minute.
#[derive(Default)]
struct StallImpliesTraffic;

impl Invariant<StepView> for StallImpliesTraffic {
    fn name(&self) -> &'static str {
        "stall-implies-traffic"
    }

    fn check(&mut self, view: &StepView) -> Result<(), String> {
        for (_, ev) in &view.new_events {
            if matches!(ev, TelephonyEvent::DataStallSuspected { .. }) {
                let (sent, received) = view.window_counts;
                if sent <= STALL_MIN_SENT || received != 0 {
                    return Err(format!(
                        "suspected with {sent} tx / {received} rx in window \
                         (need >{STALL_MIN_SENT} tx, 0 rx)"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Monitor-measured stall durations stay within probing's error bounds of
/// the DES ground truth, and device-side false positives never become
/// records (§2.2).
#[derive(Default)]
struct DurationAccuracy;

impl Invariant<StepView> for DurationAccuracy {
    fn name(&self) -> &'static str {
        "duration-accuracy"
    }

    fn check(&mut self, view: &StepView) -> Result<(), String> {
        let cleared = view.new_events.iter().find_map(|(_, ev)| match ev {
            TelephonyEvent::DataStallCleared {
                duration,
                condition,
                ..
            } => Some((*duration, *condition)),
            _ => None,
        });
        let record = view
            .new_records
            .iter()
            .find(|r| r.kind == FailureKind::DataStall);
        match (cleared, record) {
            (Some((_, condition)), Some(r))
                if condition.is_system_side() || condition == LinkCondition::DnsOutage =>
            {
                Err(format!(
                    "{condition} episode recorded as a true stall ({})",
                    r.duration
                ))
            }
            (Some((truth, _)), Some(r)) => {
                let err = r.duration.as_secs_f64() - truth.as_secs_f64();
                // Probing overshoots by at most one round (≤5.5 s); past the
                // 1200 s backoff threshold rounds grow and the session may
                // revert to a minute-granular estimate (≤61 s high).
                let bound = if truth.as_secs_f64() <= 1190.0 {
                    5.5
                } else {
                    61.0
                };
                if !(-0.001..=bound).contains(&err) {
                    Err(format!(
                        "measured {} for a {truth} stall (err {err:.3} s, bound {bound} s)",
                        r.duration
                    ))
                } else {
                    Ok(())
                }
            }
            (None, Some(r)) => Err(format!(
                "stall record ({}) without a cleared event this step",
                r.duration
            )),
            _ => Ok(()),
        }
    }
}

/// Device counters stay mutually consistent: clears never outrun
/// detections, and all counters are monotone.
#[derive(Default)]
struct CounterSanity {
    prev: Option<DeviceStats>,
}

impl Invariant<StepView> for CounterSanity {
    fn name(&self) -> &'static str {
        "counter-sanity"
    }

    fn check(&mut self, view: &StepView) -> Result<(), String> {
        let s = view.stats;
        if s.stalls_cleared > s.stalls_detected {
            return Err(format!(
                "{} stalls cleared but only {} detected",
                s.stalls_cleared, s.stalls_detected
            ));
        }
        if let Some(p) = self.prev {
            if s.stalls_detected < p.stalls_detected
                || s.stalls_cleared < p.stalls_cleared
                || s.recovery_actions < p.recovery_actions
                || s.manual_resets < p.manual_resets
            {
                return Err("a device counter went backwards".into());
            }
        }
        self.prev = Some(s);
        Ok(())
    }
}

/// Once faults clear, the device must drain back to healthy service — no
/// permanent wedge (checked at scenario end, after the grace period).
#[derive(Default)]
struct NoWedge;

impl Invariant<StepView> for NoWedge {
    fn name(&self) -> &'static str {
        "no-wedge-after-faults-clear"
    }

    fn check(&mut self, _view: &StepView) -> Result<(), String> {
        Ok(())
    }

    fn finish(&mut self, view: &StepView) -> Result<(), String> {
        match &view.wedged {
            Some(reason) => Err(format!("device wedged at scenario end: {reason}")),
            None => Ok(()),
        }
    }
}

/// The standard cross-stack invariant registry. Campaign drivers and the
/// replay path both build it from here so they check the same properties.
pub fn default_registry() -> InvariantRegistry<StepView> {
    let mut reg = InvariantRegistry::new();
    reg.register(StageMonotonic::default())
        .register(ProbationRespected::default())
        .register(StallImpliesTraffic)
        .register(DurationAccuracy)
        .register(CounterSanity::default())
        .register(NoWedge);
    reg
}

// ---- the scenario harness ------------------------------------------------

/// Run one scenario with the standard invariant registry.
pub fn run_scenario(cfg: &ChaosConfig, id: u64) -> ScenarioOutcome {
    run_scenario_with(cfg, id, default_registry)
}

/// Run one scenario with a caller-supplied registry (tests use this to
/// plant canary invariants). Deterministic in `(cfg.root_seed, id)` alone.
pub fn run_scenario_with<F>(cfg: &ChaosConfig, id: u64, make_registry: F) -> ScenarioOutcome
where
    F: Fn() -> InvariantRegistry<StepView>,
{
    run_scenario_instrumented(cfg, id, make_registry, Telemetry::disabled())
}

/// Run one scenario with an enabled [`Telemetry`] handle attached to the
/// device stack; returns the outcome plus the scenario's metrics snapshot
/// (spans become Chrome trace events when `trace` is set).
pub fn run_scenario_telemetry(
    cfg: &ChaosConfig,
    id: u64,
    trace: bool,
) -> (ScenarioOutcome, MetricsSnapshot) {
    let tele = Telemetry::from_flags(true, trace);
    let outcome = run_scenario_instrumented(cfg, id, default_registry, tele.clone());
    (outcome, tele.snapshot())
}

/// The scenario harness. The telemetry handle is scenario-local (scenarios
/// are single-threaded units); campaign drivers fold the per-scenario
/// snapshots, whose merge is commutative, so campaign metrics stay
/// thread-count invariant.
fn run_scenario_instrumented<F>(
    cfg: &ChaosConfig,
    id: u64,
    make_registry: F,
    tele: Telemetry,
) -> ScenarioOutcome
where
    F: Fn() -> InvariantRegistry<StepView>,
{
    let scenario = ChaosScenario::decode(id);
    let mut rng = SimRng::for_substream(cfg.root_seed, id);
    let mut env_rng = rng.fork(0xE);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut env_rng);
    let device_cfg = scenario.device_config(&env, &mut rng);

    // Timer-wheel backend: the chaos grid doubles as a stress test for the
    // wheel's cancel-heavy paths (probations, heal timers, manual resets),
    // with every invariant checked after each event.
    let mut queue = TimerWheel::new();
    let listener = RecordingBoth::new(MonitoringService::new(device_cfg.id, rng.fork(1)));
    let mut dev = DeviceSim::new(device_cfg, &env, listener, rng.fork(2), &mut queue);
    dev.set_telemetry(tele);

    let mut registry = make_registry();
    let horizon = SimTime::ZERO + cfg.horizon;
    let end = horizon + cfg.grace;
    let mut violations = Vec::new();
    let mut event_index = 0u64;
    let mut ev_cursor = 0usize;
    let mut rec_cursor = 0usize;
    let mut quiesced = false;

    while let Some(at) = queue.peek_time() {
        if at > end {
            break;
        }
        if !quiesced && at > horizon {
            // Fault phase over: stop injecting, heal live faults, and give
            // the stack the grace period to drain.
            dev.quiesce(&mut queue);
            quiesced = true;
            continue;
        }
        let (t, ev) = queue.pop().expect("peeked event");
        dev.handle(t, ev, &mut queue);
        event_index += 1;
        let view = step_view(&dev, t, &mut ev_cursor, &mut rec_cursor, quiesced, None);
        registry.check_step(id, event_index, t.as_millis(), &view, &mut violations);
    }

    let wedged = dev.wedged_reason();
    let view = step_view(
        &dev,
        queue.now(),
        &mut ev_cursor,
        &mut rec_cursor,
        quiesced,
        Some(wedged),
    );
    registry.check_finish(
        id,
        event_index,
        queue.now().as_millis(),
        &view,
        &mut violations,
    );

    ScenarioOutcome {
        scenario: id,
        events: event_index,
        violations,
        coverage: scenario.coverage_labels(),
    }
}

/// Snapshot the cross-stack state after one event step. The cursors track
/// how much of the listener log / monitor records previous steps consumed.
fn step_view(
    dev: &DeviceSim<'_, RecordingBoth<MonitoringService>>,
    now: SimTime,
    ev_cursor: &mut usize,
    rec_cursor: &mut usize,
    quiesced: bool,
    wedged: Option<Option<String>>,
) -> StepView {
    let log = &dev.listener().log;
    let records = dev.listener().inner.records();
    let new_events = log[*ev_cursor..].to_vec();
    *ev_cursor = log.len();
    let new_records = records[*rec_cursor..].to_vec();
    *rec_cursor = records.len();
    StepView {
        now,
        new_events,
        new_records,
        window_counts: dev.netstack().counts_in_window(now),
        recovery_active: dev.recovery().active(),
        probations: dev.config().recovery.probations,
        detector_stalled: dev.detector().is_stalled(),
        stats: *dev.stats(),
        service_state: dev.service_state().state(),
        quiesced,
        wedged: wedged.flatten(),
    }
}

/// Run the whole campaign: scenarios `0..cfg.scenarios` sharded over
/// `cfg.threads` threads, folded into one [`CampaignReport`].
pub fn run_chaos_campaign(cfg: &ChaosConfig) -> CampaignReport {
    run_campaign(cfg.scenarios, cfg.threads, |id| run_scenario(cfg, id))
}

/// Run the campaign with telemetry on: every scenario records into its own
/// registry and the per-scenario [`MetricsSnapshot`]s fold into one fleet
/// snapshot alongside the report. Snapshot merge is commutative and
/// associative, so the folded metrics (and their digest) are identical at
/// any thread count. With `trace` set, device spans also become Chrome
/// trace events in the snapshot.
pub fn run_chaos_campaign_metrics(
    cfg: &ChaosConfig,
    trace: bool,
) -> (CampaignReport, MetricsSnapshot) {
    let threads = resolve_threads(cfg.threads);
    let parts = run_sharded(cfg.scenarios as usize, threads, |range| {
        let mut report = CampaignReport::default();
        let mut snap = MetricsSnapshot::default();
        for idx in range {
            let (outcome, s) = run_scenario_telemetry(cfg, idx as u64, trace);
            report.absorb(outcome);
            snap.merge(s);
        }
        (report, snap)
    });
    let mut report = CampaignReport::default();
    let mut snap = MetricsSnapshot::default();
    for (r, s) in parts {
        report.merge(r);
        snap.merge(s);
    }
    (report, snap)
}

/// Replay one scenario by id — byte-identical to its campaign run, because
/// a scenario's behaviour depends only on `(root_seed, id)`.
pub fn replay_scenario(cfg: &ChaosConfig, id: u64) -> ScenarioOutcome {
    run_scenario(cfg, id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ChaosConfig {
        ChaosConfig {
            scenarios: 4,
            horizon: SimDuration::from_hours(2),
            grace: SimDuration::from_mins(45),
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn scenario_decode_covers_every_axis() {
        let mut seen = [
            std::collections::BTreeSet::new(),
            std::collections::BTreeSet::new(),
            std::collections::BTreeSet::new(),
            std::collections::BTreeSet::new(),
            std::collections::BTreeSet::new(),
            std::collections::BTreeSet::new(),
        ];
        for id in 0..ChaosScenario::GRID {
            let s = ChaosScenario::decode(id);
            seen[0].insert(s.fault_mix);
            seen[1].insert(s.schedule);
            seen[2].insert(s.policy);
            seen[3].insert(s.recovery);
            seen[4].insert(s.mobility);
            seen[5].insert(s.user);
        }
        assert_eq!(
            seen.iter().map(|s| s.len()).collect::<Vec<_>>(),
            vec![3, 3, 4, 2, 3, 2]
        );
        // Ids wrap modulo the grid, keeping every id decodable.
        assert_eq!(
            ChaosScenario::decode(ChaosScenario::GRID).fault_mix,
            ChaosScenario::decode(0).fault_mix
        );
    }

    #[test]
    fn coverage_labels_name_all_axes() {
        let labels = ChaosScenario::decode(7).coverage_labels();
        assert_eq!(labels.len(), 6);
        for prefix in [
            "fault:",
            "schedule:",
            "policy:",
            "recovery:",
            "mobility:",
            "user:",
        ] {
            assert!(
                labels.iter().any(|l| l.starts_with(prefix)),
                "missing {prefix} in {labels:?}"
            );
        }
    }

    #[test]
    fn scenarios_replay_byte_identically() {
        let cfg = small_cfg();
        let a = run_scenario(&cfg, 1);
        let b = replay_scenario(&cfg, 1);
        assert_eq!(a, b);
        assert!(a.events > 0);
    }

    #[test]
    fn small_campaign_is_clean_and_thread_invariant() {
        let cfg = small_cfg();
        let base = run_chaos_campaign(&cfg);
        assert_eq!(base.scenarios, cfg.scenarios);
        assert_eq!(
            base.violations,
            Vec::new(),
            "invariant violations in the default stack"
        );
        let two = run_chaos_campaign(&ChaosConfig {
            threads: 2,
            ..small_cfg()
        });
        assert_eq!(base, two);
        assert_eq!(base.digest(), two.digest());
    }

    #[test]
    fn telemetry_neither_perturbs_nor_depends_on_threads() {
        let cfg = small_cfg();
        // Attaching telemetry must not change simulation behaviour: the
        // plain and instrumented outcomes are identical.
        // Scenario 6 decodes to the "storm" schedule, so stall activity —
        // and therefore spans — is guaranteed within the 2 h horizon.
        let plain = run_scenario(&cfg, 6);
        let (instrumented, snap) = run_scenario_telemetry(&cfg, 6, true);
        assert_eq!(plain, instrumented);
        assert!(snap.counter("dc.transitions") > 0, "no dc activity seen");
        assert!(!snap.trace().is_empty(), "tracing recorded nothing");
        // Campaign metrics fold commutatively: identical at 1 vs 2 threads.
        let (report1, snap1) = run_chaos_campaign_metrics(&cfg, true);
        let (report2, snap2) = run_chaos_campaign_metrics(
            &ChaosConfig {
                threads: 2,
                ..small_cfg()
            },
            true,
        );
        assert_eq!(report1, report2);
        assert_eq!(snap1, snap2);
        assert_eq!(snap1.digest(), snap2.digest());
    }

    #[test]
    fn canary_invariant_produces_replayable_violations() {
        struct Canary;
        impl Invariant<StepView> for Canary {
            fn name(&self) -> &'static str {
                "canary"
            }
            fn check(&mut self, view: &StepView) -> Result<(), String> {
                for (_, ev) in &view.new_events {
                    if matches!(ev, TelephonyEvent::DataSetupSuccess { .. }) {
                        return Err("canary trips on first setup success".into());
                    }
                }
                Ok(())
            }
        }
        let with_canary = || {
            let mut reg = InvariantRegistry::new();
            reg.register(Canary);
            reg
        };
        let cfg = small_cfg();
        let a = run_scenario_with(&cfg, 2, with_canary);
        assert!(!a.violations.is_empty(), "a device always connects");
        let b = run_scenario_with(&cfg, 2, with_canary);
        assert_eq!(a.violations, b.violations, "replay must reproduce exactly");
        assert_eq!(a.violations[0].invariant, "canary");
    }
}
