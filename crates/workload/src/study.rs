//! The macro population study driver.
//!
//! Generates the full eight-month failure dataset for a synthetic
//! population: per-device failure counts (Table 1 calibration), per-failure
//! kind / RAT / signal level / BS / cause / duration, all drawn from the
//! calibrated samplers of the sibling modules. The output is a flat
//! [`StudyDataset`] the analysis crate consumes.

use crate::bs_assign::BsAssigner;
use crate::durations;
use crate::exposure::FailureLevelSampler;
use crate::population::{DeviceProfile, Population, PopulationConfig};
use cellrel_modem::cause_mix::CauseMix;
use cellrel_sim::{resolve_threads, run_sharded, Merge, SimRng};
use cellrel_types::{Apn, FailureEvent, FailureKind, InSituInfo, Rat, SimDuration, SimTime};

/// Macro study parameters.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Population parameters.
    pub population: PopulationConfig,
    /// Study length in days (the paper: 8 months ≈ 243 days).
    pub days: u64,
    /// Number of base stations in the macro directory.
    pub bs_count: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            population: PopulationConfig::default(),
            days: 243,
            bs_count: 20_000,
            seed: 2020,
        }
    }
}

impl StudyConfig {
    /// A small configuration for unit tests.
    pub fn small() -> Self {
        StudyConfig {
            population: PopulationConfig {
                devices: 3_000,
                ..Default::default()
            },
            bs_count: 2_000,
            ..Default::default()
        }
    }
}

/// Share of failures by kind (§3.1: averages of 16 setup errors, 14 stalls,
/// 3 out-of-service per phone, plus the <1 % legacy bucket).
pub const KIND_WEIGHTS: [f64; 5] = [0.48, 0.42, 0.09, 0.008, 0.002];

/// Out_of_Service is highly concentrated: 95 % of phones never see one
/// (§3.1), yet OOS is 9 % of all failures — so the OOS mass sits on a small
/// "OOS-prone" slice of the failing population (poor-coverage homes, remote
/// regions). Fraction of *failing* devices that are OOS-prone:
pub const OOS_PRONE_SHARE: f64 = 0.22;

/// Kind weights for OOS-prone devices: the population OOS share divided by
/// the prone share, with the remainder scaled down proportionally.
pub fn kind_weights_for(oos_prone: bool) -> [f64; 5] {
    if oos_prone {
        let w_oos = KIND_WEIGHTS[2] / OOS_PRONE_SHARE;
        let scale =
            (1.0 - w_oos - KIND_WEIGHTS[3] - KIND_WEIGHTS[4]) / (KIND_WEIGHTS[0] + KIND_WEIGHTS[1]);
        [
            KIND_WEIGHTS[0] * scale,
            KIND_WEIGHTS[1] * scale,
            w_oos,
            KIND_WEIGHTS[3],
            KIND_WEIGHTS[4],
        ]
    } else {
        let scale = (1.0 - KIND_WEIGHTS[3] - KIND_WEIGHTS[4]) / (KIND_WEIGHTS[0] + KIND_WEIGHTS[1]);
        [
            KIND_WEIGHTS[0] * scale,
            KIND_WEIGHTS[1] * scale,
            0.0,
            KIND_WEIGHTS[3],
            KIND_WEIGHTS[4],
        ]
    }
}

/// The generated dataset.
#[derive(Debug)]
pub struct StudyDataset {
    /// The configuration that produced the dataset.
    pub config: StudyConfig,
    /// The device population.
    pub population: Population,
    /// Every recorded (true) failure.
    pub events: Vec<FailureEvent>,
    /// Per-device failure counts (indexed by `DeviceId`).
    pub per_device_counts: Vec<u32>,
    /// The BS directory used for attribution.
    pub bs: BsAssigner,
}

impl StudyDataset {
    /// Study window length.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_days(self.config.days)
    }

    /// Fraction of devices with ≥1 failure. An empty population has no
    /// failing devices, so the rate is 0 rather than 0/0.
    pub fn overall_prevalence(&self) -> f64 {
        if self.per_device_counts.is_empty() {
            return 0.0;
        }
        let failing = self.per_device_counts.iter().filter(|&&c| c > 0).count();
        failing as f64 / self.per_device_counts.len() as f64
    }

    /// Mean failures per device (including zero-failure devices); 0 for an
    /// empty population.
    pub fn overall_frequency(&self) -> f64 {
        if self.per_device_counts.is_empty() {
            return 0.0;
        }
        self.events.len() as f64 / self.per_device_counts.len() as f64
    }
}

/// RAT usage mix for failures, by device capability. Non-5G devices live
/// mostly on 4G with legacy fallback; 5G devices (all Android 10, blind 5G
/// preference during the measurement period) shift a large share onto 5G.
pub(crate) fn rat_mix(has_5g: bool) -> ([Rat; 4], [f64; 4]) {
    const RATS: [Rat; 4] = [Rat::G2, Rat::G3, Rat::G4, Rat::G5];
    if has_5g {
        (RATS, [0.05, 0.03, 0.52, 0.40])
    } else {
        (RATS, [0.12, 0.06, 0.82, 0.0])
    }
}

/// A receiver for generated failure events — the streaming / parallel
/// counterpart of materialising a `Vec<FailureEvent>`. Parallel drivers
/// build one sink per shard and fold them with [`Merge`], so a sink used
/// with [`run_macro_study_parallel`] must make `merge` behave like "the
/// other shard's events recorded after mine".
pub trait EventSink {
    /// Record one failure event.
    fn record(&mut self, event: &FailureEvent);
}

impl EventSink for Vec<FailureEvent> {
    fn record(&mut self, event: &FailureEvent) {
        self.push(*event);
    }
}

/// Discarding sink, for runs that only need the per-device counts.
impl EventSink for () {
    fn record(&mut self, _event: &FailureEvent) {}
}

/// Read-only per-run context shared by every shard of a study run.
struct StudyCtx {
    bs: BsAssigner,
    level_sampler: FailureLevelSampler,
    cause_mix: CauseMix,
    window_ms: u64,
    /// Root of the event-stream randomness; each device derives its own
    /// substream from `(event_root, device_id)` alone, so event draws are
    /// independent of iteration order and shard layout.
    event_root: u64,
}

/// Build the population, BS directory and shared samplers for a run. The
/// world-generation draws stay on the sequential root stream (identical to
/// the pre-parallel driver); only the event stream is per-device.
fn study_ctx(cfg: &StudyConfig) -> (Population, StudyCtx) {
    let mut rng = SimRng::new(cfg.seed);
    let population = Population::generate(&cfg.population, &mut rng);
    let bs = BsAssigner::new(cfg.bs_count, &mut rng);
    let event_root = rng.fork(0xEE).seed();
    let ctx = StudyCtx {
        bs,
        level_sampler: FailureLevelSampler::new(),
        cause_mix: CauseMix::table2(),
        window_ms: cfg.days * 86_400_000,
        event_root,
    };
    (population, ctx)
}

/// Generate one device's failures into `sink` from the device's own
/// substream; returns the device's failure count (0 if it never fails).
fn emit_device_failures(
    dev: &DeviceProfile,
    ctx: &StudyCtx,
    sink: &mut impl FnMut(&FailureEvent),
) -> u32 {
    let mut ev_rng = SimRng::for_substream(ctx.event_root, dev.id.0 as u64);
    if !ev_rng.chance(dev.failure_prevalence()) {
        return 0;
    }
    let count = draw_failure_count(dev, &mut ev_rng);
    let (rats, rat_weights) = rat_mix(dev.spec().hw.has_5g_modem);
    let oos_prone = dev.remote_region || ev_rng.chance(OOS_PRONE_SHARE - 0.03);
    let kind_weights = kind_weights_for(oos_prone);
    for _ in 0..count {
        let kind = match ev_rng.weighted_index(&kind_weights) {
            0 => FailureKind::DataSetupError,
            1 => FailureKind::DataStall,
            2 => FailureKind::OutOfService,
            3 => FailureKind::SmsSendFail,
            _ => FailureKind::VoiceSetupFail,
        };
        let rat = rats[ev_rng.weighted_index(&rat_weights)];
        let level = ctx.level_sampler.sample(rat, &mut ev_rng);
        let site = ctx.bs.assign(dev.isp, rat, &mut ev_rng);
        let cause =
            (kind == FailureKind::DataSetupError).then(|| ctx.cause_mix.sample(&mut ev_rng));
        let duration = durations::sample_duration(kind, &mut ev_rng, dev.remote_region);
        let start = SimTime::from_millis(ev_rng.range_u64(0, ctx.window_ms));
        sink(&FailureEvent {
            device: dev.id,
            kind,
            start,
            duration,
            cause,
            ctx: InSituInfo {
                rat,
                signal: level,
                apn: Apn::Internet,
                bs: Some(site.id),
                isp: dev.isp,
            },
        });
    }
    count
}

/// Run the macro study in streaming form: every generated failure event is
/// handed to `sink` instead of being materialised, so fleets of 10⁶+
/// devices run in memory bounded by the BS directory and per-device counts.
/// Returns the population, per-device counts and BS directory (the parts
/// aggregations need for denominators).
pub fn run_macro_study_streaming(
    cfg: &StudyConfig,
    mut sink: impl FnMut(&FailureEvent),
) -> (Population, Vec<u32>, BsAssigner) {
    let (population, ctx) = study_ctx(cfg);
    let mut per_device_counts = Vec::with_capacity(population.len());
    for dev in population.devices() {
        per_device_counts.push(emit_device_failures(dev, &ctx, &mut sink));
    }
    (population, per_device_counts, ctx.bs)
}

/// Run the macro study sharded over up to `threads` scoped threads
/// (`0` = auto: `CELLREL_THREADS` or the machine's available parallelism).
///
/// Each shard generates a contiguous slice of devices into its own sink
/// built by `make_sink`; shard sinks are folded in shard order with
/// [`Merge`] at the end. Because every device draws from its own substream
/// and shards are contiguous, the result is **bit-identical at any thread
/// count**, including 1 — and identical to [`run_macro_study_streaming`].
pub fn run_macro_study_parallel<S, F>(
    cfg: &StudyConfig,
    threads: usize,
    make_sink: F,
) -> (Population, Vec<u32>, BsAssigner, S)
where
    S: EventSink + Merge + Send,
    F: Fn() -> S + Sync,
{
    let (population, ctx) = study_ctx(cfg);
    let threads = resolve_threads(threads);
    let devices = population.devices();
    let shards = run_sharded(devices.len(), threads, |range| {
        let mut sink = make_sink();
        let mut counts = Vec::with_capacity(range.len());
        for dev in &devices[range] {
            counts.push(emit_device_failures(dev, &ctx, &mut |e| sink.record(e)));
        }
        (counts, sink)
    });
    let mut per_device_counts = Vec::with_capacity(devices.len());
    let mut merged: Option<S> = None;
    for (counts, sink) in shards {
        per_device_counts.extend(counts);
        match merged.as_mut() {
            Some(m) => m.merge(sink),
            None => merged = Some(sink),
        }
    }
    let sink = merged.unwrap_or_else(&make_sink);
    (population, per_device_counts, ctx.bs, sink)
}

/// Run the macro study, materialising the full event list. Uses the
/// parallel driver with the auto thread count; output does not depend on
/// the thread count.
pub fn run_macro_study(cfg: &StudyConfig) -> StudyDataset {
    let (population, per_device_counts, bs, events) = run_macro_study_parallel(cfg, 0, Vec::new);
    StudyDataset {
        config: *cfg,
        population,
        events,
        per_device_counts,
        bs,
    }
}

/// Per-failing-device failure count: mean = the model's conditional mean ×
/// proneness, drawn as a Poisson mixture (log-normal proneness already makes
/// the marginal heavy-tailed).
fn draw_failure_count(dev: &DeviceProfile, rng: &mut SimRng) -> u32 {
    let mean = dev.conditional_mean_failures().max(1.0);
    rng.poisson(mean).clamp(1, 500_000) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_types::{Isp, PhoneModelId};

    fn dataset(seed: u64) -> StudyDataset {
        run_macro_study(&StudyConfig {
            seed,
            population: PopulationConfig {
                devices: 12_000,
                ..Default::default()
            },
            bs_count: 4_000,
            ..Default::default()
        })
    }

    #[test]
    fn overall_prevalence_and_frequency_recover_table1() {
        let d = dataset(1);
        let prev = d.overall_prevalence();
        let freq = d.overall_frequency();
        // Paper: 23 % prevalence, 33 failures/device on average.
        assert!((0.17..0.28).contains(&prev), "prevalence {prev}");
        assert!((22.0..45.0).contains(&freq), "frequency {freq}");
    }

    #[test]
    fn per_model_prevalence_tracks_calibration() {
        let d = dataset(2);
        // Check a high-population, high-prevalence model and a near-zero one.
        for (model, expect, tol) in [
            (PhoneModelId(28), 0.28 * 1.0, 0.06),
            (PhoneModelId(8), 0.0015, 0.01),
        ] {
            let devs: Vec<_> = d
                .population
                .devices()
                .iter()
                .filter(|x| x.model == model)
                .collect();
            assert!(devs.len() > 50, "not enough devices of {model}");
            let failing = devs
                .iter()
                .filter(|x| d.per_device_counts[x.id.0 as usize] > 0)
                .count();
            let prev = failing as f64 / devs.len() as f64;
            assert!(
                (prev - expect).abs() < tol,
                "{model}: prevalence {prev} vs {expect}"
            );
        }
    }

    #[test]
    fn kind_mix_matches_config() {
        let d = dataset(3);
        let n = d.events.len() as f64;
        let stalls = d
            .events
            .iter()
            .filter(|e| e.kind == FailureKind::DataStall)
            .count() as f64
            / n;
        assert!((stalls - 0.42).abs() < 0.02, "stall share {stalls}");
        let major = d.events.iter().filter(|e| e.kind.is_major()).count() as f64 / n;
        assert!(major > 0.98, "major kinds {major}");
    }

    #[test]
    fn isp_prevalence_ordering_matches_fig12() {
        let d = dataset(4);
        let prev_of = |isp: Isp| {
            let devs: Vec<_> = d
                .population
                .devices()
                .iter()
                .filter(|x| x.isp == isp)
                .collect();
            devs.iter()
                .filter(|x| d.per_device_counts[x.id.0 as usize] > 0)
                .count() as f64
                / devs.len() as f64
        };
        let (a, b, c) = (prev_of(Isp::A), prev_of(Isp::B), prev_of(Isp::C));
        assert!(b > a && a > c, "ISP prevalence A={a} B={b} C={c}");
    }

    #[test]
    fn setup_errors_carry_causes_others_do_not() {
        let d = dataset(5);
        for e in &d.events {
            match e.kind {
                FailureKind::DataSetupError => assert!(e.cause.is_some()),
                _ => assert!(e.cause.is_none()),
            }
        }
    }

    #[test]
    fn five_g_failures_only_on_5g_devices() {
        let d = dataset(6);
        for e in &d.events {
            if e.ctx.rat == cellrel_types::Rat::G5 {
                let dev = &d.population.devices()[e.device.0 as usize];
                assert!(dev.spec().hw.has_5g_modem);
            }
        }
    }

    #[test]
    fn events_fall_inside_the_window() {
        let d = dataset(7);
        let window = d.window();
        for e in &d.events {
            assert!(e.start.since(SimTime::ZERO) <= window);
        }
    }

    #[test]
    fn streaming_matches_materialised() {
        let cfg = StudyConfig {
            seed: 77,
            population: PopulationConfig {
                devices: 1_000,
                ..Default::default()
            },
            bs_count: 1_000,
            ..Default::default()
        };
        let full = run_macro_study(&cfg);
        let mut count = 0usize;
        let mut duration_sum = 0u64;
        let (_, per_device, _) = run_macro_study_streaming(&cfg, |e| {
            count += 1;
            duration_sum += e.duration.as_millis();
        });
        assert_eq!(count, full.events.len());
        assert_eq!(per_device, full.per_device_counts);
        let full_sum: u64 = full.events.iter().map(|e| e.duration.as_millis()).sum();
        assert_eq!(duration_sum, full_sum);
        // The parallel path produces the same bytes at every thread count.
        for threads in [1usize, 2, 8] {
            let (_, par_counts, _, par_events) = run_macro_study_parallel(&cfg, threads, Vec::new);
            assert_eq!(par_counts, full.per_device_counts, "threads={threads}");
            assert_eq!(par_events, full.events, "threads={threads}");
        }
    }

    #[test]
    fn parallel_is_thread_count_invariant() {
        let cfg = StudyConfig {
            seed: 99,
            population: PopulationConfig {
                devices: 600,
                ..Default::default()
            },
            bs_count: 500,
            ..Default::default()
        };
        let (_, base_counts, _, base_events) =
            run_macro_study_parallel::<Vec<FailureEvent>, _>(&cfg, 1, Vec::new);
        for threads in [2usize, 3, 8] {
            let (_, counts, _, events) = run_macro_study_parallel(&cfg, threads, Vec::new);
            assert_eq!(counts, base_counts, "threads={threads}");
            assert_eq!(events, base_events, "threads={threads}");
        }
    }

    #[test]
    fn empty_dataset_rates_are_zero_not_nan() {
        let mut rng = SimRng::new(1);
        let d = StudyDataset {
            config: StudyConfig::default(),
            population: Population::empty(),
            events: Vec::new(),
            per_device_counts: Vec::new(),
            bs: BsAssigner::new(10, &mut rng),
        };
        assert_eq!(d.overall_prevalence(), 0.0);
        assert_eq!(d.overall_frequency(), 0.0);
    }

    #[test]
    fn study_is_deterministic() {
        let a = dataset(8);
        let b = dataset(8);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.per_device_counts, b.per_device_counts);
        assert_eq!(a.events.first(), b.events.first());
        assert_eq!(a.events.last(), b.events.last());
    }
}
