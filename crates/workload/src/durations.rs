//! Per-kind failure-duration samplers, calibrated to §3.1 and Fig. 4/10.
//!
//! Targets (the paper's published distribution facts):
//!
//! * overall mean duration ≈ 188 s, with 70.8 % of failures < 30 s and a
//!   maximum of 91 770 s (25.5 h, neglected remote BSes);
//! * Data_Stall accounts for ~94 % of total failure duration while being
//!   only ~40 % of failures — stalls carry the heavy tail;
//! * most stalls self-heal fast (Fig. 10: 60 % within 10 s, >80 % within
//!   300 s).

use cellrel_sim::SimRng;
use cellrel_types::{FailureKind, SimDuration};

/// Hard cap on any failure duration (the paper's observed maximum).
pub const MAX_DURATION_SECS: f64 = 91_770.0;

/// Sample a duration (seconds) for a failure of the given kind.
pub fn sample_duration_secs(kind: FailureKind, rng: &mut SimRng, disrepair_region: bool) -> f64 {
    let secs = match kind {
        FailureKind::DataSetupError => {
            // Setup-error episodes resolve with retries within seconds to a
            // couple of minutes (the retry schedule's early steps dominate).
            rng.lognormal(2.7, 0.9) // median ~15 s
        }
        FailureKind::DataStall => sample_stall_duration_secs(rng),
        FailureKind::OutOfService => {
            if disrepair_region {
                // Remote, neglected BSes: the long-outage class whose tail
                // reaches the paper's 25.5-hour extreme.
                rng.lognormal(6.3, 1.1) // median ~9 min
            } else {
                rng.lognormal(3.6, 1.0) // median ~37 s
            }
        }
        FailureKind::SmsSendFail | FailureKind::VoiceSetupFail => rng.lognormal(1.0, 0.7),
    };
    secs.clamp(0.2, MAX_DURATION_SECS)
}

/// Stall durations: fast-healing body (Fig. 10) plus the heavy tail that
/// makes stalls 94 % of total failure time.
pub fn sample_stall_duration_secs(rng: &mut SimRng) -> f64 {
    if rng.chance(0.80) {
        // Fig. 10 body: most stalls clear in seconds.
        rng.lognormal(1.85, 1.15)
    } else {
        // Tail: stubborn stalls, minutes to many hours — this is what makes
        // Data_Stall 94 % of total failure duration at 42 % of counts.
        rng.pareto(250.0, 1.02).min(MAX_DURATION_SECS)
    }
}

/// Natural-heal times used by the TIMP fit and the micro simulation's
/// world-heal process — the Fig. 10 distribution proper (auto-recovery
/// only, no tail from recovery-less episodes).
pub fn sample_auto_heal_secs(rng: &mut SimRng) -> f64 {
    if rng.chance(0.9) {
        rng.lognormal(1.9, 1.1)
    } else {
        rng.pareto(30.0, 1.1).min(MAX_DURATION_SECS)
    }
}

/// Convenience: sample as a [`SimDuration`].
pub fn sample_duration(kind: FailureKind, rng: &mut SimRng, disrepair_region: bool) -> SimDuration {
    SimDuration::from_secs_f64(sample_duration_secs(kind, rng, disrepair_region))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind_mix_sample(n: usize, seed: u64) -> Vec<(FailureKind, f64)> {
        // §3.1 mix: 48 % setup errors, 42 % stalls, 9 % OOS, 1 % legacy.
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| {
                let kind = match rng.weighted_index(&[0.48, 0.42, 0.09, 0.008, 0.002]) {
                    0 => FailureKind::DataSetupError,
                    1 => FailureKind::DataStall,
                    2 => FailureKind::OutOfService,
                    3 => FailureKind::SmsSendFail,
                    _ => FailureKind::VoiceSetupFail,
                };
                let remote = rng.chance(0.02);
                let d = sample_duration_secs(kind, &mut rng, remote);
                (kind, d)
            })
            .collect()
    }

    #[test]
    fn overall_mean_and_quantiles_match_fig4() {
        let sample = kind_mix_sample(200_000, 1);
        let n = sample.len() as f64;
        let mean = sample.iter().map(|(_, d)| d).sum::<f64>() / n;
        let under_30 = sample.iter().filter(|(_, d)| *d < 30.0).count() as f64 / n;
        // Paper: mean 188 s, 70.8 % under 30 s. Heavy-tailed means wander,
        // so accept a generous band around the target.
        assert!((80.0..350.0).contains(&mean), "mean duration {mean}");
        assert!((0.6..0.82).contains(&under_30), "P(<30 s) = {under_30}");
    }

    #[test]
    fn stalls_dominate_total_duration() {
        let sample = kind_mix_sample(200_000, 2);
        let total: f64 = sample.iter().map(|(_, d)| d).sum();
        let stall: f64 = sample
            .iter()
            .filter(|(k, _)| *k == FailureKind::DataStall)
            .map(|(_, d)| d)
            .sum();
        let share = stall / total;
        // Paper: 94 %. Accept the neighbourhood.
        assert!(share > 0.80, "stall duration share {share}");
    }

    #[test]
    fn durations_never_exceed_cap() {
        let mut rng = SimRng::new(3);
        for _ in 0..100_000 {
            let d = sample_stall_duration_secs(&mut rng);
            assert!(d <= MAX_DURATION_SECS && d > 0.0);
        }
    }

    #[test]
    fn auto_heal_matches_fig10() {
        let mut rng = SimRng::new(4);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| sample_auto_heal_secs(&mut rng))
            .collect();
        let n = xs.len() as f64;
        let by10 = xs.iter().filter(|&&d| d <= 10.0).count() as f64 / n;
        let by300 = xs.iter().filter(|&&d| d < 300.0).count() as f64 / n;
        assert!((0.52..0.68).contains(&by10), "60 % target, got {by10}");
        assert!(by300 > 0.8, ">80 % target, got {by300}");
    }

    #[test]
    fn oos_in_disrepair_regions_is_much_longer() {
        let mut rng = SimRng::new(5);
        let normal: f64 = (0..5000)
            .map(|_| sample_duration_secs(FailureKind::OutOfService, &mut rng, false))
            .sum::<f64>()
            / 5000.0;
        let remote: f64 = (0..5000)
            .map(|_| sample_duration_secs(FailureKind::OutOfService, &mut rng, true))
            .sum::<f64>()
            / 5000.0;
        assert!(remote > normal * 10.0, "remote {remote} vs normal {normal}");
    }

    #[test]
    fn setup_errors_are_short() {
        let mut rng = SimRng::new(6);
        let mean: f64 = (0..20_000)
            .map(|_| sample_duration_secs(FailureKind::DataSetupError, &mut rng, false))
            .sum::<f64>()
            / 20_000.0;
        assert!(mean < 40.0, "setup-error mean {mean}");
    }
}
