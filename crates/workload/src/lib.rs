//! # cellrel-workload
//!
//! Synthetic population and study drivers. The paper measured 70 M devices
//! for eight months; we cannot re-measure China, so this crate encodes the
//! paper's *published* marginals as generative ground truth (DESIGN.md §1)
//! and drives two kinds of studies over them:
//!
//! * [`study`] — the **macro** population study: statistical per-device
//!   failure processes over 10⁴–10⁶ synthetic devices, producing the
//!   dataset behind Tables 1–2 and Figures 2–17.
//! * [`ab`] — the **micro** A/B experiments: fleets of full
//!   `DeviceSim` agents comparing vanilla Android against the paper's two
//!   enhancements (Figures 19–21).
//!
//! Supporting modules: [`models`] (Table 1 verbatim), [`population`]
//! (device profiles), [`durations`] (per-kind duration samplers),
//! [`exposure`] (signal-level exposure and normalized-prevalence tables,
//! Figures 15–17), [`bs_assign`] (Zipf base-station attribution, Fig. 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ab;
pub mod bs_assign;
pub mod chaos;
pub mod durations;
pub mod exposure;
pub mod fleet;
pub mod fleet_metrics;
pub mod guidelines;
pub mod models;
pub mod population;
pub mod study;

pub use ab::{run_rat_policy_ab, run_recovery_ab, AbArm, AbConfig, AbOutcome};
pub use bs_assign::BsAssigner;
pub use chaos::{
    default_registry, replay_scenario, run_chaos_campaign, run_chaos_campaign_metrics,
    run_scenario, run_scenario_telemetry, run_scenario_with, ChaosConfig, ChaosScenario, StepView,
};
pub use fleet::{run_fleet_event_driven, run_fleet_per_tick, FleetConfig, FleetReport};
pub use fleet_metrics::{run_fleet_metrics, FleetMetrics};
pub use models::{PhoneModelSpec, MODELS};
pub use population::{DeviceProfile, Population, PopulationConfig};
pub use study::{
    run_macro_study, run_macro_study_parallel, run_macro_study_streaming, EventSink, StudyConfig,
    StudyDataset,
};
