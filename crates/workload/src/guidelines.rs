//! The §4.1 guideline experiments.
//!
//! The paper closes its analysis with actionable guidance for ISPs and
//! vendors. Each guideline rests on a quantitative claim our models encode;
//! this module runs the sweeps that back them:
//!
//! * **BS deployment density** ("carefully control their BS deployment
//!   density in such areas"): sweep a site's neighbour density and watch
//!   the setup-failure probability of an *excellent-signal* cell climb —
//!   the Fig. 15 anomaly as a dose-response curve.
//! * **Cross-ISP frequency coordination** ("cross-ISP infrastructure
//!   sharing"): sweep the minimum carrier gap to the nearest other-ISP
//!   neighbour and watch adjacent-channel interference fall off.
//! * **Idle-3G offload** ("making better use of these relatively 'idle'
//!   infrastructure components"): shift a fraction of 4G demand onto the
//!   idle 3G carrier and watch total overload rejections drop until 3G
//!   saturates — an interior optimum, not a monotone win.

use cellrel_radio::{BaseStation, Environment, Pos, RiskFactors};
use cellrel_sim::{auto_threads, run_sharded};
use cellrel_types::{BsId, Isp, Rat, RatSet, SignalLevel};

/// Evaluate `point` for every index in `0..n`, sharded over the auto
/// thread count. Each point is a pure function of its index, so the
/// concatenated result is identical to the sequential map.
fn sweep_points<T: Send>(n: usize, point: impl Fn(usize) -> T + Sync) -> Vec<T> {
    run_sharded(n, auto_threads(), |range| {
        range.map(&point).collect::<Vec<T>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

fn hub_site(neighbors: u32, gap_mhz: f64, load: f64) -> BaseStation {
    BaseStation {
        id: BsId::gsm_cn(0, 1, 1),
        isp: Isp::B,
        rats: RatSet::up_to(Rat::G5),
        freq_mhz: 2370.0,
        pos: Pos::new(0.0, 0.0),
        env: Environment::TransportHub,
        tx_power_dbm: 43.0,
        load,
        neighbor_count: neighbors,
        min_cross_isp_gap_mhz: gap_mhz,
        in_disrepair: false,
    }
}

/// One point of the density sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityPoint {
    /// Neighbouring sites within interference range.
    pub neighbors: u32,
    /// Setup-failure probability at level-5 signal.
    pub l5_failure_prob: f64,
    /// Setup-failure probability at level-3 signal (control).
    pub l3_failure_prob: f64,
}

/// Sweep deployment density at a transport hub (cross-ISP gap fixed close,
/// as the paper observes at hubs).
pub fn density_sweep(max_neighbors: u32, step: u32) -> Vec<DensityPoint> {
    assert!(step > 0);
    let ns: Vec<u32> = (0..=max_neighbors).step_by(step as usize).collect();
    sweep_points(ns.len(), |idx| {
        let n = ns[idx];
        let bs = hub_site(n, 5.0, 0.85);
        let l5 = RiskFactors::assess(&bs, Rat::G4, SignalLevel::L5).setup_failure_prob();
        let l3 = RiskFactors::assess(&bs, Rat::G4, SignalLevel::L3).setup_failure_prob();
        DensityPoint {
            neighbors: n,
            l5_failure_prob: l5,
            l3_failure_prob: l3,
        }
    })
}

/// One point of the frequency-coordination sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapPoint {
    /// Minimum carrier gap to the nearest other-ISP neighbour, MHz.
    pub gap_mhz: f64,
    /// Interference coupling (0..1).
    pub interference: f64,
    /// Setup-failure probability at level-5.
    pub l5_failure_prob: f64,
}

/// Sweep cross-ISP carrier separation at a dense hub.
pub fn cross_isp_gap_sweep(gaps_mhz: &[f64]) -> Vec<GapPoint> {
    sweep_points(gaps_mhz.len(), |idx| {
        let gap = gaps_mhz[idx];
        let bs = hub_site(40, gap, 0.85);
        let risk = RiskFactors::assess(&bs, Rat::G4, SignalLevel::L5);
        GapPoint {
            gap_mhz: gap,
            interference: risk.interference,
            l5_failure_prob: risk.setup_failure_prob(),
        }
    })
}

/// One point of the idle-3G offload sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadPoint {
    /// Fraction of 4G demand shifted onto the 3G carrier.
    pub offload_fraction: f64,
    /// Overload-rejection probability on the 4G carrier.
    pub g4_rejection: f64,
    /// Overload-rejection probability on the 3G carrier.
    pub g3_rejection: f64,
    /// Traffic-weighted total rejection probability.
    pub total_rejection: f64,
}

/// Shift a fraction of 4G demand to 3G on a busy urban site and compute the
/// overload-rejection landscape. Demand follows the per-RAT model of
/// `cellrel_radio::load` (4G carries 1.0 relative demand, 3G 0.35).
pub fn idle_3g_offload_sweep(site_load: f64, steps: u32) -> Vec<OffloadPoint> {
    assert!(steps > 0);
    // Per-carrier rejection with explicit demand factors, mirroring
    // `BaseStation::overload_rejection_prob`.
    let rejection = |demand_factor: f64| {
        let l = (site_load * demand_factor).clamp(0.0, 1.0);
        let excess = (l - 0.7).max(0.0) / 0.3;
        (0.35 * excess * excess).min(0.35)
    };
    sweep_points(steps as usize + 1, |i| {
        let f = i as f64 / steps as f64; // offload fraction 0..1
        let d4 = 1.0 - 0.65 * f; // demand leaving 4G
        let d3 = 0.35 + 0.65 * f; // arriving at 3G
        let g4 = rejection(d4);
        let g3 = rejection(d3);
        // Weight rejections by where the traffic actually is.
        let total = (g4 * d4 + g3 * d3) / (d4 + d3);
        OffloadPoint {
            offload_fraction: f,
            g4_rejection: g4,
            g3_rejection: g3,
            total_rejection: total,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_drives_the_excellent_signal_anomaly() {
        let sweep = density_sweep(60, 10);
        assert!(sweep.len() >= 6);
        // L5 failure probability rises monotonically with density…
        for w in sweep.windows(2) {
            assert!(
                w[1].l5_failure_prob >= w[0].l5_failure_prob,
                "density sweep not monotone"
            );
        }
        // …and at high density an excellent-signal cell is worse than a
        // mid-signal cell at low density (the paper's inversion).
        let dense_l5 = sweep.last().expect("non-empty").l5_failure_prob;
        let sparse_l3 = sweep[0].l3_failure_prob;
        assert!(
            dense_l5 > sparse_l3,
            "dense L5 {dense_l5} vs sparse L3 {sparse_l3}"
        );
    }

    #[test]
    fn carrier_separation_reduces_interference() {
        let sweep = cross_isp_gap_sweep(&[0.0, 5.0, 15.0, 40.0, 100.0, 300.0]);
        for w in sweep.windows(2) {
            assert!(w[1].interference <= w[0].interference);
            assert!(w[1].l5_failure_prob <= w[0].l5_failure_prob);
        }
        // Coordinated spectrum (wide gap) roughly halves the hub's L5
        // failure probability relative to overlapping carriers.
        let first = sweep.first().expect("non-empty");
        let last = sweep.last().expect("non-empty");
        assert!(last.l5_failure_prob < first.l5_failure_prob * 0.8);
    }

    #[test]
    fn offload_has_an_interior_optimum() {
        let sweep = idle_3g_offload_sweep(0.95, 20);
        let best = sweep
            .iter()
            .min_by(|a, b| {
                a.total_rejection
                    .partial_cmp(&b.total_rejection)
                    .expect("finite")
            })
            .expect("non-empty");
        let zero = &sweep[0];
        let full = sweep.last().expect("non-empty");
        // Some offload beats none (the idle-3G guidance)…
        assert!(
            best.total_rejection < zero.total_rejection,
            "offload never helps: best {} vs none {}",
            best.total_rejection,
            zero.total_rejection
        );
        // …but dumping everything onto 3G overshoots.
        assert!(best.total_rejection < full.total_rejection);
        assert!(best.offload_fraction > 0.0 && best.offload_fraction < 1.0);
    }

    #[test]
    fn sweeps_are_deterministic_and_ordered() {
        assert_eq!(density_sweep(60, 10), density_sweep(60, 10));
        let gaps = [0.0, 5.0, 40.0];
        assert_eq!(cross_isp_gap_sweep(&gaps), cross_isp_gap_sweep(&gaps));
        assert_eq!(
            idle_3g_offload_sweep(0.9, 12),
            idle_3g_offload_sweep(0.9, 12)
        );
        // Sharded evaluation must preserve point order.
        let sweep = density_sweep(60, 10);
        let ns: Vec<u32> = sweep.iter().map(|p| p.neighbors).collect();
        assert_eq!(ns, vec![0, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn balanced_load_rejects_nothing() {
        let sweep = idle_3g_offload_sweep(0.5, 10);
        // A half-loaded site never exceeds the 0.7 utilisation knee.
        assert!(sweep.iter().all(|p| p.total_rejection == 0.0));
    }
}
