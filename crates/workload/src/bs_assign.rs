//! Base-station failure attribution (Fig. 11 and §3.3).
//!
//! The paper ranks 5.3 M BSes by experienced failures and finds a Zipf-like
//! skew (a = 0.82, b = 17.12): median 1 failure, mean 444, maximum 8.94 M,
//! with the top-ranked BSes sitting in crowded urban areas. The macro study
//! assigns each failure to a BS through a Zipf rank sampler whose top ranks
//! are tagged urban/hub.

use cellrel_sim::{SimRng, ZipfDist};
use cellrel_types::{BsId, Isp, Rat, RatSet};

/// A synthetic BS directory entry used by the macro study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroBs {
    /// Protocol identity.
    pub id: BsId,
    /// Owning ISP.
    pub isp: Isp,
    /// Supported RATs.
    pub rats: RatSet,
    /// Whether the site is in a crowded urban area / hub (the top-failure
    /// population of §3.3).
    pub urban: bool,
}

/// Assigns failures to base stations with the paper's Zipf skew.
#[derive(Debug)]
pub struct BsAssigner {
    directory: Vec<MacroBs>,
    zipf: ZipfDist,
    /// Per-ISP index ranges into a shuffled rank permutation.
    rank_to_bs: Vec<u32>,
}

impl BsAssigner {
    /// The paper's fitted Zipf exponent.
    pub const PAPER_ZIPF_A: f64 = 0.82;

    /// Build a directory of `n` base stations with ISP shares and RAT
    /// support per the paper, and a Zipf rank permutation. The *top ranks*
    /// are biased toward urban sites (crowded-area finding).
    pub fn new(n: usize, rng: &mut SimRng) -> Self {
        assert!(n > 0);
        let mut rng = rng.fork(0xB5A5);
        let mut directory = Vec::with_capacity(n);
        for i in 0..n {
            let isp = match rng.weighted_index(&[0.448, 0.294, 0.258]) {
                0 => Isp::A,
                1 => Isp::B,
                _ => Isp::C,
            };
            // Profile mix whose marginals hit the paper's shares (23.4 %,
            // 10.2 %, 65.2 %, 7.3 %): the >100 % overlap is attributed to
            // 4G+5G co-deployment, as in the radio deployment generator.
            let rats = match rng.weighted_index(&[0.234, 0.102, 0.591, 0.061, 0.012]) {
                0 => RatSet::from_slice(&[Rat::G2]),
                1 => RatSet::from_slice(&[Rat::G3]),
                2 => RatSet::from_slice(&[Rat::G4]),
                3 => RatSet::from_slice(&[Rat::G4, Rat::G5]),
                _ => RatSet::from_slice(&[Rat::G5]),
            };
            let urban = rng.chance(0.45);
            let mnc = match isp {
                Isp::A => 0,
                Isp::B => 11,
                Isp::C => 1,
            };
            directory.push(MacroBs {
                id: BsId::gsm_cn(mnc, (i / 4096) as u16, i as u32),
                isp,
                rats,
                urban,
            });
        }

        // Rank permutation biased so urban sites fill the top ranks: sort by
        // a noisy urban-first key.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let keys: Vec<f64> = directory
            .iter()
            .map(|bs| {
                let urban_pull = if bs.urban { 0.0 } else { 1.0 };
                urban_pull + rng.f64() * 0.8
            })
            .collect();
        order.sort_by(|&a, &b| {
            keys[a as usize]
                .partial_cmp(&keys[b as usize])
                .expect("finite keys")
        });

        BsAssigner {
            directory,
            zipf: ZipfDist::new(n, Self::PAPER_ZIPF_A),
            rank_to_bs: order,
        }
    }

    /// Number of base stations.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Always false; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Directory access.
    pub fn directory(&self) -> &[MacroBs] {
        &self.directory
    }

    /// Draw the BS a failure is attributed to, constrained to the device's
    /// ISP and a RAT the BS must support. Falls back to an unconstrained
    /// draw after a bounded number of rejections (directory mixes are dense
    /// enough that this is rare).
    pub fn assign(&self, isp: Isp, rat: Rat, rng: &mut SimRng) -> &MacroBs {
        for _ in 0..64 {
            let rank = self.zipf.sample(rng);
            let bs = &self.directory[self.rank_to_bs[rank] as usize];
            if bs.isp == isp && bs.rats.contains(rat) {
                return bs;
            }
        }
        // Unconstrained fallback (keeps the sampler total).
        let rank = self.zipf.sample(rng);
        &self.directory[self.rank_to_bs[rank] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_sim::fit_zipf;
    use std::collections::HashMap;

    #[test]
    fn directory_shares_follow_paper() {
        let mut rng = SimRng::new(1);
        let a = BsAssigner::new(20_000, &mut rng);
        let n = a.len() as f64;
        let isp_a = a.directory().iter().filter(|b| b.isp == Isp::A).count() as f64 / n;
        assert!((isp_a - 0.448).abs() < 0.02, "ISP-A share {isp_a}");
        let g4 = a
            .directory()
            .iter()
            .filter(|b| b.rats.contains(Rat::G4))
            .count() as f64
            / n;
        assert!((g4 - 0.66).abs() < 0.05, "4G share {g4}");
    }

    #[test]
    fn assignment_respects_constraints_mostly() {
        let mut rng = SimRng::new(2);
        let a = BsAssigner::new(5_000, &mut rng);
        let mut ok = 0;
        for _ in 0..2_000 {
            let bs = a.assign(Isp::B, Rat::G4, &mut rng);
            if bs.isp == Isp::B && bs.rats.contains(Rat::G4) {
                ok += 1;
            }
        }
        assert!(ok > 1_950, "constraint satisfaction {ok}/2000");
    }

    #[test]
    fn failure_counts_fit_a_zipf_near_the_paper_exponent() {
        let mut rng = SimRng::new(3);
        let a = BsAssigner::new(3_000, &mut rng);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..400_000 {
            let bs = a.assign(Isp::A, Rat::G4, &mut rng);
            *counts.entry(bs.id.as_u64()).or_default() += 1;
        }
        let mut desc: Vec<u64> = counts.values().copied().collect();
        desc.sort_unstable_by(|x, y| y.cmp(x));
        let head = &desc[..desc.len().min(400)];
        let (fit_a, _b, r2) = fit_zipf(head);
        assert!(
            (0.55..1.1).contains(&fit_a),
            "zipf exponent {fit_a} (r²={r2})"
        );
        assert!(r2 > 0.8, "poor zipf fit r² {r2}");
        // Skew facts: max ≫ median.
        let max = desc[0];
        let median = desc[desc.len() / 2];
        assert!(max > median * 20, "max {max} vs median {median}");
    }

    #[test]
    fn top_ranked_bses_are_mostly_urban() {
        let mut rng = SimRng::new(4);
        let a = BsAssigner::new(10_000, &mut rng);
        let mut counts: HashMap<usize, u64> = HashMap::new();
        for _ in 0..200_000 {
            let bs = a.assign(Isp::A, Rat::G4, &mut rng);
            // Recover index from cid.
            let BsId::Gsm { cid, .. } = bs.id else {
                unreachable!()
            };
            *counts.entry(cid as usize).or_default() += 1;
        }
        let mut ranked: Vec<(usize, u64)> = counts.into_iter().collect();
        // Tie-break by index: `counts` comes out of a HashMap, so equal
        // counts would otherwise rank in iteration order and the top-100
        // cut (and this assertion) could wobble between runs.
        ranked.sort_by_key(|&(idx, c)| (std::cmp::Reverse(c), idx));
        let top100_urban = ranked[..100]
            .iter()
            .filter(|(idx, _)| a.directory()[*idx].urban)
            .count();
        assert!(
            top100_urban > 80,
            "top-100 urban fraction {top100_urban}/100"
        );
    }
}
